/root/repo/target/debug/deps/check_deque-76e33526ecc90d1b.d: crates/cilk/tests/check_deque.rs

/root/repo/target/debug/deps/check_deque-76e33526ecc90d1b: crates/cilk/tests/check_deque.rs

crates/cilk/tests/check_deque.rs:
