/root/repo/target/debug/deps/lbmf-d717818aac963745.d: crates/core/src/lib.rs crates/core/src/arw.rs crates/core/src/biased.rs crates/core/src/dekker.rs crates/core/src/fence.rs crates/core/src/hooks.rs crates/core/src/litmus.rs crates/core/src/owned.rs crates/core/src/registry.rs crates/core/src/safepoint.rs crates/core/src/stats.rs crates/core/src/strategy.rs crates/core/src/sync.rs crates/core/src/sys.rs

/root/repo/target/debug/deps/liblbmf-d717818aac963745.rlib: crates/core/src/lib.rs crates/core/src/arw.rs crates/core/src/biased.rs crates/core/src/dekker.rs crates/core/src/fence.rs crates/core/src/hooks.rs crates/core/src/litmus.rs crates/core/src/owned.rs crates/core/src/registry.rs crates/core/src/safepoint.rs crates/core/src/stats.rs crates/core/src/strategy.rs crates/core/src/sync.rs crates/core/src/sys.rs

/root/repo/target/debug/deps/liblbmf-d717818aac963745.rmeta: crates/core/src/lib.rs crates/core/src/arw.rs crates/core/src/biased.rs crates/core/src/dekker.rs crates/core/src/fence.rs crates/core/src/hooks.rs crates/core/src/litmus.rs crates/core/src/owned.rs crates/core/src/registry.rs crates/core/src/safepoint.rs crates/core/src/stats.rs crates/core/src/strategy.rs crates/core/src/sync.rs crates/core/src/sys.rs

crates/core/src/lib.rs:
crates/core/src/arw.rs:
crates/core/src/biased.rs:
crates/core/src/dekker.rs:
crates/core/src/fence.rs:
crates/core/src/hooks.rs:
crates/core/src/litmus.rs:
crates/core/src/owned.rs:
crates/core/src/registry.rs:
crates/core/src/safepoint.rs:
crates/core/src/stats.rs:
crates/core/src/strategy.rs:
crates/core/src/sync.rs:
crates/core/src/sys.rs:
