/root/repo/target/debug/deps/experiments_smoke-b9a6d716f9e1271d.d: tests/experiments_smoke.rs

/root/repo/target/debug/deps/experiments_smoke-b9a6d716f9e1271d: tests/experiments_smoke.rs

tests/experiments_smoke.rs:
