/root/repo/target/debug/deps/fig4_table-09b3768569c5f29a.d: crates/bench/src/bin/fig4_table.rs

/root/repo/target/debug/deps/fig4_table-09b3768569c5f29a: crates/bench/src/bin/fig4_table.rs

crates/bench/src/bin/fig4_table.rs:
