/root/repo/target/debug/deps/lbmf_prng-d00395a4510b923e.d: crates/prng/src/lib.rs

/root/repo/target/debug/deps/lbmf_prng-d00395a4510b923e: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
