/root/repo/target/debug/deps/litmus_hist-a0d5ad03739bfa38.d: crates/core/tests/litmus_hist.rs

/root/repo/target/debug/deps/litmus_hist-a0d5ad03739bfa38: crates/core/tests/litmus_hist.rs

crates/core/tests/litmus_hist.rs:
