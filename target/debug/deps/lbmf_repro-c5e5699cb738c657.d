/root/repo/target/debug/deps/lbmf_repro-c5e5699cb738c657.d: src/lib.rs

/root/repo/target/debug/deps/liblbmf_repro-c5e5699cb738c657.rlib: src/lib.rs

/root/repo/target/debug/deps/liblbmf_repro-c5e5699cb738c657.rmeta: src/lib.rs

src/lib.rs:
