/root/repo/target/debug/deps/fig5a_serial-25fbfe485465a17d.d: crates/bench/src/bin/fig5a_serial.rs

/root/repo/target/debug/deps/fig5a_serial-25fbfe485465a17d: crates/bench/src/bin/fig5a_serial.rs

crates/bench/src/bin/fig5a_serial.rs:
