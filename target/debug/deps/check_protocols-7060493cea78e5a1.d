/root/repo/target/debug/deps/check_protocols-7060493cea78e5a1.d: crates/core/tests/check_protocols.rs

/root/repo/target/debug/deps/check_protocols-7060493cea78e5a1: crates/core/tests/check_protocols.rs

crates/core/tests/check_protocols.rs:
