/root/repo/target/debug/deps/lbmf_bench-a98649c031cc82c6.d: crates/bench/src/lib.rs crates/bench/src/criterion.rs

/root/repo/target/debug/deps/lbmf_bench-a98649c031cc82c6: crates/bench/src/lib.rs crates/bench/src/criterion.rs

crates/bench/src/lib.rs:
crates/bench/src/criterion.rs:
