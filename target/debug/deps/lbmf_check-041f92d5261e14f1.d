/root/repo/target/debug/deps/lbmf_check-041f92d5261e14f1.d: crates/check/src/lib.rs crates/check/src/engine.rs crates/check/src/sched.rs crates/check/src/shim.rs

/root/repo/target/debug/deps/liblbmf_check-041f92d5261e14f1.rlib: crates/check/src/lib.rs crates/check/src/engine.rs crates/check/src/sched.rs crates/check/src/shim.rs

/root/repo/target/debug/deps/liblbmf_check-041f92d5261e14f1.rmeta: crates/check/src/lib.rs crates/check/src/engine.rs crates/check/src/sched.rs crates/check/src/shim.rs

crates/check/src/lib.rs:
crates/check/src/engine.rs:
crates/check/src/sched.rs:
crates/check/src/shim.rs:
