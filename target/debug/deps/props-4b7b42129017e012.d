/root/repo/target/debug/deps/props-4b7b42129017e012.d: crates/sim/tests/props.rs

/root/repo/target/debug/deps/props-4b7b42129017e012: crates/sim/tests/props.rs

crates/sim/tests/props.rs:
