/root/repo/target/debug/deps/protocols-ced24c82b4a5e3d6.d: crates/sim/tests/protocols.rs

/root/repo/target/debug/deps/protocols-ced24c82b4a5e3d6: crates/sim/tests/protocols.rs

crates/sim/tests/protocols.rs:
