/root/repo/target/debug/deps/fig6a_arw-47d1e84f3fdc7467.d: crates/bench/src/bin/fig6a_arw.rs

/root/repo/target/debug/deps/fig6a_arw-47d1e84f3fdc7467: crates/bench/src/bin/fig6a_arw.rs

crates/bench/src/bin/fig6a_arw.rs:
