/root/repo/target/debug/deps/lbmf_repro-02d0f38c5240ad2e.d: src/lib.rs

/root/repo/target/debug/deps/lbmf_repro-02d0f38c5240ad2e: src/lib.rs

src/lib.rs:
