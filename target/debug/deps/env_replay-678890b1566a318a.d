/root/repo/target/debug/deps/env_replay-678890b1566a318a.d: crates/check/tests/env_replay.rs

/root/repo/target/debug/deps/env_replay-678890b1566a318a: crates/check/tests/env_replay.rs

crates/check/tests/env_replay.rs:
