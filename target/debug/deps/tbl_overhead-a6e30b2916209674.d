/root/repo/target/debug/deps/tbl_overhead-a6e30b2916209674.d: crates/bench/src/bin/tbl_overhead.rs

/root/repo/target/debug/deps/tbl_overhead-a6e30b2916209674: crates/bench/src/bin/tbl_overhead.rs

crates/bench/src/bin/tbl_overhead.rs:
