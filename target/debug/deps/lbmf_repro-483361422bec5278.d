/root/repo/target/debug/deps/lbmf_repro-483361422bec5278.d: src/lib.rs

/root/repo/target/debug/deps/lbmf_repro-483361422bec5278: src/lib.rs

src/lib.rs:
