/root/repo/target/debug/deps/fig5b_parallel-a71c481798c01cc3.d: crates/bench/src/bin/fig5b_parallel.rs

/root/repo/target/debug/deps/fig5b_parallel-a71c481798c01cc3: crates/bench/src/bin/fig5b_parallel.rs

crates/bench/src/bin/fig5b_parallel.rs:
