/root/repo/target/debug/deps/experiments_smoke-74a0390266ec87c9.d: tests/experiments_smoke.rs

/root/repo/target/debug/deps/experiments_smoke-74a0390266ec87c9: tests/experiments_smoke.rs

tests/experiments_smoke.rs:
