/root/repo/target/debug/deps/lbmf_check-272c103504d06bdc.d: crates/check/src/lib.rs crates/check/src/engine.rs crates/check/src/sched.rs crates/check/src/shim.rs

/root/repo/target/debug/deps/lbmf_check-272c103504d06bdc: crates/check/src/lib.rs crates/check/src/engine.rs crates/check/src/sched.rs crates/check/src/shim.rs

crates/check/src/lib.rs:
crates/check/src/engine.rs:
crates/check/src/sched.rs:
crates/check/src/shim.rs:
