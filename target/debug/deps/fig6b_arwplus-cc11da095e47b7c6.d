/root/repo/target/debug/deps/fig6b_arwplus-cc11da095e47b7c6.d: crates/bench/src/bin/fig6b_arwplus.rs

/root/repo/target/debug/deps/fig6b_arwplus-cc11da095e47b7c6: crates/bench/src/bin/fig6b_arwplus.rs

crates/bench/src/bin/fig6b_arwplus.rs:
