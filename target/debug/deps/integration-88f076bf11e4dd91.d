/root/repo/target/debug/deps/integration-88f076bf11e4dd91.d: tests/integration.rs

/root/repo/target/debug/deps/integration-88f076bf11e4dd91: tests/integration.rs

tests/integration.rs:
