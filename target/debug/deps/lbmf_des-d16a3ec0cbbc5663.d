/root/repo/target/debug/deps/lbmf_des-d16a3ec0cbbc5663.d: crates/des/src/lib.rs crates/des/src/costs.rs crates/des/src/dag.rs crates/des/src/rw_sim.rs crates/des/src/steal_sim.rs

/root/repo/target/debug/deps/liblbmf_des-d16a3ec0cbbc5663.rlib: crates/des/src/lib.rs crates/des/src/costs.rs crates/des/src/dag.rs crates/des/src/rw_sim.rs crates/des/src/steal_sim.rs

/root/repo/target/debug/deps/liblbmf_des-d16a3ec0cbbc5663.rmeta: crates/des/src/lib.rs crates/des/src/costs.rs crates/des/src/dag.rs crates/des/src/rw_sim.rs crates/des/src/steal_sim.rs

crates/des/src/lib.rs:
crates/des/src/costs.rs:
crates/des/src/dag.rs:
crates/des/src/rw_sim.rs:
crates/des/src/steal_sim.rs:
