/root/repo/target/debug/deps/lbmf_sim-d1cf9cf6d7f9c7ad.d: crates/sim/src/lib.rs crates/sim/src/addr.rs crates/sim/src/bus.rs crates/sim/src/cache.rs crates/sim/src/check.rs crates/sim/src/cost.rs crates/sim/src/cpu.rs crates/sim/src/explore.rs crates/sim/src/isa.rs crates/sim/src/machine.rs crates/sim/src/mesi.rs crates/sim/src/programs.rs crates/sim/src/store_buffer.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/liblbmf_sim-d1cf9cf6d7f9c7ad.rlib: crates/sim/src/lib.rs crates/sim/src/addr.rs crates/sim/src/bus.rs crates/sim/src/cache.rs crates/sim/src/check.rs crates/sim/src/cost.rs crates/sim/src/cpu.rs crates/sim/src/explore.rs crates/sim/src/isa.rs crates/sim/src/machine.rs crates/sim/src/mesi.rs crates/sim/src/programs.rs crates/sim/src/store_buffer.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/liblbmf_sim-d1cf9cf6d7f9c7ad.rmeta: crates/sim/src/lib.rs crates/sim/src/addr.rs crates/sim/src/bus.rs crates/sim/src/cache.rs crates/sim/src/check.rs crates/sim/src/cost.rs crates/sim/src/cpu.rs crates/sim/src/explore.rs crates/sim/src/isa.rs crates/sim/src/machine.rs crates/sim/src/mesi.rs crates/sim/src/programs.rs crates/sim/src/store_buffer.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/addr.rs:
crates/sim/src/bus.rs:
crates/sim/src/cache.rs:
crates/sim/src/check.rs:
crates/sim/src/cost.rs:
crates/sim/src/cpu.rs:
crates/sim/src/explore.rs:
crates/sim/src/isa.rs:
crates/sim/src/machine.rs:
crates/sim/src/mesi.rs:
crates/sim/src/programs.rs:
crates/sim/src/store_buffer.rs:
crates/sim/src/trace.rs:
