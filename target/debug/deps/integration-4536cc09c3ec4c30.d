/root/repo/target/debug/deps/integration-4536cc09c3ec4c30.d: tests/integration.rs

/root/repo/target/debug/deps/integration-4536cc09c3ec4c30: tests/integration.rs

tests/integration.rs:
