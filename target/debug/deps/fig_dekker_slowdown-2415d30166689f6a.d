/root/repo/target/debug/deps/fig_dekker_slowdown-2415d30166689f6a.d: crates/bench/src/bin/fig_dekker_slowdown.rs

/root/repo/target/debug/deps/fig_dekker_slowdown-2415d30166689f6a: crates/bench/src/bin/fig_dekker_slowdown.rs

crates/bench/src/bin/fig_dekker_slowdown.rs:
