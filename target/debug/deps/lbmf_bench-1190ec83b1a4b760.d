/root/repo/target/debug/deps/lbmf_bench-1190ec83b1a4b760.d: crates/bench/src/lib.rs crates/bench/src/criterion.rs

/root/repo/target/debug/deps/liblbmf_bench-1190ec83b1a4b760.rlib: crates/bench/src/lib.rs crates/bench/src/criterion.rs

/root/repo/target/debug/deps/liblbmf_bench-1190ec83b1a4b760.rmeta: crates/bench/src/lib.rs crates/bench/src/criterion.rs

crates/bench/src/lib.rs:
crates/bench/src/criterion.rs:
