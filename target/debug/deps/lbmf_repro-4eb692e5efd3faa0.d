/root/repo/target/debug/deps/lbmf_repro-4eb692e5efd3faa0.d: src/lib.rs

/root/repo/target/debug/deps/liblbmf_repro-4eb692e5efd3faa0.rlib: src/lib.rs

/root/repo/target/debug/deps/liblbmf_repro-4eb692e5efd3faa0.rmeta: src/lib.rs

src/lib.rs:
