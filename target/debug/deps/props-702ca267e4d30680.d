/root/repo/target/debug/deps/props-702ca267e4d30680.d: crates/cilk/tests/props.rs

/root/repo/target/debug/deps/props-702ca267e4d30680: crates/cilk/tests/props.rs

crates/cilk/tests/props.rs:
