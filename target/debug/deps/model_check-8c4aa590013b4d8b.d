/root/repo/target/debug/deps/model_check-8c4aa590013b4d8b.d: crates/sim/tests/model_check.rs

/root/repo/target/debug/deps/model_check-8c4aa590013b4d8b: crates/sim/tests/model_check.rs

crates/sim/tests/model_check.rs:
