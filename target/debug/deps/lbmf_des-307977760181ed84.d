/root/repo/target/debug/deps/lbmf_des-307977760181ed84.d: crates/des/src/lib.rs crates/des/src/costs.rs crates/des/src/dag.rs crates/des/src/rw_sim.rs crates/des/src/steal_sim.rs

/root/repo/target/debug/deps/liblbmf_des-307977760181ed84.rlib: crates/des/src/lib.rs crates/des/src/costs.rs crates/des/src/dag.rs crates/des/src/rw_sim.rs crates/des/src/steal_sim.rs

/root/repo/target/debug/deps/liblbmf_des-307977760181ed84.rmeta: crates/des/src/lib.rs crates/des/src/costs.rs crates/des/src/dag.rs crates/des/src/rw_sim.rs crates/des/src/steal_sim.rs

crates/des/src/lib.rs:
crates/des/src/costs.rs:
crates/des/src/dag.rs:
crates/des/src/rw_sim.rs:
crates/des/src/steal_sim.rs:
