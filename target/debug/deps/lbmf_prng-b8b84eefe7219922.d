/root/repo/target/debug/deps/lbmf_prng-b8b84eefe7219922.d: crates/prng/src/lib.rs

/root/repo/target/debug/deps/liblbmf_prng-b8b84eefe7219922.rlib: crates/prng/src/lib.rs

/root/repo/target/debug/deps/liblbmf_prng-b8b84eefe7219922.rmeta: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
