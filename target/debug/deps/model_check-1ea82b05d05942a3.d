/root/repo/target/debug/deps/model_check-1ea82b05d05942a3.d: crates/bench/src/bin/model_check.rs

/root/repo/target/debug/deps/model_check-1ea82b05d05942a3: crates/bench/src/bin/model_check.rs

crates/bench/src/bin/model_check.rs:
