/root/repo/target/debug/deps/lbmf_des-56c942d62d15bca6.d: crates/des/src/lib.rs crates/des/src/costs.rs crates/des/src/dag.rs crates/des/src/rw_sim.rs crates/des/src/steal_sim.rs

/root/repo/target/debug/deps/lbmf_des-56c942d62d15bca6: crates/des/src/lib.rs crates/des/src/costs.rs crates/des/src/dag.rs crates/des/src/rw_sim.rs crates/des/src/steal_sim.rs

crates/des/src/lib.rs:
crates/des/src/costs.rs:
crates/des/src/dag.rs:
crates/des/src/rw_sim.rs:
crates/des/src/steal_sim.rs:
