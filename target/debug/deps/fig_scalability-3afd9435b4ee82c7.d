/root/repo/target/debug/deps/fig_scalability-3afd9435b4ee82c7.d: crates/bench/src/bin/fig_scalability.rs

/root/repo/target/debug/deps/fig_scalability-3afd9435b4ee82c7: crates/bench/src/bin/fig_scalability.rs

crates/bench/src/bin/fig_scalability.rs:
