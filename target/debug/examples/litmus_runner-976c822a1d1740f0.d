/root/repo/target/debug/examples/litmus_runner-976c822a1d1740f0.d: examples/litmus_runner.rs

/root/repo/target/debug/examples/litmus_runner-976c822a1d1740f0: examples/litmus_runner.rs

examples/litmus_runner.rs:
