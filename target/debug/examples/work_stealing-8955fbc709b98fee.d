/root/repo/target/debug/examples/work_stealing-8955fbc709b98fee.d: examples/work_stealing.rs

/root/repo/target/debug/examples/work_stealing-8955fbc709b98fee: examples/work_stealing.rs

examples/work_stealing.rs:
