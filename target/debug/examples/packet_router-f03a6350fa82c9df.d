/root/repo/target/debug/examples/packet_router-f03a6350fa82c9df.d: examples/packet_router.rs

/root/repo/target/debug/examples/packet_router-f03a6350fa82c9df: examples/packet_router.rs

examples/packet_router.rs:
