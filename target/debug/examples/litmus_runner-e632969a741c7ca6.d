/root/repo/target/debug/examples/litmus_runner-e632969a741c7ca6.d: examples/litmus_runner.rs

/root/repo/target/debug/examples/litmus_runner-e632969a741c7ca6: examples/litmus_runner.rs

examples/litmus_runner.rs:
