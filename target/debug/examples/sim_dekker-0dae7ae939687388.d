/root/repo/target/debug/examples/sim_dekker-0dae7ae939687388.d: examples/sim_dekker.rs

/root/repo/target/debug/examples/sim_dekker-0dae7ae939687388: examples/sim_dekker.rs

examples/sim_dekker.rs:
