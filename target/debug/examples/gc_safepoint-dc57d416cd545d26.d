/root/repo/target/debug/examples/gc_safepoint-dc57d416cd545d26.d: examples/gc_safepoint.rs

/root/repo/target/debug/examples/gc_safepoint-dc57d416cd545d26: examples/gc_safepoint.rs

examples/gc_safepoint.rs:
