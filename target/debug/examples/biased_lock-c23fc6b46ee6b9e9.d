/root/repo/target/debug/examples/biased_lock-c23fc6b46ee6b9e9.d: examples/biased_lock.rs

/root/repo/target/debug/examples/biased_lock-c23fc6b46ee6b9e9: examples/biased_lock.rs

examples/biased_lock.rs:
