/root/repo/target/debug/examples/packet_router-af8ae580986a3939.d: examples/packet_router.rs

/root/repo/target/debug/examples/packet_router-af8ae580986a3939: examples/packet_router.rs

examples/packet_router.rs:
