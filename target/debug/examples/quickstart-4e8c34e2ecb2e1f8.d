/root/repo/target/debug/examples/quickstart-4e8c34e2ecb2e1f8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4e8c34e2ecb2e1f8: examples/quickstart.rs

examples/quickstart.rs:
