/root/repo/target/debug/examples/work_stealing-6554806941a75ff4.d: examples/work_stealing.rs

/root/repo/target/debug/examples/work_stealing-6554806941a75ff4: examples/work_stealing.rs

examples/work_stealing.rs:
