/root/repo/target/debug/examples/quickstart-65f9e9b6b0629ab8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-65f9e9b6b0629ab8: examples/quickstart.rs

examples/quickstart.rs:
