/root/repo/target/debug/examples/biased_lock-b08d4b9dfe3279c8.d: examples/biased_lock.rs

/root/repo/target/debug/examples/biased_lock-b08d4b9dfe3279c8: examples/biased_lock.rs

examples/biased_lock.rs:
