/root/repo/target/debug/examples/sim_dekker-a9e71b659c408eac.d: examples/sim_dekker.rs

/root/repo/target/debug/examples/sim_dekker-a9e71b659c408eac: examples/sim_dekker.rs

examples/sim_dekker.rs:
