/root/repo/target/debug/examples/gc_safepoint-5ce90d2f472de8f8.d: examples/gc_safepoint.rs

/root/repo/target/debug/examples/gc_safepoint-5ce90d2f472de8f8: examples/gc_safepoint.rs

examples/gc_safepoint.rs:
