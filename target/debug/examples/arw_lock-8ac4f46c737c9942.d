/root/repo/target/debug/examples/arw_lock-8ac4f46c737c9942.d: examples/arw_lock.rs

/root/repo/target/debug/examples/arw_lock-8ac4f46c737c9942: examples/arw_lock.rs

examples/arw_lock.rs:
