/root/repo/target/debug/examples/arw_lock-8a65bdc55c259963.d: examples/arw_lock.rs

/root/repo/target/debug/examples/arw_lock-8a65bdc55c259963: examples/arw_lock.rs

examples/arw_lock.rs:
