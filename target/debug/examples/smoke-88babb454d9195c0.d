/root/repo/target/debug/examples/smoke-88babb454d9195c0.d: crates/check/examples/smoke.rs

/root/repo/target/debug/examples/smoke-88babb454d9195c0: crates/check/examples/smoke.rs

crates/check/examples/smoke.rs:
