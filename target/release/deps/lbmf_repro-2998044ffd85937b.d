/root/repo/target/release/deps/lbmf_repro-2998044ffd85937b.d: src/lib.rs

/root/repo/target/release/deps/liblbmf_repro-2998044ffd85937b.rlib: src/lib.rs

/root/repo/target/release/deps/liblbmf_repro-2998044ffd85937b.rmeta: src/lib.rs

src/lib.rs:
