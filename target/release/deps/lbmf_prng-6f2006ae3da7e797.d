/root/repo/target/release/deps/lbmf_prng-6f2006ae3da7e797.d: crates/prng/src/lib.rs

/root/repo/target/release/deps/liblbmf_prng-6f2006ae3da7e797.rlib: crates/prng/src/lib.rs

/root/repo/target/release/deps/liblbmf_prng-6f2006ae3da7e797.rmeta: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
