/root/repo/target/release/deps/lbmf_cilk-eba42bf4ab17fa0d.d: crates/cilk/src/lib.rs crates/cilk/src/bench/mod.rs crates/cilk/src/bench/fft.rs crates/cilk/src/bench/fib.rs crates/cilk/src/bench/heat.rs crates/cilk/src/bench/knapsack.rs crates/cilk/src/bench/matrix.rs crates/cilk/src/bench/nqueens.rs crates/cilk/src/bench/sort.rs crates/cilk/src/deque.rs crates/cilk/src/job.rs crates/cilk/src/par.rs crates/cilk/src/scheduler.rs crates/cilk/src/scope.rs crates/cilk/src/stats.rs

/root/repo/target/release/deps/liblbmf_cilk-eba42bf4ab17fa0d.rlib: crates/cilk/src/lib.rs crates/cilk/src/bench/mod.rs crates/cilk/src/bench/fft.rs crates/cilk/src/bench/fib.rs crates/cilk/src/bench/heat.rs crates/cilk/src/bench/knapsack.rs crates/cilk/src/bench/matrix.rs crates/cilk/src/bench/nqueens.rs crates/cilk/src/bench/sort.rs crates/cilk/src/deque.rs crates/cilk/src/job.rs crates/cilk/src/par.rs crates/cilk/src/scheduler.rs crates/cilk/src/scope.rs crates/cilk/src/stats.rs

/root/repo/target/release/deps/liblbmf_cilk-eba42bf4ab17fa0d.rmeta: crates/cilk/src/lib.rs crates/cilk/src/bench/mod.rs crates/cilk/src/bench/fft.rs crates/cilk/src/bench/fib.rs crates/cilk/src/bench/heat.rs crates/cilk/src/bench/knapsack.rs crates/cilk/src/bench/matrix.rs crates/cilk/src/bench/nqueens.rs crates/cilk/src/bench/sort.rs crates/cilk/src/deque.rs crates/cilk/src/job.rs crates/cilk/src/par.rs crates/cilk/src/scheduler.rs crates/cilk/src/scope.rs crates/cilk/src/stats.rs

crates/cilk/src/lib.rs:
crates/cilk/src/bench/mod.rs:
crates/cilk/src/bench/fft.rs:
crates/cilk/src/bench/fib.rs:
crates/cilk/src/bench/heat.rs:
crates/cilk/src/bench/knapsack.rs:
crates/cilk/src/bench/matrix.rs:
crates/cilk/src/bench/nqueens.rs:
crates/cilk/src/bench/sort.rs:
crates/cilk/src/deque.rs:
crates/cilk/src/job.rs:
crates/cilk/src/par.rs:
crates/cilk/src/scheduler.rs:
crates/cilk/src/scope.rs:
crates/cilk/src/stats.rs:
