/root/repo/target/release/deps/lbmf_des-8a8f0b3ed7f0e51a.d: crates/des/src/lib.rs crates/des/src/costs.rs crates/des/src/dag.rs crates/des/src/rw_sim.rs crates/des/src/steal_sim.rs

/root/repo/target/release/deps/liblbmf_des-8a8f0b3ed7f0e51a.rlib: crates/des/src/lib.rs crates/des/src/costs.rs crates/des/src/dag.rs crates/des/src/rw_sim.rs crates/des/src/steal_sim.rs

/root/repo/target/release/deps/liblbmf_des-8a8f0b3ed7f0e51a.rmeta: crates/des/src/lib.rs crates/des/src/costs.rs crates/des/src/dag.rs crates/des/src/rw_sim.rs crates/des/src/steal_sim.rs

crates/des/src/lib.rs:
crates/des/src/costs.rs:
crates/des/src/dag.rs:
crates/des/src/rw_sim.rs:
crates/des/src/steal_sim.rs:
