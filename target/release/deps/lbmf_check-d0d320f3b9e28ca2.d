/root/repo/target/release/deps/lbmf_check-d0d320f3b9e28ca2.d: crates/check/src/lib.rs crates/check/src/engine.rs crates/check/src/sched.rs crates/check/src/shim.rs

/root/repo/target/release/deps/liblbmf_check-d0d320f3b9e28ca2.rlib: crates/check/src/lib.rs crates/check/src/engine.rs crates/check/src/sched.rs crates/check/src/shim.rs

/root/repo/target/release/deps/liblbmf_check-d0d320f3b9e28ca2.rmeta: crates/check/src/lib.rs crates/check/src/engine.rs crates/check/src/sched.rs crates/check/src/shim.rs

crates/check/src/lib.rs:
crates/check/src/engine.rs:
crates/check/src/sched.rs:
crates/check/src/shim.rs:
