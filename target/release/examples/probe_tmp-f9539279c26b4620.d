/root/repo/target/release/examples/probe_tmp-f9539279c26b4620.d: crates/check/examples/probe_tmp.rs

/root/repo/target/release/examples/probe_tmp-f9539279c26b4620: crates/check/examples/probe_tmp.rs

crates/check/examples/probe_tmp.rs:
