/root/repo/target/release/examples/smoke-d294135e782e0b6a.d: crates/check/examples/smoke.rs

/root/repo/target/release/examples/smoke-d294135e782e0b6a: crates/check/examples/smoke.rs

crates/check/examples/smoke.rs:
