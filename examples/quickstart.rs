//! Quickstart: the asymmetric Dekker protocol with a location-based
//! memory fence.
//!
//! One *primary* thread enters a critical section constantly; a *secondary*
//! thread enters occasionally. With the location-based fence the primary's
//! fast path never executes a hardware fence — the secondary remotely
//! serializes it (here via the paper's signal-based software prototype)
//! only when it actually wants the lock.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lbmf_repro::fences::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // Pick the fence strategy: the paper's signal prototype. (Swap in
    // `Symmetric::new()` for the classic mfence-on-every-entry protocol or
    // `MembarrierFence::try_new().unwrap()` for the kernel-assisted one.)
    let strategy = Arc::new(SignalFence::new());
    let dekker = Arc::new(AsymmetricDekker::new(strategy));
    let counter = Arc::new(AtomicU64::new(0));

    const PRIMARY_ITERS: u64 = 500_000;
    const SECONDARY_ITERS: u64 = 500;

    // The primary thread registers itself (so secondaries can signal it)
    // and hammers the critical section.
    let d = dekker.clone();
    let c = counter.clone();
    let primary = std::thread::spawn(move || {
        let primary = d.register_primary();
        let t0 = Instant::now();
        for _ in 0..PRIMARY_ITERS {
            primary.with_lock(|| {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        t0.elapsed()
    });

    // A secondary thread takes the lock occasionally.
    let d = dekker.clone();
    let c = counter.clone();
    let secondary = std::thread::spawn(move || {
        for _ in 0..SECONDARY_ITERS {
            let _guard = d.secondary_lock();
            c.fetch_add(1, Ordering::Relaxed);
            drop(_guard);
            std::thread::yield_now();
        }
    });

    let elapsed = primary.join().unwrap();
    secondary.join().unwrap();

    assert_eq!(counter.load(Ordering::Relaxed), PRIMARY_ITERS + SECONDARY_ITERS);
    let stats = dekker.strategy().stats().snapshot();
    println!("primary entries : {PRIMARY_ITERS} in {elapsed:.2?}");
    println!("secondary entries: {SECONDARY_ITERS}");
    println!("fence stats      : {stats}");
    println!(
        "\nthe primary executed {} hardware fences and {} compiler-only fences —",
        stats.primary_full_fences, stats.primary_compiler_fences
    );
    println!(
        "the {} serializations (signals) were paid by the secondary instead.",
        stats.serializations_delivered
    );
}
