//! Asymmetric Dekker under `SignalFence`, traced end to end.
//!
//! The primary thread hammers its fence-free lock fast path while a
//! secondary takes the lock a few dozen times, each time remotely
//! serializing the primary through the signal handshake. Every fence,
//! serialize request, and serialize round trip lands in the per-thread
//! trace rings; afterwards we drain them, self-validate the Chrome
//! export, and write a `.trace.json` you can open in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Usage: `cargo run --release --example trace_dekker [out.trace.json]`
//! (default output: `target/trace_dekker.trace.json`). Exits nonzero if
//! the trace fails validation or lacks a serialize request/deliver pair.

use lbmf::dekker::AsymmetricDekker;
use lbmf::strategy::{FenceStrategy, SignalFence};
use lbmf_repro::trace::causal::ChainSet;
use lbmf_repro::trace::{chrome, prometheus, summary, take_snapshot, EventKind};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const SECONDARY_LOCKS: u64 = 25;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/trace_dekker.trace.json".into());

    let dekker = Arc::new(AsymmetricDekker::new(Arc::new(SignalFence::new())));
    let done = Arc::new(AtomicBool::new(false));

    let primary = {
        let dekker = dekker.clone();
        let done = done.clone();
        std::thread::Builder::new()
            .name("dekker-primary".into())
            .spawn(move || {
                let primary = dekker.register_primary();
                let mut entries = 0u64;
                while !done.load(Ordering::Relaxed) {
                    primary.with_lock(|| entries += 1);
                }
                entries
            })
            .unwrap()
    };

    let secondary = {
        let dekker = dekker.clone();
        std::thread::Builder::new()
            .name("dekker-secondary".into())
            .spawn(move || {
                for _ in 0..SECONDARY_LOCKS {
                    let _g = dekker.secondary_lock();
                }
            })
            .unwrap()
    };

    secondary.join().unwrap();
    done.store(true, Ordering::Relaxed);
    let primary_entries = primary.join().unwrap();

    // Both threads joined: the drain below is authoritative, not racing.
    let snap = take_snapshot();
    print!("{}", summary::render(&snap));
    println!("primary entries: {primary_entries}");

    // The quantitative claim, per event stream: the primary never paid a
    // hardware fence, and every secondary acquisition serialized it.
    assert!(primary_entries > 0, "primary never entered");
    assert_eq!(
        snap.count(EventKind::PrimaryFullFence),
        0,
        "asymmetric primary must not execute full fences"
    );
    assert!(
        snap.count(EventKind::PrimaryFence) > 0,
        "primary fast path not traced"
    );
    assert!(
        snap.count(EventKind::SerializeRequest) >= SECONDARY_LOCKS,
        "every secondary acquisition requests a serialization"
    );
    assert!(
        snap.count(EventKind::SerializeDeliver) >= 1,
        "no serialize round trip completed"
    );
    let stats = dekker.strategy().stats().snapshot();
    assert_eq!(stats.primary_full_fences, 0);

    // Causal chains: each secondary acquisition minted a correlation id
    // that flows request → signal-sent → handler-enter → drained →
    // ack-observed; at least one must have survived ring wrap intact.
    let set = ChainSet::from_snapshot(&snap);
    let acc = set.accounting();
    println!(
        "causal chains: {} ({} complete, {} missing-interior, {} orphaned)",
        set.chains.len(),
        acc.complete,
        acc.missing_interior,
        acc.orphans
    );
    assert!(acc.complete >= 1, "no complete serialization chain survived");

    let json = chrome::export_with_strategy(&snap, Some(dekker.strategy().name()));
    // validate() also enforces flow-event pairing: every chain's `s`
    // arrow start has a matching `f` finish under a unique id.
    let events = chrome::validate_with_serialize_pair(&json)
        .expect("exported trace failed its own self-check");
    assert!(json.contains("\"ph\":\"s\""), "chains must export flow arrows");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write trace file");
    println!("wrote {events} chrome events to {out_path} (open in https://ui.perfetto.dev)");

    println!("--- prometheus dump ---");
    print!("{}", prometheus::export(&snap));
}
