//! The proposed LE/ST hardware, in simulation: watch a location-based
//! memory fence get remotely enforced.
//!
//! Builds the paper's Figure 3(a) asymmetric Dekker protocol on the
//! cycle-level TSO machine, runs one schedule with full event tracing (so
//! you can see the link set / link break / store-buffer flush), and then
//! model-checks every interleaving for mutual exclusion.
//!
//! With `--trace-out PATH` the traced schedule is also exported as a
//! Chrome trace (per-CPU instruction tracks, per-line MESI timelines,
//! the LE/ST link span, and the remote-downgrade flow arrow) — load it
//! in Perfetto / `chrome://tracing`, or feed it to `lbmf-obs validate`.
//!
//! ```text
//! cargo run --release --example sim_dekker [-- --trace-out sim.trace.json]
//! ```

use lbmf_repro::sim::prelude::*;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = argv.iter().map(String::as_str).collect();
    let args = lbmf_bench::Args::from(&refs);
    // --- 1. a single schedule, traced -------------------------------
    let mut primary = ProgramBuilder::new("primary");
    primary.lmfence(L1, 1u64); // K1: l-mfence(&L1, 1)
    primary.ld(0, L2); // K2: read L2
    primary.halt();
    let mut secondary = ProgramBuilder::new("secondary");
    secondary.st(L2, 1u64); // J1
    secondary.mfence(); // J2
    secondary.ld(0, L1); // J3: the access that triggers the remote fence
    secondary.halt();

    let cfg = MachineConfig::default(); // tracing on
    let (primary, secondary) = (primary.build(), secondary.build());
    println!("the primary's program (Figure 3(b) expansion of l-mfence):\n");
    print!("{}", primary.disassemble());
    println!();
    let mut m = Machine::new(cfg, CostModel::default(), vec![primary, secondary]);

    // Schedule: the primary runs its whole l-mfence (store still buffered,
    // link set), then the secondary runs — its read of L1 must break the
    // link, flush the primary's store buffer, and observe L1 == 1.
    while !m.cpus[0].halted {
        m.apply(Transition::Step(0));
    }
    while !m.cpus[1].halted {
        m.apply(Transition::Step(1));
    }
    m.flush_all();

    println!("one traced schedule (primary first, then secondary):\n");
    print!("{}", m.trace.dump());
    println!("\nsecondary read L1 = {} (the guarded store, remotely completed)", m.cpus[1].regs[0]);
    println!("primary read L2 = {}", m.cpus[0].regs[0]);
    println!(
        "program-based mfences executed: {} (the secondary's J2 — the primary ran none)",
        m.stats.mfences
    );
    println!("remote link breaks: {}", m.stats.link_breaks_remote);
    check_all(&m, &[]).expect("trace invariants");

    if let Some(path) = args.value("--trace-out") {
        let json = lbmf_repro::sim::chrome::export_with_label(&m, Some("sim-l-mfence"));
        let events = lbmf_trace::chrome::validate(&json).expect("sim export must validate");
        assert!(
            json.contains("\"name\":\"remote-downgrade\""),
            "this schedule must produce a remote-downgrade flow arrow"
        );
        if let Some(parent) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(parent).expect("create trace dir");
        }
        std::fs::write(path, &json).expect("write trace");
        println!("\nwrote {path} ({events} Chrome events) — open in Perfetto or chrome://tracing");
    }

    // --- 2. every interleaving, model-checked -----------------------
    let opt = DekkerOptions { iters: 1, cs_mem_ops: true, cs_work: 0 };
    let checked = Machine::for_checking(dekker_asymmetric(opt));
    let result = Explorer::default().explore(checked, |m| (m.cpus[0].regs[1], m.cpus[1].regs[1]));
    println!(
        "\nmodel check of the full asymmetric Dekker protocol: {} states, {} mutual-exclusion violations",
        result.states_visited, result.mutex_violations
    );
    assert_eq!(result.mutex_violations, 0, "Theorem 7 must hold");

    // And the broken variant, for contrast.
    let opt = DekkerOptions { iters: 1, cs_mem_ops: false, cs_work: 0 };
    let broken = Machine::for_checking(dekker_pair([FenceKind::None, FenceKind::None], opt));
    let result = Explorer::default().explore(broken, |m| (m.cpus[0].regs[1], m.cpus[1].regs[1]));
    println!(
        "unfenced Figure-1 protocol: {} states, {} violations (TSO breaks it, as Section 2 explains)",
        result.states_visited, result.mutex_violations
    );
    assert!(result.mutex_violations > 0);
}
