//! The ACilk-5 scenario: a work-stealing runtime whose victim/thief deque
//! protocol uses location-based fences.
//!
//! Runs a few of the paper's Figure-4 kernels on the symmetric (Cilk-5
//! style, mfence per pop) and asymmetric (ACilk-5 style, fence-free pops)
//! runtimes and prints the ratio plus the steal statistics.
//!
//! ```text
//! cargo run --release --example work_stealing [workers]
//! ```

use lbmf_repro::cilk::bench::{Kernel, Scale};
use lbmf_repro::cilk::Scheduler;
use lbmf_repro::fences::prelude::*;
use std::sync::Arc;

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);

    let symmetric = Scheduler::new(workers, Arc::new(Symmetric::new()));
    let asymmetric = Scheduler::new(workers, Arc::new(SignalFence::new()));

    println!("{workers} workers, Test-scale inputs\n");
    println!(
        "{:>10} {:>12} {:>12} {:>7} {:>16}",
        "kernel", "cilk-5", "acilk-5", "ratio", "fences avoided"
    );
    for kernel in [Kernel::Fib, Kernel::Cilksort, Kernel::Nqueens, Kernel::Matmul] {
        let sym = kernel.run_timed(&symmetric, Scale::Test);
        asymmetric.reset_stats();
        let asym = kernel.run_timed(&asymmetric, Scale::Test);
        assert_eq!(sym.checksum, asym.checksum, "runtimes must agree");
        let stats = asymmetric.stats();
        println!(
            "{:>10} {:>12.1?} {:>12.1?} {:>7.3} {:>16}",
            kernel.name(),
            sym.elapsed,
            asym.elapsed,
            asym.elapsed.as_secs_f64() / sym.elapsed.as_secs_f64(),
            stats.fences_avoided(),
        );
    }

    // Show the full statistics of one asymmetric parallel run.
    asymmetric.reset_stats();
    let r = Kernel::Fib.run_timed(&asymmetric, Scale::Test);
    let stats = asymmetric.stats();
    println!("\nfib on the asymmetric runtime (checksum {:x}):", r.checksum);
    println!("  {stats}");
    println!(
        "  every steal attempt serialized the victim remotely; the victim \
         itself never executed a hardware fence."
    );
}
