//! The ACilk-5 scenario: a work-stealing runtime whose victim/thief deque
//! protocol uses location-based fences.
//!
//! Three modes:
//!
//! * default — run a few of the paper's Figure-4 kernels on the
//!   symmetric (Cilk-5 style, mfence per pop) and asymmetric (ACilk-5
//!   style, fence-free pops) runtimes and print the ratio plus the steal
//!   statistics;
//! * `--serve` — keep an asymmetric runtime stealing continuously and
//!   expose the observatory's live `/metrics` + `/healthz` endpoints, so
//!   a Prometheus scraper (or `curl`) can watch fence counters and steal
//!   events move while the run is in flight;
//! * `--trace-out PATH` — run asymmetric kernels until at least one
//!   steal's serialization round trip landed as a *complete causal
//!   chain* in the trace rings, then write the validated Chrome trace
//!   (with flow arrows and the strategy metadata `lbmf-obs explain`
//!   consumes) to PATH.
//!
//! ```text
//! cargo run --release --example work_stealing [workers]
//! cargo run --release --example work_stealing -- --serve [--addr 127.0.0.1:9478] \
//!     [--workers N] [--duration-secs N]
//! cargo run --release --example work_stealing -- --trace-out steal.trace.json [--workers N]
//! ```

use lbmf_repro::cilk::bench::{Kernel, Scale};
use lbmf_repro::cilk::Scheduler;
use lbmf_repro::fences::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--serve") {
        let refs: Vec<&str> = argv.iter().map(String::as_str).collect();
        serve(&lbmf_bench::Args::from(&refs));
        return;
    }
    if argv.iter().any(|a| a == "--trace-out") {
        let refs: Vec<&str> = argv.iter().map(String::as_str).collect();
        trace_out(&lbmf_bench::Args::from(&refs));
        return;
    }

    let workers: usize = argv.first().and_then(|a| a.parse().ok()).unwrap_or(2);

    let symmetric = Scheduler::new(workers, Arc::new(Symmetric::new()));
    let asymmetric = Scheduler::new(workers, Arc::new(SignalFence::new()));

    println!("{workers} workers, Test-scale inputs\n");
    println!(
        "{:>10} {:>12} {:>12} {:>7} {:>16}",
        "kernel", "cilk-5", "acilk-5", "ratio", "fences avoided"
    );
    for kernel in [Kernel::Fib, Kernel::Cilksort, Kernel::Nqueens, Kernel::Matmul] {
        let sym = kernel.run_timed(&symmetric, Scale::Test);
        asymmetric.reset_stats();
        let asym = kernel.run_timed(&asymmetric, Scale::Test);
        assert_eq!(sym.checksum, asym.checksum, "runtimes must agree");
        let stats = asymmetric.stats();
        println!(
            "{:>10} {:>12.1?} {:>12.1?} {:>7.3} {:>16}",
            kernel.name(),
            sym.elapsed,
            asym.elapsed,
            asym.elapsed.as_secs_f64() / sym.elapsed.as_secs_f64(),
            stats.fences_avoided(),
        );
    }

    // Show the full statistics of one asymmetric parallel run.
    asymmetric.reset_stats();
    let r = Kernel::Fib.run_timed(&asymmetric, Scale::Test);
    let stats = asymmetric.stats();
    println!("\nfib on the asymmetric runtime (checksum {:x}):", r.checksum);
    println!("  {stats}");
    println!(
        "  every steal attempt serialized the victim remotely; the victim \
         itself never executed a hardware fence."
    );
}

/// The flight-recorder run: steal on the asymmetric runtime until the
/// rings hold at least one complete causal serialization chain
/// (steal-attempt → request → signal-sent → handler-enter → drained →
/// ack-observed), then export it for `lbmf-obs explain` / Perfetto.
fn trace_out(args: &lbmf_bench::Args) {
    use lbmf_repro::trace::{causal::ChainSet, chrome, take_snapshot};

    let path = args.value("--trace-out").expect("--trace-out needs a path");
    let workers: usize = args.get("--workers", 2);
    let strategy = Arc::new(SignalFence::new());
    let sched = Scheduler::new(workers, strategy.clone());

    // Discard whatever earlier activity left in the global rings so the
    // exported trace is this run's story.
    let _ = take_snapshot();

    // Steals are scheduling luck; each attempt drains (destructively),
    // so on a miss we run more kernels and try again.
    const ATTEMPTS: usize = 10;
    const RUNS_PER_ATTEMPT: usize = 10;
    for attempt in 0..ATTEMPTS {
        for _ in 0..RUNS_PER_ATTEMPT {
            std::hint::black_box(Kernel::Fib.run_timed(&sched, Scale::Test).checksum);
            if strategy.stats().snapshot().serializations_delivered > 0 {
                break;
            }
        }
        let snap = take_snapshot();
        let set = ChainSet::from_snapshot(&snap);
        let acc = set.accounting();
        if acc.complete == 0 {
            println!(
                "attempt {}/{ATTEMPTS}: {} chain(s), none complete yet",
                attempt + 1,
                set.chains.len()
            );
            continue;
        }
        let steals = set.chains.iter().filter(|c| c.is_steal()).count();
        println!(
            "captured {} chain(s): {} complete, {} missing-interior, {} orphaned, \
             {} attempt-only probes; {} from steals",
            set.chains.len(),
            acc.complete,
            acc.missing_interior,
            acc.orphans,
            acc.attempt_only,
            steals
        );
        let json = chrome::export_with_strategy(&snap, Some(strategy.name()));
        chrome::validate(&json).expect("exported steal trace failed its own self-check");
        assert!(json.contains("\"ph\":\"s\""), "complete chains must export flow arrows");
        if let Some(dir) = std::path::Path::new(path).parent().filter(|d| !d.as_os_str().is_empty())
        {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        std::fs::write(path, &json).expect("write trace file");
        println!(
            "wrote {path} — open in https://ui.perfetto.dev or run: \
             cargo run -p lbmf-obs -- explain {path}"
        );
        return;
    }
    eprintln!("no complete serialization chain captured in {ATTEMPTS} attempts");
    std::process::exit(1);
}

/// The scrapeable long run: ACilk-5 steals while lbmf-obs serves its
/// counters. `curl http://<addr>/metrics` mid-run to watch.
fn serve(args: &lbmf_bench::Args) {
    let addr = args.value("--addr").unwrap_or("127.0.0.1:9478");
    let workers: usize = args.get("--workers", 2);
    let duration_secs: u64 = args.get("--duration-secs", 30);

    let strategy = Arc::new(SignalFence::new());
    let strategy_for_metrics = strategy.clone();
    let server = lbmf_obs::http::MetricsServer::start(addr, move || {
        lbmf_obs::metrics::render_all(&[(
            strategy_for_metrics.name().to_string(),
            strategy_for_metrics.stats().snapshot(),
        )])
    })
    .expect("bind metrics endpoint");
    println!(
        "ACilk-5 stealing on {workers} workers; scrape http://{}/metrics for {duration_secs}s \
         (0 = until killed)",
        server.local_addr()
    );

    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let strategy2 = strategy.clone();
    let driver = std::thread::Builder::new()
        .name("work-stealing-driver".into())
        .spawn(move || {
            let sched = Scheduler::new(workers, strategy2);
            let kernels = [Kernel::Fib, Kernel::Cilksort, Kernel::Nqueens];
            let mut runs = 0usize;
            while !stop2.load(Ordering::Relaxed) {
                let k = kernels[runs % kernels.len()];
                std::hint::black_box(k.run_timed(&sched, Scale::Test).checksum);
                runs += 1;
            }
            runs
        })
        .expect("spawn driver");

    if duration_secs == 0 {
        let _ = driver.join();
        return;
    }
    std::thread::sleep(std::time::Duration::from_secs(duration_secs));
    stop.store(true, Ordering::Relaxed);
    let runs = driver.join().unwrap_or(0);
    let stats = strategy.stats().snapshot();
    println!("done: {runs} kernel runs; {stats}");
    // Final self-scrape so the run's last counters are visible even
    // without an external scraper.
    let (status, body) =
        lbmf_obs::http::get(server.local_addr(), "/metrics").expect("self-scrape");
    assert!(status.contains("200"), "{status}");
    let needle = format!(
        "lbmf_fence_serializations_delivered_total{{strategy=\"lbmf-signal\"}} {}",
        stats.serializations_delivered
    );
    assert!(
        body.contains(&needle),
        "endpoint and snapshot must agree on {needle:?}"
    );
    println!("final scrape consistent with FenceStatsSnapshot ({} bytes)", body.len());
}
