//! Run the store-buffering litmus on *real threads* and on the *simulated
//! machine*, side by side — the repository's two views of the same
//! question: "can both threads miss each other's store?"
//!
//! ```text
//! cargo run --release --example litmus_runner [iters]
//! ```
//!
//! On a multi-core host the unfenced real-thread run exhibits the relaxed
//! `(0,0)` outcome; on this 1-core experiment host only the simulator can
//! show it (context switches serialize real store buffers), which is
//! precisely why the simulator exists.

use lbmf_repro::fences::prelude::*;
use lbmf_repro::sim::prelude::*;
use std::sync::Arc;

fn main() {
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);

    println!("=== simulated machine (exhaustive, all interleavings) ===\n");
    for kinds in [
        [FenceKind::None, FenceKind::None],
        [FenceKind::Mfence, FenceKind::Mfence],
        [FenceKind::Lmfence, FenceKind::Mfence],
    ] {
        let m = Machine::for_checking(litmus_sb(kinds));
        let r = Explorer::default().explore(m, |m| (m.cpus[0].regs[0], m.cpus[1].regs[0]));
        println!(
            "{:>9} | {:<9} outcomes: {:?}  (0,0) reachable: {}",
            kinds[0].label(),
            kinds[1].label(),
            r.outcomes.iter().collect::<Vec<_>>(),
            r.has_outcome(&(0, 0))
        );
    }

    println!("\n=== real threads ({iters} iterations each) ===\n");
    let unfenced = run_sb_litmus(Arc::new(NoFence::new()), iters);
    println!("no fences:\n{unfenced}");
    let symmetric = run_sb_litmus(Arc::new(Symmetric::new()), iters);
    println!("mfence pair:\n{symmetric}");
    let asymmetric = run_sb_litmus(Arc::new(SignalFence::new()), iters / 10);
    println!("l-mfence (signal) pair:\n{asymmetric}");

    assert_eq!(symmetric.count((0, 0)), 0, "mfence pair must forbid (0,0)");
    assert_eq!(asymmetric.count((0, 0)), 0, "l-mfence pair must forbid (0,0)");
    if unfenced.count((0, 0)) > 0 {
        println!(
            "the unfenced run exhibited the TSO reordering {} times — \
             multi-core host detected",
            unfenced.count((0, 0))
        );
    } else {
        println!(
            "the unfenced run never exhibited (0,0) — expected on a 1-core \
             host; the simulator output above shows it is reachable."
        );
    }
}
