//! The asymmetric multiple-readers single-writer lock of Section 5.
//!
//! Readers are the primary side: fence-free read sections. A writer
//! publishes intent, then engages each registered reader in an augmented
//! Dekker handshake — with the waiting heuristic (ARW+), busy readers
//! acknowledge the intent and the writer skips their signals.
//!
//! ```text
//! cargo run --release --example arw_lock [readers] [writes]
//! ```

use lbmf_repro::fences::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let readers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let writes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);

    // ARW+ lock: signal-based serialization + a waiting-heuristic window.
    let lock = Arc::new(AsymRwLock::with_spin_window(
        Arc::new(SignalFence::new()),
        5_000,
    ));

    // The protected data: an (a, -a) pair that must never be seen torn.
    let a = Arc::new(AtomicI64::new(0));
    let b = Arc::new(AtomicI64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for id in 0..readers {
        let lock = lock.clone();
        let a = a.clone();
        let b = b.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let h = lock.register_reader();
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                h.read(|| {
                    let x = a.load(Ordering::Relaxed);
                    let y = b.load(Ordering::Relaxed);
                    assert_eq!(x, -y, "reader {id} observed a torn write");
                });
                reads += 1;
            }
            reads
        }));
    }

    // Writer: occasional updates that transiently break the invariant.
    for i in 1..=writes as i64 {
        lock.with_write(|| {
            a.store(i, Ordering::Relaxed);
            std::thread::yield_now(); // widen the broken window
            b.store(-i, Ordering::Relaxed);
        });
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);

    let total_reads: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let snap = lock.strategy().stats().snapshot();
    println!("readers            : {readers}");
    println!("writes             : {writes}");
    println!("reads completed    : {total_reads}");
    println!("read conflicts     : {}", lock.read_conflicts.load(Ordering::Relaxed));
    println!("signals sent       : {}", snap.serializations_delivered);
    println!("signals skipped    : {} (waiting heuristic)", lock.signals_skipped.load(Ordering::Relaxed));
    println!("reader hw fences   : {} (fast path is fence-free)", snap.primary_full_fences);
    assert_eq!(a.load(Ordering::Relaxed), -b.load(Ordering::Relaxed));
}
