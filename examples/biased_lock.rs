//! A biased lock in the style of Java monitors (the paper's Section 1
//! motivation): the bias-holding thread acquires with a fence-free fast
//! path; a revoker thread forces it to serialize only when revocation is
//! actually needed.
//!
//! ```text
//! cargo run --release --example biased_lock
//! ```

use lbmf_repro::fences::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    const OWNER_ITERS: u64 = 1_000_000;
    const REVOCATIONS: u64 = 100;

    for (name, run) in [
        ("mfence fast path (symmetric)", run_with(Arc::new(Symmetric::new()), OWNER_ITERS, REVOCATIONS)),
        ("lbmf fast path (signal prototype)", run_with(Arc::new(SignalFence::new()), OWNER_ITERS, REVOCATIONS)),
    ] {
        let (elapsed, owner_fences, revocations) = run;
        println!(
            "{name:<36} owner: {OWNER_ITERS} acquires in {elapsed:.2?} \
             ({:.1} ns/acquire), {owner_fences} hw fences, {revocations} revocations",
            elapsed.as_nanos() as f64 / OWNER_ITERS as f64
        );
    }
    println!(
        "\nThe owner's fast path dominates; removing its fence is the entire \
         point of biased locking — the (rare) revoker pays instead."
    );
}

fn run_with<S: FenceStrategy>(
    strategy: Arc<S>,
    owner_iters: u64,
    revocations: u64,
) -> (std::time::Duration, u64, u64) {
    let lock = Arc::new(BiasedLock::new(strategy));
    let shared = Arc::new(AtomicU64::new(0));

    let l = lock.clone();
    let s = shared.clone();
    let owner = std::thread::spawn(move || {
        let owner = l.register_owner();
        let t0 = Instant::now();
        for _ in 0..owner_iters {
            owner.with_lock(|| {
                s.fetch_add(1, Ordering::Relaxed);
            });
        }
        t0.elapsed()
    });

    let l = lock.clone();
    let s = shared.clone();
    let revoker = std::thread::spawn(move || {
        for _ in 0..revocations {
            let _g = l.revoke_lock();
            s.fetch_add(1, Ordering::Relaxed);
            drop(_g);
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    });

    let elapsed = owner.join().unwrap();
    revoker.join().unwrap();
    assert_eq!(shared.load(Ordering::Relaxed), owner_iters + revocations);
    let fences = lock.strategy().stats().snapshot().primary_full_fences;
    (elapsed, fences, lock.revocations.load(Ordering::Relaxed))
}
