//! The paper's network packet-processing scenario (Section 1): each
//! processing thread owns a routing table for its group of source
//! addresses and updates it fence-free; occasionally another thread must
//! install a route into a table it does not own — a remote update that
//! serializes the owner on demand.
//!
//! ```text
//! cargo run --release --example packet_router [threads] [packets]
//! ```

use lbmf_repro::fences::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-thread routing state: source prefix -> (next hop, hit counter).
type RouteTable = HashMap<u32, (u32, u64)>;

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let packets: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);

    // One owned table per processing thread.
    let tables: Vec<Arc<OwnedCell<RouteTable, SignalFence>>> = (0..threads)
        .map(|_| Arc::new(OwnedCell::new(Arc::new(SignalFence::new()), RouteTable::new())))
        .collect();
    let cross_updates = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let t0 = Instant::now();
    let mut handles = Vec::new();
    for id in 0..threads {
        let tables = tables.clone();
        let cross = cross_updates.clone();
        let done = done.clone();
        handles.push(std::thread::spawn(move || {
            let owner = tables[id].register_owner();
            let mut rng = 0x9E3779B97F4A7C15u64.wrapping_mul(id as u64 + 1) | 1;
            let mut next = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            for _ in 0..packets {
                let src = (next() % 4096) as u32;
                let shard = (src as usize) % tables.len();
                if shard == id {
                    // Fast path: our own table, fence-free.
                    owner.with(|t| {
                        let e = t.entry(src).or_insert((src ^ 0xFF, 0));
                        e.1 += 1;
                    });
                } else if next() % 512 == 0 {
                    // Rare cross-thread route installation: remote update.
                    tables[shard].remote_update(|t| {
                        t.entry(src).or_insert((src ^ 0xAB, 0)).0 = src ^ 0xAB;
                    });
                    cross.fetch_add(1, Ordering::Relaxed);
                }
            }
            // Keep registrations alive until everyone stops signaling.
            while !done.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }));
    }
    // Let workers finish their packet loops, then release them together.
    std::thread::sleep(std::time::Duration::from_millis(50));
    loop {
        let total_cross = cross_updates.load(Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_millis(100));
        if cross_updates.load(Ordering::Relaxed) == total_cross {
            break;
        }
    }
    done.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = t0.elapsed();

    let total_hits: u64 = tables
        .iter()
        .map(|t| t.remote_read(|m| m.values().map(|(_, c)| c).sum::<u64>()))
        .sum();
    let total_fences: u64 = tables
        .iter()
        .map(|t| t.lock().strategy().stats().snapshot().primary_full_fences)
        .sum();
    println!("threads          : {threads}");
    println!("packets/thread   : {packets}");
    println!("owned-table hits : {total_hits}");
    println!("cross updates    : {}", cross_updates.load(Ordering::Relaxed));
    println!("owner hw fences  : {total_fences} (fast path is fence-free)");
    println!("elapsed          : {elapsed:.2?}");
}
