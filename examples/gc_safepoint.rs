//! JVM-style safepoint coordination (the paper's Section 1 motivation):
//! mutator threads run pinned regions on a fence-free fast path; a
//! collector thread occasionally stops the world, remotely serializing
//! the mutators only when it actually needs the pause.
//!
//! ```text
//! cargo run --release --example gc_safepoint [mutators] [pauses]
//! ```

use lbmf_repro::fences::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let mutators: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let pauses: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(25);

    // The waiting heuristic lets busy mutators acknowledge the pause
    // instead of being signaled.
    let sp = Arc::new(Safepoint::with_spin_window(Arc::new(SignalFence::new()), 5_000));
    let allocated = Arc::new(AtomicU64::new(0));
    let collected = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let mut threads = Vec::new();
    for _ in 0..mutators {
        let sp = sp.clone();
        let allocated = allocated.clone();
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || {
            let m = sp.register_mutator();
            let mut local = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // "Mutate" inside a pinned region; the collector must wait
                // for us.
                m.pinned(|| {
                    local += 1;
                });
                if local.is_multiple_of(64) {
                    m.safepoint_check(); // polite poll between regions
                }
            }
            allocated.fetch_add(local, Ordering::Relaxed);
        }));
    }

    spin_until(|| sp.mutators() == mutators);
    for gen in 0..pauses {
        sp.stop_the_world(|| {
            // Exclusive: no mutator is pinned right now.
            collected.fetch_add(1, Ordering::Relaxed);
            if gen == 0 {
                println!("first world-stop reached with {} mutators parked", mutators);
            }
        });
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().unwrap();
    }

    let snap = sp.lock().strategy().stats().snapshot();
    println!("mutators            : {mutators}");
    println!("world stops         : {}", sp.pauses());
    println!("pinned regions      : {}", allocated.load(Ordering::Relaxed));
    println!("collections         : {}", collected.load(Ordering::Relaxed));
    println!("mutator hw fences   : {}", snap.primary_full_fences);
    println!("signals sent        : {}", snap.serializations_delivered);
    println!(
        "signals skipped     : {} (mutators acknowledged within the window)",
        sp.lock().signals_skipped.load(Ordering::Relaxed)
    );
    assert_eq!(sp.pauses(), pauses as u64);
}
