//! End-to-end smoke of every experiment in the index (scaled down): each
//! table/figure's pipeline runs and its headline *shape* holds.

use lbmf_repro::cilk::bench::{Kernel, Scale};
use lbmf_repro::cilk::Scheduler;
use lbmf_repro::des::rw_sim::{simulate as rw_simulate, RwSimConfig, RwVariant};
use lbmf_repro::des::steal_sim::{simulate as steal_simulate, StealSimConfig};
use lbmf_repro::des::{SerializeKind, Task};
use lbmf_repro::fences::prelude::*;
use lbmf_repro::sim::prelude::*;
use std::sync::Arc;

/// E1 — serial Dekker slowdown band on the simulated machine.
#[test]
fn e1_dekker_slowdown_band() {
    let cycles = |kind: FenceKind| {
        let opt = DekkerOptions {
            iters: 2_000,
            cs_mem_ops: true,
            cs_work: 4,
        };
        let cfg = MachineConfig {
            record_trace: false,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, CostModel::default(), dekker_serial(kind, opt));
        assert!(m.run_pseudo_parallel(8, 10_000_000));
        m.cpus[0].clock as f64
    };
    let slowdown = cycles(FenceKind::Mfence) / cycles(FenceKind::None);
    assert!(
        (3.0..=8.0).contains(&slowdown),
        "mfence slowdown {slowdown:.2} outside the paper's band"
    );
    let lmfence_overhead = cycles(FenceKind::Lmfence) / cycles(FenceKind::None);
    assert!(
        lmfence_overhead < 2.0,
        "l-mfence should be near-free when running alone, got {lmfence_overhead:.2}"
    );
}

/// E2 — overhead ordering: signal >> membarrier > LE/ST model > mfence.
#[test]
fn e2_overhead_ordering() {
    let costs = lbmf_repro::des::DesCosts::default();
    let (sig, _) = costs.serialize(SerializeKind::Signal);
    let (mb, _) = costs.serialize(SerializeKind::Membarrier);
    let (lest, _) = costs.serialize(SerializeKind::LeSt);
    assert!(sig > mb && mb > lest && lest > costs.mfence);
    // And the real measured signal round trip is on the right order
    // (microseconds, i.e. thousands of cycles).
    let (tx, rx) = std::sync::mpsc::channel();
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let h = std::thread::spawn(move || {
        let reg = register_current_thread();
        tx.send(reg.remote()).unwrap();
        done_rx.recv().unwrap();
    });
    let remote = rx.recv().unwrap();
    let t0 = std::time::Instant::now();
    for _ in 0..50 {
        assert!(remote.serialize());
    }
    let per = t0.elapsed() / 50;
    done_tx.send(()).unwrap();
    h.join().unwrap();
    assert!(
        per.as_nanos() > 300,
        "a signal round trip under 300ns is implausible: {per:?}"
    );
}

/// E3 — all twelve kernels run and self-agree across runtimes.
#[test]
fn e3_all_kernels_runnable() {
    let sym = Scheduler::new(2, Arc::new(Symmetric::new()));
    let asym = Scheduler::new(2, Arc::new(SignalFence::new()));
    for k in Kernel::all() {
        let a = k.run_timed(&sym, Scale::Test);
        let b = k.run_timed(&asym, Scale::Test);
        assert_eq!(a.checksum, b.checksum, "{}", k.name());
    }
}

/// E4 — the serial DES ratio is below 1 for the fence-dominated kernels.
#[test]
fn e4_serial_ratio_shape() {
    for name in ["fib", "fibx"] {
        let root = Task::benchmark_root(name).unwrap();
        let sym = steal_simulate(root, &StealSimConfig::new(1, SerializeKind::Symmetric));
        let asym = steal_simulate(root, &StealSimConfig::new(1, SerializeKind::Signal));
        let ratio = asym.makespan as f64 / sym.makespan as f64;
        assert!(ratio < 0.9, "{name}: serial ratio {ratio:.3} not clearly below 1");
    }
}

/// E5 — 16-worker shape: fib benefits, the LE/ST column never loses badly,
/// and the signal prototype hurts at least one low-conversion benchmark.
#[test]
fn e5_parallel_shape() {
    let ratios = |name: &str| {
        let root = Task::benchmark_root(name).unwrap();
        let sym = steal_simulate(root, &StealSimConfig::new(16, SerializeKind::Symmetric));
        let sig = steal_simulate(root, &StealSimConfig::new(16, SerializeKind::Signal));
        let lest = steal_simulate(root, &StealSimConfig::new(16, SerializeKind::LeSt));
        (
            sig.makespan as f64 / sym.makespan as f64,
            lest.makespan as f64 / sym.makespan as f64,
            sig.conversion(),
        )
    };
    let (fib_sig, fib_lest, fib_conv) = ratios("fib");
    assert!(fib_sig < 0.8, "fib must benefit, got {fib_sig:.3}");
    assert!(fib_lest <= fib_sig + 0.05);
    assert!(fib_conv > 0.85, "fib conversion should be high: {fib_conv:.2}");

    let (lu_sig, lu_lest, lu_conv) = ratios("lu");
    assert!(lu_sig > 1.0, "lu should pay for poor conversion: {lu_sig:.3}");
    assert!(lu_lest < lu_sig, "LE/ST must reduce lu's penalty");
    assert!(lu_conv < 0.9, "lu conversion should be depressed: {lu_conv:.2}");
}

/// E6 — the ARW matrix has the paper's corners: wins at (1 thread, any
/// ratio), loses at (16 threads, 300:1).
#[test]
fn e6_arw_corners() {
    let tp = |threads: usize, ratio: u64, variant: RwVariant| {
        let mut cfg = RwSimConfig::new(threads, ratio, variant);
        cfg.reads_per_thread = 5_000;
        rw_simulate(&cfg).read_throughput()
    };
    let arw = RwVariant::Arw { serialize: SerializeKind::Signal };
    assert!(tp(1, 300, arw) > tp(1, 300, RwVariant::Srw));
    assert!(tp(16, 300, arw) < tp(16, 300, RwVariant::Srw));
    assert!(tp(2, 100_000, arw) > tp(2, 100_000, RwVariant::Srw));
}

/// E7 — ARW+ at the same corners: at or above SRW everywhere we probe.
#[test]
fn e7_arwplus_dominates() {
    let tp = |threads: usize, ratio: u64, variant: RwVariant| {
        let mut cfg = RwSimConfig::new(threads, ratio, variant);
        cfg.reads_per_thread = 5_000;
        rw_simulate(&cfg).read_throughput()
    };
    let plus = RwVariant::ArwPlus { serialize: SerializeKind::Signal, window: 20_000 };
    for threads in [1usize, 2, 8, 16] {
        for ratio in [300u64, 10_000] {
            let p = tp(threads, ratio, plus);
            let s = tp(threads, ratio, RwVariant::Srw);
            assert!(
                p >= 0.9 * s,
                "ARW+ fell below SRW at ({threads} threads, {ratio}:1): {p:.1} vs {s:.1}"
            );
        }
    }
}

/// T1/T2 — the model-checking verdicts, end to end through the facade.
#[test]
fn theorems_hold_via_facade() {
    // Theorem 4's observable: l-mfence pairs forbid the relaxed SB outcome.
    let m = Machine::for_checking(litmus_sb([FenceKind::Lmfence, FenceKind::Lmfence]));
    let r = Explorer::default().explore(m, |m| (m.cpus[0].regs[0], m.cpus[1].regs[0]));
    assert!(!r.has_outcome(&(0, 0)));

    // Theorem 7: asymmetric Dekker mutual exclusion.
    let opt = DekkerOptions { iters: 1, cs_mem_ops: false, cs_work: 0 };
    let m = Machine::for_checking(dekker_asymmetric(opt));
    let r = Explorer::default().explore(m, |m| (m.cpus[0].regs[1], m.cpus[1].regs[1]));
    assert_eq!(r.mutex_violations, 0);
}
