//! Integration tests for the trace subsystem against the real runtime:
//! the `SignalFence` Dekker handoff emits the expected event sequence,
//! and ring wrap-around is lossy-by-design with the loss reported in
//! every export.
//!
//! All tests share one process (and thus one global ring registry), so
//! each uses named threads and inspects only its own threads' streams.

use lbmf::dekker::AsymmetricDekker;
use lbmf::strategy::SignalFence;
use lbmf_repro::trace::{chrome, prometheus, take_snapshot, EventKind, ThreadRing, ThreadTrace, TraceSnapshot};
use std::sync::mpsc;
use std::sync::Arc;

fn thread_trace(snap: &TraceSnapshot, name: &str) -> ThreadTrace {
    snap.threads
        .iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| panic!("no ring registered for thread {name:?}"))
        .clone()
}

#[test]
fn signal_dekker_handoff_emits_expected_sequence() {
    let dekker = Arc::new(AsymmetricDekker::new(Arc::new(SignalFence::new())));
    let (ready_tx, ready_rx) = mpsc::channel::<()>();
    let (done_tx, done_rx) = mpsc::channel::<()>();

    let primary = {
        let dekker = dekker.clone();
        std::thread::Builder::new()
            .name("ev-primary".into())
            .spawn(move || {
                let primary = dekker.register_primary();
                primary.with_lock(|| {});
                ready_tx.send(()).unwrap();
                // Stay registered (and alive) while the secondary engages:
                // serializing an exited thread would be skipped.
                done_rx.recv().unwrap();
            })
            .unwrap()
    };

    ready_rx.recv().unwrap();
    std::thread::Builder::new()
        .name("ev-secondary".into())
        .spawn({
            let dekker = dekker.clone();
            move || {
                let _g = dekker.secondary_lock();
            }
        })
        .unwrap()
        .join()
        .unwrap();
    done_tx.send(()).unwrap();
    primary.join().unwrap();

    let snap = take_snapshot();

    // Primary side: only compiler fences at the l-mfence position.
    let p = thread_trace(&snap, "ev-primary");
    assert!(
        p.events.iter().any(|e| e.kind == EventKind::PrimaryFence),
        "primary fast path must emit a primary-compiler-fence event"
    );
    assert!(
        p.events.iter().all(|e| e.kind != EventKind::PrimaryFullFence),
        "asymmetric primary must never emit a full fence"
    );

    // Secondary side: own fence, then the serialize request, then the
    // completed round trip — in that order.
    let s = thread_trace(&snap, "ev-secondary");
    let pos = |kind| s.events.iter().position(|e| e.kind == kind);
    let fence = pos(EventKind::SecondaryFence).expect("secondary-fence event");
    let req = pos(EventKind::SerializeRequest).expect("serialize-request event");
    let del = pos(EventKind::SerializeDeliver).expect("serialize-deliver event");
    assert!(
        fence < req && req < del,
        "expected secondary-fence < serialize-request < serialize-deliver, got {fence}/{req}/{del}"
    );
    // The request targeted the registered primary (a real slot key), and
    // the round trip took measurable time.
    assert_ne!(s.events[req].guarded_addr, 0);
    assert_eq!(s.events[req].guarded_addr, s.events[del].guarded_addr);
    assert!(s.events[del].dur > 0, "signal round trip has a duration");
}

#[test]
fn ring_wraps_lossy_by_design_and_exports_report_it() {
    // 2^3 = 8 slots; 11 appends must drop the oldest 3.
    let ring = ThreadRing::new(77, "wrap-probe", 3);
    for i in 0..11u64 {
        ring.append(i, EventKind::StealAttempt, 0x77, 0);
    }
    let t = ring.drain();
    assert_eq!(t.events.len(), 8, "newest capacity-many events survive");
    assert_eq!(t.dropped, 3, "drop count reported");
    assert_eq!(t.events.first().unwrap().nanos, 3, "oldest three gone");
    assert_eq!(t.events.last().unwrap().nanos, 10);

    let snap = TraceSnapshot { threads: vec![t] };
    assert_eq!(snap.total_dropped(), 3);
    let json = chrome::export(&snap);
    chrome::validate(&json).expect("chrome export self-check");
    assert!(
        json.contains("\"dropped\":3"),
        "chrome export carries the dropped counter"
    );
    let prom = prometheus::export(&snap);
    assert!(prom.contains("lbmf_trace_dropped_total{thread=\"wrap-probe\"} 3"));
}

#[test]
fn chrome_validator_accepts_good_and_rejects_bad() {
    let good = r#"{"traceEvents":[{"name":"x","ph":"i","ts":1.0,"pid":1,"tid":0}]}"#;
    assert_eq!(chrome::validate(good), Ok(1));
    assert!(chrome::validate(r#"{"traceEvents":[{"name":"x"}]}"#).is_err());
    assert!(chrome::validate(r#"{"traceEvents":"#).is_err());
}
