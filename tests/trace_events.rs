//! Integration tests for the trace subsystem against the real runtime:
//! the `SignalFence` Dekker handoff emits the expected event sequence,
//! and ring wrap-around is lossy-by-design with the loss reported in
//! every export.
//!
//! All tests share one process (and thus one global ring registry), so
//! each uses named threads and inspects only its own threads' streams —
//! and the tests that *drain* the global registry serialize on
//! [`DRAIN_LOCK`], because `take_snapshot` is destructive.

use lbmf::dekker::AsymmetricDekker;
use lbmf::strategy::SignalFence;
use lbmf_repro::trace::causal::{ChainSet, Completeness, Phase};
use lbmf_repro::trace::{chrome, prometheus, take_snapshot, EventKind, ThreadRing, ThreadTrace, TraceSnapshot};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Serializes the tests that call the (destructive) global
/// `take_snapshot`, so one test's drain can't swallow another's events.
static DRAIN_LOCK: Mutex<()> = Mutex::new(());

fn thread_trace(snap: &TraceSnapshot, name: &str) -> ThreadTrace {
    snap.threads
        .iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| panic!("no ring registered for thread {name:?}"))
        .clone()
}

#[test]
fn signal_dekker_handoff_emits_expected_sequence() {
    let _drain = DRAIN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dekker = Arc::new(AsymmetricDekker::new(Arc::new(SignalFence::new())));
    let (ready_tx, ready_rx) = mpsc::channel::<()>();
    let (done_tx, done_rx) = mpsc::channel::<()>();

    let primary = {
        let dekker = dekker.clone();
        std::thread::Builder::new()
            .name("ev-primary".into())
            .spawn(move || {
                let primary = dekker.register_primary();
                primary.with_lock(|| {});
                ready_tx.send(()).unwrap();
                // Stay registered (and alive) while the secondary engages:
                // serializing an exited thread would be skipped.
                done_rx.recv().unwrap();
            })
            .unwrap()
    };

    ready_rx.recv().unwrap();
    std::thread::Builder::new()
        .name("ev-secondary".into())
        .spawn({
            let dekker = dekker.clone();
            move || {
                let _g = dekker.secondary_lock();
            }
        })
        .unwrap()
        .join()
        .unwrap();
    done_tx.send(()).unwrap();
    primary.join().unwrap();

    let snap = take_snapshot();

    // Primary side: only compiler fences at the l-mfence position.
    let p = thread_trace(&snap, "ev-primary");
    assert!(
        p.events.iter().any(|e| e.kind == EventKind::PrimaryFence),
        "primary fast path must emit a primary-compiler-fence event"
    );
    assert!(
        p.events.iter().all(|e| e.kind != EventKind::PrimaryFullFence),
        "asymmetric primary must never emit a full fence"
    );

    // Secondary side: own fence, then the serialize request, then the
    // completed round trip — in that order.
    let s = thread_trace(&snap, "ev-secondary");
    let pos = |kind| s.events.iter().position(|e| e.kind == kind);
    let fence = pos(EventKind::SecondaryFence).expect("secondary-fence event");
    let req = pos(EventKind::SerializeRequest).expect("serialize-request event");
    let del = pos(EventKind::SerializeDeliver).expect("serialize-deliver event");
    assert!(
        fence < req && req < del,
        "expected secondary-fence < serialize-request < serialize-deliver, got {fence}/{req}/{del}"
    );
    // The request targeted the registered primary (a real slot key), and
    // the round trip took measurable time.
    assert_ne!(s.events[req].guarded_addr, 0);
    assert_eq!(s.events[req].guarded_addr, s.events[del].guarded_addr);
    assert!(s.events[del].dur > 0, "signal round trip has a duration");
}

#[test]
fn signal_dekker_serialize_forms_complete_causal_chain() {
    let _drain = DRAIN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dekker = Arc::new(AsymmetricDekker::new(Arc::new(SignalFence::new())));
    let (ready_tx, ready_rx) = mpsc::channel::<()>();
    let (done_tx, done_rx) = mpsc::channel::<()>();

    let primary = {
        let dekker = dekker.clone();
        std::thread::Builder::new()
            .name("chain-primary".into())
            .spawn(move || {
                let primary = dekker.register_primary();
                primary.with_lock(|| {});
                ready_tx.send(()).unwrap();
                done_rx.recv().unwrap();
            })
            .unwrap()
    };
    ready_rx.recv().unwrap();
    std::thread::Builder::new()
        .name("chain-secondary".into())
        .spawn({
            let dekker = dekker.clone();
            move || {
                for _ in 0..3 {
                    let _g = dekker.secondary_lock();
                }
            }
        })
        .unwrap()
        .join()
        .unwrap();
    done_tx.send(()).unwrap();
    primary.join().unwrap();

    let snap = take_snapshot();
    let tid_name = |tid: u32| {
        snap.threads
            .iter()
            .find(|t| t.tid == tid)
            .map(|t| t.name.clone())
            .unwrap_or_default()
    };

    // Each of the three secondary acquisitions minted a corr id; every
    // chain whose requester is our secondary must be complete — nothing
    // here wraps the rings, so no phase can have been lost.
    let set = ChainSet::from_snapshot(&snap);
    let ours: Vec<_> = set
        .chains
        .iter()
        .filter(|c| c.requester().is_some_and(|t| tid_name(t) == "chain-secondary"))
        .collect();
    assert!(ours.len() >= 3, "three acquisitions → three chains, got {}", ours.len());
    for chain in &ours {
        assert_eq!(chain.completeness(), Completeness::Complete, "corr {}", chain.corr);
        // The handler phases landed on the primary's dedicated
        // signal-handler ring, not on any requester ring.
        assert_eq!(
            tid_name(chain.target().unwrap()),
            "chain-primary/serialize-handler"
        );
        // Phases partition the measured round trip: the four adjacent
        // intervals telescope back to ack − request (saturating clamps
        // can only inflate the sum, and only across rings; allow 10µs).
        let rt = chain.round_trip_nanos().unwrap();
        let sum: u64 = Phase::ALL.iter().filter_map(|&p| chain.phase_nanos(p)).sum();
        assert!(
            sum >= rt && sum - rt < 10_000,
            "corr {}: phase sum {sum} vs round trip {rt}",
            chain.corr
        );
    }
    // Distinct acquisitions got distinct ids.
    let mut corrs: Vec<u64> = ours.iter().map(|c| c.corr).collect();
    corrs.dedup();
    assert_eq!(corrs.len(), ours.len());

    // And the chains survive the export → flow arrows appear and the
    // validator's pairing check (every `s` has its `f`) passes.
    let json = chrome::export_with_strategy(&snap, Some("lbmf-signal"));
    chrome::validate(&json).expect("flow-event pairing must validate");
    assert!(json.contains("\"name\":\"serialize-chain\""));
    assert!(json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""));
}

#[test]
fn ring_wraps_lossy_by_design_and_exports_report_it() {
    // 2^3 = 8 slots; 11 appends must drop the oldest 3.
    let ring = ThreadRing::new(77, "wrap-probe", 3);
    for i in 0..11u64 {
        ring.append(i, EventKind::StealAttempt, 0x77, 0);
    }
    let t = ring.drain();
    assert_eq!(t.events.len(), 8, "newest capacity-many events survive");
    assert_eq!(t.dropped, 3, "drop count reported");
    assert_eq!(t.events.first().unwrap().nanos, 3, "oldest three gone");
    assert_eq!(t.events.last().unwrap().nanos, 10);

    let snap = TraceSnapshot { threads: vec![t] };
    assert_eq!(snap.total_dropped(), 3);
    let json = chrome::export(&snap);
    chrome::validate(&json).expect("chrome export self-check");
    assert!(
        json.contains("\"dropped\":3"),
        "chrome export carries the dropped counter"
    );
    let prom = prometheus::export(&snap);
    assert!(prom.contains("lbmf_trace_dropped_total{thread=\"wrap-probe\"} 3"));
}

#[test]
fn chrome_validator_accepts_good_and_rejects_bad() {
    let good = r#"{"traceEvents":[{"name":"x","ph":"i","ts":1.0,"pid":1,"tid":0}]}"#;
    assert_eq!(chrome::validate(good), Ok(1));
    assert!(chrome::validate(r#"{"traceEvents":[{"name":"x"}]}"#).is_err());
    assert!(chrome::validate(r#"{"traceEvents":"#).is_err());
}
