//! Cross-crate integration: the simulator, the real-thread library, the
//! work-stealing runtime, and the discrete-event simulations all telling
//! the same story about location-based memory fences.

use lbmf_repro::cilk::bench::{Kernel, Scale};
use lbmf_repro::cilk::Scheduler;
use lbmf_repro::des;
use lbmf_repro::fences::prelude::*;
use lbmf_repro::sim::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The facade re-exports resolve and interoperate.
#[test]
fn facade_reexports_work() {
    let _machine = Machine::for_checking(litmus_mp());
    let _strategy = Symmetric::new();
    let _task = des::Task::Fib { n: 3 };
    assert_eq!(Kernel::all().len(), 12);
}

/// The same protocol idea validated at three levels:
/// 1. the simulator proves the asymmetric Dekker protocol correct over all
///    interleavings;
/// 2. the real-thread implementation survives a stress test;
/// 3. the DES cost model agrees that the asymmetric primary path is
///    cheaper when uncontended.
#[test]
fn dekker_correct_at_all_three_levels() {
    // 1. model checking
    let opt = DekkerOptions {
        iters: 1,
        cs_mem_ops: true,
        cs_work: 0,
    };
    let m = Machine::for_checking(dekker_asymmetric(opt));
    let r = Explorer::default().explore(m, |m| (m.cpus[0].regs[1], m.cpus[1].regs[1]));
    assert_eq!(r.mutex_violations, 0);
    assert!(r.has_outcome(&(1, 1)));

    // 2. real threads
    let dekker = Arc::new(AsymmetricDekker::new(Arc::new(SignalFence::new())));
    let inside = Arc::new(AtomicU64::new(0));
    let d = dekker.clone();
    let i2 = inside.clone();
    let primary = std::thread::spawn(move || {
        let p = d.register_primary();
        for _ in 0..2_000 {
            let _g = p.lock();
            assert_eq!(i2.fetch_add(1, Ordering::SeqCst), 0);
            i2.fetch_sub(1, Ordering::SeqCst);
        }
    });
    for _ in 0..50 {
        let _g = dekker.secondary_lock();
        assert_eq!(inside.fetch_add(1, Ordering::SeqCst), 0);
        inside.fetch_sub(1, Ordering::SeqCst);
    }
    primary.join().unwrap();

    // 3. cost model
    let costs = des::DesCosts::default();
    assert!(costs.victim_fence(des::SerializeKind::Signal) < costs.victim_fence(des::SerializeKind::Symmetric));
}

/// Work-stealing checksums agree between runtimes, worker counts, and the
/// structural DAGs the DES uses (spawn counts match the real runtime).
#[test]
fn runtime_and_des_structures_agree_on_fib() {
    // Real runtime: count spawns for fib(15).
    let pool = Scheduler::new(1, Arc::new(Symmetric::new()));
    pool.reset_stats();
    let real = pool.run(|ctx| lbmf_repro::cilk::bench::fib::fib(ctx, 15));
    assert_eq!(real, 610);
    let real_spawns = pool.stats().pushes;

    // DES structural DAG: fork count for the same input.
    let measure = des::Task::Fib { n: 15 }.measure();
    assert_eq!(
        measure.forks, real_spawns,
        "the DES DAG must mirror the real spawn structure"
    );
}

/// The serial-execution claim (Figure 5a direction) holds end to end on
/// the simulated machine: asymmetric runtime cheaper at 1 worker.
#[test]
fn des_serial_ratio_below_one_for_fib() {
    let root = des::Task::Fib { n: 18 };
    let sym = des::steal_sim::simulate(root, &des::StealSimConfig::new(1, des::SerializeKind::Symmetric));
    let asym = des::steal_sim::simulate(root, &des::StealSimConfig::new(1, des::SerializeKind::Signal));
    assert!(asym.makespan < sym.makespan);
    assert_eq!(asym.serializations, 0, "nobody serializes a lone worker");
}

/// A full mini-experiment: one kernel, both runtimes, checksum equality
/// plus the fence-accounting invariant from the paper's analysis
/// (fences avoided == pops on the asymmetric runtime).
#[test]
fn fence_accounting_invariant() {
    let pool = Scheduler::new(2, Arc::new(SignalFence::new()));
    pool.reset_stats();
    let _ = Kernel::Nqueens.run_timed(&pool, Scale::Test);
    let stats = pool.stats();
    // Every pop *attempt* on the asymmetric runtime avoided one
    // program-based fence (the l-mfence position is in pop). Attempts =
    // successful pops + pops that found their job stolen; the latter are a
    // subset of the conflict-path entries.
    assert!(stats.fences.primary_compiler_fences >= stats.pops);
    assert!(stats.fences.primary_compiler_fences <= stats.pops + stats.pop_conflicts);
    assert_eq!(stats.fences.primary_full_fences, 0);
}

/// Cross-validation: outcomes reachable in the simulator litmus are also
/// the only outcomes the real hardware produces for the same (fenced)
/// protocol — we can't force TSO reordering deterministically on one core,
/// but we can assert the *forbidden* outcome never appears under the
/// asymmetric pairing in either world.
#[test]
fn sb_litmus_real_threads_never_show_forbidden_outcome() {
    // Simulator says: (0,0) forbidden for [Lmfence, Mfence].
    let m = Machine::for_checking(litmus_sb([FenceKind::Lmfence, FenceKind::Mfence]));
    let sim = Explorer::default().explore(m, |m| (m.cpus[0].regs[0], m.cpus[1].regs[0]));
    assert!(!sim.has_outcome(&(0, 0)));

    // Real threads: run the store-buffering shape through the asymmetric
    // Dekker entry repeatedly; mutual exclusion (checked inside) is the
    // real-world image of "(0,0) unreachable".
    let dekker = Arc::new(AsymmetricDekker::new(Arc::new(SignalFence::new())));
    let busy = Arc::new(AtomicU64::new(0));
    let d = dekker.clone();
    let b2 = busy.clone();
    let primary = std::thread::spawn(move || {
        let p = d.register_primary();
        for _ in 0..1_000 {
            p.with_lock(|| {
                assert_eq!(b2.fetch_add(1, Ordering::SeqCst), 0);
                b2.fetch_sub(1, Ordering::SeqCst);
            });
        }
    });
    for _ in 0..100 {
        let _g = dekker.secondary_lock();
        assert_eq!(busy.fetch_add(1, Ordering::SeqCst), 0);
        busy.fetch_sub(1, Ordering::SeqCst);
    }
    primary.join().unwrap();
}

/// The RW-lock DES and the real ARW lock agree on the accounting shape:
/// plain ARW writers serialize every registered reader.
#[test]
fn arw_accounting_matches_des_model() {
    // Real lock: 2 registered readers -> 2 serializations per write.
    let lock = Arc::new(AsymRwLock::new(Arc::new(SignalFence::new())));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let l = lock.clone();
        let s = stop.clone();
        handles.push(std::thread::spawn(move || {
            let h = l.register_reader();
            while !s.load(Ordering::Relaxed) {
                h.read(|| {});
            }
        }));
    }
    spin_until(|| lock.active_readers() == 2);
    lock.with_write(|| {});
    let real = lock.strategy().stats().snapshot().serializations_requested;
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    assert!(real >= 2);

    // DES: 3 threads, writer serializes the other 2.
    let mut cfg = des::RwSimConfig::new(
        3,
        100,
        des::RwVariant::Arw { serialize: des::SerializeKind::Signal },
    );
    cfg.reads_per_thread = 200;
    let sim = des::rw_sim::simulate(&cfg);
    assert_eq!(sim.serializations % 2, 0, "2 per write");
    assert!(sim.serializations >= 2 * sim.writes.min(1));
}
