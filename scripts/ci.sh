#!/usr/bin/env bash
# CI entry point: tier-1 gate plus a capped lbmf-check smoke pass.
#
# Tier-1 (must stay green): release build + full workspace test suite.
# Smoke: the check harness proves the asymmetric Dekker lock safe under
# bounded DFS (preemption bound 2) and demonstrates it still *finds* the
# store-buffering violation when serialization is removed. The example
# self-enforces a 5-second budget and exits nonzero on any failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: workspace tests =="
cargo test --workspace -q

echo "== lbmf-check smoke pass (DFS, preemption bound 2, <5s) =="
cargo run -p lbmf-check --example smoke --release

echo "== trace smoke: traced Dekker run + exporter self-check =="
# The example validates its own Chrome JSON (validate_with_serialize_pair)
# and exits nonzero if the trace is malformed or lacks a serialize
# request/deliver pair; the grep double-checks the file landed on disk
# with at least one completed round trip.
cargo run --release --example trace_dekker target/ci_trace_dekker.trace.json
grep -q '"name":"serialize-deliver"' target/ci_trace_dekker.trace.json

echo "== explain smoke: causal chains from live steal + Dekker runs =="
# work_stealing --trace-out loops Figure-4 kernels until the rings hold
# at least one *complete* causal serialization chain, then writes the
# validated Chrome trace. `explain` re-validates (structure + flow-event
# pairing, so any validator error is fatal), reconstructs the chains,
# prints per-phase attribution, and --require-complete 1 exits nonzero
# unless a full request→ack chain was reconstructed.
# A complete steal chain needs thief and victim actually running in
# parallel; on a 1-core host the probe loop never overlaps a drain, so
# the steal half is gated on core count (the Dekker trace still has
# dozens of complete signal chains and keeps `explain` honest there).
explain_traces=(target/ci_trace_dekker.trace.json)
if [ "$(nproc)" -ge 2 ]; then
    cargo run --release --example work_stealing -- --trace-out target/ci_steal.trace.json
    explain_traces+=(target/ci_steal.trace.json)
else
    echo "   (1-core host: skipping the work_stealing steal-chain capture)"
fi
cargo run --release -p lbmf-obs -- explain \
    "${explain_traces[@]}" --require-complete 2

echo "== sim-trace smoke: simulated Dekker -> Chrome export -> validate =="
# The example exports the coherence-level trace of the simulated l-mfence
# schedule (per-CPU tracks, MESI timelines, the LE/ST link span) and
# asserts the remote-downgrade flow arrow is present; `validate` re-checks
# the file structurally (flow pairing included) from a separate process,
# and the greps pin the acceptance surface: a remote-downgrade flow pair
# and at least one MESI timeline track.
cargo run --release --example sim_dekker -- --trace-out target/ci_sim_dekker.trace.json
cargo run --release -p lbmf-obs -- validate target/ci_sim_dekker.trace.json
grep -q '"name":"remote-downgrade"' target/ci_sim_dekker.trace.json
grep -q '"ph":"s"' target/ci_sim_dekker.trace.json
grep -q '"ph":"f"' target/ci_sim_dekker.trace.json
grep -q ' MESI"' target/ci_sim_dekker.trace.json

echo "== calibration: DES cost table vs lbmf-sim kernels (advisory) =="
# Replays the Dekker-handoff and steal-probe kernels on the cycle machine
# and compares the measured charges to the DES cost table. Advisory on CI:
# a drift report should block the retune PR that caused it, not an
# unrelated build; the written lbmf-calib/1 report is the artifact.
cargo run --release -p lbmf-obs -- calibrate --advisory --out target/ci_calibration.json

echo "== zero-cost-when-disabled: trace feature compiles out =="
cargo build --release --no-default-features -p lbmf
cargo build --release --no-default-features -p lbmf-cilk

echo "== obs smoke: quick record + schema self-check + advisory gate =="
# Quick mode shrinks the mini-criterion window to 5 ms per batch so the
# whole suite lands in a few seconds; the self-check re-parses the file
# through the same loader `compare` uses. The gate runs in advisory mode
# on this 1-core CI host — timing deltas are reported, never fatal; the
# committed BENCH_<n>.json baselines are the perf trajectory of record.
cargo run --release -p lbmf-obs -- record --quick --out target/ci_bench.json
cargo run --release -p lbmf-obs -- compare --self-check target/ci_bench.json
baseline=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)
if [ -n "$baseline" ]; then
    cargo run --release -p lbmf-obs -- compare \
        --baseline "$baseline" --candidate target/ci_bench.json --gate --advisory
fi

echo "ci: all green"
