//! # lbmf-repro — Location-Based Memory Fences (SPAA 2011)
//!
//! Facade crate for the reproduction of *Location-Based Memory Fences* by
//! Ladan-Mozes, Lee, and Vyukov (SPAA 2011). It re-exports the four member
//! crates so examples and integration tests can use a single dependency:
//!
//! * [`sim`] — a cycle-level TSO machine simulator (store buffers, MESI
//!   coherence, the proposed LE/ST hardware mechanism) with an interleaving
//!   model checker used to validate the paper's theorems.
//! * [`fences`] — the real-thread library: program-based and location-based
//!   fence strategies, the asymmetric Dekker protocol, biased locks, and the
//!   reader-biased ARW / ARW+ / SRW locks of Section 5.
//! * [`cilk`] — a Cilk-5-style work-stealing runtime whose THE-protocol
//!   deque is parameterized over the victim-side fence strategy, plus the 12
//!   benchmark kernels of Figure 4.
//! * [`des`] — discrete-event simulations reproducing the multi-core
//!   experiments (Figures 5(b) and 6) on a single-core host.
//! * [`trace`] — zero-fence event tracing: per-thread lock-free rings fed
//!   by the runtime crates (behind their `trace` feature), with Chrome
//!   trace-event / Prometheus / summary exporters.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record.

pub use lbmf as fences;
pub use lbmf_cilk as cilk;
pub use lbmf_des as des;
pub use lbmf_sim as sim;
pub use lbmf_trace as trace;
