//! Causal-chain reconstruction: group phase-stamped events by their
//! correlation id and attribute the latency of one remote serialization
//! (or one steal) phase by phase.
//!
//! The protocol's causal shape, for a signal-strategy serialization:
//!
//! ```text
//! requester ring:  serialize-request ── serialize-signal-sent ───────── serialize-ack-observed
//!                                                  │                          ▲
//! target handler ring:              serialize-handler-enter ── serialize-drained
//! ```
//!
//! All five events carry the same nonzero [`FenceEvent::corr`] id, minted
//! once by the requester ([`crate::next_corr_id`]). Steal chains prepend a
//! `steal-attempt` and may end with `steal-success`.
//!
//! Rings are lossy by design, so chains can be *partial*: any phase may be
//! overwritten by ring wrap, and the target-side phases are last-writer-wins
//! when two requesters serialize the same target concurrently (the slot's
//! pending-corr word is a plain handoff, mirroring the protocol's own
//! "accept a concurrent ack" semantics). [`ChainSet::accounting`] reports
//! how many chains are complete versus orphaned, and how many events were
//! dropped — so an attribution report can state its own coverage.

use crate::{EventKind, FenceEvent, TraceSnapshot};
use std::collections::BTreeMap;

/// The phases of one serialization round trip, in causal order. Each is
/// the interval between two adjacent chain events.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// `serialize-request` → `serialize-signal-sent`: queueing the signal
    /// (the `pthread_sigqueue` syscall).
    Queue,
    /// `serialize-signal-sent` → `serialize-handler-enter`: kernel signal
    /// delivery plus the target reaching the handler.
    Delivery,
    /// `serialize-handler-enter` → `serialize-drained`: the handler's
    /// serializing fence retiring (the store buffer drain the paper's
    /// primary never pays for itself).
    Drain,
    /// `serialize-drained` → `serialize-ack-observed`: the requester's
    /// ack spin noticing the bumped counter (includes cache-line
    /// round trip back).
    Ack,
}

impl Phase {
    /// Every phase, in causal order.
    pub const ALL: [Phase; 4] = [Phase::Queue, Phase::Delivery, Phase::Drain, Phase::Ack];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Queue => "queue",
            Phase::Delivery => "delivery",
            Phase::Drain => "drain",
            Phase::Ack => "ack",
        }
    }

    /// The (from, to) event kinds whose timestamps bound this phase.
    pub fn bounds(self) -> (EventKind, EventKind) {
        match self {
            Phase::Queue => (EventKind::SerializeRequest, EventKind::SerializeSignalSent),
            Phase::Delivery => {
                (EventKind::SerializeSignalSent, EventKind::SerializeHandlerEnter)
            }
            Phase::Drain => (EventKind::SerializeHandlerEnter, EventKind::SerializeDrained),
            Phase::Ack => (EventKind::SerializeDrained, EventKind::SerializeAckObserved),
        }
    }
}

/// All events sharing one correlation id, sorted by timestamp (ties broken
/// by causal kind order so zero-length phases still line up).
#[derive(Clone, Debug, Default)]
pub struct Chain {
    /// The shared nonzero correlation id.
    pub corr: u64,
    /// The chain's events across every thread, in causal order.
    pub events: Vec<FenceEvent>,
}

/// How causally complete a [`Chain`] is.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Completeness {
    /// Every serialize phase present: request → signal-sent →
    /// handler-enter → drained → ack-observed.
    Complete,
    /// The requester bookends are present (request and ack-observed) but
    /// one or more interior phases were lost — target-side ring wrap or a
    /// concurrent requester overwriting the slot's pending corr.
    MissingInterior,
    /// One or both requester bookends are missing (requester ring wrap,
    /// or the snapshot was drained mid-flight).
    Orphan,
    /// No serialize-phase event at all: a steal probe that never reached
    /// the serialization protocol (empty deque, lost race). Not
    /// lossiness — the chain was born this small.
    AttemptOnly,
}

impl Chain {
    fn find(&self, kind: EventKind) -> Option<&FenceEvent> {
        self.events.iter().find(|e| e.kind == kind)
    }

    /// Causal completeness of this chain as a serialization span.
    pub fn completeness(&self) -> Completeness {
        if !self.events.iter().any(|e| is_serialize_phase(e.kind)) {
            return Completeness::AttemptOnly;
        }
        let request = self.find(EventKind::SerializeRequest).is_some();
        let ack = self.find(EventKind::SerializeAckObserved).is_some();
        if !(request && ack) {
            return Completeness::Orphan;
        }
        let interior = [
            EventKind::SerializeSignalSent,
            EventKind::SerializeHandlerEnter,
            EventKind::SerializeDrained,
        ]
        .iter()
        .all(|&k| self.find(k).is_some());
        if interior {
            Completeness::Complete
        } else {
            Completeness::MissingInterior
        }
    }

    /// The duration of `phase`, when both bounding events survived.
    /// `saturating_sub` tolerates cross-ring clock reads racing within a
    /// nanosecond.
    pub fn phase_nanos(&self, phase: Phase) -> Option<u64> {
        let (from, to) = phase.bounds();
        Some(self.find(to)?.nanos.saturating_sub(self.find(from)?.nanos))
    }

    /// Requester-measured round trip: request → ack-observed. This is the
    /// ground truth the per-phase attribution must sum to (phases are
    /// nested timestamps of the same interval, so for a
    /// [`Completeness::Complete`] chain the sum is exact up to the
    /// per-phase `saturating_sub` clamps).
    pub fn round_trip_nanos(&self) -> Option<u64> {
        let req = self.find(EventKind::SerializeRequest)?;
        let ack = self.find(EventKind::SerializeAckObserved)?;
        Some(ack.nanos.saturating_sub(req.nanos))
    }

    /// Whether this chain started from a work-stealing attempt.
    pub fn is_steal(&self) -> bool {
        self.find(EventKind::StealAttempt).is_some()
    }

    /// The requester's thread id (from the request event), if it survived.
    pub fn requester(&self) -> Option<u32> {
        self.find(EventKind::SerializeRequest).map(|e| e.thread)
    }

    /// The target-side thread id (from a handler event), if it survived.
    pub fn target(&self) -> Option<u32> {
        self.find(EventKind::SerializeHandlerEnter)
            .or_else(|| self.find(EventKind::SerializeDrained))
            .map(|e| e.thread)
    }
}

/// Per-snapshot chain accounting — the denominator a report needs to say
/// "N of M serializations fully attributed, K orphaned, D events lost to
/// ring wrap".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Accounting {
    /// Chains with every serialize phase present.
    pub complete: usize,
    /// Chains with both requester bookends but lost interior phases.
    pub missing_interior: usize,
    /// Chains missing a requester bookend.
    pub orphans: usize,
    /// Chains with no serialize phase at all — steal probes that never
    /// reached the protocol (empty deque, lost race). Kept separate from
    /// `orphans` so orphan counts measure lossiness, not probe traffic.
    pub attempt_only: usize,
    /// Events overwritten by ring wrap across the snapshot (upper bound
    /// on how many chain phases were lost).
    pub dropped_events: u64,
}

/// Every chain reconstructed from one snapshot, keyed by correlation id.
#[derive(Clone, Debug, Default)]
pub struct ChainSet {
    /// Chains in ascending corr order (mint order).
    pub chains: Vec<Chain>,
    /// Events dropped by ring wrap in the source snapshot.
    pub dropped_events: u64,
}

impl ChainSet {
    /// Group every `corr != 0` event in `snap` into chains. Events with
    /// `corr == 0` (plain uncorrelated instrumentation) are ignored.
    pub fn from_snapshot(snap: &TraceSnapshot) -> ChainSet {
        let mut by_corr: BTreeMap<u64, Vec<FenceEvent>> = BTreeMap::new();
        for t in &snap.threads {
            for e in &t.events {
                if e.corr != 0 {
                    by_corr.entry(e.corr).or_default().push(*e);
                }
            }
        }
        let chains = by_corr
            .into_iter()
            .map(|(corr, mut events)| {
                events.sort_by_key(|e| (e.nanos, causal_rank(e.kind)));
                Chain { corr, events }
            })
            .collect();
        ChainSet {
            chains,
            dropped_events: snap.total_dropped(),
        }
    }

    /// Classify every chain.
    pub fn accounting(&self) -> Accounting {
        let mut acc = Accounting {
            dropped_events: self.dropped_events,
            ..Accounting::default()
        };
        for c in &self.chains {
            match c.completeness() {
                Completeness::Complete => acc.complete += 1,
                Completeness::MissingInterior => acc.missing_interior += 1,
                Completeness::Orphan => acc.orphans += 1,
                Completeness::AttemptOnly => acc.attempt_only += 1,
            }
        }
        acc
    }

    /// Exact percentile of `phase` durations across all chains that
    /// carry the phase (sorted-vector percentile — not log2 buckets — so
    /// phase p50s sum meaningfully against the measured round trip).
    /// `q` in [0, 1]. `None` when no chain carries the phase.
    pub fn phase_percentile(&self, phase: Phase, q: f64) -> Option<u64> {
        let mut durs: Vec<u64> = self.chains.iter().filter_map(|c| c.phase_nanos(phase)).collect();
        percentile_exact(&mut durs, q)
    }

    /// Exact percentile of complete-chain round trips. `None` when no
    /// chain has both bookends.
    pub fn round_trip_percentile(&self, q: f64) -> Option<u64> {
        let mut durs: Vec<u64> =
            self.chains.iter().filter_map(|c| c.round_trip_nanos()).collect();
        percentile_exact(&mut durs, q)
    }

    /// Mean of complete-chain round trips, in nanoseconds.
    pub fn round_trip_mean(&self) -> Option<f64> {
        let durs: Vec<u64> = self.chains.iter().filter_map(|c| c.round_trip_nanos()).collect();
        if durs.is_empty() {
            return None;
        }
        Some(durs.iter().sum::<u64>() as f64 / durs.len() as f64)
    }
}

/// Nearest-rank percentile over an unsorted scratch vector (sorts in
/// place). `q` in [0, 1].
fn percentile_exact(durs: &mut [u64], q: f64) -> Option<u64> {
    if durs.is_empty() {
        return None;
    }
    durs.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0) * durs.len() as f64).ceil() as usize).max(1) - 1;
    Some(durs[rank.min(durs.len() - 1)])
}

/// True for the event kinds that belong to the serialization protocol
/// itself (as opposed to steal bookkeeping sharing the corr id). A chain
/// with none of these never entered the protocol.
fn is_serialize_phase(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::SerializeRequest
            | EventKind::SerializeSignalSent
            | EventKind::SerializeHandlerEnter
            | EventKind::SerializeDrained
            | EventKind::SerializeAckObserved
            | EventKind::SerializeDeliver
    )
}

/// Tie-break ordering for events stamped in the same nanosecond: causal
/// protocol order, so a zero-length phase still sorts request-before-ack.
fn causal_rank(kind: EventKind) -> u8 {
    match kind {
        EventKind::StealAttempt => 0,
        EventKind::SecondaryFence => 1,
        EventKind::SerializeRequest => 2,
        EventKind::SerializeSignalSent => 3,
        EventKind::SerializeHandlerEnter => 4,
        EventKind::SerializeDrained => 5,
        EventKind::SerializeAckObserved => 6,
        EventKind::SerializeDeliver => 7,
        EventKind::StealSuccess => 8,
        _ => 9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadTrace;

    fn ev(thread: u32, nanos: u64, kind: EventKind, corr: u64) -> FenceEvent {
        FenceEvent { nanos, thread, kind, guarded_addr: 0x40, dur: 0, corr }
    }

    fn snapshot(threads: Vec<Vec<FenceEvent>>, dropped: u64) -> TraceSnapshot {
        TraceSnapshot {
            threads: threads
                .into_iter()
                .enumerate()
                .map(|(i, events)| ThreadTrace {
                    tid: i as u32,
                    name: format!("t{i}"),
                    events,
                    dropped: if i == 0 { dropped } else { 0 },
                })
                .collect(),
        }
    }

    fn complete_chain(corr: u64, base: u64) -> (Vec<FenceEvent>, Vec<FenceEvent>) {
        // Requester on thread 0, handler phases on thread 1.
        // Phases: queue 100, delivery 300, drain 200, ack 400 → rt 1000.
        (
            vec![
                ev(0, base, EventKind::SerializeRequest, corr),
                ev(0, base + 100, EventKind::SerializeSignalSent, corr),
                ev(0, base + 1000, EventKind::SerializeAckObserved, corr),
            ],
            vec![
                ev(1, base + 400, EventKind::SerializeHandlerEnter, corr),
                ev(1, base + 600, EventKind::SerializeDrained, corr),
            ],
        )
    }

    #[test]
    fn reconstructs_one_complete_chain() {
        let (req, tgt) = complete_chain(9, 1_000);
        let set = ChainSet::from_snapshot(&snapshot(vec![req, tgt], 0));
        assert_eq!(set.chains.len(), 1);
        let c = &set.chains[0];
        assert_eq!(c.corr, 9);
        assert_eq!(c.completeness(), Completeness::Complete);
        assert_eq!(c.round_trip_nanos(), Some(1000));
        assert_eq!(c.phase_nanos(Phase::Queue), Some(100));
        assert_eq!(c.phase_nanos(Phase::Delivery), Some(300));
        assert_eq!(c.phase_nanos(Phase::Drain), Some(200));
        assert_eq!(c.phase_nanos(Phase::Ack), Some(400));
        // Phases partition the round trip exactly.
        let sum: u64 = Phase::ALL.iter().filter_map(|&p| c.phase_nanos(p)).sum();
        assert_eq!(sum, c.round_trip_nanos().unwrap());
        assert_eq!(c.requester(), Some(0));
        assert_eq!(c.target(), Some(1));
        assert!(!c.is_steal());
        // Events arrive sorted causally even across rings.
        let kinds: Vec<EventKind> = c.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::SerializeRequest,
                EventKind::SerializeSignalSent,
                EventKind::SerializeHandlerEnter,
                EventKind::SerializeDrained,
                EventKind::SerializeAckObserved,
            ]
        );
    }

    #[test]
    fn classifies_partial_chains_and_ignores_corr_zero() {
        let (mut req, tgt) = complete_chain(1, 0);
        // corr 2: lost its handler events (missing interior).
        req.push(ev(0, 5_000, EventKind::SerializeRequest, 2));
        req.push(ev(0, 5_900, EventKind::SerializeAckObserved, 2));
        // corr 3: requester ring wrapped away the request (orphan).
        let tgt2 = vec![
            ev(1, 7_000, EventKind::SerializeHandlerEnter, 3),
            ev(1, 7_100, EventKind::SerializeDrained, 3),
        ];
        // corr 0 noise must not form a chain.
        req.push(ev(0, 8_000, EventKind::PrimaryFence, 0));
        let set =
            ChainSet::from_snapshot(&snapshot(vec![req, [tgt, tgt2].concat()], 4));
        assert_eq!(set.chains.len(), 3);
        let acc = set.accounting();
        assert_eq!(
            acc,
            Accounting {
                complete: 1,
                missing_interior: 1,
                orphans: 1,
                attempt_only: 0,
                dropped_events: 4
            }
        );
        // Partial chains still give what they can.
        let c2 = set.chains.iter().find(|c| c.corr == 2).unwrap();
        assert_eq!(c2.round_trip_nanos(), Some(900));
        assert_eq!(c2.phase_nanos(Phase::Delivery), None);
        let c3 = set.chains.iter().find(|c| c.corr == 3).unwrap();
        assert_eq!(c3.round_trip_nanos(), None);
        assert_eq!(c3.phase_nanos(Phase::Drain), Some(100));
    }

    #[test]
    fn percentiles_are_exact_not_bucketed() {
        let mut threads = (Vec::new(), Vec::new());
        // Three complete chains with round trips 1000, 1000, 1000 but at
        // staggered bases; p50 must be the exact value, not a log2 bound.
        for (i, base) in [0u64, 10_000, 20_000].iter().enumerate() {
            let (r, t) = complete_chain(i as u64 + 1, *base);
            threads.0.extend(r);
            threads.1.extend(t);
        }
        let set = ChainSet::from_snapshot(&snapshot(vec![threads.0, threads.1], 0));
        assert_eq!(set.round_trip_percentile(0.5), Some(1000));
        assert_eq!(set.round_trip_percentile(0.99), Some(1000));
        assert_eq!(set.round_trip_mean(), Some(1000.0));
        assert_eq!(set.phase_percentile(Phase::Queue, 0.5), Some(100));
        // The p50 phase sum equals the p50 round trip for identical chains.
        let sum: u64 =
            Phase::ALL.iter().filter_map(|&p| set.phase_percentile(p, 0.5)).sum();
        assert_eq!(sum, 1000);
        // Empty set yields None everywhere.
        let empty = ChainSet::default();
        assert_eq!(empty.round_trip_percentile(0.5), None);
        assert_eq!(empty.phase_percentile(Phase::Ack, 0.5), None);
        assert_eq!(empty.round_trip_mean(), None);
    }

    #[test]
    fn steal_chains_are_flagged() {
        let (mut req, tgt) = complete_chain(5, 100);
        req.insert(0, ev(0, 50, EventKind::StealAttempt, 5));
        req.push(ev(0, 1_500, EventKind::StealSuccess, 5));
        let set = ChainSet::from_snapshot(&snapshot(vec![req, tgt], 0));
        let c = &set.chains[0];
        assert!(c.is_steal());
        assert_eq!(c.completeness(), Completeness::Complete);
        assert_eq!(c.events.first().unwrap().kind, EventKind::StealAttempt);
        assert_eq!(c.events.last().unwrap().kind, EventKind::StealSuccess);
    }

    #[test]
    fn failed_steal_probes_are_attempt_only_not_orphans() {
        // corr 6: a steal attempt that found an empty deque — the corr id
        // was minted but no serialize phase ever ran. corr 7: a genuine
        // orphan (handler phases survived, requester bookends wrapped).
        let probe = vec![ev(0, 50, EventKind::StealAttempt, 6)];
        let wrapped = vec![
            ev(1, 200, EventKind::SerializeHandlerEnter, 7),
            ev(1, 300, EventKind::SerializeDrained, 7),
        ];
        let set = ChainSet::from_snapshot(&snapshot(vec![probe, wrapped], 0));
        let by = |corr: u64| set.chains.iter().find(|c| c.corr == corr).unwrap();
        assert_eq!(by(6).completeness(), Completeness::AttemptOnly);
        assert!(by(6).is_steal());
        assert_eq!(by(7).completeness(), Completeness::Orphan);
        let acc = set.accounting();
        assert_eq!((acc.attempt_only, acc.orphans), (1, 1));
    }

    #[test]
    fn same_nanosecond_events_sort_causally() {
        let corr = 11;
        let events = vec![
            ev(0, 100, EventKind::SerializeAckObserved, corr),
            ev(0, 100, EventKind::SerializeRequest, corr),
            ev(0, 100, EventKind::SerializeSignalSent, corr),
        ];
        let set = ChainSet::from_snapshot(&snapshot(vec![events], 0));
        let kinds: Vec<EventKind> = set.chains[0].events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::SerializeRequest,
                EventKind::SerializeSignalSent,
                EventKind::SerializeAckObserved,
            ]
        );
        assert_eq!(set.chains[0].round_trip_nanos(), Some(0));
    }
}
