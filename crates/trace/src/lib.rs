//! # lbmf-trace — zero-fence event tracing for the lbmf runtime
//!
//! The paper's whole argument is quantitative: how many fences the primary
//! path *avoided*, how many remote serializations the secondary *paid*,
//! and how long each round trip took. The aggregate counters in
//! `lbmf::stats` answer the first two in total; this crate records *when*
//! — a time-stamped event stream per thread — without reintroducing the
//! very fences the runtime exists to remove.
//!
//! ## The "drainer pays" invariant
//!
//! Recording an event ([`record`]) on the owning thread is:
//!
//! * a thread-local lookup,
//! * a monotonic clock read,
//! * a handful of `Relaxed` stores into a fixed-capacity ring, and
//! * compiler fences between them.
//!
//! **No atomic read-modify-write, no hardware fence, no lock, no
//! allocation** (after the thread's one-time lazy ring registration).
//! This mirrors the asymmetric-fence design itself: the cost of
//! synchronizing with the event stream falls entirely on the *drainer*
//! ([`take_snapshot`]), which executes a full fence and then detects torn
//! slots via per-slot sequence numbers. A mid-run drain on non-TSO
//! hardware is best-effort (torn or in-flight slots are skipped, never
//! misread into garbage kinds); the authoritative drain is after the
//! traced threads are joined, where `join` provides the happens-before.
//!
//! Rings are fixed-capacity and wrap *lossy-by-design*: the newest
//! [`ring::DEFAULT_CAPACITY`] events are kept, the oldest are dropped,
//! and the count of dropped events is reported by every exporter.
//!
//! ## Schema
//!
//! One event type, [`FenceEvent`], covers the real runtime and the
//! discrete-event simulator (simulated runs stamp virtual time into the
//! same `nanos` field), so real and simulated traces are directly
//! diffable. Kinds are in [`EventKind`].
//!
//! ## Exporters
//!
//! * [`chrome`] — Chrome trace-event JSON, loadable in Perfetto or
//!   `chrome://tracing`, with a dependency-free JSON self-check;
//! * [`prometheus`] — a flat Prometheus-style text dump;
//! * [`summary`] — a per-run plain-text summary table.

#![warn(missing_docs)]

pub mod causal;
pub mod chrome;
pub mod histogram;
pub mod prometheus;
pub mod ring;
pub mod summary;

pub use histogram::Log2Histogram;
pub use ring::{
    is_enabled, next_corr_id, now_nanos, record, record_at, record_corr, record_span,
    record_span_corr, register_aux_ring, set_enabled, take_snapshot, ThreadRing,
};

/// What happened. The discriminants are stable (they are stored raw in
/// ring slots and decoded by the drainer).
#[repr(u8)]
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A compiler-only fence on the primary fast path (the `l-mfence`
    /// position under an asymmetric strategy).
    PrimaryFence = 0,
    /// A full hardware fence on the primary path (the symmetric baseline).
    PrimaryFullFence = 1,
    /// The secondary's own program-based fence.
    SecondaryFence = 2,
    /// A secondary requested a remote serialization of a primary.
    SerializeRequest = 3,
    /// A serialization round trip completed; `dur` is the wait, in the
    /// event's time unit (real nanoseconds, or simulated cycles).
    SerializeDeliver = 4,
    /// A thief engaged a victim's deque (lock held, head bumped).
    StealAttempt = 5,
    /// A steal obtained a job.
    StealSuccess = 6,
    /// A stop-the-world safepoint pause was requested.
    SafepointEnter = 7,
    /// The safepoint pause ended; `dur` is the pause length.
    SafepointExit = 8,
    /// The requester's serialization signal left `pthread_sigqueue`
    /// (causal-span phase; carries the chain's `corr` id).
    SerializeSignalSent = 9,
    /// The target's signal handler started running (stamped by the
    /// handler itself, into the target's dedicated handler ring).
    SerializeHandlerEnter = 10,
    /// The target's store buffer was drained (the handler's fence
    /// retired); the in-handler time is this stamp minus the chain's
    /// [`EventKind::SerializeHandlerEnter`] stamp.
    SerializeDrained = 11,
    /// The requester observed the handler's acknowledgment (its spin
    /// ended) — the last phase of a serialization chain.
    SerializeAckObserved = 12,
}

impl EventKind {
    /// Every kind, in discriminant order (export iteration order).
    pub const ALL: [EventKind; 13] = [
        EventKind::PrimaryFence,
        EventKind::PrimaryFullFence,
        EventKind::SecondaryFence,
        EventKind::SerializeRequest,
        EventKind::SerializeDeliver,
        EventKind::StealAttempt,
        EventKind::StealSuccess,
        EventKind::SafepointEnter,
        EventKind::SafepointExit,
        EventKind::SerializeSignalSent,
        EventKind::SerializeHandlerEnter,
        EventKind::SerializeDrained,
        EventKind::SerializeAckObserved,
    ];

    /// Stable machine-readable name (used by every exporter).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PrimaryFence => "primary-fence",
            EventKind::PrimaryFullFence => "primary-full-fence",
            EventKind::SecondaryFence => "secondary-fence",
            EventKind::SerializeRequest => "serialize-request",
            EventKind::SerializeDeliver => "serialize-deliver",
            EventKind::StealAttempt => "steal-attempt",
            EventKind::StealSuccess => "steal-success",
            EventKind::SafepointEnter => "safepoint-enter",
            EventKind::SafepointExit => "safepoint-exit",
            EventKind::SerializeSignalSent => "serialize-signal-sent",
            EventKind::SerializeHandlerEnter => "serialize-handler-enter",
            EventKind::SerializeDrained => "serialize-drained",
            EventKind::SerializeAckObserved => "serialize-ack-observed",
        }
    }

    /// Decode a stable machine-readable name back to a kind (the inverse
    /// of [`EventKind::name`]; used by trace re-importers such as
    /// `lbmf-obs explain`).
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Decode a stored discriminant (drainer side); `None` for a torn or
    /// corrupted slot.
    pub fn from_u8(raw: u8) -> Option<EventKind> {
        EventKind::ALL.get(raw as usize).copied()
    }
}

/// One recorded event.
///
/// `nanos` is monotonic time since the process's trace epoch for real
/// executions, or virtual cycles for discrete-event simulations — the
/// schema is shared so the two are diffable side by side in Perfetto.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FenceEvent {
    /// Event timestamp (nanoseconds since trace epoch, or simulated
    /// cycles).
    pub nanos: u64,
    /// Small per-process thread id (ring registration order, or simulated
    /// worker index).
    pub thread: u32,
    /// What happened.
    pub kind: EventKind,
    /// The guarded location involved, when one exists (flag address, slot
    /// key, deque address; 0 when the event has no location).
    pub guarded_addr: usize,
    /// Duration for span-like events (serialize round trips, safepoint
    /// pauses); 0 for instants.
    pub dur: u64,
    /// Causal correlation id linking the phases of one remote
    /// serialization (or one steal chain) across threads; 0 when the
    /// event belongs to no chain. Minted by [`next_corr_id`] on the
    /// *requester* — the primary's fast path never touches the counter.
    pub corr: u64,
}

impl ThreadTrace {
    /// Log2 histogram of the `dur` field of this thread's events of
    /// `kind`. Instants (`dur == 0`) of that kind are counted in bucket 0
    /// — for span kinds like [`EventKind::SerializeDeliver`] a zero
    /// duration is a real observation (a short-circuited round trip).
    pub fn latency_histogram(&self, kind: EventKind) -> Log2Histogram {
        let mut h = Log2Histogram::new();
        for e in self.events.iter().filter(|e| e.kind == kind) {
            h.record(e.dur);
        }
        h
    }
}

/// The drained event stream of one thread.
#[derive(Clone, Debug, Default)]
pub struct ThreadTrace {
    /// The ring's small thread id.
    pub tid: u32,
    /// The OS thread's name at registration (or `thread-<tid>`), or the
    /// simulated worker's name.
    pub name: String,
    /// Events, oldest first.
    pub events: Vec<FenceEvent>,
    /// Events overwritten before this drain (the ring wrapped). Part of
    /// every export: a trace that lost events says so.
    pub dropped: u64,
}

/// A point-in-time drain of every registered ring (or a hand-built set of
/// simulated streams). All exporters consume this.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Per-thread streams, in registration (or worker-index) order.
    pub threads: Vec<ThreadTrace>,
}

impl TraceSnapshot {
    /// Total events across all threads.
    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Total dropped events across all threads.
    pub fn total_dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Count of events of `kind` across all threads.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.threads
            .iter()
            .flat_map(|t| t.events.iter())
            .filter(|e| e.kind == kind)
            .count() as u64
    }

    /// Aggregate the per-thread duration histograms of `kind` into one
    /// ([`ThreadTrace::latency_histogram`] merged via
    /// [`Log2Histogram::merge`]) — the cross-thread view every exporter
    /// reports percentiles from.
    pub fn latency_histogram(&self, kind: EventKind) -> Log2Histogram {
        let mut h = Log2Histogram::new();
        for t in &self.threads {
            h.merge(&t.latency_histogram(kind));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrips_through_u8() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(EventKind::from_u8(200), None);
    }

    #[test]
    fn snapshot_counts() {
        let snap = TraceSnapshot {
            threads: vec![ThreadTrace {
                tid: 0,
                name: "t".into(),
                events: vec![
                    FenceEvent {
                        nanos: 1,
                        thread: 0,
                        kind: EventKind::PrimaryFence,
                        guarded_addr: 0,
                        dur: 0,
                        corr: 0,
                    },
                    FenceEvent {
                        nanos: 2,
                        thread: 0,
                        kind: EventKind::PrimaryFence,
                        guarded_addr: 0,
                        dur: 0,
                        corr: 0,
                    },
                ],
                dropped: 3,
            }],
        };
        assert_eq!(snap.total_events(), 2);
        assert_eq!(snap.total_dropped(), 3);
        assert_eq!(snap.count(EventKind::PrimaryFence), 2);
        assert_eq!(snap.count(EventKind::StealSuccess), 0);
    }

    fn deliver(thread: u32, dur: u64) -> FenceEvent {
        FenceEvent {
            nanos: 0,
            thread,
            kind: EventKind::SerializeDeliver,
            guarded_addr: 0,
            dur,
            corr: 0,
        }
    }

    #[test]
    fn latency_histogram_aggregates_across_threads() {
        let snap = TraceSnapshot {
            threads: vec![
                ThreadTrace {
                    tid: 0,
                    name: "a".into(),
                    events: vec![deliver(0, 100), deliver(0, 200)],
                    dropped: 0,
                },
                ThreadTrace {
                    tid: 1,
                    name: "b".into(),
                    events: vec![
                        deliver(1, 100_000),
                        // A different kind must not pollute the histogram.
                        FenceEvent {
                            nanos: 0,
                            thread: 1,
                            kind: EventKind::SafepointExit,
                            guarded_addr: 0,
                            dur: 1,
                            corr: 0,
                        },
                    ],
                    dropped: 0,
                },
            ],
        };
        let h = snap.latency_histogram(EventKind::SerializeDeliver);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 100_300);
        assert_eq!(h.max(), 100_000);
        // Empty snapshot and absent kind both give an empty histogram.
        assert_eq!(
            TraceSnapshot::default()
                .latency_histogram(EventKind::SerializeDeliver)
                .count(),
            0
        );
        assert_eq!(snap.latency_histogram(EventKind::StealAttempt).count(), 0);
    }

    #[test]
    fn latency_histogram_from_wrapped_ring_counts_survivors_only() {
        // 2^2 = 4 slots, 10 appends: the histogram sees the surviving 4
        // events and the drop count stays visible on the trace.
        let ring = ring::ThreadRing::new(0, "wrap", 2);
        for i in 0..10u64 {
            ring.append(i, EventKind::SerializeDeliver, 0, i);
        }
        let t = ring.drain();
        assert_eq!(t.dropped, 6);
        let h = t.latency_histogram(EventKind::SerializeDeliver);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 6 + 7 + 8 + 9);
        assert_eq!(h.max(), 9);
    }
}
