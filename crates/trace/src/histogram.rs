//! Log2-bucketed latency histograms.
//!
//! Serialize round trips span four orders of magnitude (a membarrier on
//! an idle core vs. a signal delivered to a descheduled thread), so
//! fixed-width buckets waste resolution. Bucket `i` holds values `v`
//! with `floor(log2(v)) == i` (bucket 0 additionally holds `v == 0`);
//! 65 buckets cover the full `u64` range.

use std::fmt;

/// A log2-bucketed histogram over `u64` values.
#[derive(Clone, Debug)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (63 - v.leading_zeros()) as usize + 1
    }
}

/// Inclusive upper bound of bucket `i` (`0` for bucket 0, else `2^i - 1`).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`q` in 0..=100), so accurate to within 2×. 0 if empty.
    ///
    /// This is the *conservative* read: the true quantile is `<=` the
    /// returned value. For a central estimate use
    /// [`Log2Histogram::percentile_midpoint`]; both are bucket-granular
    /// (log2), so two recordings of the same distribution can legally
    /// differ by one whole bucket (a factor of 2).
    pub fn percentile(&self, q: u8) -> u64 {
        self.percentile_bucket(q)
            .map_or(0, |i| bucket_upper(i).min(self.max))
    }

    /// Midpoint of the bucket containing the `q`-quantile (`q` in
    /// 0..=100) — the unbiased point estimate for reports, as opposed to
    /// the `<=` bound of [`Log2Histogram::percentile`]. Clamped to the
    /// observed max. 0 if empty.
    pub fn percentile_midpoint(&self, q: u8) -> u64 {
        self.percentile_bucket(q).map_or(0, |i| {
            let upper = bucket_upper(i);
            let lower = if i == 0 { 0 } else { bucket_upper(i - 1) + 1 };
            (lower + (upper - lower) / 2).min(self.max)
        })
    }

    /// Index of the bucket containing the `q`-quantile; `None` if empty.
    fn percentile_bucket(&self, q: u8) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let rank = (self.count * q as u64).div_ceil(100).max(1);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(i);
            }
        }
        Some(64)
    }

    /// Iterate non-empty buckets as `(inclusive_upper_bound, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }
}

impl fmt::Display for Log2Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "(empty)");
        }
        writeln!(
            f,
            "n={} mean={} p50<={} p90<={} p99<={} max={}",
            self.count,
            self.mean(),
            self.percentile(50),
            self.percentile(90),
            self.percentile(99),
            self.max
        )?;
        let widest = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        for (upper, c) in self.nonzero_buckets() {
            let bar = (c * 40).div_ceil(widest) as usize;
            writeln!(f, "  <={:>12} {:>8} {}", upper, c, "#".repeat(bar))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn stats_and_percentiles() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1110);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 185);
        // p50 rank=3 -> value 3 lives in bucket upper 3.
        assert_eq!(h.percentile(50), 3);
        // p100 capped at observed max, not bucket upper (1023).
        assert_eq!(h.percentile(100), 1000);
        assert_eq!(h.percentile(99), 1000);
    }

    #[test]
    fn midpoint_is_center_of_bucket_and_clamped() {
        let mut h = Log2Histogram::new();
        for v in [3000u64, 3100, 3200] {
            h.record(v); // all in bucket 12: [2048, 4095]
        }
        assert_eq!(h.percentile(50), 3200, "upper bound clamped to max");
        // Midpoint of [2048, 4095] = 3071 — inside the bucket, not its rim.
        assert_eq!(h.percentile_midpoint(50), 3071);
        // Midpoint never exceeds the observed max either.
        let mut low = Log2Histogram::new();
        low.record(2100);
        assert_eq!(low.percentile_midpoint(50), 2100);
        // Zero bucket and empty histogram behave.
        let mut z = Log2Histogram::new();
        z.record(0);
        assert_eq!(z.percentile_midpoint(50), 0);
        assert_eq!(Log2Histogram::new().percentile_midpoint(99), 0);
        // Midpoint <= upper bound always (sampled kinds of values).
        let mut m = Log2Histogram::new();
        for v in [1u64, 7, 63, 900, 70_000, u64::MAX] {
            m.record(v);
        }
        for q in [1u8, 50, 90, 99, 100] {
            assert!(m.percentile_midpoint(q) <= m.percentile(q), "q={q}");
        }
    }

    #[test]
    fn merge_adds() {
        let mut a = Log2Histogram::new();
        a.record(5);
        let mut b = Log2Histogram::new();
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 505);
        assert_eq!(a.max(), 500);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = Log2Histogram::new();
        a.record(7);
        a.record(9);
        let before = (a.count(), a.sum(), a.max(), a.percentile(99));
        a.merge(&Log2Histogram::new());
        assert_eq!((a.count(), a.sum(), a.max(), a.percentile(99)), before);
        let mut empty = Log2Histogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.percentile(50), a.percentile(50));
    }

    #[test]
    fn merged_percentiles_match_recording_into_one() {
        // Percentiles of a merge must equal percentiles of the union —
        // the property `TraceSnapshot::latency_histogram` relies on when
        // it folds per-thread rings into one export.
        let values_a = [1u64, 3, 8, 20, 900];
        let values_b = [2u64, 40, 65_000, 70_000, 1_000_000];
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut union = Log2Histogram::new();
        for v in values_a {
            a.record(v);
            union.record(v);
        }
        for v in values_b {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        for q in [0u8, 1, 50, 90, 99, 100] {
            assert_eq!(a.percentile(q), union.percentile(q), "q={q}");
        }
        assert_eq!(a.count(), union.count());
        assert_eq!(a.sum(), union.sum());
    }

    #[test]
    fn wrapped_values_saturate_top_bucket_not_overflow() {
        // The top of the u64 range (bucket 64) and a saturating sum:
        // recording near-MAX values twice must not wrap anything.
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(99), u64::MAX);
        let mut other = Log2Histogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX, "merge sum saturates too");
        // All three live in the final bucket.
        assert_eq!(h.nonzero_buckets().count(), 1);
        assert_eq!(h.nonzero_buckets().next(), Some((u64::MAX, 3)));
    }

    #[test]
    fn empty_is_safe() {
        let h = Log2Histogram::new();
        assert_eq!(h.percentile(99), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(format!("{h}"), "(empty)");
    }
}
