//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! Emits the classic "JSON object format": `{"traceEvents": [...]}` with
//! per-thread metadata (`ph:"M"` `thread_name`), instant events
//! (`ph:"i"`, thread-scoped), complete spans (`ph:"X"` with `dur`), and a
//! per-thread `dropped` counter (`ph:"C"`). Timestamps are microseconds
//! (floats), converted from the snapshot's nanosecond stamps.
//!
//! Causal serialization chains (events sharing a nonzero
//! [`crate::FenceEvent::corr`]) additionally export as **flow events**
//! (`ph:"s"/"t"/"f"` with a shared `id`), which Perfetto and
//! `chrome://tracing` draw as arrows from the requester's
//! `serialize-request`, across the target's handler phases, back to the
//! requester's `serialize-ack-observed` — one arrow chain per remote
//! serialization.
//!
//! Also hosts [`validate`], a dependency-free structural self-check used
//! by CI and the examples (it additionally enforces flow-event pairing:
//! every `s` has a matching `f` under the same unique id), and
//! [`from_check_trace`], which turns an `lbmf-check` counterexample trace
//! into the same format so a model-checker violation opens in Perfetto
//! next to a real-run trace.

use crate::causal::ChainSet;
use crate::{EventKind, TraceSnapshot};
use std::fmt::Write as _;

/// All process ids in one trace (Perfetto groups rows by pid/tid).
const PID: u32 = 1;

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// An incremental Chrome trace-event JSON writer.
///
/// This is the mechanical half of [`export`], made public so *other*
/// event sources — notably `lbmf-sim`'s coherence-level trace, whose
/// event names (MESI states, bus transactions, link spans) are not part
/// of this crate's fixed [`EventKind`] schema — can emit the same format
/// and pass the same [`validate`] checks.
///
/// Usage is open/decorate/close per event: [`open`](Self::open) writes
/// the required common fields (`name`/`ph`/`pid`/`tid`/`ts`), the
/// decorators ([`dur`](Self::dur), [`scope`](Self::scope),
/// [`flow_id`](Self::flow_id), [`bind_enclosing`](Self::bind_enclosing),
/// [`arg_str`](Self::arg_str), [`arg_u64`](Self::arg_u64)) append
/// optional fields, and [`close`](Self::close) terminates the event.
/// Arg decorators must come last — the first one opens the `args` object
/// and `close` shuts it. [`finish`](Self::finish) yields the JSON.
pub struct ChromeWriter {
    out: String,
    first: bool,
    in_args: bool,
}

impl Default for ChromeWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeWriter {
    /// An empty `{"traceEvents":[...]}` document, ready for events.
    pub fn new() -> Self {
        ChromeWriter {
            out: String::from("{\"traceEvents\":[\n"),
            first: true,
            in_args: false,
        }
    }

    /// Open one event object with the required common fields
    /// (`name`, `ph`, `pid`, `tid`, `ts`); decorate, then [`close`](Self::close).
    pub fn open(&mut self, name: &str, ph: char, tid: u32, ts_us: f64) {
        debug_assert!(!self.in_args, "previous event not closed");
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str("{\"name\":\"");
        escape_into(&mut self.out, name);
        let _ = write!(
            self.out,
            "\",\"ph\":\"{ph}\",\"pid\":{PID},\"tid\":{tid},\"ts\":{ts_us:.3}"
        );
    }

    /// Duration in microseconds (for `ph:"X"` complete spans).
    pub fn dur(&mut self, dur_us: f64) {
        debug_assert!(!self.in_args, "dur must precede args");
        let _ = write!(self.out, ",\"dur\":{dur_us:.3}");
    }

    /// Instant-event scope (`t` thread, `p` process, `g` global).
    pub fn scope(&mut self, s: char) {
        debug_assert!(!self.in_args, "scope must precede args");
        let _ = write!(self.out, ",\"s\":\"{s}\"");
    }

    /// Flow-event category and id (for `ph:"s"/"t"/"f"` arrows; the
    /// validator pairs `s` starts with `f` finishes by this id).
    pub fn flow_id(&mut self, id: u64) {
        debug_assert!(!self.in_args, "flow_id must precede args");
        let _ = write!(self.out, ",\"cat\":\"lbmf\",\"id\":{id}");
    }

    /// Bind a flow finish to the end of its enclosing slice
    /// (`"bp":"e"`, Perfetto-style arrowheads).
    pub fn bind_enclosing(&mut self) {
        debug_assert!(!self.in_args, "bind_enclosing must precede args");
        self.out.push_str(",\"bp\":\"e\"");
    }

    fn begin_arg(&mut self, key: &str) {
        if self.in_args {
            self.out.push(',');
        } else {
            self.out.push_str(",\"args\":{");
            self.in_args = true;
        }
        self.out.push('"');
        escape_into(&mut self.out, key);
        self.out.push_str("\":");
    }

    /// Append a string-valued entry to the event's `args` object.
    pub fn arg_str(&mut self, key: &str, val: &str) {
        self.begin_arg(key);
        self.out.push('"');
        escape_into(&mut self.out, val);
        self.out.push('"');
    }

    /// Append an integer-valued entry to the event's `args` object.
    pub fn arg_u64(&mut self, key: &str, val: u64) {
        self.begin_arg(key);
        let _ = write!(self.out, "{val}");
    }

    /// Terminate the current event (closing `args` if open).
    pub fn close(&mut self) {
        if self.in_args {
            self.out.push('}');
            self.in_args = false;
        }
        self.out.push('}');
    }

    /// Emit a `thread_name` metadata row labelling `tid`.
    pub fn thread_name(&mut self, tid: u32, name: &str) {
        self.open("thread_name", 'M', tid, 0.0);
        self.arg_str("name", name);
        self.close();
    }

    /// Close the document and return the JSON. The output of a correctly
    /// paired open/close sequence always passes [`validate`] (flow
    /// pairing permitting).
    pub fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

/// Render a snapshot as Chrome trace-event JSON. The output always
/// passes [`validate`].
pub fn export(snap: &TraceSnapshot) -> String {
    export_with_strategy(snap, None)
}

/// [`export`], additionally stamping the fence strategy that produced the
/// run as a metadata event (`ph:"M"`, name `lbmf_strategy`) so offline
/// consumers — `lbmf-obs explain` — can report attribution per strategy.
pub fn export_with_strategy(snap: &TraceSnapshot, strategy: Option<&str>) -> String {
    let mut w = ChromeWriter::new();
    if let Some(strategy) = strategy {
        w.open("lbmf_strategy", 'M', 0, 0.0);
        w.arg_str("name", strategy);
        w.close();
    }
    for t in &snap.threads {
        // Row label.
        w.thread_name(t.tid, &t.name);
        for e in &t.events {
            let ts = e.nanos as f64 / 1000.0;
            if e.dur > 0 {
                w.open(e.kind.name(), 'X', t.tid, ts);
                w.dur(e.dur as f64 / 1000.0);
            } else {
                w.open(e.kind.name(), 'i', t.tid, ts);
                w.scope('t');
            }
            if e.guarded_addr != 0 {
                w.arg_str("addr", &format!("{:#x}", e.guarded_addr));
            }
            if e.corr != 0 {
                w.arg_u64("corr", e.corr);
            }
            w.close();
        }
        // Lossy-by-design: the wrap count is part of the export.
        let end = t.events.last().map_or(0.0, |e| e.nanos as f64 / 1000.0);
        w.open("dropped", 'C', t.tid, end);
        w.arg_u64("dropped", t.dropped);
        w.close();
    }
    // Flow arrows: one s→t…→f chain per correlation id, following the
    // chain's events across threads in causal order. Single-event chains
    // get no arrow (nothing to link).
    for chain in ChainSet::from_snapshot(snap).chains {
        if chain.events.len() < 2 {
            continue;
        }
        let name = if chain.is_steal() { "steal-chain" } else { "serialize-chain" };
        let last = chain.events.len() - 1;
        for (i, e) in chain.events.iter().enumerate() {
            let ph = if i == 0 {
                's'
            } else if i == last {
                'f'
            } else {
                't'
            };
            w.open(name, ph, e.thread, e.nanos as f64 / 1000.0);
            w.flow_id(chain.corr);
            if ph == 'f' {
                // Bind the arrowhead to the enclosing slice, Perfetto-style.
                w.bind_enclosing();
            }
            w.close();
        }
    }
    w.finish()
}

/// Convert an `lbmf-check` counterexample trace (the `Violation::trace`
/// string: numbered lines like `"   3. T0: store L0 <- 1 (buffered)"`)
/// into Chrome trace-event JSON. Virtual time is the trace step index,
/// one microsecond per step; `memory:` commit/drain lines and the `!!`
/// violation marker get pseudo-thread rows of their own.
pub fn from_check_trace(trace: &str) -> String {
    const MEMORY_TID: u32 = 1000;
    const VERDICT_TID: u32 = 1001;
    let mut w = ChromeWriter::new();
    let mut named: Vec<u32> = Vec::new();
    let mut name_row = |w: &mut ChromeWriter, tid: u32, name: &str| {
        if !named.contains(&tid) {
            named.push(tid);
            w.thread_name(tid, name);
        }
    };
    for (step, line) in trace.lines().enumerate() {
        let line = line.trim_start();
        // Strip the "   3. " numbering the report prepends.
        let line = match line.split_once(". ") {
            Some((n, rest)) if n.chars().all(|c| c.is_ascii_digit()) => rest,
            _ => line,
        };
        let ts = step as f64;
        if let Some(rest) = line.strip_prefix("!! ") {
            name_row(&mut w, VERDICT_TID, "verdict");
            w.open(rest, 'i', VERDICT_TID, ts);
            w.scope('g'); // global-scope marker
            w.close();
        } else if let Some(rest) = line.strip_prefix("memory: ") {
            name_row(&mut w, MEMORY_TID, "memory (store buffers)");
            w.open(rest, 'i', MEMORY_TID, ts);
            w.scope('t');
            w.close();
        } else if let Some((t, rest)) = line.split_once(": ") {
            let Some(tid) = t
                .strip_prefix('T')
                .and_then(|n| n.parse::<u32>().ok())
            else {
                continue;
            };
            name_row(&mut w, tid, t);
            w.open(rest, 'i', tid, ts);
            w.scope('t');
            w.close();
        }
    }
    w.finish()
}

// ---------------------------------------------------------------------
// Self-check: a dependency-free structural validator.
// ---------------------------------------------------------------------

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
    events: usize,
    /// (ph, id) of every flow event (`s`/`t`/`f`) seen, for pairing checks.
    flows: Vec<(char, String)>,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&c) = self.s.get(self.i) else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.s.get(self.i) else {
                        return Err(self.err("dangling escape"));
                    };
                    self.i += 1;
                    match e {
                        b'"' | b'\\' | b'/' => out.push(e as char),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' | b'f' => out.push(' '),
                        b'u' => {
                            if self.i + 4 > self.s.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            self.i += 4;
                            out.push(' ');
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c => out.push(c as char),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.s.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .s
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        if self.i == start {
            Err(self.err("expected number"))
        } else {
            Ok(())
        }
    }

    /// Parse any value; `as_event` checks the required trace-event keys.
    fn value(&mut self, as_event: bool) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(as_event),
            Some(b'[') => self.array(false),
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self, as_event: bool) -> Result<(), String> {
        self.eat(b'{')?;
        let mut keys: Vec<String> = Vec::new();
        let mut ph: Option<String> = None;
        let mut id: Option<String> = None;
        if self.peek() == Some(b'}') {
            self.i += 1;
        } else {
            loop {
                let k = self.string()?;
                self.eat(b':')?;
                // Capture the raw value text of the keys the flow checks
                // need; everything else is structurally validated and
                // discarded.
                self.skip_ws();
                let vstart = self.i;
                self.value(false)?;
                if as_event && (k == "ph" || k == "id") {
                    let raw = std::str::from_utf8(&self.s[vstart..self.i])
                        .unwrap_or("")
                        .trim()
                        .trim_matches('"')
                        .to_string();
                    if k == "ph" {
                        ph = Some(raw);
                    } else {
                        id = Some(raw);
                    }
                }
                keys.push(k);
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }
        if as_event {
            for required in ["name", "ph", "ts", "pid", "tid"] {
                if !keys.iter().any(|k| k == required) {
                    return Err(self.err(&format!("event missing \"{required}\"")));
                }
            }
            if let Some(ph) = ph.as_deref() {
                if let "s" | "t" | "f" = ph {
                    let Some(id) = id else {
                        return Err(self.err(&format!("flow event \"{ph}\" missing \"id\"")));
                    };
                    self.flows.push((ph.chars().next().unwrap(), id));
                }
            }
            self.events += 1;
        }
        Ok(())
    }

    /// Flow-event pairing: every `s` (start) must be matched by exactly
    /// one `f` (finish) under the same id, ids must be unique per chain
    /// (no reuse across starts), and a step or finish must never name an
    /// id that was never started.
    fn check_flows(&self) -> Result<(), String> {
        let ids_of = |want: char| {
            self.flows
                .iter()
                .filter(move |(ph, _)| *ph == want)
                .map(|(_, id)| id.as_str())
        };
        for want in ['s', 'f'] {
            let mut seen: Vec<&str> = Vec::new();
            for id in ids_of(want) {
                if seen.contains(&id) {
                    return Err(format!("flow id {id} has more than one \"{want}\" event"));
                }
                seen.push(id);
            }
        }
        let starts: Vec<&str> = ids_of('s').collect();
        for (ph, id) in &self.flows {
            if matches!(ph, 't' | 'f') && !starts.contains(&id.as_str()) {
                return Err(format!("flow \"{ph}\" for id {id} has no matching \"s\" start"));
            }
        }
        let finishes: Vec<&str> = ids_of('f').collect();
        for id in &starts {
            if !finishes.contains(id) {
                return Err(format!("flow \"s\" for id {id} has no matching \"f\" finish"));
            }
        }
        Ok(())
    }

    fn array(&mut self, of_events: bool) -> Result<(), String> {
        self.eat(b'[')?;
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.value(of_events)?;
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

/// Structurally validate Chrome trace-event JSON: well-formed JSON, a
/// top-level `traceEvents` array (or a bare array), every event carrying
/// `name`/`ph`/`ts`/`pid`/`tid`, and flow events properly paired (each
/// `s` start matched by exactly one `f` finish under a unique id, no
/// step/finish without a start). Returns the event count.
pub fn validate(json: &str) -> Result<usize, String> {
    let mut p = Parser {
        s: json.as_bytes(),
        i: 0,
        events: 0,
        flows: Vec::new(),
    };
    match p.peek() {
        Some(b'[') => p.array(true)?,
        Some(b'{') => {
            p.eat(b'{')?;
            let mut saw_trace_events = false;
            loop {
                let k = p.string()?;
                p.eat(b':')?;
                if k == "traceEvents" {
                    saw_trace_events = true;
                    p.array(true)?;
                } else {
                    p.value(false)?;
                }
                match p.peek() {
                    Some(b',') => p.i += 1,
                    Some(b'}') => {
                        p.i += 1;
                        break;
                    }
                    _ => return Err(p.err("expected ',' or '}'")),
                }
            }
            if !saw_trace_events {
                return Err("no \"traceEvents\" array".into());
            }
        }
        _ => return Err("expected '{' or '['".into()),
    }
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing garbage"));
    }
    p.check_flows()?;
    Ok(p.events)
}

/// `validate`, then additionally require at least one
/// `serialize-request` and one `serialize-deliver` event (the pairing
/// the Dekker example must demonstrate).
pub fn validate_with_serialize_pair(json: &str) -> Result<usize, String> {
    let n = validate(json)?;
    for needle in [EventKind::SerializeRequest.name(), EventKind::SerializeDeliver.name()] {
        if !json.contains(&format!("\"name\":\"{needle}\"")) {
            return Err(format!("no \"{needle}\" event in trace"));
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FenceEvent, ThreadTrace};

    fn sample() -> TraceSnapshot {
        TraceSnapshot {
            threads: vec![ThreadTrace {
                tid: 0,
                name: "primary \"p0\"".into(),
                events: vec![
                    FenceEvent {
                        nanos: 1500,
                        thread: 0,
                        kind: EventKind::PrimaryFence,
                        guarded_addr: 0xbeef,
                        dur: 0,
                        corr: 0,
                    },
                    FenceEvent {
                        nanos: 2500,
                        thread: 0,
                        kind: EventKind::SerializeDeliver,
                        guarded_addr: 0,
                        dur: 4000,
                        corr: 0,
                    },
                ],
                dropped: 2,
            }],
        }
    }

    #[test]
    fn export_self_validates() {
        let json = export(&sample());
        let n = validate(&json).expect("valid");
        // metadata + 2 events + dropped counter
        assert_eq!(n, 4);
        assert!(json.contains("\"ph\":\"X\""), "span event present");
        assert!(json.contains("\"ph\":\"i\""), "instant event present");
        assert!(json.contains("\"dropped\":2"));
        assert!(json.contains("primary \\\"p0\\\""), "name escaped");
        assert!(json.contains("\"ts\":1.500"), "ns -> us conversion");
    }

    #[test]
    fn empty_snapshot_validates() {
        let json = export(&TraceSnapshot::default());
        assert_eq!(validate(&json), Ok(0));
    }

    #[test]
    fn validate_rejects_malformed() {
        assert!(validate("{\"traceEvents\":[").is_err());
        assert!(validate("{}").is_err(), "missing traceEvents");
        assert!(
            validate("{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\"}]}").is_err(),
            "event missing ts/pid/tid"
        );
        assert!(validate("{\"traceEvents\":[]}extra").is_err());
        assert!(validate("").is_err());
    }

    fn chain_snapshot(corr: u64) -> TraceSnapshot {
        let ev = |thread: u32, nanos: u64, kind: EventKind| FenceEvent {
            nanos,
            thread,
            kind,
            guarded_addr: 0x40,
            dur: 0,
            corr,
        };
        TraceSnapshot {
            threads: vec![
                ThreadTrace {
                    tid: 0,
                    name: "requester".into(),
                    events: vec![
                        ev(0, 1_000, EventKind::SerializeRequest),
                        ev(0, 1_100, EventKind::SerializeSignalSent),
                        ev(0, 2_000, EventKind::SerializeAckObserved),
                    ],
                    dropped: 0,
                },
                ThreadTrace {
                    tid: 1,
                    name: "target/serialize-handler".into(),
                    events: vec![
                        ev(1, 1_400, EventKind::SerializeHandlerEnter),
                        ev(1, 1_600, EventKind::SerializeDrained),
                    ],
                    dropped: 0,
                },
            ],
        }
    }

    #[test]
    fn chains_export_paired_flow_events() {
        let json = export(&chain_snapshot(77));
        validate(&json).expect("flow pairing must self-validate");
        // One s, three t, one f, all under id 77, crossing both tids.
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"t\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1);
        assert_eq!(json.matches("\"id\":77").count(), 5);
        assert!(json.contains("\"name\":\"serialize-chain\",\"ph\":\"s\",\"pid\":1,\"tid\":0"));
        assert!(json.contains("\"name\":\"serialize-chain\",\"ph\":\"t\",\"pid\":1,\"tid\":1"));
        assert!(json.contains("\"bp\":\"e\""), "finish binds to enclosing slice");
        // The phase events themselves carry corr in args.
        assert!(json.contains("\"corr\":77"));
    }

    #[test]
    fn strategy_metadata_and_corr_args_export() {
        let json = export_with_strategy(&chain_snapshot(3), Some("lbmf-signal"));
        validate(&json).expect("valid");
        assert!(json.contains("\"name\":\"lbmf_strategy\""));
        assert!(json.contains("\"args\":{\"name\":\"lbmf-signal\"}"));
        assert!(json.contains("\"addr\":\"0x40\",\"corr\":3"), "addr and corr coexist in args");
        // Without a strategy there is no metadata row.
        assert!(!export(&chain_snapshot(3)).contains("lbmf_strategy"));
    }

    #[test]
    fn single_event_chains_emit_no_flows() {
        let mut snap = chain_snapshot(5);
        snap.threads[1].events.clear();
        snap.threads[0].events.truncate(1);
        let json = export(&snap);
        validate(&json).expect("valid");
        assert!(!json.contains("\"ph\":\"s\""), "nothing to link");
        assert!(!json.contains("\"ph\":\"f\""));
    }

    #[test]
    fn validator_rejects_broken_flows() {
        let wrap = |evs: &str| format!("{{\"traceEvents\":[{evs}]}}");
        let flow = |ph: &str, id: u64| {
            format!(
                "{{\"name\":\"c\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":0,\"ts\":1,\"id\":{id}}}"
            )
        };
        // Unmatched start.
        let err = validate(&wrap(&flow("s", 1))).unwrap_err();
        assert!(err.contains("no matching \"f\""), "{err}");
        // Unmatched finish.
        let err = validate(&wrap(&flow("f", 2))).unwrap_err();
        assert!(err.contains("no matching \"s\""), "{err}");
        // Step without a start.
        let err =
            validate(&wrap(&[flow("s", 3), flow("t", 4), flow("f", 3)].join(","))).unwrap_err();
        assert!(err.contains("\"t\" for id 4"), "{err}");
        // Duplicate start under one id (ids must be unique per chain).
        let err = validate(&wrap(&[flow("s", 5), flow("s", 5), flow("f", 5)].join(",")))
            .unwrap_err();
        assert!(err.contains("more than one \"s\""), "{err}");
        // Flow event with no id at all.
        let bare = "{\"name\":\"c\",\"ph\":\"s\",\"pid\":1,\"tid\":0,\"ts\":1}";
        let err = validate(&wrap(bare)).unwrap_err();
        assert!(err.contains("missing \"id\""), "{err}");
        // A healthy pair (string ids too) still passes.
        let good = wrap(
            "{\"name\":\"c\",\"ph\":\"s\",\"pid\":1,\"tid\":0,\"ts\":1,\"id\":\"a\"},\
             {\"name\":\"c\",\"ph\":\"f\",\"pid\":1,\"tid\":1,\"ts\":2,\"id\":\"a\"}",
        );
        assert_eq!(validate(&good), Ok(2));
    }

    #[test]
    fn serialize_pair_check() {
        let json = export(&sample());
        assert!(validate_with_serialize_pair(&json)
            .unwrap_err()
            .contains("serialize-request"));
    }

    #[test]
    fn chrome_writer_public_api_self_validates() {
        // The writer external event sources (lbmf-sim) build on: spans,
        // instants, args, and a paired flow arrow must pass validate().
        let mut w = ChromeWriter::new();
        w.thread_name(7, "cpu7");
        w.open("M", 'X', 7, 3.0);
        w.dur(2.0);
        w.arg_str("state", "Modified");
        w.arg_u64("line", 4);
        w.close();
        w.open("BusRd", 'i', 7, 5.0);
        w.scope('t');
        w.close();
        w.open("remote-downgrade", 's', 7, 5.0);
        w.flow_id(1);
        w.close();
        w.open("remote-downgrade", 'f', 8, 6.0);
        w.flow_id(1);
        w.bind_enclosing();
        w.close();
        let json = w.finish();
        assert_eq!(validate(&json), Ok(5));
        assert!(json.contains("\"args\":{\"state\":\"Modified\",\"line\":4}"));
        assert!(json.contains("\"cat\":\"lbmf\",\"id\":1"));
        assert!(json.contains("\"bp\":\"e\""));
    }

    #[test]
    fn check_trace_converts() {
        let trace = "   1. T0: start\n   2. T0: store L0 <- 1 (buffered)\n\
                     3. memory: commit T0 L0 = 1\n   4. T1: serialize T0 (drained 1)\n\
                     5. !! violation (MutualExclusion): both inside\n   6. T0: finish";
        let json = from_check_trace(trace);
        let n = validate(&json).expect("valid");
        assert!(n >= 6, "events for every line plus metadata, got {n}");
        assert!(json.contains("store L0 <- 1 (buffered)"));
        assert!(json.contains("memory (store buffers)"));
        assert!(json.contains("violation (MutualExclusion)"));
        assert!(json.contains("\"tid\":1000"));
        assert!(json.contains("\"tid\":1001"));
    }
}
