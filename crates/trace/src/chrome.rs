//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! Emits the classic "JSON object format": `{"traceEvents": [...]}` with
//! per-thread metadata (`ph:"M"` `thread_name`), instant events
//! (`ph:"i"`, thread-scoped), complete spans (`ph:"X"` with `dur`), and a
//! per-thread `dropped` counter (`ph:"C"`). Timestamps are microseconds
//! (floats), converted from the snapshot's nanosecond stamps.
//!
//! Also hosts [`validate`], a dependency-free structural self-check used
//! by CI and the examples, and [`from_check_trace`], which turns an
//! `lbmf-check` counterexample trace into the same format so a
//! model-checker violation opens in Perfetto next to a real-run trace.

use crate::{EventKind, TraceSnapshot};
use std::fmt::Write as _;

/// All process ids in one trace (Perfetto groups rows by pid/tid).
const PID: u32 = 1;

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

struct EventWriter {
    out: String,
    first: bool,
}

impl EventWriter {
    fn new() -> Self {
        EventWriter {
            out: String::from("{\"traceEvents\":[\n"),
            first: true,
        }
    }

    /// Open one event object with the common fields; caller appends extra
    /// `,"k":v` pairs to the returned buffer and must call `close_event`.
    fn open(&mut self, name: &str, ph: char, tid: u32, ts_us: f64) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str("{\"name\":\"");
        escape_into(&mut self.out, name);
        let _ = write!(
            self.out,
            "\",\"ph\":\"{ph}\",\"pid\":{PID},\"tid\":{tid},\"ts\":{ts_us:.3}"
        );
    }

    fn close(&mut self) {
        self.out.push('}');
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

/// Render a snapshot as Chrome trace-event JSON. The output always
/// passes [`validate`].
pub fn export(snap: &TraceSnapshot) -> String {
    let mut w = EventWriter::new();
    for t in &snap.threads {
        // Row label.
        w.open("thread_name", 'M', t.tid, 0.0);
        w.out.push_str(",\"args\":{\"name\":\"");
        escape_into(&mut w.out, &t.name);
        w.out.push_str("\"}");
        w.close();
        for e in &t.events {
            let ts = e.nanos as f64 / 1000.0;
            if e.dur > 0 {
                w.open(e.kind.name(), 'X', t.tid, ts);
                let _ = write!(w.out, ",\"dur\":{:.3}", e.dur as f64 / 1000.0);
            } else {
                w.open(e.kind.name(), 'i', t.tid, ts);
                w.out.push_str(",\"s\":\"t\"");
            }
            if e.guarded_addr != 0 {
                let _ = write!(w.out, ",\"args\":{{\"addr\":\"{:#x}\"}}", e.guarded_addr);
            }
            w.close();
        }
        // Lossy-by-design: the wrap count is part of the export.
        let end = t.events.last().map_or(0.0, |e| e.nanos as f64 / 1000.0);
        w.open("dropped", 'C', t.tid, end);
        let _ = write!(w.out, ",\"args\":{{\"dropped\":{}}}", t.dropped);
        w.close();
    }
    w.finish()
}

/// Convert an `lbmf-check` counterexample trace (the `Violation::trace`
/// string: numbered lines like `"   3. T0: store L0 <- 1 (buffered)"`)
/// into Chrome trace-event JSON. Virtual time is the trace step index,
/// one microsecond per step; `memory:` commit/drain lines and the `!!`
/// violation marker get pseudo-thread rows of their own.
pub fn from_check_trace(trace: &str) -> String {
    const MEMORY_TID: u32 = 1000;
    const VERDICT_TID: u32 = 1001;
    let mut w = EventWriter::new();
    let mut named: Vec<u32> = Vec::new();
    let mut name_row = |w: &mut EventWriter, tid: u32, name: &str| {
        if !named.contains(&tid) {
            named.push(tid);
            w.open("thread_name", 'M', tid, 0.0);
            w.out.push_str(",\"args\":{\"name\":\"");
            escape_into(&mut w.out, name);
            w.out.push_str("\"}");
            w.close();
        }
    };
    for (step, line) in trace.lines().enumerate() {
        let line = line.trim_start();
        // Strip the "   3. " numbering the report prepends.
        let line = match line.split_once(". ") {
            Some((n, rest)) if n.chars().all(|c| c.is_ascii_digit()) => rest,
            _ => line,
        };
        let ts = step as f64;
        if let Some(rest) = line.strip_prefix("!! ") {
            name_row(&mut w, VERDICT_TID, "verdict");
            w.open(rest, 'i', VERDICT_TID, ts);
            w.out.push_str(",\"s\":\"g\""); // global-scope marker
            w.close();
        } else if let Some(rest) = line.strip_prefix("memory: ") {
            name_row(&mut w, MEMORY_TID, "memory (store buffers)");
            w.open(rest, 'i', MEMORY_TID, ts);
            w.out.push_str(",\"s\":\"t\"");
            w.close();
        } else if let Some((t, rest)) = line.split_once(": ") {
            let Some(tid) = t
                .strip_prefix('T')
                .and_then(|n| n.parse::<u32>().ok())
            else {
                continue;
            };
            name_row(&mut w, tid, t);
            w.open(rest, 'i', tid, ts);
            w.out.push_str(",\"s\":\"t\"");
            w.close();
        }
    }
    w.finish()
}

// ---------------------------------------------------------------------
// Self-check: a dependency-free structural validator.
// ---------------------------------------------------------------------

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
    events: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&c) = self.s.get(self.i) else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.s.get(self.i) else {
                        return Err(self.err("dangling escape"));
                    };
                    self.i += 1;
                    match e {
                        b'"' | b'\\' | b'/' => out.push(e as char),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' | b'f' => out.push(' '),
                        b'u' => {
                            if self.i + 4 > self.s.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            self.i += 4;
                            out.push(' ');
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c => out.push(c as char),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.s.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .s
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        if self.i == start {
            Err(self.err("expected number"))
        } else {
            Ok(())
        }
    }

    /// Parse any value; `as_event` checks the required trace-event keys.
    fn value(&mut self, as_event: bool) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(as_event),
            Some(b'[') => self.array(false),
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self, as_event: bool) -> Result<(), String> {
        self.eat(b'{')?;
        let mut keys: Vec<String> = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
        } else {
            loop {
                let k = self.string()?;
                self.eat(b':')?;
                self.value(false)?;
                keys.push(k);
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }
        if as_event {
            for required in ["name", "ph", "ts", "pid", "tid"] {
                if !keys.iter().any(|k| k == required) {
                    return Err(self.err(&format!("event missing \"{required}\"")));
                }
            }
            self.events += 1;
        }
        Ok(())
    }

    fn array(&mut self, of_events: bool) -> Result<(), String> {
        self.eat(b'[')?;
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.value(of_events)?;
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

/// Structurally validate Chrome trace-event JSON: well-formed JSON, a
/// top-level `traceEvents` array (or a bare array), and every event
/// carrying `name`/`ph`/`ts`/`pid`/`tid`. Returns the event count.
pub fn validate(json: &str) -> Result<usize, String> {
    let mut p = Parser {
        s: json.as_bytes(),
        i: 0,
        events: 0,
    };
    match p.peek() {
        Some(b'[') => p.array(true)?,
        Some(b'{') => {
            p.eat(b'{')?;
            let mut saw_trace_events = false;
            loop {
                let k = p.string()?;
                p.eat(b':')?;
                if k == "traceEvents" {
                    saw_trace_events = true;
                    p.array(true)?;
                } else {
                    p.value(false)?;
                }
                match p.peek() {
                    Some(b',') => p.i += 1,
                    Some(b'}') => {
                        p.i += 1;
                        break;
                    }
                    _ => return Err(p.err("expected ',' or '}'")),
                }
            }
            if !saw_trace_events {
                return Err("no \"traceEvents\" array".into());
            }
        }
        _ => return Err("expected '{' or '['".into()),
    }
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(p.events)
}

/// `validate`, then additionally require at least one
/// `serialize-request` and one `serialize-deliver` event (the pairing
/// the Dekker example must demonstrate).
pub fn validate_with_serialize_pair(json: &str) -> Result<usize, String> {
    let n = validate(json)?;
    for needle in [EventKind::SerializeRequest.name(), EventKind::SerializeDeliver.name()] {
        if !json.contains(&format!("\"name\":\"{needle}\"")) {
            return Err(format!("no \"{needle}\" event in trace"));
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FenceEvent, ThreadTrace};

    fn sample() -> TraceSnapshot {
        TraceSnapshot {
            threads: vec![ThreadTrace {
                tid: 0,
                name: "primary \"p0\"".into(),
                events: vec![
                    FenceEvent {
                        nanos: 1500,
                        thread: 0,
                        kind: EventKind::PrimaryFence,
                        guarded_addr: 0xbeef,
                        dur: 0,
                    },
                    FenceEvent {
                        nanos: 2500,
                        thread: 0,
                        kind: EventKind::SerializeDeliver,
                        guarded_addr: 0,
                        dur: 4000,
                    },
                ],
                dropped: 2,
            }],
        }
    }

    #[test]
    fn export_self_validates() {
        let json = export(&sample());
        let n = validate(&json).expect("valid");
        // metadata + 2 events + dropped counter
        assert_eq!(n, 4);
        assert!(json.contains("\"ph\":\"X\""), "span event present");
        assert!(json.contains("\"ph\":\"i\""), "instant event present");
        assert!(json.contains("\"dropped\":2"));
        assert!(json.contains("primary \\\"p0\\\""), "name escaped");
        assert!(json.contains("\"ts\":1.500"), "ns -> us conversion");
    }

    #[test]
    fn empty_snapshot_validates() {
        let json = export(&TraceSnapshot::default());
        assert_eq!(validate(&json), Ok(0));
    }

    #[test]
    fn validate_rejects_malformed() {
        assert!(validate("{\"traceEvents\":[").is_err());
        assert!(validate("{}").is_err(), "missing traceEvents");
        assert!(
            validate("{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\"}]}").is_err(),
            "event missing ts/pid/tid"
        );
        assert!(validate("{\"traceEvents\":[]}extra").is_err());
        assert!(validate("").is_err());
    }

    #[test]
    fn serialize_pair_check() {
        let json = export(&sample());
        assert!(validate_with_serialize_pair(&json)
            .unwrap_err()
            .contains("serialize-request"));
    }

    #[test]
    fn check_trace_converts() {
        let trace = "   1. T0: start\n   2. T0: store L0 <- 1 (buffered)\n\
                     3. memory: commit T0 L0 = 1\n   4. T1: serialize T0 (drained 1)\n\
                     5. !! violation (MutualExclusion): both inside\n   6. T0: finish";
        let json = from_check_trace(trace);
        let n = validate(&json).expect("valid");
        assert!(n >= 6, "events for every line plus metadata, got {n}");
        assert!(json.contains("store L0 <- 1 (buffered)"));
        assert!(json.contains("memory (store buffers)"));
        assert!(json.contains("violation (MutualExclusion)"));
        assert!(json.contains("\"tid\":1000"));
        assert!(json.contains("\"tid\":1001"));
    }
}
