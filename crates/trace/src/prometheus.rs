//! Prometheus-style text export.
//!
//! A flat, scrape-format dump of a [`TraceSnapshot`]: per-thread/per-kind
//! event totals, per-thread dropped totals, and a cumulative log2
//! histogram of serialize round-trip latency. This is a point-in-time
//! render of one snapshot, not a live endpoint — pipe it to a file and
//! let the scraper read that.

use crate::{EventKind, TraceSnapshot};
use std::fmt::Write as _;

fn label_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Render one `counter` metric family in exposition format: a single
/// `# HELP` / `# TYPE` header pair followed by one sample line per label
/// set, appended to `out`.
///
/// This is the generic half of [`export`], made public so other crates'
/// counters — `lbmf-sim`'s `BusStats` and link-clear tallies in
/// particular — render through the same (conformance-tested) formatter
/// instead of hand-rolling exposition text. `name` and label keys must
/// already be legal metric/label names (`[a-zA-Z_:][a-zA-Z0-9_:]*` /
/// `[a-zA-Z_][a-zA-Z0-9_]*`); label *values* are escaped here.
pub fn render_counter_family(
    out: &mut String,
    name: &str,
    help: &str,
    samples: &[(&[(&str, &str)], u64)],
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    for (labels, value) in samples {
        out.push_str(name);
        if !labels.is_empty() {
            out.push('{');
            for (k, (lk, lv)) in labels.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{lk}=\"{}\"", label_escape(lv));
            }
            out.push('}');
        }
        let _ = writeln!(out, " {value}");
    }
}

/// Render a snapshot in Prometheus exposition format.
pub fn export(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    out.push_str("# HELP lbmf_trace_events_total Events recorded, by thread and kind.\n");
    out.push_str("# TYPE lbmf_trace_events_total counter\n");
    for t in &snap.threads {
        let name = label_escape(&t.name);
        for kind in EventKind::ALL {
            let n = t.events.iter().filter(|e| e.kind == kind).count();
            if n > 0 {
                let _ = writeln!(
                    out,
                    "lbmf_trace_events_total{{thread=\"{name}\",kind=\"{}\"}} {n}",
                    kind.name()
                );
            }
        }
    }
    out.push_str("# HELP lbmf_trace_dropped_total Events lost to ring wrap-around, by thread.\n");
    out.push_str("# TYPE lbmf_trace_dropped_total counter\n");
    for t in &snap.threads {
        let _ = writeln!(
            out,
            "lbmf_trace_dropped_total{{thread=\"{}\"}} {}",
            label_escape(&t.name),
            t.dropped
        );
    }
    let h = snap.latency_histogram(EventKind::SerializeDeliver);
    out.push_str(
        "# HELP lbmf_trace_serialize_latency Serialize round-trip wait (ns real / cycles simulated), log2 buckets.\n",
    );
    out.push_str("# TYPE lbmf_trace_serialize_latency histogram\n");
    let mut cumulative = 0;
    for (upper, count) in h.nonzero_buckets() {
        cumulative += count;
        let _ = writeln!(
            out,
            "lbmf_trace_serialize_latency_bucket{{le=\"{upper}\"}} {cumulative}"
        );
    }
    let _ = writeln!(
        out,
        "lbmf_trace_serialize_latency_bucket{{le=\"+Inf\"}} {}",
        h.count()
    );
    let _ = writeln!(out, "lbmf_trace_serialize_latency_sum {}", h.sum());
    let _ = writeln!(out, "lbmf_trace_serialize_latency_count {}", h.count());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FenceEvent, ThreadTrace};

    #[test]
    fn export_has_counters_and_histogram() {
        let snap = TraceSnapshot {
            threads: vec![ThreadTrace {
                tid: 0,
                name: "w0".into(),
                events: vec![
                    FenceEvent {
                        nanos: 1,
                        thread: 0,
                        kind: EventKind::PrimaryFence,
                        guarded_addr: 0,
                        dur: 0,
                        corr: 0,
                    },
                    FenceEvent {
                        nanos: 2,
                        thread: 0,
                        kind: EventKind::SerializeDeliver,
                        guarded_addr: 0,
                        dur: 700,
                        corr: 0,
                    },
                ],
                dropped: 3,
            }],
        };
        let text = export(&snap);
        assert!(text
            .contains("lbmf_trace_events_total{thread=\"w0\",kind=\"primary-fence\"} 1"));
        assert!(text.contains("lbmf_trace_dropped_total{thread=\"w0\"} 3"));
        // 700 lands in the log2 bucket with inclusive upper bound 1023.
        assert!(text.contains("lbmf_trace_serialize_latency_bucket{le=\"1023\"} 1"));
        assert!(text.contains("lbmf_trace_serialize_latency_sum 700"));
        assert!(text.contains("lbmf_trace_serialize_latency_count 1"));
    }

    #[test]
    fn counter_family_renders_headers_labels_and_bare_samples() {
        let mut out = String::new();
        render_counter_family(
            &mut out,
            "lbmf_sim_bus_ops_total",
            "Bus transactions, by kind.",
            &[
                (&[("op", "BusRd")], 3),
                (&[("op", "BusRdX"), ("proto", "MESI")], 1),
            ],
        );
        render_counter_family(&mut out, "lbmf_sim_mfences_total", "mfences retired.", &[(&[], 2)]);
        assert!(out.contains("# HELP lbmf_sim_bus_ops_total Bus transactions, by kind.\n"));
        assert!(out.contains("# TYPE lbmf_sim_bus_ops_total counter\n"));
        assert!(out.contains("lbmf_sim_bus_ops_total{op=\"BusRd\"} 3\n"));
        assert!(out.contains("lbmf_sim_bus_ops_total{op=\"BusRdX\",proto=\"MESI\"} 1\n"));
        assert!(out.contains("lbmf_sim_mfences_total 2\n"), "no braces without labels");
        // Label values escape exposition-format specials.
        let mut esc = String::new();
        render_counter_family(&mut esc, "m_total", "h", &[(&[("k", "a\"b\\c")], 1)]);
        assert!(esc.contains("m_total{k=\"a\\\"b\\\\c\"} 1\n"));
    }
}
