//! Per-thread, fixed-capacity, lock-free event rings.
//!
//! One ring per recording thread, single-producer by construction (the
//! owning thread appends, nobody else). An append is the instrumentation
//! cost on the primary fast path, so it must obey the paper's own
//! discipline — it performs
//!
//! * `Relaxed` stores into the slot's words, and
//! * `compiler_fence(SeqCst)` between the protocol stages;
//!
//! never an atomic RMW, never a hardware fence, never a lock. The
//! *drainer* pays instead: [`ThreadRing::drain`] executes a full
//! `fence(SeqCst)` up front and validates each slot with a seqlock-style
//! sequence word (odd while a write is in flight, `2·(i+1)` once logical
//! index `i` landed), skipping anything torn or mid-overwrite.
//!
//! Wrapping is lossy by design: index `i` lives in slot `i % capacity`,
//! so the newest `capacity` events survive and `dropped()` reports how
//! many were overwritten. A tracer that blocks the traced thread when its
//! buffer fills would reintroduce the serialization we are measuring.

use crate::{EventKind, FenceEvent, ThreadTrace, TraceSnapshot};
use std::cell::OnceCell;
use std::sync::atomic::{compiler_fence, fence, AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity in events (2^10 = 1024; ~40 KiB).
/// Rings live for the life of the process, so this bounds tracing memory
/// at ~40 KiB per thread that ever recorded.
pub const DEFAULT_CAPACITY_LOG2: u32 = 10;

/// Default per-thread ring capacity in events.
pub const DEFAULT_CAPACITY: usize = 1 << DEFAULT_CAPACITY_LOG2;

/// One slot: a sequence word plus the four event payload words.
/// All plain atomics — written `Relaxed` by the producer, validated by
/// the drainer through `seq`.
#[derive(Debug, Default)]
struct Slot {
    /// `2·i + 1` while logical index `i` is being written, `2·(i + 1)`
    /// once it landed. A drainer reading logical index `i` accepts the
    /// payload only if `seq == 2·(i + 1)` both before and after reading.
    seq: AtomicU64,
    nanos: AtomicU64,
    kind: AtomicU64,
    addr: AtomicU64,
    dur: AtomicU64,
}

/// A single-producer event ring. Obtain one implicitly through [`record`]
/// (per-thread, registered in the global registry) or explicitly through
/// [`ThreadRing::new`] for tests and simulated streams.
#[derive(Debug)]
pub struct ThreadRing {
    tid: u32,
    name: String,
    mask: u64,
    /// Total events ever appended (monotone; `head - capacity` of them
    /// have been overwritten once `head > capacity`).
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl ThreadRing {
    /// A ring with capacity `2^capacity_log2` events.
    pub fn new(tid: u32, name: impl Into<String>, capacity_log2: u32) -> Self {
        let cap = 1usize << capacity_log2;
        ThreadRing {
            tid,
            name: name.into(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::default()).collect(),
        }
    }

    /// This ring's small thread id.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// The thread name captured at registration.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever appended (including overwritten ones).
    pub fn appended(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events overwritten so far (ring wraps drop the oldest).
    pub fn dropped(&self) -> u64 {
        self.appended().saturating_sub(self.slots.len() as u64)
    }

    /// Append one event. **Producer side**: plain `Relaxed` stores and
    /// compiler fences only — no RMW, no hardware fence, no lock, no
    /// allocation. Call only from the owning thread (a second concurrent
    /// producer cannot corrupt memory, but its events may be lost).
    #[inline]
    pub fn append(&self, nanos: u64, kind: EventKind, addr: usize, dur: u64) {
        self.append_corr(nanos, kind, addr, dur, 0);
    }

    /// [`ThreadRing::append`] with a causal correlation id. The id is
    /// packed into the upper 56 bits of the slot's kind word, so carrying
    /// it costs the producer *nothing*: the append is the exact same
    /// number of `Relaxed` stores as before (ids above 2^56 wrap into the
    /// field; at one mint per remote serialization that is unreachable).
    #[inline]
    pub fn append_corr(&self, nanos: u64, kind: EventKind, addr: usize, dur: u64, corr: u64) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h & self.mask) as usize];
        // Stage 1: mark the slot in-flight (odd seq) so a concurrent
        // drainer discards whatever it reads from it.
        slot.seq.store(2 * h + 1, Ordering::Relaxed);
        compiler_fence(Ordering::SeqCst);
        // Stage 2: the payload. Kind occupies the low byte, corr the rest.
        slot.nanos.store(nanos, Ordering::Relaxed);
        slot.kind.store(kind as u8 as u64 | (corr << 8), Ordering::Relaxed);
        slot.addr.store(addr as u64, Ordering::Relaxed);
        slot.dur.store(dur, Ordering::Relaxed);
        compiler_fence(Ordering::SeqCst);
        // Stage 3: publish — seq names the logical index that landed,
        // then head advances.
        slot.seq.store(2 * (h + 1), Ordering::Relaxed);
        compiler_fence(Ordering::SeqCst);
        self.head.store(h + 1, Ordering::Relaxed);
    }

    /// Drain the surviving events, oldest first. **Drainer side**: this
    /// is where the synchronization cost lives — a full `fence(SeqCst)`
    /// up front, then per-slot seq validation; torn or in-flight slots
    /// are skipped rather than misread. Non-destructive (the producer
    /// keeps appending; drain again later for more).
    pub fn drain(&self) -> ThreadTrace {
        fence(Ordering::SeqCst); // the drainer pays
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut events = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            let slot = &self.slots[(i & self.mask) as usize];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != 2 * (i + 1) {
                continue; // overwritten by a newer lap, or mid-write
            }
            let nanos = slot.nanos.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let addr = slot.addr.load(Ordering::Relaxed);
            let dur = slot.dur.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // overwritten while we were reading
            }
            let corr = kind >> 8;
            let Some(kind) = EventKind::from_u8(kind as u8) else {
                continue;
            };
            events.push(FenceEvent {
                nanos,
                thread: self.tid,
                kind,
                guarded_addr: addr as usize,
                dur,
                corr,
            });
        }
        ThreadTrace {
            tid: self.tid,
            name: self.name.clone(),
            events,
            dropped: start,
        }
    }
}

// ---------------------------------------------------------------------
// Process-wide recording: one ring per thread, registered lazily.
// ---------------------------------------------------------------------

/// Runtime kill-switch (recording defaults to on; the *compile-time*
/// switch is `lbmf`'s `trace` cargo feature).
static ENABLED: AtomicBool = AtomicBool::new(true);

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

fn registry() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static RING: OnceCell<Arc<ThreadRing>> = const { OnceCell::new() };
}

/// Enable or disable recording process-wide. `record` is a no-op while
/// disabled (already-recorded events stay drainable).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Monotonic nanoseconds since the process trace epoch (set at first use).
///
/// Async-signal-safety note: after the first call has initialized the
/// epoch, subsequent calls are a vDSO `clock_gettime` plus arithmetic —
/// safe from a signal handler. Callers that record from handlers must
/// warm this (and their ring) before installing the handler.
#[inline]
pub fn now_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Mint a fresh, process-unique, nonzero correlation id for one causal
/// serialization chain. This is an atomic RMW — it runs on the
/// *requester* (the thread already paying for a remote serialization),
/// never on the primary's fence-free fast path.
#[inline]
pub fn next_corr_id() -> u64 {
    static NEXT_CORR: AtomicU64 = AtomicU64::new(1);
    NEXT_CORR.fetch_add(1, Ordering::Relaxed)
}

fn register_current_thread() -> Arc<ThreadRing> {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let name = std::thread::current()
        .name()
        .map(str::to_owned)
        .unwrap_or_else(|| format!("thread-{tid}"));
    let ring = Arc::new(ThreadRing::new(tid, name, DEFAULT_CAPACITY_LOG2));
    registry().lock().unwrap().push(ring.clone());
    ring
}

/// Allocate and register an auxiliary ring that is *not* any thread's
/// implicit TLS ring. Used for producers that cannot share the owning
/// thread's ring — chiefly signal handlers, which would otherwise reenter
/// a TLS append mid-protocol and corrupt the seqlock. The caller owns the
/// single-producer discipline; the ring drains with everything else in
/// [`take_snapshot`]. Warms [`now_nanos`] so later appends from
/// async-signal context never hit the epoch initialization.
pub fn register_aux_ring(name: impl Into<String>) -> Arc<ThreadRing> {
    now_nanos();
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let ring = Arc::new(ThreadRing::new(tid, name, DEFAULT_CAPACITY_LOG2));
    registry().lock().unwrap().push(ring.clone());
    ring
}

/// Record one event on the calling thread's ring, stamped with
/// [`now_nanos`]. The first event a thread records allocates and
/// registers its ring (a one-time lock + allocation); every subsequent
/// record is the fence-free fast path described in [`ThreadRing::append`].
#[inline]
pub fn record(kind: EventKind, addr: usize, dur: u64) {
    record_at(now_nanos(), kind, addr, dur);
}

/// [`record`] carrying a causal correlation id (see [`next_corr_id`]).
#[inline]
pub fn record_corr(kind: EventKind, addr: usize, dur: u64, corr: u64) {
    record_at_corr(now_nanos(), kind, addr, dur, corr);
}

/// Record one event with an explicit timestamp (used by [`record_span`]
/// and by replayers).
#[inline]
pub fn record_at(nanos: u64, kind: EventKind, addr: usize, dur: u64) {
    record_at_corr(nanos, kind, addr, dur, 0);
}

/// [`record_at`] carrying a causal correlation id.
#[inline]
pub fn record_at_corr(nanos: u64, kind: EventKind, addr: usize, dur: u64, corr: u64) {
    if !is_enabled() {
        return;
    }
    // try_with: a thread unwinding through TLS destruction simply stops
    // recording rather than panicking inside a destructor.
    let _ = RING.try_with(|cell| {
        cell.get_or_init(register_current_thread)
            .append_corr(nanos, kind, addr, dur, corr);
    });
}

/// Record a span that began at `start_nanos` (from [`now_nanos`]) and
/// ends now; the event is stamped at the start with `dur` = elapsed.
#[inline]
pub fn record_span(kind: EventKind, addr: usize, start_nanos: u64) {
    record_at(start_nanos, kind, addr, now_nanos().saturating_sub(start_nanos));
}

/// [`record_span`] carrying a causal correlation id.
#[inline]
pub fn record_span_corr(kind: EventKind, addr: usize, start_nanos: u64, corr: u64) {
    record_at_corr(start_nanos, kind, addr, now_nanos().saturating_sub(start_nanos), corr);
}

/// Drain every registered ring into a [`TraceSnapshot`] (non-destructive;
/// rings keep recording). For a consistent end-of-run trace, join the
/// traced threads first — `join` gives the drainer happens-before with
/// every append; a mid-run snapshot is best-effort (see [`ThreadRing::drain`]).
pub fn take_snapshot() -> TraceSnapshot {
    let rings: Vec<Arc<ThreadRing>> = registry().lock().unwrap().clone();
    TraceSnapshot {
        threads: rings.iter().map(|r| r.drain()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_then_drain_roundtrips() {
        let ring = ThreadRing::new(7, "t7", 4);
        ring.append(10, EventKind::PrimaryFence, 0xabc, 0);
        ring.append(20, EventKind::SerializeDeliver, 0xdef, 5);
        let t = ring.drain();
        assert_eq!(t.tid, 7);
        assert_eq!(t.name, "t7");
        assert_eq!(t.dropped, 0);
        assert_eq!(t.events.len(), 2);
        assert_eq!(
            t.events[0],
            FenceEvent {
                nanos: 10,
                thread: 7,
                kind: EventKind::PrimaryFence,
                guarded_addr: 0xabc,
                dur: 0,
                corr: 0
            }
        );
        assert_eq!(t.events[1].dur, 5);
    }

    #[test]
    fn corr_roundtrips_through_the_kind_word() {
        let ring = ThreadRing::new(1, "corr", 4);
        ring.append_corr(5, EventKind::SerializeSignalSent, 0x10, 0, 42);
        ring.append_corr(6, EventKind::SerializeAckObserved, 0x10, 900, u64::MAX >> 8);
        ring.append(7, EventKind::PrimaryFence, 0, 0);
        let t = ring.drain();
        assert_eq!(t.events[0].kind, EventKind::SerializeSignalSent);
        assert_eq!(t.events[0].corr, 42);
        assert_eq!(t.events[1].corr, u64::MAX >> 8, "full 56-bit field survives");
        assert_eq!(t.events[1].dur, 900);
        assert_eq!(t.events[2].corr, 0, "plain append means no chain");
    }

    #[test]
    fn corr_ids_are_unique_and_nonzero() {
        let a = next_corr_id();
        let b = next_corr_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn aux_ring_registers_and_drains_with_snapshot() {
        let ring = register_aux_ring("aux-unit-ring");
        ring.append_corr(1, EventKind::SerializeHandlerEnter, 0x99, 0, 7);
        let snap = take_snapshot();
        let t = snap
            .threads
            .iter()
            .find(|t| t.name == "aux-unit-ring")
            .expect("aux ring visible to take_snapshot");
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].corr, 7);
    }

    #[test]
    fn wrap_drops_oldest_and_counts() {
        let ring = ThreadRing::new(0, "wrap", 3); // 8 slots
        for i in 0..11u64 {
            ring.append(i, EventKind::StealAttempt, 0, 0);
        }
        assert_eq!(ring.appended(), 11);
        assert_eq!(ring.dropped(), 3);
        let t = ring.drain();
        assert_eq!(t.dropped, 3);
        assert_eq!(t.events.len(), 8);
        // Oldest three (ts 0,1,2) gone; survivors in order.
        assert_eq!(t.events.first().unwrap().nanos, 3);
        assert_eq!(t.events.last().unwrap().nanos, 10);
    }

    #[test]
    fn drain_is_nondestructive_and_incremental() {
        let ring = ThreadRing::new(0, "inc", 4);
        ring.append(1, EventKind::PrimaryFence, 0, 0);
        assert_eq!(ring.drain().events.len(), 1);
        ring.append(2, EventKind::PrimaryFence, 0, 0);
        assert_eq!(ring.drain().events.len(), 2);
    }

    #[test]
    fn record_registers_thread_and_respects_kill_switch() {
        // One test for both global-state behaviours (registration and the
        // ENABLED flag): the flag is process-wide, so a separate test
        // toggling it could race a concurrently running one.
        std::thread::Builder::new()
            .name("ring-unit-recorder".into())
            .spawn(|| {
                set_enabled(false);
                record(EventKind::StealSuccess, 0, 0); // dropped
                set_enabled(true);
                record(EventKind::SafepointEnter, 1, 0);
                record(EventKind::SafepointExit, 1, 9);
            })
            .unwrap()
            .join()
            .unwrap();
        let snap = take_snapshot();
        let t = snap
            .threads
            .iter()
            .find(|t| t.name == "ring-unit-recorder")
            .expect("thread registered on first record");
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].kind, EventKind::SafepointEnter);
        assert!(t.events[0].nanos <= t.events[1].nanos, "monotonic stamps");
    }

    #[test]
    fn concurrent_drain_never_yields_garbage() {
        // A drainer racing the producer may skip torn slots but must never
        // return an event with an undecodable kind or out-of-range index.
        let ring = Arc::new(ThreadRing::new(0, "race", 6));
        let r2 = ring.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..50_000u64 {
                r2.append(i, EventKind::SerializeDeliver, 0x1000, i % 17);
            }
        });
        let mut max_seen = 0;
        for _ in 0..200 {
            let t = ring.drain();
            for e in &t.events {
                assert_eq!(e.kind, EventKind::SerializeDeliver);
                assert_eq!(e.guarded_addr, 0x1000);
                assert_eq!(e.dur, e.nanos % 17);
                max_seen = max_seen.max(e.nanos);
            }
        }
        producer.join().unwrap();
        let t = ring.drain();
        assert_eq!(t.events.len(), 64);
        assert_eq!(t.events.last().unwrap().nanos, 49_999);
        assert_eq!(t.dropped, 50_000 - 64);
    }
}
