//! Per-run plain-text summary table.
//!
//! The "what just happened" view for terminals and logs: event totals
//! per kind, per-thread stream sizes with wrap losses, and percentiles of
//! the serialize round-trip latency.

use crate::{EventKind, TraceSnapshot};
use std::fmt::Write as _;

/// Render a human-readable summary of one snapshot.
pub fn render(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace summary: {} events on {} threads ({} dropped to ring wrap)",
        snap.total_events(),
        snap.threads.len(),
        snap.total_dropped()
    );
    out.push_str("  events by kind:\n");
    for kind in EventKind::ALL {
        let n = snap.count(kind);
        if n > 0 {
            let _ = writeln!(out, "    {:<20} {:>8}", kind.name(), n);
        }
    }
    out.push_str("  threads:\n");
    for t in &snap.threads {
        let _ = writeln!(
            out,
            "    [{:>3}] {:<24} {:>8} events, {:>6} dropped",
            t.tid,
            t.name,
            t.events.len(),
            t.dropped
        );
    }
    let h = snap.latency_histogram(EventKind::SerializeDeliver);
    if h.count() > 0 {
        // Two reads of the same log2 buckets: `~` midpoint (central
        // estimate) and `<=` bucket upper bound (conservative) — the same
        // semantics `lbmf-bench/2` records.
        let _ = writeln!(
            out,
            "  serialize round-trip wait: n={} mean={} p50~{} (<={}) p90~{} (<={}) p99~{} (<={}) max={}",
            h.count(),
            h.mean(),
            h.percentile_midpoint(50),
            h.percentile(50),
            h.percentile_midpoint(90),
            h.percentile(90),
            h.percentile_midpoint(99),
            h.percentile(99),
            h.max()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FenceEvent, ThreadTrace};

    #[test]
    fn render_covers_kinds_threads_and_latency() {
        let snap = TraceSnapshot {
            threads: vec![ThreadTrace {
                tid: 5,
                name: "secondary".into(),
                events: vec![FenceEvent {
                    nanos: 9,
                    thread: 5,
                    kind: EventKind::SerializeDeliver,
                    guarded_addr: 0,
                    dur: 1234,
                    corr: 0,
                }],
                dropped: 1,
            }],
        };
        let text = render(&snap);
        assert!(text.contains("1 events on 1 threads (1 dropped"));
        assert!(text.contains("serialize-deliver"));
        assert!(text.contains("secondary"));
        // 1234 lives in bucket [1024, 2047]: midpoint 1234-clamped? No —
        // midpoint 1535 > max 1234, so clamped to 1234; bound 2047→1234.
        assert!(text.contains("n=1 mean=1234 p50~1234 (<=1234)"), "{text}");
    }

    #[test]
    fn empty_snapshot_renders() {
        let text = render(&TraceSnapshot::default());
        assert!(text.contains("0 events on 0 threads"));
        assert!(!text.contains("serialize round-trip"));
    }
}
