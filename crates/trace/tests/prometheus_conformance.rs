//! Conformance checks for the Prometheus exposition-format exporter:
//! every metric family carries HELP/TYPE lines, metric and label names
//! are legal, the payload ends in a newline, and counters are monotone
//! across two successive snapshots of a live ring. A scraper that
//! rejects any of these would silently drop the whole endpoint, so they
//! are tested as a contract, not a style preference.

use lbmf_trace::prometheus::export;
use lbmf_trace::ring::ThreadRing;
use lbmf_trace::{EventKind, TraceSnapshot};
use std::collections::HashMap;

/// Metric names: `[a-zA-Z_:][a-zA-Z0-9_:]*` (Prometheus data model).
fn legal_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Label names: `[a-zA-Z_][a-zA-Z0-9_]*`, and not double-underscored
/// (reserved).
fn legal_label_name(s: &str) -> bool {
    !s.starts_with("__")
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample line: metric name, sorted label pairs, value.
#[derive(Debug, Clone, PartialEq)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parse an exposition-format payload, asserting structural legality as
/// we go. Returns (samples, help_names, type_names).
fn parse(text: &str) -> (Vec<Sample>, Vec<String>, Vec<String>) {
    let mut samples = Vec::new();
    let mut helps = Vec::new();
    let mut types = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP names a metric");
            assert!(legal_metric_name(name), "illegal HELP name {name:?}");
            helps.push(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE names a metric");
            let ty = parts.next().expect("TYPE declares a type");
            assert!(legal_metric_name(name), "illegal TYPE name {name:?}");
            assert!(
                ["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty),
                "unknown TYPE {ty:?}"
            );
            types.push(name.to_string());
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment form: {line:?}");
        // `name{label="v",...} value` or `name value`.
        let (head, value) = line.rsplit_once(' ').expect("sample has a value");
        let value: f64 = value.parse().unwrap_or_else(|_| panic!("bad value in {line:?}"));
        let (name, labels) = match head.split_once('{') {
            None => (head.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').expect("closed label set");
                let mut labels = Vec::new();
                for pair in body.split("\",") {
                    let pair = pair.strip_suffix('"').unwrap_or(pair);
                    let (k, v) = pair.split_once("=\"").expect("label k=\"v\"");
                    assert!(legal_label_name(k), "illegal label name {k:?} in {line:?}");
                    labels.push((k.to_string(), v.to_string()));
                }
                labels.sort();
                (name.to_string(), labels)
            }
        };
        assert!(legal_metric_name(&name), "illegal metric name {name:?}");
        samples.push(Sample { name, labels, value });
    }
    (samples, helps, types)
}

fn family_of(name: &str) -> &str {
    // Histogram series belong to the family named before the suffix.
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            return stripped;
        }
    }
    name
}

fn live_snapshot(ring: &ThreadRing) -> TraceSnapshot {
    TraceSnapshot {
        threads: vec![ring.drain()],
    }
}

#[test]
fn export_is_conformant_exposition_text() {
    let ring = ThreadRing::new(0, "conform \"w0\"\n", 6);
    ring.append(1, EventKind::PrimaryFence, 0xbeef, 0);
    ring.append(2, EventKind::SerializeRequest, 0xbeef, 0);
    ring.append(3, EventKind::SerializeDeliver, 0xbeef, 750);
    ring.append(4, EventKind::SerializeDeliver, 0xbeef, 74_000);
    let text = export(&live_snapshot(&ring));

    assert!(text.ends_with('\n'), "payload must end with a newline");
    assert!(!text.contains("\n\n"), "no blank lines inside the payload");

    let (samples, helps, types) = parse(&text);
    assert!(!samples.is_empty());

    // Every sample's family is declared with both HELP and TYPE, before
    // first use (parse preserved order, so membership is sufficient given
    // the exporter writes headers first — assert both).
    for s in &samples {
        let fam = family_of(&s.name);
        assert!(helps.iter().any(|h| h == fam), "no HELP for {fam}");
        assert!(types.iter().any(|t| t == fam), "no TYPE for {fam}");
    }
    // And HELP/TYPE come in pairs.
    assert_eq!(helps, types, "HELP and TYPE families must match");

    // Histogram contract: buckets cumulative, +Inf bucket equals _count.
    let buckets: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.name == "lbmf_trace_serialize_latency_bucket")
        .collect();
    assert!(buckets.len() >= 2, "two recorded durations, two buckets");
    let mut last = 0.0;
    for b in &buckets {
        assert!(b.value >= last, "bucket counts must be cumulative");
        last = b.value;
    }
    let inf = buckets
        .iter()
        .find(|b| b.labels.iter().any(|(k, v)| k == "le" && v == "+Inf"))
        .expect("+Inf bucket present");
    let count = samples
        .iter()
        .find(|s| s.name == "lbmf_trace_serialize_latency_count")
        .expect("_count series present");
    assert_eq!(inf.value, count.value, "le=+Inf must equal _count");

    // The escaped thread name must not have produced a raw newline or
    // quote inside a label value.
    let dropped = samples
        .iter()
        .find(|s| s.name == "lbmf_trace_dropped_total")
        .expect("dropped series present");
    let (_, v) = dropped.labels.iter().find(|(k, _)| k == "thread").unwrap();
    assert!(v.contains("\\\"") && v.contains("\\n"), "escapes kept: {v:?}");
}

#[test]
fn counters_are_monotonic_across_snapshots() {
    let ring = ThreadRing::new(0, "mono", 8);
    ring.append(1, EventKind::PrimaryFence, 0, 0);
    ring.append(2, EventKind::SerializeDeliver, 0, 10);
    let (first, _, _) = parse(&export(&live_snapshot(&ring)));

    // More traffic, including a latency observation in a new bucket.
    ring.append(3, EventKind::PrimaryFence, 0, 0);
    ring.append(4, EventKind::StealAttempt, 0, 0);
    ring.append(5, EventKind::SerializeDeliver, 0, 1_000_000);
    let (second, _, _) = parse(&export(&live_snapshot(&ring)));

    let index: HashMap<(String, Vec<(String, String)>), f64> = second
        .iter()
        .map(|s| ((s.name.clone(), s.labels.clone()), s.value))
        .collect();
    for s in &first {
        // `le` buckets shift as new observations land in higher buckets;
        // cumulative semantics still guarantee per-series monotonicity.
        let now = index
            .get(&(s.name.clone(), s.labels.clone()))
            .unwrap_or_else(|| panic!("series vanished between scrapes: {s:?}"));
        assert!(
            *now >= s.value,
            "counter went backwards: {} {:?} {} -> {now}",
            s.name,
            s.labels,
            s.value
        );
    }
}
