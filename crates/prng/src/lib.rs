//! # lbmf-prng — in-repo deterministic PRNGs
//!
//! The experiment hosts build with **no network access**, so the workspace
//! cannot pull `rand` from a registry. Everything in this repo that needs
//! randomness — the simulator's random-schedule runner, victim selection in
//! the work-stealing scheduler, seeded property tests, and the
//! `lbmf-check` exploration engines — uses these two small, well-studied
//! generators instead:
//!
//! * [`SplitMix64`] (Steele, Lea & Flood; the `java.util.SplittableRandom`
//!   mixer): a one-word state generator that equidistributes over 64-bit
//!   outputs. Ideal for seeding, per-thread streams, and replayable
//!   schedule exploration, where the *entire* decision sequence must be a
//!   pure function of one `u64` seed.
//! * [`Xoshiro256StarStar`] (Blackman & Vigna): a 256-bit-state
//!   general-purpose generator for longer random-walk workloads.
//!
//! Both implement the tiny [`Rng`] trait, which deliberately mirrors the
//! handful of `rand` methods the repo used (`random_range`, bounded
//! integers, shuffling) so call sites read the same.
//!
//! Determinism is a feature, not a compromise: `LBMF_CHECK_SEED=… cargo
//! test` must reproduce a failing interleaving byte-for-byte, which rules
//! out any generator whose stream could change under a dependency bump.

#![warn(missing_docs)]

use std::ops::Range;

/// The golden-gamma increment of SplitMix64.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Minimal random-number interface shared by all in-repo generators.
pub trait Rng {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: Rng::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `usize` in `range` (half-open). Panics on an empty range.
    fn random_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "random_range on empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.bounded_u64(span) as usize)
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift with a
    /// rejection step (unbiased). Panics if `bound == 0`.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64 with zero bound");
        // Rejection sampling over the widened product keeps the result
        // exactly uniform for every bound, not just powers of two.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `numerator / denominator`.
    fn random_ratio(&mut self, numerator: u64, denominator: u64) -> bool {
        assert!(denominator > 0);
        self.bounded_u64(denominator) < numerator
    }

    /// Fisher–Yates shuffle of `slice`.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` if empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.random_range(0..slice.len())])
        }
    }
}

/// SplitMix64: one `u64` of state, one multiply-xor-shift mix per output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose entire stream is a function of `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// `rand`-flavoured alias for [`SplitMix64::new`], so ported call
    /// sites (`StdRng::seed_from_u64`) read the same.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }

    /// The canonical SplitMix64 output function.
    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        Self::mix(self.state)
    }
}

/// xoshiro256**: 256 bits of state, period 2^256 − 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed the full state from one `u64` through SplitMix64, as the
    /// xoshiro authors recommend.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // The all-zero state is the one fixed point; the mixer cannot
        // produce it from four consecutive outputs, but guard anyway.
        if s == [0; 4] {
            s[0] = GOLDEN_GAMMA;
        }
        Xoshiro256StarStar { s }
    }

    /// `rand`-flavoured alias for [`Xoshiro256StarStar::new`].
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

impl Rng for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference outputs for seed 1234567 from the public-domain C
        // implementation (Vigna).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut x = Xoshiro256StarStar::new(42);
        let mut y = Xoshiro256StarStar::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(x.next_u64(), y.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn random_range_stays_in_bounds_and_hits_all_values() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.random_range(10..15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn bounded_u64_is_roughly_uniform() {
        let mut r = Xoshiro256StarStar::new(99);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[r.bounded_u64(4) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn random_f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..100 {
            let f = r.random_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = SplitMix64::new(5);
        assert_eq!(r.choose::<u32>(&[]), None);
        assert_eq!(r.choose(&[9]), Some(&9));
    }
}
