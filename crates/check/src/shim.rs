//! Shared-state shims for test bodies running under the harness.
//!
//! Test closures cannot use `std::sync` primitives directly: a real mutex
//! would block the one running thread and deadlock the serialized
//! scheduler, and plain shared memory would race invisibly. Instead:
//!
//! * [`AtomicCell`] — a `u64` cell whose loads and stores are yield points
//!   routed through the modeled store buffers (the building block for
//!   litmus tests written against the harness).
//! * [`Shared`] — exclusive-access shared data with *conflict detection*:
//!   overlapping `with_mut` critical sections are reported as an
//!   [`Assertion`](crate::ViolationKind::Assertion) violation instead of
//!   silently interleaving. This is how mutual-exclusion tests witness a
//!   protocol failure.
//! * [`yield_now`] / [`fail`] — explicit scheduling point and explicit
//!   violation, for hand-rolled invariant checks inside bodies.

use std::cell::{RefCell, UnsafeCell};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::sched::ThreadHooks;
use lbmf::hooks;

thread_local! {
    static CURRENT: RefCell<Option<Arc<ThreadHooks>>> = const { RefCell::new(None) };
}

/// Install `hooks` as this thread's shim context; restored on drop.
pub(crate) fn set_current(hooks: Arc<ThreadHooks>) -> ShimGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(hooks));
    ShimGuard { prev }
}

pub(crate) struct ShimGuard {
    prev: Option<Arc<ThreadHooks>>,
}

impl Drop for ShimGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

fn current() -> Option<Arc<ThreadHooks>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// An explicit scheduling point. Under the harness this lets the engine
/// preempt here; outside it, it is a plain `std::thread::yield_now`.
pub fn yield_now() {
    if current().is_some() {
        hooks::explicit_yield();
    } else {
        std::thread::yield_now();
    }
}

/// Report a harness violation and abort the current schedule. Outside the
/// harness this is a plain panic.
pub fn fail(msg: &str) -> ! {
    if let Some(h) = current() {
        h.fail_here(msg.to_string());
    }
    panic!("{msg}");
}

/// A `u64` cell whose accesses are instrumented yield points: stores go
/// through the modeled store buffer of the issuing virtual thread, loads
/// forward from it. Outside the harness it degrades to a plain `AtomicU64`
/// with `SeqCst` ordering.
#[derive(Debug, Default)]
pub struct AtomicCell {
    inner: AtomicU64,
}

impl AtomicCell {
    pub const fn new(v: u64) -> Self {
        AtomicCell {
            inner: AtomicU64::new(v),
        }
    }

    pub fn load(&self) -> u64 {
        hooks::load_u64(&self.inner, Ordering::SeqCst)
    }

    pub fn store(&self, v: u64) {
        hooks::store_u64(&self.inner, v, Ordering::SeqCst);
    }

    /// A full fence issued by the calling virtual thread (drains its
    /// modeled store buffer).
    pub fn fence() {
        if current().is_some() {
            hooks::fence_hook();
        } else {
            std::sync::atomic::fence(Ordering::SeqCst);
        }
    }
}

const FREE: usize = 0;
const WRITER: usize = usize::MAX;

/// Shared mutable data with exclusivity *checking* rather than
/// enforcement. `with_mut` claims the value, yields so the scheduler can
/// try to interleave a conflicting claim, and reports a violation if one
/// occurs — turning a mutual-exclusion bug in the protocol under test into
/// a deterministic, replayable failure instead of undefined behavior.
pub struct Shared<T> {
    claim: AtomicUsize,
    value: UnsafeCell<T>,
    /// Real lock guarding the actual data access, so that even a detected
    /// violation (or abort-mode free-running) never produces an actual
    /// data race on `value`.
    fallback: std::sync::Mutex<()>,
}

// SAFETY: access to `value` is always under `fallback`; `claim` is atomic.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Shared<T> {
    pub fn new(value: T) -> Self {
        Shared {
            claim: AtomicUsize::new(FREE),
            value: UnsafeCell::new(value),
            fallback: std::sync::Mutex::new(()),
        }
    }

    /// Exclusive access to the value. If another virtual thread is inside
    /// its own `with_mut` on the same `Shared`, the schedule is reported
    /// as a mutual-exclusion violation.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        yield_now();
        let prev = self.claim.swap(WRITER, Ordering::SeqCst);
        if prev != FREE {
            fail("Shared: overlapping exclusive access (mutual exclusion violated)");
        }
        // Yield inside the claimed window so a conflicting thread can be
        // scheduled to hit the check above.
        yield_now();
        let result = {
            let _g = self.fallback.lock().unwrap_or_else(|e| e.into_inner());
            // SAFETY: `fallback` is held; `value` accesses are serialized.
            f(unsafe { &mut *self.value.get() })
        };
        self.claim.store(FREE, Ordering::SeqCst);
        result
    }

    /// Read a copy of the value without claiming it (no conflict check).
    pub fn read(&self) -> T
    where
        T: Copy,
    {
        let _g = self.fallback.lock().unwrap_or_else(|e| e.into_inner());
        // SAFETY: `fallback` is held.
        unsafe { *self.value.get() }
    }

    /// Consume the `Shared` after all virtual threads have joined.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

/// Re-exported so bodies can mark arbitrary spin loops (parity with
/// `lbmf::hooks::spin_yield`, which core's `spin_until` already calls).
pub fn spin_yield() {
    if current().is_some() {
        hooks::spin_yield();
    } else {
        std::hint::spin_loop();
    }
}
