//! lbmf-check: a loom-lite deterministic concurrency harness for the
//! location-based memory fence implementation.
//!
//! The existing test suites exercise the *simulated* machine
//! (`lbmf-sim`) exhaustively, but the real protocols in `lbmf` — the
//! asymmetric Dekker lock, the ARW rwlock, the biased lock, the THE
//! deque — were only stress-tested on real threads, where the
//! interesting interleavings are rare and unreproducible. This crate
//! checks *the implementation itself*: the production protocol code runs
//! unmodified (compiled with `lbmf`'s `check-hooks` feature, which turns
//! every shared-memory access and fence into an instrumented yield
//! point), on real OS threads serialized by a controlled scheduler, over
//! an explicit x86-TSO store-buffer model.
//!
//! Three exploration engines sit behind one [`Explorer`] API:
//!
//! * [`Explorer::dfs`] — bounded DFS with a preemption bound (CHESS).
//!   A clean, `exhausted` pass is a proof for the modeled semantics.
//! * [`Explorer::pct`] — PCT priority randomization (Burckhardt et al.).
//! * [`Explorer::random_walk`] — uniform random schedules.
//!
//! Failures are minimized (greedy decision-dropping) and replayable: the
//! report prints an `LBMF_CHECK_SEED=0x…` hint, and setting that
//! environment variable reruns exactly the failing schedule.
//!
//! ```
//! use lbmf_check::{AtomicCell, Explorer};
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // Store-buffering litmus: without fences, TSO allows r0 = r1 = 0.
//! let report = Explorer::dfs(2).check("sb", |exec| {
//!     let x = Arc::new(AtomicCell::new(0));
//!     let y = Arc::new(AtomicCell::new(0));
//!     let r0 = Arc::new(AtomicU64::new(99));
//!     let r1 = Arc::new(AtomicU64::new(99));
//!     {
//!         let (x, y, r0) = (x.clone(), y.clone(), r0.clone());
//!         exec.spawn(move || {
//!             x.store(1);
//!             r0.store(y.load(), Ordering::SeqCst);
//!         });
//!     }
//!     {
//!         let (x, y, r1) = (x.clone(), y.clone(), r1.clone());
//!         exec.spawn(move || {
//!             y.store(1);
//!             r1.store(x.load(), Ordering::SeqCst);
//!         });
//!     }
//!     exec.validate(move || {
//!         let (a, b) = (r0.load(Ordering::SeqCst), r1.load(Ordering::SeqCst));
//!         assert!(!(a == 0 && b == 0), "store-buffering outcome observed");
//!     });
//! });
//! report.expect_violation(); // the harness *finds* the reordering
//! ```

mod engine;
mod sched;
mod shim;

pub use sched::{Action, Exec, ViolationKind};
pub use shim::{fail, spin_yield, yield_now, AtomicCell, Shared};

use engine::EngineCore;
use sched::Config;
use std::fmt;

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Which exploration policy an [`Explorer`] uses.
#[derive(Copy, Clone, Debug)]
enum Policy {
    Dfs { preemption_bound: usize },
    Pct { seed: u64, depth: usize, schedules: usize },
    Random { seed: u64, schedules: usize },
}

/// Entry point: configure an exploration, then [`Explorer::check`] a body.
#[derive(Clone, Debug)]
pub struct Explorer {
    policy: Policy,
    max_steps: usize,
    max_schedules: usize,
    minimize: bool,
    /// Set by tests to bypass the `LBMF_CHECK_SEED` environment lookup.
    seed_override: Option<Option<u64>>,
}

impl Explorer {
    fn new(policy: Policy) -> Self {
        Explorer {
            policy,
            max_steps: 10_000,
            max_schedules: 200_000,
            minimize: true,
            seed_override: None,
        }
    }

    /// Bounded DFS: exhaustive enumeration of schedules with at most
    /// `preemption_bound` preemptions (store-buffer commits are free).
    pub fn dfs(preemption_bound: usize) -> Self {
        Explorer::new(Policy::Dfs { preemption_bound })
    }

    /// PCT: `schedules` random-priority schedules targeting bugs of depth
    /// `depth`, seeded by `seed`.
    pub fn pct(seed: u64, depth: usize, schedules: usize) -> Self {
        Explorer::new(Policy::Pct { seed, depth, schedules })
    }

    /// Uniform random walk over `schedules` schedules, seeded by `seed`.
    pub fn random_walk(seed: u64, schedules: usize) -> Self {
        Explorer::new(Policy::Random { seed, schedules })
    }

    /// Per-schedule step budget (exceeding it reports a livelock).
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Hard cap on schedules run, whatever the policy asks for.
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n;
        self
    }

    /// Disable greedy failure minimization (keep the first failing
    /// schedule verbatim).
    pub fn minimize(mut self, on: bool) -> Self {
        self.minimize = on;
        self
    }

    /// Force a specific replay seed, as if `LBMF_CHECK_SEED` were set to
    /// `seed` (`Some`) or explicitly unset (`None`). For tests that must
    /// not depend on ambient process environment.
    pub fn seed_override(mut self, seed: Option<u64>) -> Self {
        self.seed_override = Some(seed);
        self
    }

    fn effective_policy(&self) -> Policy {
        let env_seed = match self.seed_override {
            Some(s) => s,
            None => std::env::var("LBMF_CHECK_SEED")
                .ok()
                .and_then(|s| parse_seed(&s)),
        };
        match (env_seed, self.policy) {
            // Seed replay: run exactly one schedule with the derived seed.
            (Some(seed), Policy::Pct { depth, .. }) => Policy::Pct { seed, depth, schedules: 1 },
            (Some(seed), Policy::Random { .. }) => Policy::Random { seed, schedules: 1 },
            // DFS is already deterministic; a seed changes nothing.
            (_, p) => p,
        }
    }

    fn build_engine(policy: Policy) -> Box<dyn EngineCore> {
        match policy {
            Policy::Dfs { preemption_bound } => Box::new(engine::Dfs::new(preemption_bound)),
            Policy::Pct { seed, depth, schedules } => {
                Box::new(engine::Pct::new(seed, depth, schedules))
            }
            Policy::Random { seed, schedules } => Box::new(engine::RandomWalk::new(seed, schedules)),
        }
    }

    /// Explore `body`'s schedules. The body is invoked once per schedule;
    /// it spawns virtual threads with [`Exec::spawn`] and may register a
    /// post-schedule invariant with [`Exec::validate`].
    pub fn check<F: Fn(&Exec)>(&self, name: &str, body: F) -> Report {
        let policy = self.effective_policy();
        let cfg = Config {
            max_steps: self.max_steps,
            preemption_bound: match policy {
                Policy::Dfs { preemption_bound } => Some(preemption_bound),
                _ => None,
            },
        };
        let mut engine = Self::build_engine(policy);
        let body_ref: &dyn Fn(&Exec) = &body;
        let mut schedules_run = 0usize;
        let mut exhausted = false;
        let mut violation: Option<Violation> = None;

        let debug = std::env::var_os("LBMF_CHECK_DEBUG").is_some();
        while schedules_run < self.max_schedules {
            if !engine.begin() {
                exhausted = true;
                break;
            }
            if debug && schedules_run % 1000 == 0 {
                eprintln!("lbmf-check '{name}': {schedules_run} schedules...");
            }
            let (e, outcome) = sched::run_schedule(engine, cfg, body_ref);
            engine = e;
            engine.end();
            let index = schedules_run;
            schedules_run += 1;
            if let Some((kind, message)) = outcome.violation {
                let seed = match policy {
                    Policy::Dfs { .. } => None,
                    Policy::Pct { seed, .. } | Policy::Random { seed, .. } => {
                        Some(seed ^ (index as u64).wrapping_mul(GOLDEN_GAMMA))
                    }
                };
                let mut v = Violation {
                    kind,
                    message,
                    trace: outcome.trace,
                    choices: outcome.choices,
                    schedule_index: index,
                    seed,
                };
                if self.minimize {
                    minimize_violation(&mut v, cfg, body_ref);
                }
                violation = Some(v);
                break;
            }
        }

        Report {
            name: name.to_string(),
            engine: engine.describe(),
            schedules_run,
            exhausted,
            violation,
        }
    }
}

/// Parse an `LBMF_CHECK_SEED` value: decimal or `0x`-prefixed hex.
fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Greedy failure minimization: try dropping each recorded decision in
/// turn; keep any shorter schedule that still produces the same kind of
/// violation.
fn minimize_violation(v: &mut Violation, cfg: Config, body: &dyn Fn(&Exec)) {
    const MAX_REPLAYS: usize = 200;
    let mut replays = 0;
    let mut i = 0;
    while i < v.choices.len() && replays < MAX_REPLAYS {
        let mut candidate = v.choices.clone();
        candidate.remove(i);
        let (_, outcome) =
            sched::run_schedule(Box::new(engine::Replay::new(candidate)), cfg, body);
        replays += 1;
        match outcome.violation {
            Some((kind, message))
                if kind == v.kind && outcome.choices.len() < v.choices.len() =>
            {
                v.choices = outcome.choices;
                v.trace = outcome.trace;
                v.message = message;
                // Retry the same position: it now names a different decision.
            }
            _ => i += 1,
        }
    }
}

/// A failing schedule, minimized and replayable.
#[derive(Clone, Debug)]
pub struct Violation {
    pub kind: ViolationKind,
    pub message: String,
    /// Deterministic, address-free event trace of the failing schedule.
    pub trace: String,
    /// The decision sequence (only true decision points are recorded).
    pub choices: Vec<Action>,
    /// Which schedule (0-based) of the exploration failed.
    pub schedule_index: usize,
    /// For randomized engines: the derived seed that regenerates exactly
    /// this schedule via `LBMF_CHECK_SEED`.
    pub seed: Option<u64>,
}

impl Violation {
    /// The minimized counterexample as Chrome trace-event JSON: one row
    /// per virtual thread (plus `memory` and `verdict` pseudo-rows), one
    /// microsecond of virtual time per trace step. Write it to a
    /// `.trace.json` and it opens in Perfetto next to a real-execution
    /// trace from `lbmf_trace::chrome::export`.
    pub fn chrome_trace(&self) -> String {
        lbmf_trace::chrome::from_check_trace(&self.trace)
    }
}

/// The result of an [`Explorer::check`] run.
#[derive(Clone, Debug)]
pub struct Report {
    pub name: String,
    pub engine: String,
    pub schedules_run: usize,
    /// The engine exhausted its schedule space (for DFS: every schedule
    /// within the preemption bound was executed — a proof, not a sample).
    pub exhausted: bool,
    pub violation: Option<Violation>,
}

impl Report {
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }

    /// Panic with the full failure report if a violation was found.
    pub fn assert_no_violation(&self) {
        if self.violation.is_some() {
            panic!("{self}");
        }
    }

    /// Panic if *no* violation was found (negative controls: the harness
    /// must be able to see the bug). Returns the violation otherwise.
    pub fn expect_violation(&self) -> &Violation {
        match &self.violation {
            Some(v) => v,
            None => panic!(
                "lbmf-check '{}': expected a violation but {} schedules passed ({})",
                self.name, self.schedules_run, self.engine
            ),
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lbmf-check '{}' [{}]: {} schedule(s){}",
            self.name,
            self.engine,
            self.schedules_run,
            if self.exhausted { ", space exhausted" } else { "" }
        )?;
        match &self.violation {
            None => write!(f, "  no violation found"),
            Some(v) => {
                writeln!(f, "  VIOLATION ({:?}) in schedule {}: {}", v.kind, v.schedule_index, v.message)?;
                if let Some(seed) = v.seed {
                    writeln!(
                        f,
                        "  reproduce with: LBMF_CHECK_SEED={seed:#x} cargo test -- {}",
                        self.name
                    )?;
                }
                writeln!(f, "  failing schedule ({} decisions):", v.choices.len())?;
                write!(f, "{}", v.trace)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Store-buffering litmus body: returns the body closure plus the
    /// fence choice; validate fails on the forbidden (0, 0) outcome.
    fn sb_body(fenced: bool) -> impl Fn(&Exec) {
        move |exec: &Exec| {
            let x = Arc::new(AtomicCell::new(0));
            let y = Arc::new(AtomicCell::new(0));
            let r0 = Arc::new(AtomicU64::new(99));
            let r1 = Arc::new(AtomicU64::new(99));
            {
                let (x, y, r0) = (x.clone(), y.clone(), r0.clone());
                exec.spawn(move || {
                    x.store(1);
                    if fenced {
                        AtomicCell::fence();
                    }
                    r0.store(y.load(), Ordering::SeqCst);
                });
            }
            {
                let (x, y, r1) = (x.clone(), y.clone(), r1.clone());
                exec.spawn(move || {
                    y.store(1);
                    if fenced {
                        AtomicCell::fence();
                    }
                    r1.store(x.load(), Ordering::SeqCst);
                });
            }
            exec.validate(move || {
                let (a, b) = (r0.load(Ordering::SeqCst), r1.load(Ordering::SeqCst));
                assert!(!(a == 0 && b == 0), "forbidden SB outcome r0=0 r1=0");
            });
        }
    }

    #[test]
    fn dfs_finds_store_buffering_without_fences() {
        let report = Explorer::dfs(2)
            .seed_override(None)
            .check("sb-unfenced", sb_body(false));
        let v = report.expect_violation();
        assert_eq!(v.kind, ViolationKind::Assertion);
        assert!(v.trace.contains("buffered"), "trace shows buffering:\n{}", v.trace);

        // The minimized counterexample exports as valid Chrome trace JSON
        // with rows for both virtual threads and the violation marker.
        let json = v.chrome_trace();
        let events = lbmf_trace::chrome::validate(&json).expect("well-formed chrome trace");
        assert!(events >= v.trace.lines().count(), "one event per step plus metadata");
        assert!(json.contains("(buffered)"));
        assert!(json.contains("violation"));
    }

    #[test]
    fn dfs_proves_store_buffering_impossible_with_fences() {
        let report = Explorer::dfs(2)
            .seed_override(None)
            .check("sb-fenced", sb_body(true));
        report.assert_no_violation();
        assert!(report.exhausted, "DFS must exhaust the bounded space");
        assert!(report.schedules_run > 1);
    }

    #[test]
    fn random_walk_finds_store_buffering() {
        let report = Explorer::random_walk(42, 500)
            .seed_override(None)
            .check("sb-random", sb_body(false));
        let v = report.expect_violation();
        assert!(v.seed.is_some(), "randomized engines report a replay seed");
    }

    #[test]
    fn pct_finds_store_buffering_and_seed_replays_identically() {
        let run = || {
            Explorer::pct(7, 3, 500)
                .seed_override(None)
                .check("sb-pct", sb_body(false))
        };
        let a = run();
        let b = run();
        let va = a.expect_violation();
        let vb = b.expect_violation();
        assert_eq!(va.trace, vb.trace, "same seed => byte-identical trace");
        assert_eq!(va.seed, vb.seed);

        // Replaying via the derived seed reproduces the same interleaving
        // in schedule 0.
        let replay = Explorer::pct(999_999, 3, 500)
            .seed_override(Some(va.seed.unwrap()))
            .check("sb-pct", sb_body(false));
        let vr = replay.expect_violation();
        assert_eq!(vr.trace, va.trace, "seed replay reproduces the trace");
        assert_eq!(replay.schedules_run, 1, "seed replay runs exactly one schedule");
    }

    #[test]
    fn shared_detects_overlapping_critical_sections() {
        let report = Explorer::dfs(2).seed_override(None).check("shared-overlap", |exec| {
            let s = Arc::new(Shared::new(0u64));
            for _ in 0..2 {
                let s = s.clone();
                exec.spawn(move || {
                    s.with_mut(|v| *v += 1);
                });
            }
        });
        let v = report.expect_violation();
        assert_eq!(v.kind, ViolationKind::Assertion);
        assert!(v.message.contains("mutual exclusion"), "{}", v.message);
    }

    #[test]
    fn shared_is_quiet_when_sections_cannot_overlap() {
        // A single thread can never overlap with itself.
        let report = Explorer::dfs(2).seed_override(None).check("shared-solo", |exec| {
            let s = Arc::new(Shared::new(0u64));
            let s2 = s.clone();
            exec.spawn(move || {
                s2.with_mut(|v| *v += 1);
                s2.with_mut(|v| *v += 1);
            });
            let s3 = s.clone();
            exec.validate(move || assert_eq!(s3.read(), 2));
        });
        report.assert_no_violation();
        assert!(report.exhausted);
    }

    #[test]
    fn livelock_is_reported() {
        let report = Explorer::dfs(0)
            .seed_override(None)
            .max_steps(200)
            .check("spin-forever", |exec| {
                let flag = Arc::new(AtomicCell::new(0));
                let f = flag.clone();
                exec.spawn(move || {
                    while f.load() == 0 {
                        spin_yield();
                    }
                });
            });
        let v = report.expect_violation();
        assert_eq!(v.kind, ViolationKind::Livelock);
    }

    #[test]
    fn panic_in_body_is_reported_with_message() {
        let report = Explorer::dfs(0).seed_override(None).check("panicky", |exec| {
            exec.spawn(|| panic!("boom-{}", 7));
        });
        let v = report.expect_violation();
        assert_eq!(v.kind, ViolationKind::Panic);
        assert!(v.message.contains("boom-7"), "{}", v.message);
    }

    #[test]
    fn empty_execution_is_ok() {
        let report = Explorer::dfs(2).seed_override(None).check("empty", |_exec| {});
        report.assert_no_violation();
        assert!(report.exhausted);
        assert_eq!(report.schedules_run, 1);
    }

    #[test]
    fn parse_seed_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x2a"), Some(42));
        assert_eq!(parse_seed("0X2A"), Some(42));
        assert_eq!(parse_seed(" 7 "), Some(7));
        assert_eq!(parse_seed("zzz"), None);
    }

    #[test]
    fn minimization_shrinks_the_failing_schedule() {
        let full = Explorer::dfs(2)
            .seed_override(None)
            .minimize(false)
            .check("sb-raw", sb_body(false));
        let minimized = Explorer::dfs(2)
            .seed_override(None)
            .check("sb-min", sb_body(false));
        let vf = full.expect_violation();
        let vm = minimized.expect_violation();
        assert!(
            vm.choices.len() <= vf.choices.len(),
            "minimized ({}) must not exceed raw ({})",
            vm.choices.len(),
            vf.choices.len()
        );
    }
}
