//! Exploration engines: who decides what happens at each scheduling point.
//!
//! Three ways to walk the schedule space, behind one interface:
//!
//! * [`Dfs`] — bounded depth-first enumeration. Replays the previous
//!   schedule's decision prefix and takes the next unexplored branch at the
//!   deepest open decision. With a preemption bound (enforced by the
//!   scheduler, which filters the enabled set) this is the CHESS algorithm:
//!   exhaustive within the bound, so a clean pass is a *proof* for the
//!   modeled semantics.
//! * [`Pct`] — probabilistic concurrency testing (Burckhardt et al.):
//!   random thread priorities with `depth - 1` priority-change points.
//!   Finds depth-`d` bugs with known probability; good diversity per
//!   schedule.
//! * [`RandomWalk`] — uniform choice at every decision point. The
//!   baseline, and the cheapest way to smoke-test large state spaces.
//!
//! Plus [`Replay`], which re-executes a recorded decision sequence —
//! the mechanism behind failure minimization and seed reproduction.
//!
//! All randomness comes from the in-repo `lbmf-prng` SplitMix64, keyed as
//! `base_seed ^ (schedule_index * GOLDEN_GAMMA)`, so a seed printed in a
//! failure report deterministically regenerates the same schedule
//! sequence.

use crate::sched::Action;
use lbmf_prng::{Rng, SplitMix64};

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One engine = one exploration policy. The scheduler consults `choose`
/// only at *real* decision points (two or more enabled actions); forced
/// moves are taken silently, which keeps DFS decision stacks aligned
/// across replays.
pub(crate) trait EngineCore: Send {
    /// Prepare the next schedule. `false` means the space is exhausted.
    fn begin(&mut self) -> bool;
    /// Pick an index into `enabled` (`enabled.len() >= 2`). `decider` is
    /// the virtual thread that reached this point (`None` for the initial
    /// decision, made before any thread has run).
    fn choose(&mut self, enabled: &[Action], decider: Option<usize>) -> usize;
    /// The schedule finished (normally or by violation).
    fn end(&mut self);
    /// Human-readable engine description for reports.
    fn describe(&self) -> String;
}

// ---------------------------------------------------------------------
// Bounded DFS
// ---------------------------------------------------------------------

struct Decision {
    chosen: usize,
    num: usize,
}

/// Depth-first enumeration of the decision tree.
pub(crate) struct Dfs {
    stack: Vec<Decision>,
    cursor: usize,
    started: bool,
    preemption_bound: usize,
}

impl Dfs {
    pub(crate) fn new(preemption_bound: usize) -> Self {
        Dfs {
            stack: Vec::new(),
            cursor: 0,
            started: false,
            preemption_bound,
        }
    }
}

impl EngineCore for Dfs {
    fn begin(&mut self) -> bool {
        self.cursor = 0;
        if !self.started {
            self.started = true;
            return true;
        }
        // Backtrack: drop exhausted suffix decisions, then advance the
        // deepest decision that still has unexplored branches.
        while let Some(last) = self.stack.last_mut() {
            if last.chosen + 1 < last.num {
                last.chosen += 1;
                return true;
            }
            self.stack.pop();
        }
        false
    }

    fn choose(&mut self, enabled: &[Action], _decider: Option<usize>) -> usize {
        let i = self.cursor;
        self.cursor += 1;
        if i < self.stack.len() {
            // Replaying the prefix of the previous schedule. The enabled
            // set must match — the model is deterministic in the choices.
            assert_eq!(
                self.stack[i].num,
                enabled.len(),
                "lbmf-check internal error: nondeterministic replay \
                 (enabled-set size changed at decision {i})"
            );
            self.stack[i].chosen
        } else {
            self.stack.push(Decision {
                chosen: 0,
                num: enabled.len(),
            });
            0
        }
    }

    fn end(&mut self) {
        // Decisions beyond the cursor belong to a longer previous schedule
        // whose prefix this one diverged from; they are stale.
        self.stack.truncate(self.cursor);
    }

    fn describe(&self) -> String {
        format!("dfs(preemption_bound={})", self.preemption_bound)
    }
}

// ---------------------------------------------------------------------
// PCT
// ---------------------------------------------------------------------

/// Probabilistic concurrency testing: random priorities, `depth - 1`
/// priority-change points per schedule.
pub(crate) struct Pct {
    base_seed: u64,
    depth: usize,
    schedules: usize,
    index: usize,
    rng: SplitMix64,
    /// Per-tid priorities (higher runs first); extended lazily.
    priorities: Vec<u64>,
    change_points: Vec<usize>,
    steps: usize,
    /// Horizon for change-point placement. Fixed (not adapted across
    /// schedules) so a single derived seed fully determines a schedule —
    /// the property `LBMF_CHECK_SEED` replay relies on.
    est_len: usize,
    next_demotion: u64,
}

impl Pct {
    pub(crate) fn new(base_seed: u64, depth: usize, schedules: usize) -> Self {
        Pct {
            base_seed,
            depth: depth.max(1),
            schedules,
            index: 0,
            rng: SplitMix64::seed_from_u64(base_seed),
            priorities: Vec::new(),
            change_points: Vec::new(),
            steps: 0,
            est_len: 64,
            next_demotion: 0,
        }
    }

    fn priority_of(&mut self, tid: usize) -> u64 {
        while self.priorities.len() <= tid {
            self.priorities.push(1_000_000 + self.rng.bounded_u64(1_000_000));
        }
        self.priorities[tid]
    }
}

impl EngineCore for Pct {
    fn begin(&mut self) -> bool {
        if self.index >= self.schedules {
            return false;
        }
        self.rng = SplitMix64::seed_from_u64(
            self.base_seed ^ (self.index as u64).wrapping_mul(GOLDEN_GAMMA),
        );
        self.priorities.clear();
        self.change_points = (0..self.depth.saturating_sub(1))
            .map(|_| self.rng.bounded_u64(self.est_len.max(1) as u64) as usize)
            .collect();
        self.steps = 0;
        self.next_demotion = 1000;
        true
    }

    fn choose(&mut self, enabled: &[Action], _decider: Option<usize>) -> usize {
        self.steps += 1;
        // Highest-priority enabled thread (steps preferred over commits —
        // a commit is the memory system acting on a thread's behalf, so it
        // inherits that thread's priority minus a half-step).
        let score = |this: &mut Self, a: &Action| -> u64 {
            match *a {
                Action::Step(t) => this.priority_of(t) * 2 + 1,
                Action::Commit(t) => this.priority_of(t) * 2,
            }
        };
        if self.change_points.contains(&self.steps) {
            // Demote the currently strongest enabled thread below everyone.
            let strongest = enabled
                .iter()
                .map(|a| match *a {
                    Action::Step(t) | Action::Commit(t) => t,
                })
                .max_by_key(|&t| self.priority_of(t));
            if let Some(t) = strongest {
                self.next_demotion = self.next_demotion.saturating_sub(1);
                let p = self.next_demotion;
                let _ = self.priority_of(t);
                self.priorities[t] = p;
            }
        }
        let mut best = 0;
        let mut best_score = 0;
        for (i, a) in enabled.iter().enumerate() {
            let s = score(self, a);
            if s > best_score {
                best_score = s;
                best = i;
            }
        }
        best
    }

    fn end(&mut self) {
        self.index += 1;
    }

    fn describe(&self) -> String {
        format!(
            "pct(seed={:#x}, depth={}, schedules={})",
            self.base_seed, self.depth, self.schedules
        )
    }
}

// ---------------------------------------------------------------------
// Uniform random walk
// ---------------------------------------------------------------------

/// Uniform random choice at every decision point.
pub(crate) struct RandomWalk {
    base_seed: u64,
    schedules: usize,
    index: usize,
    rng: SplitMix64,
}

impl RandomWalk {
    pub(crate) fn new(base_seed: u64, schedules: usize) -> Self {
        RandomWalk {
            base_seed,
            schedules,
            index: 0,
            rng: SplitMix64::seed_from_u64(base_seed),
        }
    }
}

impl EngineCore for RandomWalk {
    fn begin(&mut self) -> bool {
        if self.index >= self.schedules {
            return false;
        }
        self.rng = SplitMix64::seed_from_u64(
            self.base_seed ^ (self.index as u64).wrapping_mul(GOLDEN_GAMMA),
        );
        true
    }

    fn choose(&mut self, enabled: &[Action], _decider: Option<usize>) -> usize {
        self.rng.bounded_u64(enabled.len() as u64) as usize
    }

    fn end(&mut self) {
        self.index += 1;
    }

    fn describe(&self) -> String {
        format!(
            "random(seed={:#x}, schedules={})",
            self.base_seed, self.schedules
        )
    }
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

/// Re-execute a recorded decision sequence (one schedule). Decisions that
/// no longer match the enabled set — e.g. after minimization removed an
/// earlier one — fall back to "keep running the deciding thread", the
/// least-preempting default.
pub(crate) struct Replay {
    script: Vec<Action>,
    pos: usize,
    ran: bool,
}

impl Replay {
    pub(crate) fn new(script: Vec<Action>) -> Self {
        Replay {
            script,
            pos: 0,
            ran: false,
        }
    }
}

impl EngineCore for Replay {
    fn begin(&mut self) -> bool {
        if self.ran {
            return false;
        }
        self.ran = true;
        self.pos = 0;
        true
    }

    fn choose(&mut self, enabled: &[Action], decider: Option<usize>) -> usize {
        let recorded = self.script.get(self.pos).copied();
        self.pos += 1;
        if let Some(want) = recorded {
            if let Some(i) = enabled.iter().position(|a| *a == want) {
                return i;
            }
        }
        // Fallback: prefer not to preempt.
        if let Some(d) = decider {
            if let Some(i) = enabled.iter().position(|a| *a == Action::Step(d)) {
                return i;
            }
        }
        0
    }

    fn end(&mut self) {}

    fn describe(&self) -> String {
        format!("replay({} decisions)", self.script.len())
    }
}
