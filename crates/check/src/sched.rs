//! The controlled scheduler and TSO store-buffer model.
//!
//! Each [`Exec::spawn`]ed closure runs on a real OS thread, but only one
//! runs at a time: every instrumented operation (routed here through
//! `lbmf::hooks`) is a *yield point* where the thread parks and the
//! exploration engine picks what happens next. The enabled actions at a
//! decision point are
//!
//! * `Step(t)` — let virtual thread `t` execute its pending operation, and
//! * `Commit(t)` — drain the oldest entry of `t`'s modeled store buffer
//!   into the real atomic (the memory system acting asynchronously, which
//!   is exactly the TSO reordering the paper's fences exist to tame).
//!
//! The store-buffer model implements x86-TSO as the protocols assume it:
//! stores append to the issuing thread's FIFO buffer; loads forward from
//! the newest matching own-buffer entry, else read the committed value;
//! a full fence drains the issuer's buffer; a remote serialization
//! ([`lbmf::registry::RemoteThread::serialize`] under a harness) drains the
//! *target's* buffer — the paper's "T2 enforces the fence onto T1".
//!
//! Violations — a [`crate::Shared`] exclusivity failure, a panicking
//! assertion in a body, a deadlock, or a runaway schedule — abort the
//! schedule: buffers are flushed, parked threads are unwound at their
//! next yield point, and the recorded trace is returned for replay.

use crate::engine::EngineCore;
use lbmf::hooks::{self, Loc, VtHooks, YieldKind};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Cap on recorded trace lines (schedules are step-bounded anyway; this
/// just keeps pathological failure reports readable).
const MAX_TRACE_LINES: usize = 5_000;

/// One scheduler action, as recorded in decision sequences.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Let virtual thread `tid` execute its pending operation.
    Step(usize),
    /// Commit the oldest store-buffer entry of virtual thread `tid`.
    Commit(usize),
}

/// What went wrong in a failing schedule.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A harness-level check failed ([`crate::Shared`] exclusivity,
    /// [`crate::fail`], or a `validate` closure).
    Assertion,
    /// A virtual thread's body panicked.
    Panic,
    /// No enabled action remained with threads still unfinished.
    Deadlock,
    /// The schedule exceeded its step budget (unbounded spinning).
    Livelock,
}

/// A virtual thread's pending operation, parked at a yield point.
#[derive(Copy, Clone, Debug)]
enum Op {
    Start,
    Store(Loc, u64),
    Load(Loc),
    Fence,
    Yield(YieldKind),
    Spin,
    Serialize(usize),
}

/// Result of one schedule execution.
pub(crate) struct Outcome {
    pub violation: Option<(ViolationKind, String)>,
    pub choices: Vec<Action>,
    pub trace: String,
}

/// Per-schedule limits, set by the [`crate::Explorer`].
#[derive(Copy, Clone, Debug)]
pub(crate) struct Config {
    pub max_steps: usize,
    pub preemption_bound: Option<usize>,
}

struct Vt {
    pending: Option<Op>,
    finished: bool,
    /// `Some(mark)` after a spin-yield, where `mark` was the global commit
    /// count at that moment: the spinner is disabled until another store
    /// commits. A spinning thread's observations can change *only* when a
    /// commit lands (its own re-reads and other threads' loads cannot
    /// affect what it sees), so rescheduling it any earlier just starves
    /// the actions that could unblock it.
    yielded_at: Option<u64>,
    /// Modeled TSO store buffer: FIFO of (location key, handle, value).
    buffer: VecDeque<(usize, Loc, u64)>,
}

impl Vt {
    fn new() -> Self {
        Vt {
            pending: None,
            finished: false,
            yielded_at: None,
            buffer: VecDeque::new(),
        }
    }
}

struct State {
    threads: Vec<Vt>,
    /// The initial decision has been made; new spawns are rejected.
    started: bool,
    /// Virtual threads parked at their initial `Start` op.
    arrivals: usize,
    /// The thread currently allowed to execute its pending op.
    granted: Option<usize>,
    abort: bool,
    done: bool,
    violation: Option<(ViolationKind, String)>,
    trace: Vec<String>,
    choices: Vec<Action>,
    steps: usize,
    preemptions: usize,
    /// Total committed stores (the spin-gate clock).
    commits: u64,
    cfg: Config,
    /// Stable small ids for shared locations, by first appearance — keeps
    /// traces byte-identical across runs despite ASLR.
    loc_ids: HashMap<usize, usize>,
    /// `ThreadSlot` key (from `register_current_thread`) → virtual tid.
    slot_to_tid: HashMap<usize, usize>,
    engine: Option<Box<dyn EngineCore>>,
}

// SAFETY: `State` is not auto-Send because buffered `Loc` handles hold raw
// pointers. The harness guarantees the pointed-to atomics outlive every
// schedule: they live in the test body's `Arc`s, all virtual threads are
// joined (and buffers flushed on abort) before those are dropped, and the
// pointers are only dereferenced through `Loc::commit`/`committed_load`
// while a schedule is live.
unsafe impl Send for State {}

pub(crate) struct Inner {
    state: Mutex<State>,
    cv: Condvar,
}

/// Sentinel panic payload used to unwind a virtual thread's body after the
/// schedule has been aborted (not itself a new violation).
pub(crate) struct AbortSchedule;

/// Keep routine `AbortSchedule` unwinds out of stderr: they are control
/// flow, not failures. Installed once, delegating everything else to the
/// previous hook.
fn install_quiet_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<AbortSchedule>() {
                return;
            }
            prev(info);
        }));
    });
}

impl Inner {
    fn trace_push(st: &mut State, line: String) {
        match st.trace.len().cmp(&MAX_TRACE_LINES) {
            std::cmp::Ordering::Less => st.trace.push(line),
            std::cmp::Ordering::Equal => st.trace.push("... (trace truncated)".into()),
            std::cmp::Ordering::Greater => {}
        }
    }

    fn loc_label(st: &mut State, loc: Loc) -> String {
        let next = st.loc_ids.len();
        let id = *st.loc_ids.entry(loc.key()).or_insert(next);
        format!("L{id}")
    }

    /// Record a violation (first wins), flush every modeled buffer, and
    /// wake all parked threads so they unwind at their yield points.
    fn abort_with(&self, st: &mut State, kind: ViolationKind, msg: String) {
        if st.violation.is_none() {
            Self::trace_push(st, format!("!! violation ({kind:?}): {msg}"));
            st.violation = Some((kind, msg));
        }
        for t in 0..st.threads.len() {
            while let Some((_, loc, v)) = st.threads[t].buffer.pop_front() {
                // SAFETY: schedule is live; see the `State` Send rationale.
                unsafe { loc.commit(v) };
            }
        }
        st.abort = true;
        st.granted = None;
        self.cv.notify_all();
    }

    /// The enabled actions, in deterministic order (steps by tid, then
    /// commits by tid).
    ///
    /// Commit reduction: the moment a buffered store commits is only
    /// observable through *another* thread's load of that location — the
    /// owner forwards from its own buffer, and fences/serializations
    /// drain unconditionally. So `Commit(t)` is offered only while some
    /// other thread is parked on a load of a location in `t`'s buffer
    /// (every remaining buffer is drained deterministically at schedule
    /// end). This prunes the schedule space massively without losing any
    /// observable behavior.
    fn enabled(st: &State) -> Vec<Action> {
        let mut acts = Vec::new();
        for (t, vt) in st.threads.iter().enumerate() {
            if vt.finished || vt.pending.is_none() {
                continue;
            }
            if let Some(mark) = vt.yielded_at {
                if st.commits <= mark {
                    continue;
                }
            }
            acts.push(Action::Step(t));
        }
        for (t, vt) in st.threads.iter().enumerate() {
            if vt.buffer.is_empty() {
                continue;
            }
            let observable = st.threads.iter().enumerate().any(|(u, other)| {
                u != t
                    && !other.finished
                    && matches!(other.pending, Some(Op::Load(l))
                        if vt.buffer.iter().any(|e| e.0 == l.key()))
            });
            if observable {
                acts.push(Action::Commit(t));
            }
        }
        acts
    }

    /// Make scheduling decisions until a thread is granted (or the
    /// schedule ends). Called by the thread that just arrived at a yield
    /// point (`decider`), or by the main thread for the initial decision
    /// (`decider == None`).
    fn decide_from(&self, st: &mut State, decider: Option<usize>) {
        loop {
            if st.abort {
                return;
            }
            let mut acts = Self::enabled(st);
            if acts.is_empty() {
                if st.threads.iter().all(|t| t.finished) {
                    // Drain leftover buffers (tid order, deterministic) so
                    // the validate closure reads the final committed state.
                    for t in 0..st.threads.len() {
                        Self::drain(st, t);
                    }
                    st.done = true;
                    self.cv.notify_all();
                    return;
                }
                // Everything runnable is spin-blocked. If stores are still
                // buffered, drain them all (deterministically, tid order):
                // fresh committed values are the only thing that can wake a
                // spinner, and offering the drains as choices would let DFS
                // walk unfair starvation branches forever.
                if st.threads.iter().any(|t| !t.buffer.is_empty()) {
                    for t in 0..st.threads.len() {
                        let n = Self::drain(st, t);
                        if n > 0 {
                            Self::trace_push(
                                st,
                                format!("memory: forced drain T{t} ({n} stores)"),
                            );
                        }
                    }
                    continue;
                }
                // Nothing buffered either: let the spinners spin (bounded
                // spins like the ARW+ window will exhaust their budget and
                // move on; a true livelock hits the step budget and is
                // reported).
                let any_spinner = st
                    .threads
                    .iter()
                    .any(|t| !t.finished && t.pending.is_some() && t.yielded_at.is_some());
                if any_spinner {
                    for t in st.threads.iter_mut() {
                        t.yielded_at = None;
                    }
                    continue;
                }
                let waiting: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.finished)
                    .map(|(i, t)| format!("T{i} ({:?})", t.pending))
                    .collect();
                self.abort_with(
                    st,
                    ViolationKind::Deadlock,
                    format!("no enabled action; unfinished: {}", waiting.join(", ")),
                );
                return;
            }
            // Preemption bounding: once the budget is spent, a thread that
            // can continue must continue (commits stay allowed — they are
            // the memory system, not a context switch).
            if let (Some(bound), Some(d)) = (st.cfg.preemption_bound, decider) {
                if st.preemptions >= bound && acts.contains(&Action::Step(d)) {
                    acts.retain(|a| !matches!(*a, Action::Step(t) if t != d));
                }
            }
            let choice = if acts.len() == 1 {
                acts[0]
            } else {
                let engine = st.engine.as_mut().expect("engine present during schedule");
                let idx = engine.choose(&acts, decider);
                assert!(idx < acts.len(), "engine chose out of range");
                let c = acts[idx];
                st.choices.push(c);
                c
            };
            match choice {
                Action::Commit(t) => {
                    let (_, loc, v) = st.threads[t]
                        .buffer
                        .pop_front()
                        .expect("commit of empty buffer");
                    // SAFETY: schedule is live; see `State` Send rationale.
                    unsafe { loc.commit(v) };
                    st.commits += 1;
                    st.steps += 1;
                    let l = Self::loc_label(st, loc);
                    Self::trace_push(st, format!("memory: commit T{t} {l} = {v}"));
                    if st.steps > st.cfg.max_steps {
                        self.abort_with(
                            st,
                            ViolationKind::Livelock,
                            format!("schedule exceeded {} steps", st.cfg.max_steps),
                        );
                        return;
                    }
                }
                Action::Step(u) => {
                    if let Some(d) = decider {
                        if u != d && acts.contains(&Action::Step(d)) {
                            st.preemptions += 1;
                        }
                    }
                    st.granted = Some(u);
                    self.cv.notify_all();
                    return;
                }
            }
        }
    }

    /// Execute `tid`'s pending operation. Returns the load result (0 for
    /// non-loads).
    fn execute(&self, st: &mut State, tid: usize) -> u64 {
        let op = st.threads[tid]
            .pending
            .take()
            .expect("granted thread has a pending op");
        st.threads[tid].yielded_at = None;
        st.steps += 1;
        let val = match op {
            Op::Start => {
                Self::trace_push(st, format!("T{tid}: start"));
                0
            }
            Op::Store(loc, v) => {
                st.threads[tid].buffer.push_back((loc.key(), loc, v));
                let l = Self::loc_label(st, loc);
                Self::trace_push(st, format!("T{tid}: store {l} <- {v} (buffered)"));
                0
            }
            Op::Load(loc) => {
                let key = loc.key();
                let fwd = st.threads[tid]
                    .buffer
                    .iter()
                    .rev()
                    .find(|e| e.0 == key)
                    .map(|e| e.2);
                // SAFETY: schedule is live; see `State` Send rationale.
                let v = fwd.unwrap_or_else(|| unsafe { loc.committed_load() });
                let l = Self::loc_label(st, loc);
                let tag = if fwd.is_some() { " (forwarded)" } else { "" };
                Self::trace_push(st, format!("T{tid}: load {l} -> {v}{tag}"));
                v
            }
            Op::Fence => {
                let n = Self::drain(st, tid);
                Self::trace_push(st, format!("T{tid}: fence (drained {n})"));
                0
            }
            Op::Yield(kind) => {
                Self::trace_push(st, format!("T{tid}: yield ({kind:?})"));
                0
            }
            Op::Spin => {
                Self::trace_push(st, format!("T{tid}: spin"));
                0
            }
            Op::Serialize(slot) => {
                match st.slot_to_tid.get(&slot).copied() {
                    Some(target) => {
                        let n = Self::drain(st, target);
                        Self::trace_push(
                            st,
                            format!("T{tid}: serialize T{target} (drained {n})"),
                        );
                    }
                    None => {
                        // A registration made outside this execution (or on
                        // the setup thread): nothing modeled to drain.
                        Self::trace_push(st, format!("T{tid}: serialize <external> (no-op)"));
                    }
                }
                0
            }
        };
        if st.steps > st.cfg.max_steps {
            self.abort_with(
                st,
                ViolationKind::Livelock,
                format!("schedule exceeded {} steps", st.cfg.max_steps),
            );
        }
        val
    }

    /// Drain thread `t`'s modeled buffer in FIFO order.
    fn drain(st: &mut State, t: usize) -> usize {
        let mut n = 0;
        while let Some((_, loc, v)) = st.threads[t].buffer.pop_front() {
            // SAFETY: schedule is live; see `State` Send rationale.
            unsafe { loc.commit(v) };
            n += 1;
        }
        st.commits += n as u64;
        n
    }
}

/// Direct execution against the real atomics, used only once a schedule
/// has aborted and the thread is unwinding: destructors (lock guards)
/// still perform instrumented stores, and panicking inside a panic would
/// abort the process. The buffers were flushed by `abort_with`, so
/// committing directly is consistent.
fn direct_exec(op: Op) -> u64 {
    match op {
        // SAFETY: schedule was live moments ago and the bodies still hold
        // their Arcs; see the `State` Send rationale.
        Op::Store(loc, v) => {
            unsafe { loc.commit(v) };
            0
        }
        Op::Load(loc) => unsafe { loc.committed_load() },
        _ => 0,
    }
}

/// The per-virtual-thread hook installation: routes every instrumented
/// operation of `lbmf` core (and anything built on it) into the scheduler.
pub(crate) struct ThreadHooks {
    pub(crate) inner: Arc<Inner>,
    pub(crate) tid: usize,
}

impl ThreadHooks {
    /// Park at a yield point with `op` pending; returns the op's value
    /// once the engine schedules it.
    fn reach(&self, op: Op) -> u64 {
        let inner = &*self.inner;
        let mut st = inner.state.lock().unwrap();
        if st.abort {
            // The schedule is over: unwind this body (caught in `spawn`).
            // Free-running instead would hang on loops that wait for
            // stores that will now never happen. If we are *already*
            // unwinding, this is a destructor's operation — execute it
            // directly, a second panic would abort the process.
            drop(st);
            if std::thread::panicking() {
                return direct_exec(op);
            }
            std::panic::panic_any(AbortSchedule);
        }
        let tid = self.tid;
        st.threads[tid].pending = Some(op);
        if matches!(op, Op::Spin) {
            st.threads[tid].yielded_at = Some(st.commits);
        }
        if !st.started {
            // Initial arrival: the main thread makes the first decision
            // once every spawned thread is parked here.
            st.arrivals += 1;
            inner.cv.notify_all();
        } else {
            // This thread was the one running: it decides what's next.
            inner.decide_from(&mut st, Some(tid));
        }
        loop {
            if st.abort {
                st.threads[tid].pending = None;
                drop(st);
                if std::thread::panicking() {
                    return direct_exec(op);
                }
                std::panic::panic_any(AbortSchedule);
            }
            if st.granted == Some(tid) {
                st.granted = None;
                return inner.execute(&mut st, tid);
            }
            st = inner.cv.wait(st).unwrap();
        }
    }

    /// Body finished (normally or after unwinding): mark the thread done
    /// and hand the decision on.
    fn finish(&self) {
        let inner = &*self.inner;
        let mut st = inner.state.lock().unwrap();
        st.threads[self.tid].finished = true;
        st.threads[self.tid].pending = None;
        if st.abort {
            if st.threads.iter().all(|t| t.finished) {
                st.done = true;
            }
            inner.cv.notify_all();
            return;
        }
        Inner::trace_push(&mut st, format!("T{}: finish", self.tid));
        inner.decide_from(&mut st, Some(self.tid));
    }

    /// Record a violation from shim code and unwind the body.
    pub(crate) fn fail_here(&self, msg: String) -> ! {
        {
            let mut st = self.inner.state.lock().unwrap();
            if !st.abort {
                self.inner
                    .abort_with(&mut st, ViolationKind::Assertion, msg);
            }
        }
        std::panic::panic_any(AbortSchedule);
    }
}

impl VtHooks for ThreadHooks {
    fn op_store(&self, loc: Loc, val: u64) {
        self.reach(Op::Store(loc, val));
    }

    fn op_load(&self, loc: Loc) -> u64 {
        self.reach(Op::Load(loc))
    }

    fn op_fence(&self) {
        self.reach(Op::Fence);
    }

    fn op_yield(&self, kind: YieldKind) {
        // A compiler fence has no memory-model effect here (it does not
        // drain the buffer) and the next instrumented operation offers
        // the same preemption opportunity — making it a scheduling point
        // would only inflate the DFS space.
        if matches!(kind, YieldKind::CompilerFence) {
            return;
        }
        self.reach(Op::Yield(kind));
    }

    fn spin_yield(&self) {
        self.reach(Op::Spin);
    }

    fn serialize(&self, slot_key: usize) {
        self.reach(Op::Serialize(slot_key));
    }

    fn on_register(&self, slot_key: usize) {
        // Not a yield point: just map the registration to this vthread so
        // later serializations drain the right modeled buffer.
        let mut st = self.inner.state.lock().unwrap();
        st.slot_to_tid.insert(slot_key, self.tid);
    }
}

/// Handle passed to the test body: spawn virtual threads, register a
/// post-schedule validation.
pub struct Exec {
    inner: Arc<Inner>,
    handles: RefCell<Vec<std::thread::JoinHandle<()>>>,
    validate: RefCell<Option<Box<dyn FnOnce() + Send>>>,
}

impl Exec {
    /// Spawn a virtual thread running `f` under the controlled scheduler.
    /// Threads start only after the body closure returns, in a
    /// deterministic state, regardless of OS spawn timing.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) {
        let tid = {
            let mut st = self.inner.state.lock().unwrap();
            assert!(
                !st.started,
                "Exec::spawn must be called from the body closure, before the schedule starts"
            );
            assert!(st.threads.len() < 16, "at most 16 virtual threads");
            st.threads.push(Vt::new());
            st.threads.len() - 1
        };
        let inner = self.inner.clone();
        let h = std::thread::spawn(move || {
            let hooks = Arc::new(ThreadHooks { inner: inner.clone(), tid });
            let _shim = crate::shim::set_current(hooks.clone());
            let _guard = hooks::install(hooks.clone() as Arc<dyn VtHooks>);
            hooks.reach(Op::Start);
            let result = catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = result {
                if !payload.is::<AbortSchedule>() {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "virtual thread panicked".into());
                    let mut st = hooks.inner.state.lock().unwrap();
                    if !st.abort {
                        hooks.inner.abort_with(
                            &mut st,
                            ViolationKind::Panic,
                            format!("T{tid} panicked: {msg}"),
                        );
                    }
                }
            }
            hooks.finish();
        });
        self.handles.borrow_mut().push(h);
    }

    /// Register a closure run on the main thread after every schedule in
    /// which no violation occurred (all virtual threads joined). A panic
    /// inside it is reported as an [`ViolationKind::Assertion`] violation
    /// for that schedule.
    pub fn validate<F: FnOnce() + Send + 'static>(&self, f: F) {
        *self.validate.borrow_mut() = Some(Box::new(f));
    }
}

/// Run one schedule of `body` under `engine`; returns the engine (its
/// exploration state advanced) and the outcome.
pub(crate) fn run_schedule(
    engine: Box<dyn EngineCore>,
    cfg: Config,
    body: &dyn Fn(&Exec),
) -> (Box<dyn EngineCore>, Outcome) {
    install_quiet_panic_hook();
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            threads: Vec::new(),
            started: false,
            arrivals: 0,
            granted: None,
            abort: false,
            done: false,
            violation: None,
            trace: Vec::new(),
            choices: Vec::new(),
            steps: 0,
            preemptions: 0,
            commits: 0,
            cfg,
            loc_ids: HashMap::new(),
            slot_to_tid: HashMap::new(),
            engine: Some(engine),
        }),
        cv: Condvar::new(),
    });

    let exec = Exec {
        inner: inner.clone(),
        handles: RefCell::new(Vec::new()),
        validate: RefCell::new(None),
    };
    body(&exec);
    let handles = exec.handles.take();
    let validate = exec.validate.take();
    let n = handles.len();

    {
        let mut st: MutexGuard<State> = inner.state.lock().unwrap();
        while st.arrivals < n {
            st = inner.cv.wait(st).unwrap();
        }
        st.started = true;
        if n == 0 {
            st.done = true;
        } else {
            inner.decide_from(&mut st, None);
        }
        while !st.done {
            st = inner.cv.wait(st).unwrap();
        }
    }
    for h in handles {
        let _ = h.join();
    }

    let mut st = inner.state.lock().unwrap();
    if st.violation.is_none() {
        if let Some(v) = validate {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(v)) {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "validate closure panicked".into());
                let vmsg = format!("validate failed: {msg}");
                Inner::trace_push(&mut st, format!("!! violation (Assertion): {vmsg}"));
                st.violation = Some((ViolationKind::Assertion, vmsg));
            }
        }
    }
    let trace = st
        .trace
        .iter()
        .enumerate()
        .map(|(i, l)| format!("{:>4}. {l}", i + 1))
        .collect::<Vec<_>>()
        .join("\n");
    let outcome = Outcome {
        violation: st.violation.clone(),
        choices: st.choices.clone(),
        trace,
    };
    let engine = st.engine.take().expect("engine still present");
    (engine, outcome)
}
