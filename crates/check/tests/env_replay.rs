//! End-to-end `LBMF_CHECK_SEED` replay: the environment variable a failure
//! report tells the user to set really does rerun exactly the failing
//! interleaving.
//!
//! This lives in its own integration-test binary (its own process) because
//! it mutates the process environment; the library tests exercise the same
//! machinery in-process through `Explorer::seed_override`. Everything here
//! is one `#[test]` so no parallel test thread observes a half-set
//! variable.

use lbmf_check::{AtomicCell, Explorer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The unfenced store-buffering shape: the canonical bug every engine can
/// find within a handful of schedules.
fn sb_unfenced(exec: &lbmf_check::Exec) {
    let x = Arc::new(AtomicCell::new(0));
    let y = Arc::new(AtomicCell::new(0));
    let r0 = Arc::new(AtomicU64::new(99));
    let r1 = Arc::new(AtomicU64::new(99));
    {
        let (x, y, r0) = (x.clone(), y.clone(), r0.clone());
        exec.spawn(move || {
            x.store(1);
            r0.store(y.load(), Ordering::SeqCst);
        });
    }
    {
        let (x, y, r1) = (x.clone(), y.clone(), r1.clone());
        exec.spawn(move || {
            y.store(1);
            r1.store(x.load(), Ordering::SeqCst);
        });
    }
    exec.validate(move || {
        let (a, b) = (r0.load(Ordering::SeqCst), r1.load(Ordering::SeqCst));
        assert!(!(a == 0 && b == 0), "forbidden SB outcome r0=0 r1=0");
    });
}

#[test]
fn env_seed_replays_the_reported_failure() {
    std::env::remove_var("LBMF_CHECK_SEED");

    // 1. Explore until the bug is found; the report carries the derived
    //    per-schedule seed that its Display output tells the user to
    //    export.
    let found = Explorer::random_walk(0x5EED_0001, 2_000).check("env-sb", sb_unfenced);
    let v = found.expect_violation().clone();
    let seed = v.seed.expect("randomized engines report a replay seed");
    let printed = format!("{}", found);
    assert!(
        printed.contains(&format!("LBMF_CHECK_SEED={seed:#x}")),
        "report must print the export hint:\n{printed}"
    );

    // 2. Replay through the environment, from a *different* base seed:
    //    the env override must pin the exploration to exactly one
    //    schedule that reproduces the same interleaving byte for byte.
    std::env::set_var("LBMF_CHECK_SEED", format!("{seed:#x}"));
    let replay = Explorer::random_walk(0xFFFF_FFFF, 2_000).check("env-sb", sb_unfenced);
    std::env::remove_var("LBMF_CHECK_SEED");

    assert_eq!(replay.schedules_run, 1, "env seed pins a single schedule");
    let vr = replay.expect_violation();
    assert_eq!(vr.trace, v.trace, "env replay reproduces the interleaving");
    assert_eq!(vr.choices, v.choices);

    // 3. Decimal spelling of the same seed works too.
    std::env::set_var("LBMF_CHECK_SEED", format!("{seed}"));
    let replay_dec = Explorer::random_walk(0x1234, 2_000).check("env-sb", sb_unfenced);
    std::env::remove_var("LBMF_CHECK_SEED");
    assert_eq!(replay_dec.schedules_run, 1);
    assert_eq!(replay_dec.expect_violation().trace, v.trace);
}
