//! CI smoke pass for the check harness (see `scripts/ci.sh`).
//!
//! Two quick runs, both bounded well under the 5-second CI cap:
//!
//! 1. a *proof*: bounded DFS (preemption bound 2) exhausts the schedule
//!    space of the asymmetric Dekker lock under the symmetric strategy
//!    without finding a mutual-exclusion violation;
//! 2. a *negative control*: the same DFS must find the store-buffering
//!    violation when the serialization side is removed (`NoFence`) —
//!    proving the harness can actually see the bug class it exists for.
//!
//! Exits nonzero (via panic) if either direction fails.

use lbmf::dekker::AsymmetricDekker;
use lbmf::strategy::{FenceStrategy, NoFence, Symmetric};
use lbmf_check::{Exec, Explorer, Shared};
use std::sync::Arc;
use std::time::Instant;

fn dekker_body<S, F>(mk: F) -> impl Fn(&Exec)
where
    S: FenceStrategy + Send + Sync + 'static,
    F: Fn() -> S,
{
    move |exec| {
        let dekker = Arc::new(AsymmetricDekker::new(Arc::new(mk())));
        let witness = Arc::new(Shared::new(0u64));

        let d = dekker.clone();
        let w = witness.clone();
        exec.spawn(move || {
            let primary = d.register_primary();
            let _g = primary.lock();
            w.with_mut(|v| *v += 1);
        });

        let d = dekker.clone();
        let w = witness.clone();
        exec.spawn(move || {
            let _g = d.secondary_lock();
            w.with_mut(|v| *v += 10);
        });

        let w = witness.clone();
        exec.validate(move || assert_eq!(w.read(), 11));
    }
}

fn main() {
    let start = Instant::now();

    let t = Instant::now();
    let safe = Explorer::dfs(2)
        .seed_override(None)
        .check("smoke-dekker-symmetric", dekker_body(Symmetric::new));
    safe.assert_no_violation();
    assert!(safe.exhausted, "DFS must exhaust the bounded space");
    println!(
        "PROOF      dekker/symmetric: {} schedules exhausted, no violation ({:?})",
        safe.schedules_run,
        t.elapsed()
    );

    let t = Instant::now();
    let buggy = Explorer::dfs(2)
        .seed_override(None)
        .check("smoke-dekker-nofence", dekker_body(NoFence::new));
    let v = buggy.expect_violation();
    assert!(
        v.message.contains("mutual exclusion"),
        "unexpected violation: {}",
        v.message
    );
    println!(
        "DETECTION  dekker/nofence: violation found in schedule {} ({} decisions, {:?})",
        v.schedule_index,
        v.choices.len(),
        t.elapsed()
    );

    // Export the minimized counterexample for Perfetto (and self-check the
    // JSON, same as the real-execution traces).
    let json = v.chrome_trace();
    let events = lbmf_trace::chrome::validate(&json).expect("counterexample trace well-formed");
    let out = std::env::temp_dir().join("lbmf_smoke_violation.trace.json");
    std::fs::write(&out, &json).expect("write counterexample trace");
    println!("TRACE      {} chrome events -> {}", events, out.display());

    let total = start.elapsed();
    println!("smoke pass ok in {total:?}");
    assert!(
        total.as_secs() < 5,
        "smoke pass exceeded the 5s CI budget: {total:?}"
    );
}
