//! The record → persist → compare loop, end to end in one process:
//! the quick suite really runs, its report round-trips through the
//! BENCH_<n>.json text format, and the comparer classifies a synthetic
//! slowdown as a regression while leaving the identity compare clean.

use lbmf_obs::compare::{compare, Verdict};
use lbmf_obs::schema::{bench_files, next_index, BenchReport};
use lbmf_obs::suite;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lbmf_obs_it_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn quick_suite_records_roundtrips_and_gates() {
    let report = suite::run(true);

    // The suite's contractual contents.
    for name in [
        "dekker_entry/symmetric",
        "dekker_entry/signal",
        "dekker_entry/no_fence",
        "fence/full_fence",
        "fence/compiler_fence",
        "serialize/signal_roundtrip",
        "steal/fib_test",
    ] {
        let e = report
            .entry(name)
            .unwrap_or_else(|| panic!("suite must include {name}"));
        assert!(e.result.mean_ns > 0.0, "{name}: no timing");
        assert!(e.result.samples >= 2, "{name}: need samples for a CV");
    }

    // The paper's claim, visible in the recorded counters: the
    // asymmetric primary path pays compiler fences, never full fences;
    // the symmetric baseline pays full fences.
    let signal = report.entry("dekker_entry/signal").unwrap();
    let fs = signal.fence_stats.expect("strategy benchmarks carry stats");
    assert!(fs.primary_compiler_fences > 0, "asymmetric fast path ran");
    assert_eq!(fs.primary_full_fences, 0, "no mfence on the asymmetric primary");
    assert_eq!(signal.strategy.as_deref(), Some("lbmf-signal"));
    let sym = report.entry("dekker_entry/symmetric").unwrap();
    assert!(sym.fence_stats.unwrap().primary_full_fences > 0);

    // The serialize benchmark drove real round trips and captured their
    // latency percentiles from the trace rings.
    let ser = report.entry("serialize/signal_roundtrip").unwrap();
    let st = ser.fence_stats.unwrap();
    assert!(st.serializations_requested > 0, "round trips requested");
    let sl = ser.serialize.expect("serialize percentiles captured");
    assert!(sl.count > 0 && sl.p50 <= sl.p99, "p50 {} p99 {}", sl.p50, sl.p99);

    // Persist with the BENCH_<n>.json naming and read it back.
    let dir = temp_dir("record");
    let n = next_index(&dir);
    assert_eq!(n, 3, "fresh dir starts at the introducing PR's index");
    let path = dir.join(format!("BENCH_{n}.json"));
    let text = report.render();
    std::fs::write(&path, &text).unwrap();
    let loaded = BenchReport::load(&path).expect("self-parse");
    // The text format rounds ns to 3 decimals, so loaded == parse(text)
    // exactly and re-rendering is a fixpoint.
    assert_eq!(loaded.render(), text, "render/parse must be a fixpoint");
    for (orig, back) in report.benchmarks.iter().zip(&loaded.benchmarks) {
        assert_eq!(orig.result.name, back.result.name);
        assert!((orig.result.mean_ns - back.result.mean_ns).abs() < 1e-3);
        assert_eq!(orig.fence_stats, back.fence_stats);
        assert_eq!(orig.serialize, back.serialize);
    }
    assert_eq!(bench_files(&dir).len(), 1);
    assert_eq!(next_index(&dir), 4);

    // Identity compare: nothing regresses against itself.
    let id = compare(&loaded, &loaded);
    assert_eq!(id.regressions().count(), 0);
    assert!(id
        .deltas
        .iter()
        .all(|d| d.verdict == Verdict::Unchanged));

    // Synthetic 10× slowdown of one benchmark: the gate sees exactly it.
    let mut slow = loaded.clone();
    let e = slow
        .benchmarks
        .iter_mut()
        .find(|b| b.result.name == "fence/compiler_fence")
        .unwrap();
    e.result.min_ns *= 10.0;
    e.result.mean_ns *= 10.0;
    e.result.max_ns *= 10.0;
    let cmp = compare(&loaded, &slow);
    let names: Vec<&str> = cmp.regressions().map(|d| d.name.as_str()).collect();
    assert_eq!(names, ["fence/compiler_fence"], "{:?}", cmp.render());

    std::fs::remove_dir_all(&dir).ok();
}
