//! End-to-end check of the acceptance criterion: `/metrics` answers
//! with Prometheus text whose fence counters match the workload's own
//! `FenceStatsSnapshot` — same numbers, observed two ways.

use lbmf::strategy::{FenceStrategy, SignalFence};
use lbmf_cilk::bench::{Kernel, Scale};
use lbmf_cilk::Scheduler;
use lbmf_obs::{http, metrics};
use std::sync::Arc;

/// Extract the value of `name{...}` (any label set) from an exposition
/// payload.
fn sample_value(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| {
            l.split(['{', ' '])
                .next()
                .is_some_and(|metric| metric == name)
        })
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}

#[test]
fn metrics_endpoint_matches_workload_fence_stats() {
    // A real steal-heavy workload on the asymmetric runtime.
    let strategy = Arc::new(SignalFence::new());
    let sched = Scheduler::new(2, strategy.clone());
    let r = Kernel::Fib.run_timed(&sched, Scale::Test);
    assert!(r.checksum != 0, "workload ran");

    // The workload's own view of what it did.
    let truth = strategy.stats().snapshot();
    assert!(
        truth.primary_compiler_fences > 0,
        "fence-free pops must have happened: {truth}"
    );

    // The scraped view.
    let strategy2 = strategy.clone();
    let server = http::MetricsServer::start("127.0.0.1:0", move || {
        metrics::render_all(&[(
            strategy2.name().to_string(),
            strategy2.stats().snapshot(),
        )])
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    let (status, body) = http::get(addr, "/metrics").expect("scrape");
    assert!(status.contains("200 OK"), "{status}");
    assert!(body.ends_with('\n'));

    // Every counter the snapshot carries appears with exactly the
    // snapshot's value (the workload is quiescent, so no drift).
    for (field, value) in truth.fields() {
        let metric = format!("lbmf_fence_{field}_total");
        let scraped = sample_value(&body, &metric)
            .unwrap_or_else(|| panic!("{metric} missing from payload:\n{body}"));
        assert_eq!(scraped, value as f64, "{metric} disagrees with snapshot");
    }
    // The strategy label rides along.
    assert!(
        body.contains("strategy=\"lbmf-signal\""),
        "strategy label missing"
    );

    // The trace-ring families are in the same payload (steals were
    // traced by the deque instrumentation).
    assert!(body.contains("lbmf_trace_events_total"), "trace export missing");

    // Liveness endpoint for the scrape job.
    let (status, health) = http::get(addr, "/healthz").expect("healthz");
    assert!(status.contains("200 OK"));
    assert_eq!(health, "ok\n");
}

#[test]
fn scrapes_observe_monotone_counters_across_work() {
    let strategy = Arc::new(SignalFence::new());
    let sched = Scheduler::new(2, strategy.clone());
    let strategy2 = strategy.clone();
    let server = http::MetricsServer::start("127.0.0.1:0", move || {
        metrics::render_all(&[(
            strategy2.name().to_string(),
            strategy2.stats().snapshot(),
        )])
    })
    .expect("bind");
    let addr = server.local_addr();

    let metric = "lbmf_fence_primary_compiler_fences_total";
    let before = sample_value(&http::get(addr, "/metrics").unwrap().1, metric).unwrap();
    Kernel::Nqueens.run_timed(&sched, Scale::Test);
    let after = sample_value(&http::get(addr, "/metrics").unwrap().1, metric).unwrap();
    assert!(
        after > before,
        "counter must move with the workload: {before} -> {after}"
    );
}
