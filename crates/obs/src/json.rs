//! A small JSON value model with a recursive-descent parser and a
//! writer — the read side of the observatory. The trace crate already
//! ships a *validating* parser for Chrome traces; `compare` additionally
//! needs the parsed values back, so this module materializes a
//! [`Json`] tree. No registry dependencies, by the repo's offline rule.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects keep a sorted map — BENCH files are
/// machine-written and key order carries no meaning.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64; BENCH files stay well inside the
    /// 2^53 exact-integer range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number value as u64, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serialize back to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        s: text.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Parse JSONL: one JSON value per non-empty line (the
/// `LBMF_BENCH_JSON` collection format).
pub fn parse_lines(text: &str) -> Result<Vec<Json>, String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .enumerate()
        .map(|(i, l)| parse(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| Json::Bool(false)),
            Some(b'n') => self.literal("null").map(|_| Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.s.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .s
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("expected number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&c) = self.s.get(self.i) else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.s.get(self.i) else {
                        return Err(self.err("dangling escape"));
                    };
                    self.i += 1;
                    match e {
                        b'"' | b'\\' | b'/' => out.push(e as char),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogates degrade to the replacement char;
                            // BENCH content is ASCII in practice.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Re-decode the multi-byte UTF-8 sequence.
                    let start = self.i - 1;
                    let len = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .s
                        .get(start..start + len)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.i = start + len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.eat(b':')?;
            let v = self.value()?;
            map.insert(k, v);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Convenience constructor for object literals in writer code.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_nesting() {
        let text = r#"{"a":1,"b":-2.5,"c":"x\"y\n","d":[true,false,null],"e":{"f":[]}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(-2.5));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(v.get("d").unwrap().as_arr().unwrap().len(), 3);
        // render → parse is a fixpoint.
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,", "{\"a\":}", "1 2", "{\"a\":1}x", "nul", "\"\\q\""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_bench_jsonl() {
        let text = "\n{\"name\":\"a\",\"mean_ns\":1.5}\n\n{\"name\":\"b\",\"mean_ns\":2}\n";
        let rows = parse_lines(text).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("name").unwrap().as_str(), Some("b"));
        assert!(parse_lines("{\"a\":1}\nnot json").is_err());
    }

    #[test]
    fn number_writer_keeps_integers_exact() {
        assert_eq!(Json::Num(31536000.0).render(), "31536000");
        assert_eq!(Json::Num(0.125).render(), "0.125");
        assert_eq!(parse("1e3").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let v = parse(r#""caf\u00e9 ☕""#).unwrap();
        assert_eq!(v.as_str(), Some("café ☕"));
        let round = parse(&v.render()).unwrap();
        assert_eq!(round, v);
    }
}
