//! Prometheus rendering of the runtime's aggregate counters, composed
//! with `lbmf_trace`'s event export into the one payload `/metrics`
//! serves.
//!
//! The counter families live here rather than in `lbmf-trace` because
//! the dependency points the other way: `lbmf` (which owns
//! [`FenceStatsSnapshot`]) depends on `lbmf-trace`, so only a crate
//! above both — this one — can see a strategy's counters and the trace
//! rings at once.

use lbmf::stats::FenceStatsSnapshot;
use std::fmt::Write as _;

/// Render one strategy's counters in exposition format. `strategy` is
/// the strategy's stable name label (`lbmf-signal`, ...).
pub fn render_fence_stats(strategy: &str, snap: &FenceStatsSnapshot) -> String {
    let mut out = String::new();
    for (field, value) in snap.fields() {
        let _ = writeln!(
            out,
            "# HELP lbmf_fence_{field}_total Cumulative {} since strategy creation.",
            field.replace('_', " ")
        );
        let _ = writeln!(out, "# TYPE lbmf_fence_{field}_total counter");
        let _ = writeln!(
            out,
            "lbmf_fence_{field}_total{{strategy=\"{}\"}} {value}",
            strategy.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    out
}

/// The full `/metrics` payload: the live trace-ring export followed by
/// the fence counters of every `(strategy, snapshot)` pair the workload
/// registered.
pub fn render_all(stats: &[(String, FenceStatsSnapshot)]) -> String {
    let mut out = lbmf_trace::prometheus::export(&lbmf_trace::take_snapshot());
    for (strategy, snap) in stats {
        out.push_str(&render_fence_stats(strategy, snap));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fence_counters_render_all_fields_with_headers() {
        let snap = FenceStatsSnapshot {
            primary_compiler_fences: 7,
            serializations_requested: 3,
            ..Default::default()
        };
        let text = render_fence_stats("lbmf-signal", &snap);
        assert!(text.ends_with('\n'));
        for (field, value) in snap.fields() {
            assert!(
                text.contains(&format!("# HELP lbmf_fence_{field}_total")),
                "{field} HELP missing"
            );
            assert!(
                text.contains(&format!("# TYPE lbmf_fence_{field}_total counter")),
                "{field} TYPE missing"
            );
            assert!(
                text.contains(&format!(
                    "lbmf_fence_{field}_total{{strategy=\"lbmf-signal\"}} {value}"
                )),
                "{field} sample missing in:\n{text}"
            );
        }
    }

    #[test]
    fn combined_payload_has_trace_and_fence_families() {
        let text = render_all(&[("lbmf-signal".into(), FenceStatsSnapshot::default())]);
        assert!(text.contains("lbmf_trace_events_total"));
        assert!(text.contains("lbmf_fence_primary_compiler_fences_total"));
    }
}
