//! `lbmf-obs` CLI: `record`, `compare`, `serve`, plus the simulator-facing
//! `sim`, `calibrate` and `validate`. See `lbmf_obs` (the library half)
//! for what each subcommand is made of, and EXPERIMENTS.md for the
//! recipes CI and humans follow.

use lbmf_bench::Args;
use lbmf_obs::schema::{bench_files, next_index, BenchReport};
use lbmf_obs::sim::CalibrationReport;
use lbmf_obs::{compare, explain, http, metrics, sim, suite};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const USAGE: &str = "\
lbmf-obs — perf observatory for the lbmf runtime

USAGE:
    lbmf-obs record  [--quick] [--dir DIR] [--out PATH] [--ingest PATH]
    lbmf-obs compare [--dir DIR] [--baseline PATH] [--candidate PATH] [--gate] [--advisory]
    lbmf-obs compare --self-check [PATH] [--dir DIR]
    lbmf-obs explain TRACE.json [TRACE.json ...] [--require-complete N] [--max-sum-deviation PCT]
    lbmf-obs serve   [--addr HOST:PORT] [--workers N] [--duration-secs N]
    lbmf-obs sim     [--iters N] [--prometheus]
    lbmf-obs calibrate [--tolerance PCT] [--out PATH] [--advisory]
    lbmf-obs validate TRACE.json [TRACE.json ...]

record:   run the benchmark suite, write BENCH_<n>.json (next free n, floor 3).
          --quick uses 5 ms measurement batches (CI smoke; noisier, and
          flagged as such in the file). --ingest folds a mini-criterion
          JSONL collection (LBMF_BENCH_JSON hook) into the report.
compare:  newest recording vs the one before it (or explicit paths).
          Deltas are noise-aware: threshold = max(5%, 3×cv), doubled for
          quick recordings. --gate exits 2 on confirmed regressions;
          --advisory downgrades the gate to a warning (1-core CI hosts).
          --self-check validates a recording parses against the schema.
explain:  validate an exported Chrome trace, reconstruct the causal
          serialization chains from their correlation ids, and print
          per-phase latency attribution (queue/delivery/drain/ack) with
          orphan accounting, one section per trace. --require-complete N
          exits 2 unless at least N fully-phased chains were found across
          all traces; --max-sum-deviation PCT exits 2 when the phase-p50
          sum strays further than PCT% from the measured round-trip p50.
serve:    run a steal-heavy ACilk-5 workload and serve /metrics + /healthz
          until --duration-secs elapses (0 = forever, default).
sim:      run the cycle simulator's Dekker handoff under l-mfence and
          mfence and attribute the coherence traffic each strategy causes:
          per-(op, instruction class) bus transactions, link clears by
          reason, and the serialization bill with who paid it.
          --prometheus additionally prints the exposition-format counters.
calibrate: replay distilled Dekker-handoff / steal-probe kernels on the
          cycle machine and compare each measured cost against the DES
          cost table, writing an lbmf-calib/1 report (--out). Exits 2 when
          any entry drifts past --tolerance PCT (default 10) unless
          --advisory downgrades that to a warning.
validate: structurally validate exported Chrome traces (flow-event
          pairing included) without any further interpretation.
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let sub = argv.first().map(String::as_str);
    let rest: Vec<&str> = argv.iter().skip(1).map(String::as_str).collect();
    let args = Args::from(&rest);
    match sub {
        Some("record") => cmd_record(&args),
        Some("compare") => cmd_compare(&args),
        Some("explain") => cmd_explain(&rest),
        Some("serve") => cmd_serve(&args),
        Some("sim") => cmd_sim(&args),
        Some("calibrate") => cmd_calibrate(&args),
        Some("validate") => cmd_validate(&rest),
        Some("--help") | Some("-h") | Some("help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn dir_of(args: &Args) -> PathBuf {
    PathBuf::from(args.value("--dir").unwrap_or("."))
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("lbmf-obs: {msg}");
    ExitCode::FAILURE
}

fn cmd_record(args: &Args) -> ExitCode {
    let quick = args.flag("--quick");
    let dir = dir_of(args);
    println!(
        "recording {} suite (batch window {:?})...",
        if quick { "quick" } else { "full" },
        suite::target_for(quick)
    );
    let mut report = suite::run(quick);

    // The LBMF_BENCH_JSON hook: fold externally collected rows in.
    let ingest_path = args
        .value("--ingest")
        .map(str::to_string)
        .or_else(|| std::env::var("LBMF_BENCH_JSON").ok().filter(|p| !p.is_empty()));
    if let Some(path) = ingest_path {
        match std::fs::read_to_string(&path) {
            Ok(text) => match suite::ingest_jsonl(&mut report, &text) {
                Ok(n) => println!("ingested {n} external result(s) from {path}"),
                Err(e) => return fail(&format!("ingest {path}: {e}")),
            },
            Err(e) => eprintln!("note: no ingestable JSONL at {path} ({e})"),
        }
    }

    let out = match args.value("--out") {
        Some(p) => PathBuf::from(p),
        None => dir.join(format!("BENCH_{}.json", next_index(&dir))),
    };
    let text = report.render();
    // Round-trip before writing: a file `compare` cannot read back must
    // never land on disk.
    if let Err(e) = BenchReport::parse(&text) {
        return fail(&format!("internal error: recording fails self-parse: {e}"));
    }
    if let Err(e) = std::fs::write(&out, &text) {
        return fail(&format!("write {}: {e}", out.display()));
    }
    println!(
        "wrote {} ({} benchmarks, host {}/{} cpus={})",
        out.display(),
        report.benchmarks.len(),
        report.host.os,
        report.host.arch,
        report.host.cpus
    );
    ExitCode::SUCCESS
}

fn cmd_compare(args: &Args) -> ExitCode {
    let dir = dir_of(args);
    if args.flag("--self-check") {
        // `--self-check [PATH]`: explicit file, else the newest recording.
        let path = match args.value("--self-check").filter(|v| !v.starts_with("--")) {
            Some(p) => PathBuf::from(p),
            None => match bench_files(&dir).pop() {
                Some((_, p)) => p,
                None => return fail(&format!("no BENCH_*.json under {}", dir.display())),
            },
        };
        return match BenchReport::load(&path) {
            Ok(r) => {
                println!(
                    "{}: schema ok ({} benchmarks, recorded_unix {}, quick={})",
                    path.display(),
                    r.benchmarks.len(),
                    r.recorded_unix,
                    r.quick
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        };
    }

    let files = bench_files(&dir);
    let candidate_path = match args.value("--candidate") {
        Some(p) => PathBuf::from(p),
        None => match files.last() {
            Some((_, p)) => p.clone(),
            None => return fail(&format!("no BENCH_*.json under {}", dir.display())),
        },
    };
    let baseline_path = match args.value("--baseline") {
        Some(p) => PathBuf::from(p),
        None => {
            // Newest prior recording that isn't the candidate itself.
            match files
                .iter()
                .rev()
                .map(|(_, p)| p)
                .find(|p| **p != candidate_path)
            {
                Some(p) => p.clone(),
                None => return fail("need two recordings (or --baseline) to compare"),
            }
        }
    };
    let baseline = match BenchReport::load(&baseline_path) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    let candidate = match BenchReport::load(&candidate_path) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    println!(
        "baseline:  {} (recorded_unix {})",
        baseline_path.display(),
        baseline.recorded_unix
    );
    println!(
        "candidate: {} (recorded_unix {})",
        candidate_path.display(),
        candidate.recorded_unix
    );
    let cmp = compare::compare(&baseline, &candidate);
    print!("{}", cmp.render());
    let regressions = cmp.regressions().count();
    if args.flag("--gate") && regressions > 0 {
        if args.flag("--advisory") {
            eprintln!("gate (advisory): {regressions} regression(s) — not failing the build");
        } else {
            eprintln!("gate: {regressions} confirmed regression(s)");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

fn cmd_explain(rest: &[&str]) -> ExitCode {
    // Positional paths plus two value flags; Args has no positional
    // accessor, so split by hand.
    let args = Args::from(rest);
    let require_complete: usize = args.get("--require-complete", 0);
    let max_sum_deviation: Option<f64> = args.value("--max-sum-deviation").and_then(|v| v.parse().ok());
    if args.value("--max-sum-deviation").is_some() && max_sum_deviation.is_none() {
        return fail("--max-sum-deviation needs a numeric percentage");
    }
    let mut paths = Vec::new();
    let mut skip_next = false;
    for a in rest {
        if skip_next {
            skip_next = false;
            continue;
        }
        if *a == "--require-complete" || *a == "--max-sum-deviation" {
            skip_next = true;
        } else if a.starts_with("--") {
            return fail(&format!("unknown flag {a:?}\n\n{USAGE}"));
        } else {
            paths.push(PathBuf::from(a));
        }
    }
    if paths.is_empty() {
        return fail(&format!("explain needs at least one trace path\n\n{USAGE}"));
    }

    let mut total_complete = 0usize;
    let mut gate_failures = Vec::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("{}: {e}", path.display())),
        };
        // Structural validation first (including flow-event pairing) —
        // explain must never attribute latency from a malformed trace.
        if let Err(e) = lbmf_trace::chrome::validate(&text) {
            return fail(&format!("{}: invalid trace: {e}", path.display()));
        }
        let parsed = match explain::parse_trace(&text) {
            Ok(p) => p,
            Err(e) => return fail(&format!("{}: {e}", path.display())),
        };
        let ex = explain::explain(&parsed);
        println!("=== {} ===", path.display());
        print!("{}", ex.text);
        total_complete += ex.complete_chains;
        if let (Some(max_pct), Some(dev)) = (max_sum_deviation, ex.phase_sum_deviation) {
            if dev.abs() * 100.0 > max_pct {
                gate_failures.push(format!(
                    "{}: phase-p50 sum deviates {:+.1}% from round-trip p50 (limit ±{max_pct}%)",
                    path.display(),
                    dev * 100.0
                ));
            }
        }
    }
    if require_complete > 0 && total_complete < require_complete {
        gate_failures.push(format!(
            "found {total_complete} complete chain(s), --require-complete {require_complete}"
        ));
    }
    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("explain gate: {f}");
        }
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

fn cmd_sim(args: &Args) -> ExitCode {
    let iters: u64 = args.get("--iters", 3);
    if iters == 0 {
        return fail("--iters must be at least 1");
    }
    let strategies = sim::traffic_report(iters);
    print!("{}", sim::render_traffic(&strategies));
    if args.flag("--prometheus") {
        for s in &strategies {
            println!("\n# strategy {}", s.label);
            print!("{}", s.prometheus);
        }
    }
    ExitCode::SUCCESS
}

fn cmd_calibrate(args: &Args) -> ExitCode {
    let tolerance: f64 = match args.value("--tolerance") {
        Some(v) => match v.parse() {
            Ok(t) if t >= 0.0 => t,
            _ => return fail("--tolerance needs a non-negative percentage"),
        },
        None => 10.0,
    };
    let report = CalibrationReport::run(tolerance);
    print!("{}", report.render_text());
    if let Some(out) = args.value("--out") {
        let text = report.render_json();
        // Round-trip before writing, same contract as `record`.
        if let Err(e) = CalibrationReport::parse(&text) {
            return fail(&format!("internal error: report fails self-parse: {e}"));
        }
        if let Some(parent) = PathBuf::from(out).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(out, &text) {
            return fail(&format!("write {out}: {e}"));
        }
        println!("wrote {out}");
    }
    if !report.all_within() {
        if args.flag("--advisory") {
            eprintln!("calibration gate (advisory): divergence past ±{tolerance}% — not failing the build");
        } else {
            eprintln!("calibration gate: divergence past ±{tolerance}%");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

fn cmd_validate(rest: &[&str]) -> ExitCode {
    let paths: Vec<&&str> = rest.iter().filter(|a| !a.starts_with("--")).collect();
    if let Some(flag) = rest.iter().find(|a| a.starts_with("--")) {
        return fail(&format!("unknown flag {flag:?}\n\n{USAGE}"));
    }
    if paths.is_empty() {
        return fail(&format!("validate needs at least one trace path\n\n{USAGE}"));
    }
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        match lbmf_trace::chrome::validate(&text) {
            Ok(n) => println!("{path}: valid ({n} events)"),
            Err(e) => return fail(&format!("{path}: invalid trace: {e}")),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_serve(args: &Args) -> ExitCode {
    use lbmf::strategy::{FenceStrategy, SignalFence};
    use lbmf_cilk::bench::{Kernel, Scale};
    use lbmf_cilk::Scheduler;

    let addr = args.value("--addr").unwrap_or("127.0.0.1:9478");
    let workers: usize = args.get("--workers", 2);
    let duration_secs: u64 = args.get("--duration-secs", 0);

    let strategy = Arc::new(SignalFence::new());
    let strategy_for_metrics = strategy.clone();
    let server = match http::MetricsServer::start(addr, move || {
        metrics::render_all(&[(
            strategy_for_metrics.name().to_string(),
            strategy_for_metrics.stats().snapshot(),
        )])
    }) {
        Ok(s) => s,
        Err(e) => return fail(&format!("bind {addr}: {e}")),
    };
    println!(
        "serving http://{}/metrics and /healthz ({} ACilk-5 workers, {})",
        server.local_addr(),
        workers,
        if duration_secs == 0 {
            "until killed".to_string()
        } else {
            format!("for {duration_secs}s")
        }
    );

    // The workload: an ACilk-5 scheduler stealing continuously. One
    // driver thread resubmits Figure-4 kernels; the scrape thread only
    // ever reads counters and drains rings.
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let strategy2 = strategy.clone();
    let driver = std::thread::Builder::new()
        .name("obs-workload".into())
        .spawn(move || {
            let sched = Scheduler::new(workers, strategy2);
            let kernels = [Kernel::Fib, Kernel::Cilksort, Kernel::Nqueens];
            let mut i = 0usize;
            while !stop2.load(Ordering::Relaxed) {
                let k = kernels[i % kernels.len()];
                std::hint::black_box(k.run_timed(&sched, Scale::Test).checksum);
                i += 1;
            }
            i
        })
        .expect("spawn workload");

    if duration_secs == 0 {
        let _ = driver.join();
    } else {
        std::thread::sleep(std::time::Duration::from_secs(duration_secs));
        stop.store(true, Ordering::Relaxed);
        let runs = driver.join().unwrap_or(0);
        let stats = strategy.stats().snapshot();
        println!("workload finished: {runs} kernel runs; {stats}");
    }
    drop(server);
    ExitCode::SUCCESS
}
