//! The `BENCH_<n>.json` schema: the repo's perf trajectory of record.
//!
//! One file per recording session, written at the repository root and
//! committed, so a regression is a diff you can `git log`. The schema is
//! versioned (`"schema": "lbmf-bench/2"`); `compare` refuses files whose
//! version it does not understand rather than guessing.
//!
//! Schema v2, informally:
//!
//! ```json
//! {
//!   "schema": "lbmf-bench/2",
//!   "recorded_unix": 1754500000,
//!   "quick": true,
//!   "host": {"os": "linux", "arch": "x86_64", "cpus": 1},
//!   "benchmarks": [
//!     {
//!       "name": "dekker_entry/signal",
//!       "strategy": "SignalFence",
//!       "iters": 524288, "samples": 5,
//!       "min_ns": 7.1, "mean_ns": 7.4, "max_ns": 8.0, "cv": 0.04,
//!       "fence_stats": {"primary_full_fences": 0, ...},
//!       "serialize": {"p50": 767, "p99": 49151, "count": 412}
//!     }
//!   ]
//! }
//! ```
//!
//! `strategy`, `fence_stats` and `serialize` are optional — raw-cost
//! benchmarks (`fence/full_fence`) have no strategy, and only workloads
//! that drove remote serializations carry percentiles.
//!
//! **v1 → v2**: `serialize.p50`/`p99` changed meaning. v1 recorded the
//! raw log2-bucket *upper bound* (always `2^k − 1`: 4095, 8191, ...); v2
//! records the bucket *midpoint*, a central estimate of the same bucket
//! ([`lbmf_trace::Log2Histogram::percentile_midpoint`]). Both are
//! granular to one power of two, so [`parse`](BenchReport::parse) still
//! accepts v1 files and `compare` treats serialize moves within one
//! bucket (2×) as granularity, not signal.

use crate::json::{obj, parse, Json};
use lbmf::stats::FenceStatsSnapshot;
use lbmf_bench::criterion::BenchResult;
use std::path::{Path, PathBuf};

/// Current schema identifier. Bump the `/2` on breaking changes.
pub const SCHEMA: &str = "lbmf-bench/2";

/// Prior schema version, still accepted on read: identical shape, but
/// `serialize` percentiles are bucket upper bounds instead of midpoints
/// (a within-one-bucket difference `compare` already tolerates).
pub const SCHEMA_V1: &str = "lbmf-bench/1";

/// Schema identifier of the DES-vs-sim calibration report written by
/// `lbmf-obs calibrate` (see [`crate::sim`]).
pub const CALIB_SCHEMA: &str = "lbmf-calib/1";

/// Require `root` to carry exactly the schema tag `want` — the shared
/// first step of every schema-versioned parse in this crate.
pub fn check_schema(root: &Json, want: &str) -> Result<(), String> {
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != want {
        return Err(format!("unsupported schema {schema:?} (expected {want:?})"));
    }
    Ok(())
}

/// Where the recording host ran; compared files from different hosts get
/// a loud warning instead of a silent apples-to-oranges delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostMeta {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available parallelism at record time.
    pub cpus: u64,
}

impl HostMeta {
    /// The recording host's metadata.
    pub fn current() -> Self {
        HostMeta {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        }
    }
}

/// Serialize round-trip percentiles drained from the trace rings during
/// one benchmark. v2 values are log2-bucket midpoints (central
/// estimates, granular to within 2×); values read from a v1 file are the
/// corresponding bucket upper bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SerializeLatency {
    /// p50 bucket-midpoint estimate, ns.
    pub p50: u64,
    /// p99 bucket-midpoint estimate, ns.
    pub p99: u64,
    /// Round trips observed.
    pub count: u64,
}

/// One benchmark's record: the mini-criterion numbers plus the
/// runtime-level observability captured while it ran.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Timing result from the mini-criterion harness.
    pub result: BenchResult,
    /// Fence-strategy label (`Symmetric`, `SignalFence`, ...) when the
    /// benchmark exercises one.
    pub strategy: Option<String>,
    /// Fence/serialization counters attributable to this benchmark
    /// (snapshot diff across its run).
    pub fence_stats: Option<FenceStatsSnapshot>,
    /// Serialize round-trip latency percentiles, when round trips
    /// happened.
    pub serialize: Option<SerializeLatency>,
}

impl BenchEntry {
    /// A timing-only entry (no strategy attribution).
    pub fn plain(result: BenchResult) -> Self {
        BenchEntry {
            result,
            strategy: None,
            fence_stats: None,
            serialize: None,
        }
    }

    fn to_json(&self) -> Json {
        let r = &self.result;
        let mut fields = vec![
            ("name", Json::Str(r.name.clone())),
            ("iters", Json::Num(r.iters as f64)),
            ("samples", Json::Num(r.samples as f64)),
            ("min_ns", Json::Num(round3(r.min_ns))),
            ("mean_ns", Json::Num(round3(r.mean_ns))),
            ("max_ns", Json::Num(round3(r.max_ns))),
            ("cv", Json::Num(round6(r.cv))),
        ];
        if let Some(s) = &self.strategy {
            fields.push(("strategy", Json::Str(s.clone())));
        }
        if let Some(fs) = &self.fence_stats {
            fields.push((
                "fence_stats",
                Json::Obj(
                    fs.fields()
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), Json::Num(v as f64)))
                        .collect(),
                ),
            ));
        }
        if let Some(sl) = &self.serialize {
            fields.push((
                "serialize",
                obj(vec![
                    ("p50", Json::Num(sl.p50 as f64)),
                    ("p99", Json::Num(sl.p99 as f64)),
                    ("count", Json::Num(sl.count as f64)),
                ]),
            ));
        }
        obj(fields)
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("benchmark entry missing \"name\"")?
            .to_string();
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("benchmark {name:?}: missing number {key:?}"))
        };
        let result = BenchResult {
            name: name.clone(),
            iters: num("iters")? as u64,
            samples: num("samples")? as usize,
            min_ns: num("min_ns")?,
            mean_ns: num("mean_ns")?,
            max_ns: num("max_ns")?,
            cv: num("cv")?,
        };
        if result.samples == 0 || result.iters == 0 {
            return Err(format!("benchmark {name:?}: zero samples or iters"));
        }
        if !(result.min_ns > 0.0 && result.min_ns <= result.mean_ns && result.mean_ns <= result.max_ns)
        {
            return Err(format!(
                "benchmark {name:?}: min/mean/max not ordered positive ({}/{}/{})",
                result.min_ns, result.mean_ns, result.max_ns
            ));
        }
        if !(0.0..=10.0).contains(&result.cv) {
            return Err(format!("benchmark {name:?}: implausible cv {}", result.cv));
        }
        let strategy = v.get("strategy").and_then(Json::as_str).map(str::to_string);
        let fence_stats = match v.get("fence_stats") {
            None => None,
            Some(fs) => {
                let field = |key: &str| {
                    fs.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("benchmark {name:?}: fence_stats missing {key:?}"))
                };
                Some(FenceStatsSnapshot {
                    primary_full_fences: field("primary_full_fences")?,
                    primary_compiler_fences: field("primary_compiler_fences")?,
                    secondary_full_fences: field("secondary_full_fences")?,
                    serializations_requested: field("serializations_requested")?,
                    serializations_delivered: field("serializations_delivered")?,
                })
            }
        };
        let serialize = match v.get("serialize") {
            None => None,
            Some(sl) => {
                let field = |key: &str| {
                    sl.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("benchmark {name:?}: serialize missing {key:?}"))
                };
                Some(SerializeLatency {
                    p50: field("p50")?,
                    p99: field("p99")?,
                    count: field("count")?,
                })
            }
        };
        Ok(BenchEntry {
            result,
            strategy,
            fence_stats,
            serialize,
        })
    }
}

/// One recording session: everything `BENCH_<n>.json` holds.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Unix seconds at record time.
    pub recorded_unix: u64,
    /// Whether the quick (CI-smoke) measurement window was used. Quick
    /// numbers are noisier; `compare` widens thresholds accordingly.
    pub quick: bool,
    /// Recording host.
    pub host: HostMeta,
    /// Per-benchmark records.
    pub benchmarks: Vec<BenchEntry>,
}

impl BenchReport {
    /// Serialize to pretty-stable JSON text (one benchmark per line for
    /// reviewable diffs), trailing newline included.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"recorded_unix\": {},\n", self.recorded_unix));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!(
            "  \"host\": {},\n",
            obj(vec![
                ("os", Json::Str(self.host.os.clone())),
                ("arch", Json::Str(self.host.arch.clone())),
                ("cpus", Json::Num(self.host.cpus as f64)),
            ])
            .render()
        ));
        out.push_str("  \"benchmarks\": [\n");
        for (i, b) in self.benchmarks.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&b.to_json().render());
            out.push_str(if i + 1 < self.benchmarks.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse and validate one BENCH file's text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != SCHEMA && schema != SCHEMA_V1 {
            return Err(format!(
                "unsupported schema {schema:?} (this build understands {SCHEMA:?} and {SCHEMA_V1:?})"
            ));
        }
        let recorded_unix = v
            .get("recorded_unix")
            .and_then(Json::as_u64)
            .ok_or("missing \"recorded_unix\"")?;
        let quick = match v.get("quick") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("missing \"quick\"".into()),
        };
        let host = v.get("host").ok_or("missing \"host\"")?;
        let host = HostMeta {
            os: host
                .get("os")
                .and_then(Json::as_str)
                .ok_or("host missing \"os\"")?
                .to_string(),
            arch: host
                .get("arch")
                .and_then(Json::as_str)
                .ok_or("host missing \"arch\"")?
                .to_string(),
            cpus: host
                .get("cpus")
                .and_then(Json::as_u64)
                .ok_or("host missing \"cpus\"")?,
        };
        let benchmarks = v
            .get("benchmarks")
            .and_then(Json::as_arr)
            .ok_or("missing \"benchmarks\" array")?;
        if benchmarks.is_empty() {
            return Err("empty \"benchmarks\" array".into());
        }
        let benchmarks = benchmarks
            .iter()
            .map(BenchEntry::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let mut names: Vec<&str> = benchmarks.iter().map(|b| b.result.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != benchmarks.len() {
            return Err("duplicate benchmark names".into());
        }
        Ok(BenchReport {
            recorded_unix,
            quick,
            host,
            benchmarks,
        })
    }

    /// Load and validate a BENCH file from disk.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Entry by full benchmark name.
    pub fn entry(&self, name: &str) -> Option<&BenchEntry> {
        self.benchmarks.iter().find(|b| b.result.name == name)
    }
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

/// `BENCH_<n>.json` files under `dir`, sorted ascending by `n`.
pub fn bench_files(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return found;
    };
    for e in entries.flatten() {
        let name = e.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|r| r.parse::<u64>().ok())
        {
            found.push((n, e.path()));
        }
    }
    found.sort_unstable();
    found
}

/// Index for the next recording under `dir`. Indices continue the PR
/// numbering that introduced the observatory, so the floor is 3.
pub fn next_index(dir: &Path) -> u64 {
    bench_files(dir).last().map(|(n, _)| n + 1).unwrap_or(0).max(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            recorded_unix: 1_754_500_000,
            quick: true,
            host: HostMeta {
                os: "linux".into(),
                arch: "x86_64".into(),
                cpus: 1,
            },
            benchmarks: vec![
                BenchEntry {
                    result: BenchResult {
                        name: "dekker_entry/signal".into(),
                        iters: 1 << 19,
                        samples: 5,
                        min_ns: 7.125,
                        mean_ns: 7.4,
                        max_ns: 8.0,
                        cv: 0.04,
                    },
                    strategy: Some("SignalFence".into()),
                    fence_stats: Some(FenceStatsSnapshot {
                        primary_compiler_fences: 42,
                        ..Default::default()
                    }),
                    serialize: Some(SerializeLatency {
                        p50: 1023,
                        p99: 65_535,
                        count: 412,
                    }),
                },
                BenchEntry::plain(BenchResult {
                    name: "fence/full_fence".into(),
                    iters: 1 << 20,
                    samples: 5,
                    min_ns: 5.0,
                    mean_ns: 5.5,
                    max_ns: 6.0,
                    cv: 0.02,
                }),
            ],
        }
    }

    #[test]
    fn report_roundtrips_through_text() {
        let r = sample_report();
        let text = r.render();
        assert!(text.ends_with('\n'));
        let back = BenchReport::parse(&text).expect("valid");
        assert_eq!(back, r);
        let e = back.entry("dekker_entry/signal").unwrap();
        assert_eq!(e.strategy.as_deref(), Some("SignalFence"));
        assert_eq!(e.fence_stats.unwrap().primary_compiler_fences, 42);
        assert_eq!(e.serialize.unwrap().p99, 65_535);
        assert!(back.entry("fence/full_fence").unwrap().strategy.is_none());
    }

    #[test]
    fn parse_rejects_broken_reports() {
        let good = sample_report().render();
        for (needle, replacement, why) in [
            ("lbmf-bench/2", "lbmf-bench/9", "unknown schema"),
            ("\"samples\":5", "\"samples\":0", "zero samples"),
            ("\"min_ns\":7.125", "\"min_ns\":9.5", "min above mean"),
            ("\"recorded_unix\": 1754500000,", "", "missing recorded_unix"),
            ("dekker_entry/signal", "fence/full_fence", "duplicate names"),
        ] {
            let bad = good.replacen(needle, replacement, 1);
            assert!(BenchReport::parse(&bad).is_err(), "{why}");
        }
        assert!(BenchReport::parse("{}").is_err());
    }

    #[test]
    fn parse_accepts_v1_recordings() {
        // Committed BENCH_3/BENCH_4 predate the midpoint change; compare
        // must keep reading them.
        let v1 = sample_report().render().replacen("lbmf-bench/2", "lbmf-bench/1", 1);
        let back = BenchReport::parse(&v1).expect("v1 accepted");
        assert_eq!(back.entry("dekker_entry/signal").unwrap().serialize.unwrap().p50, 1023);
    }

    #[test]
    fn bench_file_discovery_and_next_index() {
        let dir = std::env::temp_dir().join(format!("lbmf_obs_schema_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_index(&dir), 3, "floor is the introducing PR");
        for n in [3u64, 10, 4] {
            std::fs::write(dir.join(format!("BENCH_{n}.json")), "{}").unwrap();
        }
        std::fs::write(dir.join("BENCH_x.json"), "{}").unwrap(); // ignored
        let files = bench_files(&dir);
        assert_eq!(files.iter().map(|(n, _)| *n).collect::<Vec<_>>(), [3, 4, 10]);
        assert_eq!(next_index(&dir), 11);
        std::fs::remove_dir_all(&dir).ok();
    }
}
