//! A dependency-free, std-only HTTP/1.1 server for the two observability
//! endpoints — deliberately minimal: blocking accept loop on its own
//! thread, one short-lived connection at a time, `Connection: close` on
//! every response. A Prometheus scraper polls at multi-second intervals;
//! anything fancier would be dead weight next to the runtime under test.
//!
//! Routes:
//!
//! * `GET /metrics` — the closure's exposition-format payload;
//! * `GET /healthz` — `ok` (liveness for the scrape job);
//! * anything else — 404.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running metrics server. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the accept loop and joins the
/// serving thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (use port 0 for an ephemeral port — see
    /// [`local_addr`](Self::local_addr)) and serve `metrics` on
    /// `/metrics` until shutdown. The closure runs per scrape, on the
    /// serving thread: it drains the trace rings then, so the traced
    /// workload itself never pays for a scrape ("the drainer pays", one
    /// layer up).
    pub fn start<F>(addr: &str, metrics: F) -> std::io::Result<MetricsServer>
    where
        F: Fn() -> String + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("lbmf-obs-metrics".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // A stuck client must not wedge the endpoint forever.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    let _ = serve_one(stream, &metrics);
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the serving thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.handle.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept() by connecting once; the loop re-checks the
        // stop flag before serving.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn respond(
    mut stream: TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn serve_one<F: Fn() -> String>(stream: TcpStream, metrics: &F) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the header block so the client sees a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header).is_ok() {
        if header == "\r\n" || header == "\n" || header.is_empty() {
            break;
        }
        header.clear();
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(stream, "405 Method Not Allowed", "text/plain", "GET only\n");
    }
    match path {
        "/metrics" => {
            let body = metrics();
            // Prometheus text exposition format, version 0.0.4.
            respond(
                stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => respond(stream, "200 OK", "text/plain", "ok\n"),
        _ => respond(stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

/// Blocking single-request client for tests and the CLI: GET `path` and
/// return `(status_line, body)`.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: lbmf\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header/body split"))?;
    let status = head.lines().next().unwrap_or("").to_string();
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_healthz_and_404_then_shuts_down() {
        let mut server =
            MetricsServer::start("127.0.0.1:0", || "demo_metric 1\n".to_string()).unwrap();
        let addr = server.local_addr();

        let (status, body) = get(addr, "/metrics").unwrap();
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "demo_metric 1\n");

        let (status, body) = get(addr, "/healthz").unwrap();
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");

        let (status, _) = get(addr, "/nope").unwrap();
        assert!(status.contains("404"), "{status}");

        server.shutdown();
        server.shutdown(); // idempotent
        assert!(
            get(addr, "/healthz").is_err(),
            "server must stop accepting after shutdown"
        );
    }

    #[test]
    fn metrics_closure_sees_fresh_state_per_scrape() {
        use std::sync::atomic::AtomicU64;
        let n = Arc::new(AtomicU64::new(0));
        let n2 = n.clone();
        let server = MetricsServer::start("127.0.0.1:0", move || {
            format!("scrapes_total {}\n", n2.fetch_add(1, Ordering::Relaxed) + 1)
        })
        .unwrap();
        let addr = server.local_addr();
        assert_eq!(get(addr, "/metrics").unwrap().1, "scrapes_total 1\n");
        assert_eq!(get(addr, "/metrics").unwrap().1, "scrapes_total 2\n");
    }
}
