//! Noise-aware comparison of two BENCH reports, and the CI regression
//! gate built on it.
//!
//! The threshold question is the whole game on a noisy 1-core host: a
//! fixed "fail at +5%" gate would page on scheduler jitter daily. Each
//! benchmark instead carries its own coefficient of variation from both
//! recordings, and a delta only counts as *confirmed* when it clears
//! `max(floor, K × max(cv_base, cv_cand))` — i.e. K noise standard
//! deviations, with an absolute floor so near-zero-CV microbenches
//! don't gate on a 0.3% wobble.

use crate::schema::BenchReport;
use lbmf_bench::Table;

/// Gate constants: a delta must exceed both the absolute floor and
/// `SIGMA` times the worse of the two CVs.
const FLOOR: f64 = 0.05;
/// Noise multiplier for the CV-scaled threshold.
const SIGMA: f64 = 3.0;
/// Extra widening for quick-mode recordings (5 ms batches are noisy).
const QUICK_FACTOR: f64 = 2.0;

/// How one benchmark moved between two recordings.
#[derive(Clone, Debug, PartialEq)]
pub struct Delta {
    /// Benchmark name.
    pub name: String,
    /// Baseline mean, ns/iter.
    pub base_ns: f64,
    /// Candidate mean, ns/iter.
    pub cand_ns: f64,
    /// Relative change of the mean (`+0.10` = 10% slower).
    pub rel: f64,
    /// The threshold this benchmark had to clear to count as real.
    pub threshold: f64,
    /// Classification after the noise test.
    pub verdict: Verdict,
}

/// Outcome per benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Slower by more than the noise threshold.
    Regression,
    /// Faster by more than the noise threshold.
    Improvement,
    /// Within noise.
    Unchanged,
    /// Only in the candidate: a benchmark this change introduced.
    Added,
    /// Only in the baseline: a benchmark this change lost — worth a
    /// human look (a renamed bench reads as one removal plus one
    /// addition).
    Removed,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Regression => "REGRESSION",
            Verdict::Improvement => "improvement",
            Verdict::Unchanged => "ok",
            Verdict::Added => "added",
            Verdict::Removed => "removed",
        }
    }

    fn is_unpaired(self) -> bool {
        matches!(self, Verdict::Added | Verdict::Removed)
    }
}

/// The full comparison of two reports.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Per-benchmark deltas: matched pairs and removals first (baseline
    /// order), then additions (candidate order).
    pub deltas: Vec<Delta>,
    /// Serialize-percentile observations for matched pairs that carry
    /// them. Advisory only: the percentiles are log2-bucket-granular, so
    /// a note is emitted only when p50 moved by more than one bucket
    /// (beyond 2× in either direction).
    pub serialize_notes: Vec<String>,
    /// Whether the two recordings came from different host shapes
    /// (worth a warning, not an error).
    pub host_mismatch: bool,
}

impl Comparison {
    /// Confirmed regressions only.
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas.iter().filter(|d| d.verdict == Verdict::Regression)
    }

    /// Render the comparison as an aligned table plus a verdict line.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["benchmark", "base ns", "cand ns", "delta", "threshold", "verdict"]);
        for d in &self.deltas {
            if d.verdict.is_unpaired() {
                t.row(&[
                    d.name.clone(),
                    fmt_ns(d.base_ns),
                    fmt_ns(d.cand_ns),
                    "-".into(),
                    "-".into(),
                    d.verdict.label().into(),
                ]);
            } else {
                t.row(&[
                    d.name.clone(),
                    fmt_ns(d.base_ns),
                    fmt_ns(d.cand_ns),
                    format!("{:+.1}%", d.rel * 100.0),
                    format!("±{:.1}%", d.threshold * 100.0),
                    d.verdict.label().into(),
                ]);
            }
        }
        let mut out = t.render();
        for note in &self.serialize_notes {
            out.push_str(&format!("note: {note}\n"));
        }
        if self.host_mismatch {
            out.push_str("warning: recordings come from different host shapes; deltas are indicative only\n");
        }
        let n_reg = self.regressions().count();
        if n_reg == 0 {
            out.push_str("no confirmed regressions\n");
        } else {
            out.push_str(&format!("{n_reg} confirmed regression(s)\n"));
        }
        out
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns == 0.0 {
        "-".into()
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.1}ns")
    }
}

/// Compare `cand` against `base`, benchmark by benchmark.
pub fn compare(base: &BenchReport, cand: &BenchReport) -> Comparison {
    let quick = base.quick || cand.quick;
    let mut deltas = Vec::new();
    let mut serialize_notes = Vec::new();
    for b in &base.benchmarks {
        let name = &b.result.name;
        let Some(c) = cand.entry(name) else {
            deltas.push(Delta {
                name: name.clone(),
                base_ns: b.result.mean_ns,
                cand_ns: 0.0,
                rel: 0.0,
                threshold: 0.0,
                verdict: Verdict::Removed,
            });
            continue;
        };
        if let (Some(sb), Some(sc)) = (&b.serialize, &c.serialize) {
            // Log2-bucket percentiles: a move within one bucket (2×) is
            // granularity, not signal — this also absorbs the v1
            // upper-bound → v2 midpoint re-basing, which shifts every
            // value by strictly less than one bucket.
            // The +1 slack: adjacent midpoints (3071 → 6143) and
            // adjacent upper bounds (4095 → 8191) are both 2n+1.
            let beyond = |a: u64, b: u64| a > b.saturating_mul(2).saturating_add(1);
            if beyond(sc.p50, sb.p50) || beyond(sb.p50, sc.p50) {
                serialize_notes.push(format!(
                    "{name}: serialize p50 {} → {} ns (beyond one log2 bucket; advisory)",
                    sb.p50, sc.p50
                ));
            }
        }
        let rel = (c.result.mean_ns - b.result.mean_ns) / b.result.mean_ns;
        let mut threshold = (SIGMA * b.result.cv.max(c.result.cv)).max(FLOOR);
        if quick {
            threshold *= QUICK_FACTOR;
        }
        let verdict = if rel > threshold {
            Verdict::Regression
        } else if rel < -threshold {
            Verdict::Improvement
        } else {
            Verdict::Unchanged
        };
        deltas.push(Delta {
            name: name.clone(),
            base_ns: b.result.mean_ns,
            cand_ns: c.result.mean_ns,
            rel,
            threshold,
            verdict,
        });
    }
    for c in &cand.benchmarks {
        if base.entry(&c.result.name).is_none() {
            deltas.push(Delta {
                name: c.result.name.clone(),
                base_ns: 0.0,
                cand_ns: c.result.mean_ns,
                rel: 0.0,
                threshold: 0.0,
                verdict: Verdict::Added,
            });
        }
    }
    Comparison {
        deltas,
        serialize_notes,
        host_mismatch: base.host != cand.host,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{BenchEntry, HostMeta};
    use lbmf_bench::criterion::BenchResult;

    fn report(entries: &[(&str, f64, f64)], quick: bool) -> BenchReport {
        BenchReport {
            recorded_unix: 0,
            quick,
            host: HostMeta {
                os: "linux".into(),
                arch: "x86_64".into(),
                cpus: 1,
            },
            benchmarks: entries
                .iter()
                .map(|(name, mean, cv)| {
                    BenchEntry::plain(BenchResult {
                        name: name.to_string(),
                        iters: 1000,
                        samples: 5,
                        min_ns: mean * 0.9,
                        mean_ns: *mean,
                        max_ns: mean * 1.1,
                        cv: *cv,
                    })
                })
                .collect(),
        }
    }

    #[test]
    fn thresholds_scale_with_cv() {
        // 10% slower: confirmed for a tight benchmark (cv 1% → threshold
        // max(5%, 3%) = 5%), within noise for a jittery one (cv 5% →
        // threshold 15%).
        let base = report(&[("tight", 100.0, 0.01), ("noisy", 100.0, 0.05)], false);
        let cand = report(&[("tight", 110.0, 0.01), ("noisy", 110.0, 0.05)], false);
        let cmp = compare(&base, &cand);
        assert_eq!(cmp.deltas[0].verdict, Verdict::Regression);
        assert_eq!(cmp.deltas[1].verdict, Verdict::Unchanged);
        assert_eq!(cmp.regressions().count(), 1);
        let text = cmp.render();
        assert!(text.contains("REGRESSION"), "{text}");
        assert!(text.contains("1 confirmed regression"), "{text}");
    }

    #[test]
    fn quick_mode_widens_thresholds() {
        let base = report(&[("x", 100.0, 0.01)], true);
        let cand = report(&[("x", 108.0, 0.01)], false);
        // floor 5% × quick 2 = 10% → +8% is within noise.
        let cmp = compare(&base, &cand);
        assert_eq!(cmp.deltas[0].verdict, Verdict::Unchanged);
        assert_eq!(cmp.deltas[0].threshold, 0.10);
    }

    #[test]
    fn improvements_added_and_removed_are_classified() {
        let base = report(&[("gone", 50.0, 0.0), ("fast", 100.0, 0.0)], false);
        let cand = report(&[("fast", 80.0, 0.0), ("new", 5.0, 0.0)], false);
        let cmp = compare(&base, &cand);
        let by_name = |n: &str| cmp.deltas.iter().find(|d| d.name == n).unwrap().verdict;
        assert_eq!(by_name("gone"), Verdict::Removed, "baseline-only");
        assert_eq!(by_name("fast"), Verdict::Improvement);
        assert_eq!(by_name("new"), Verdict::Added, "candidate-only");
        assert_eq!(cmp.regressions().count(), 0);
        let text = cmp.render();
        assert!(text.contains("removed"), "{text}");
        assert!(text.contains("added"), "{text}");
        assert!(text.contains("no confirmed regressions"));

        // And the same names swap classification when the comparison
        // direction flips.
        let flipped = compare(&cand, &base);
        let by_name = |n: &str| flipped.deltas.iter().find(|d| d.name == n).unwrap().verdict;
        assert_eq!(by_name("gone"), Verdict::Added);
        assert_eq!(by_name("new"), Verdict::Removed);
        assert_eq!(by_name("fast"), Verdict::Regression, "80 → 100 ns");
    }

    #[test]
    fn serialize_moves_within_one_bucket_are_tolerated() {
        use crate::schema::SerializeLatency;
        let with_p50 = |mut r: BenchReport, p50: u64| {
            r.benchmarks[0].serialize = Some(SerializeLatency { p50, p99: p50 * 8, count: 100 });
            r
        };
        let base = with_p50(report(&[("serialize/signal_roundtrip", 100.0, 0.0)], false), 3071);
        // Upper bound 4095 vs midpoint 3071 of the same bucket (the v1 →
        // v2 re-basing), and a genuine one-bucket move: both silent.
        for quiet in [4095u64, 6143] {
            let cand = with_p50(report(&[("serialize/signal_roundtrip", 100.0, 0.0)], false), quiet);
            let cmp = compare(&base, &cand);
            assert!(cmp.serialize_notes.is_empty(), "p50 {quiet} should be within tolerance");
        }
        // More than one bucket away: noted (both directions), advisory.
        for (b, c) in [(3071u64, 12287u64), (12287, 3071)] {
            let cmp = compare(
                &with_p50(report(&[("serialize/signal_roundtrip", 100.0, 0.0)], false), b),
                &with_p50(report(&[("serialize/signal_roundtrip", 100.0, 0.0)], false), c),
            );
            assert_eq!(cmp.serialize_notes.len(), 1, "{b} → {c}");
            assert!(cmp.render().contains("beyond one log2 bucket"));
            assert_eq!(cmp.regressions().count(), 0, "notes never gate");
        }
    }

    #[test]
    fn host_mismatch_is_flagged() {
        let base = report(&[("x", 1.0, 0.0)], false);
        let mut cand = report(&[("x", 1.0, 0.0)], false);
        cand.host.cpus = 16;
        let cmp = compare(&base, &cand);
        assert!(cmp.host_mismatch);
        assert!(cmp.render().contains("different host shapes"));
    }
}
