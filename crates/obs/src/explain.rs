//! `lbmf-obs explain`: reconstruct causal serialization chains from an
//! exported Chrome trace and attribute the round-trip latency phase by
//! phase.
//!
//! The exporter (`lbmf_trace::chrome`) is write-only by design; this
//! module is its read side. It re-parses the `traceEvents` array back
//! into a [`TraceSnapshot`] — instants and spans become [`FenceEvent`]s,
//! `thread_name` metadata restores row names, the `dropped` counters
//! restore ring-wrap accounting, and the `lbmf_strategy` metadata event
//! labels the run — then hands the snapshot to
//! [`lbmf_trace::causal::ChainSet`] for chain reconstruction. Flow
//! events (`ph:"s"/"t"/"f"`) are *derived* from correlation ids at
//! export time, so the importer skips them rather than double-counting.
//!
//! The report states its own coverage: rings are lossy, so alongside the
//! per-phase percentiles it prints how many chains were complete versus
//! orphaned and how many events ring wrap destroyed.

use crate::json::{parse, Json};
use lbmf_trace::causal::{ChainSet, Phase};
use lbmf_trace::{EventKind, FenceEvent, ThreadTrace, TraceSnapshot};
use std::collections::BTreeMap;

/// One trace file parsed back into analyzable form.
#[derive(Clone, Debug, Default)]
pub struct ParsedTrace {
    /// The reconstructed snapshot (threads in tid order).
    pub snapshot: TraceSnapshot,
    /// The fence strategy stamped at export time (`lbmf_strategy`
    /// metadata), when the producer recorded one.
    pub strategy: Option<String>,
    /// Events whose name is not a known [`EventKind`] (foreign traces,
    /// future kinds): skipped, but counted so the report can say so.
    pub skipped: usize,
}

fn us_to_ns(us: f64) -> u64 {
    // The exporter prints microseconds with 3 decimals, so this is an
    // exact inverse for every in-range stamp.
    (us * 1000.0).round() as u64
}

/// Parse Chrome trace-event JSON (as produced by
/// [`lbmf_trace::chrome::export_with_strategy`]) back into a
/// [`ParsedTrace`]. Call [`lbmf_trace::chrome::validate`] first when the
/// file is untrusted — this importer assumes structural sanity and
/// reports only semantic problems.
pub fn parse_trace(text: &str) -> Result<ParsedTrace, String> {
    let root = parse(text)?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing \"traceEvents\" array")?;

    let mut threads: BTreeMap<u32, ThreadTrace> = BTreeMap::new();
    let mut strategy = None;
    let mut skipped = 0usize;
    for ev in events {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or("event missing \"name\"")?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {name:?} missing \"ph\""))?;
        let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0) as u32;
        fn row(threads: &mut BTreeMap<u32, ThreadTrace>, tid: u32) -> &mut ThreadTrace {
            threads.entry(tid).or_insert_with(|| ThreadTrace {
                tid,
                name: format!("thread-{tid}"),
                events: Vec::new(),
                dropped: 0,
            })
        }
        match ph {
            "M" => match name {
                "thread_name" => {
                    if let Some(n) = ev.get("args").and_then(|a| a.get("name")).and_then(Json::as_str)
                    {
                        row(&mut threads, tid).name = n.to_string();
                    }
                }
                "lbmf_strategy" => {
                    strategy = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .map(str::to_string);
                }
                _ => {}
            },
            "C" if name == "dropped" => {
                if let Some(d) = ev.get("args").and_then(|a| a.get("dropped")).and_then(Json::as_u64)
                {
                    row(&mut threads, tid).dropped += d;
                }
            }
            // Flow arrows are a projection of the corr ids already on
            // the instants; re-importing them would double-count.
            "s" | "t" | "f" => {}
            "i" | "X" => {
                let Some(kind) = EventKind::from_name(name) else {
                    skipped += 1;
                    continue;
                };
                let nanos = ev
                    .get("ts")
                    .and_then(Json::as_f64)
                    .map(us_to_ns)
                    .ok_or_else(|| format!("event {name:?} missing \"ts\""))?;
                let dur = ev.get("dur").and_then(Json::as_f64).map(us_to_ns).unwrap_or(0);
                let args = ev.get("args");
                let guarded_addr = args
                    .and_then(|a| a.get("addr"))
                    .and_then(Json::as_str)
                    .and_then(|s| usize::from_str_radix(s.trim_start_matches("0x"), 16).ok())
                    .unwrap_or(0);
                let corr = args.and_then(|a| a.get("corr")).and_then(Json::as_u64).unwrap_or(0);
                row(&mut threads, tid).events.push(FenceEvent {
                    nanos,
                    thread: tid,
                    kind,
                    guarded_addr,
                    dur,
                    corr,
                });
            }
            _ => skipped += 1,
        }
    }
    Ok(ParsedTrace {
        snapshot: TraceSnapshot {
            threads: threads.into_values().collect(),
        },
        strategy,
        skipped,
    })
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Everything one `explain` run concluded, pre-rendered plus the two
/// numbers CI gates on.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// Human-readable report.
    pub text: String,
    /// Chains with every serialize phase present.
    pub complete_chains: usize,
    /// Relative deviation of the phase-p50 sum from the measured
    /// round-trip p50 (`None` when there were no complete chains).
    pub phase_sum_deviation: Option<f64>,
}

/// Analyze one parsed trace: reconstruct chains, attribute latency per
/// phase, and account for what the lossy rings destroyed.
pub fn explain(parsed: &ParsedTrace) -> Explanation {
    let set = ChainSet::from_snapshot(&parsed.snapshot);
    let acc = set.accounting();
    let mut out = String::new();
    let strategy = parsed.strategy.as_deref().unwrap_or("(unlabeled)");
    out.push_str(&format!("strategy: {strategy}\n"));
    let steals = set.chains.iter().filter(|c| c.is_steal()).count();
    out.push_str(&format!(
        "chains: {} ({} complete, {} missing-interior, {} orphaned, {} attempt-only; {} via steals)\n",
        set.chains.len(),
        acc.complete,
        acc.missing_interior,
        acc.orphans,
        acc.attempt_only,
        steals,
    ));
    out.push_str(&format!(
        "lossiness: {} events dropped to ring wrap; {} foreign events skipped\n",
        acc.dropped_events, parsed.skipped,
    ));

    let mut table = lbmf_bench::Table::new(&["phase", "p50", "p99", "n"]);
    let mut p50_sum = 0u64;
    for phase in Phase::ALL {
        let n = set
            .chains
            .iter()
            .filter(|c| c.phase_nanos(phase).is_some())
            .count();
        let (p50, p99) = match (set.phase_percentile(phase, 0.5), set.phase_percentile(phase, 0.99))
        {
            (Some(a), Some(b)) => (a, b),
            _ => {
                table.row(&[phase.name().into(), "-".into(), "-".into(), "0".into()]);
                continue;
            }
        };
        p50_sum += p50;
        table.row(&[phase.name().into(), fmt_ns(p50), fmt_ns(p99), n.to_string()]);
    }
    let round_trip = set.round_trip_percentile(0.5);
    if let (Some(p50), Some(p99)) = (round_trip, set.round_trip_percentile(0.99)) {
        let n = set
            .chains
            .iter()
            .filter(|c| c.round_trip_nanos().is_some())
            .count();
        table.row(&["round-trip".into(), fmt_ns(p50), fmt_ns(p99), n.to_string()]);
        out.push_str(&table.render());
        if let Some(mean) = set.round_trip_mean() {
            out.push_str(&format!("round-trip mean: {}\n", fmt_ns(mean.round() as u64)));
        }
    } else {
        out.push_str(&table.render());
        out.push_str("no round trips to attribute (no chain kept both requester bookends)\n");
    }

    // The attribution's self-check: the four phases partition the
    // request→ack interval, so their p50s must track the measured
    // round-trip p50 (exactly for one chain; approximately once
    // percentiles are taken over many, since per-phase medians need not
    // come from the same chain).
    let phase_sum_deviation = match (round_trip, acc.complete > 0) {
        (Some(rt), true) if rt > 0 => {
            let dev = (p50_sum as f64 - rt as f64) / rt as f64;
            out.push_str(&format!(
                "phase p50 sum: {} vs round-trip p50 {} ({:+.1}%)\n",
                fmt_ns(p50_sum),
                fmt_ns(rt),
                dev * 100.0,
            ));
            Some(dev)
        }
        _ => None,
    };
    Explanation {
        text: out,
        complete_chains: acc.complete,
        phase_sum_deviation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbmf_trace::chrome;

    fn ev(thread: u32, nanos: u64, kind: EventKind, corr: u64) -> FenceEvent {
        FenceEvent { nanos, thread, kind, guarded_addr: 0x1000, dur: 0, corr }
    }

    /// A snapshot with one complete signal chain and one orphan, plus
    /// uncorrelated noise and a dropped-events count.
    fn sample() -> TraceSnapshot {
        TraceSnapshot {
            threads: vec![
                ThreadTrace {
                    tid: 0,
                    name: "requester".into(),
                    events: vec![
                        ev(0, 1_000, EventKind::PrimaryFence, 0),
                        ev(0, 2_000, EventKind::SerializeRequest, 7),
                        ev(0, 2_100, EventKind::SerializeSignalSent, 7),
                        ev(0, 3_000, EventKind::SerializeAckObserved, 7),
                        FenceEvent {
                            nanos: 3_000,
                            thread: 0,
                            kind: EventKind::SerializeDeliver,
                            guarded_addr: 0x1000,
                            dur: 1_000,
                            corr: 7,
                        },
                    ],
                    dropped: 3,
                },
                ThreadTrace {
                    tid: 1,
                    name: "target/serialize-handler".into(),
                    events: vec![
                        ev(1, 2_400, EventKind::SerializeHandlerEnter, 7),
                        ev(1, 2_600, EventKind::SerializeDrained, 7),
                        // corr 9 lost its requester side: orphan. Same
                        // 200ns drain as corr 7, so the drain p50 (which
                        // legitimately includes orphan phases) stays the
                        // complete chain's value.
                        ev(1, 5_000, EventKind::SerializeHandlerEnter, 9),
                        ev(1, 5_200, EventKind::SerializeDrained, 9),
                    ],
                    dropped: 0,
                },
            ],
        }
    }

    #[test]
    fn export_then_parse_roundtrips_snapshot() {
        let snap = sample();
        let json = chrome::export_with_strategy(&snap, Some("lbmf-signal"));
        chrome::validate(&json).expect("exporter output validates");
        let parsed = parse_trace(&json).expect("re-import");
        assert_eq!(parsed.strategy.as_deref(), Some("lbmf-signal"));
        assert_eq!(parsed.skipped, 0);
        assert_eq!(parsed.snapshot.threads.len(), 2);
        for (orig, back) in snap.threads.iter().zip(&parsed.snapshot.threads) {
            assert_eq!(orig.tid, back.tid);
            assert_eq!(orig.name, back.name);
            assert_eq!(orig.dropped, back.dropped);
            assert_eq!(orig.events, back.events, "thread {}", orig.name);
        }
    }

    #[test]
    fn explanation_attributes_phases_and_accounts_for_orphans() {
        let json = chrome::export_with_strategy(&sample(), Some("lbmf-signal"));
        let parsed = parse_trace(&json).unwrap();
        let ex = explain(&parsed);
        assert_eq!(ex.complete_chains, 1);
        // One chain: phase p50s partition its round trip exactly.
        assert_eq!(ex.phase_sum_deviation, Some(0.0));
        for needle in [
            "strategy: lbmf-signal",
            "1 complete",
            "1 orphaned",
            "3 events dropped",
            "queue",
            "delivery",
            "drain",
            "ack",
            "round-trip",
            "(+0.0%)",
        ] {
            assert!(ex.text.contains(needle), "missing {needle:?} in:\n{}", ex.text);
        }
    }

    #[test]
    fn foreign_events_are_skipped_not_fatal() {
        let json = "{\"traceEvents\":[\
            {\"name\":\"not-a-kind\",\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":1.0,\"s\":\"t\"},\
            {\"name\":\"mystery\",\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":1.0}\
        ]}";
        let parsed = parse_trace(json).unwrap();
        assert_eq!(parsed.skipped, 2);
        assert_eq!(parsed.snapshot.total_events(), 0);
        let ex = explain(&parsed);
        assert_eq!(ex.complete_chains, 0);
        assert!(ex.text.contains("no round trips"));
    }

    #[test]
    fn parse_rejects_non_trace_json() {
        assert!(parse_trace("{}").is_err());
        assert!(parse_trace("{\"traceEvents\":[{\"ph\":\"i\"}]}").is_err());
        assert!(parse_trace("not json").is_err());
    }
}
