//! The recording suite: the benchmarks `lbmf-obs record` drives, in
//! process, through the mini-criterion harness — with the two
//! observability channels the stdout benches lose captured alongside
//! each timing: the strategy's [`FenceStats`] diff across the run, and
//! the serialize round-trip latency percentiles drained from the trace
//! rings.
//!
//! The suite mirrors the paper's measurement axes:
//!
//! * `dekker_entry/*` — E1, the uncontended primary fast path per
//!   strategy (the headline asymmetric-vs-`mfence` number);
//! * `fence/*` — the raw cost of the two fence flavours, for scale;
//! * `serialize/signal_roundtrip` — E2, one remote serialization;
//! * `steal/fib_test` — a whole ACilk-5 work-stealing run, the
//!   macro-benchmark the fast-path numbers are supposed to add up to.

use crate::schema::{BenchEntry, BenchReport, HostMeta, SerializeLatency};
use lbmf::dekker::AsymmetricDekker;
use lbmf::fence::{compiler_fence_only, full_fence};
use lbmf::registry::register_current_thread;
use lbmf::strategy::{FenceStrategy, NoFence, SignalFence, Symmetric};
use lbmf_bench::criterion::Criterion;
use lbmf_cilk::bench::{Kernel, Scale};
use lbmf_cilk::Scheduler;
use lbmf_trace::EventKind;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

/// Measurement window per batch: 5 ms in quick (CI smoke) mode, the
/// mini-criterion's 50 ms default otherwise.
pub fn target_for(quick: bool) -> Duration {
    Duration::from_millis(if quick { 5 } else { 50 })
}

/// Run one benchmark and pair its timing with the strategy's counter
/// diff over exactly that run.
fn bench_with_stats<S: FenceStrategy>(
    c: &mut Criterion,
    name: &str,
    strategy: &Arc<S>,
    f: impl FnMut(&mut lbmf_bench::criterion::Bencher),
) -> BenchEntry {
    let before = strategy.stats().snapshot();
    c.bench_function(name, f);
    let after = strategy.stats().snapshot();
    let result = c.results().last().expect("bench just ran").clone();
    BenchEntry {
        result,
        strategy: Some(strategy.name().to_string()),
        fence_stats: Some(after.diff(&before)),
        serialize: None,
    }
}

fn bench_dekker_entry<S: FenceStrategy>(
    c: &mut Criterion,
    name: &str,
    strategy: Arc<S>,
) -> BenchEntry {
    // Single-threaded throughout, so the recording thread is the primary.
    let dekker = Arc::new(AsymmetricDekker::new(strategy.clone()));
    let primary = dekker.register_primary();
    bench_with_stats(c, name, &strategy, |b| {
        b.iter(|| primary.with_lock(|| black_box(())))
    })
}

/// A parked thread that serves as the remote-serialization target.
struct Target {
    remote: lbmf::registry::RemoteThread,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Target {
    fn spawn() -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = std::thread::Builder::new()
            .name("obs-serialize-target".into())
            .spawn(move || {
                let reg = register_current_thread();
                tx.send(reg.remote()).unwrap();
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_micros(50));
                }
            })
            .expect("spawn serialize target");
        Target {
            remote: rx.recv().unwrap(),
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Target {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Serialize round-trip percentiles currently visible in the trace
/// rings, as log2-bucket midpoints (the `lbmf-bench/2` semantics — v1
/// recorded the bucket upper bound, which read as an implausibly tidy
/// `2^k − 1`). `None` when no round trip was traced — including builds
/// with the `trace` feature off.
pub fn serialize_latency_now() -> Option<SerializeLatency> {
    let h = lbmf_trace::take_snapshot().latency_histogram(EventKind::SerializeDeliver);
    (h.count() > 0).then(|| SerializeLatency {
        p50: h.percentile_midpoint(50),
        p99: h.percentile_midpoint(99),
        count: h.count(),
    })
}

/// Run the full recording suite and assemble the report.
pub fn run(quick: bool) -> BenchReport {
    let mut c = Criterion::with_target(target_for(quick));
    let mut benchmarks = Vec::new();

    // E1: uncontended primary entry, per strategy. Symmetric is the
    // mfence baseline, SignalFence the paper's asymmetric prototype,
    // NoFence the (unsafe) lower bound on protocol cost.
    benchmarks.push(bench_dekker_entry(&mut c, "dekker_entry/symmetric", Arc::new(Symmetric::new())));
    benchmarks.push(bench_dekker_entry(&mut c, "dekker_entry/signal", Arc::new(SignalFence::new())));
    benchmarks.push(bench_dekker_entry(&mut c, "dekker_entry/no_fence", Arc::new(NoFence::new())));

    // Raw fence costs, for scale.
    c.bench_function("fence/full_fence", |b| {
        b.iter(|| {
            full_fence();
            black_box(())
        })
    });
    benchmarks.push(BenchEntry::plain(c.results().last().unwrap().clone()));
    c.bench_function("fence/compiler_fence", |b| {
        b.iter(|| {
            compiler_fence_only();
            black_box(())
        })
    });
    benchmarks.push(BenchEntry::plain(c.results().last().unwrap().clone()));

    // E2: one remote serialization round trip (signal prototype). The
    // trace rings capture each round trip's wait; percentiles of those
    // waits ride along with the timing.
    {
        let strategy = Arc::new(SignalFence::new());
        let target = Target::spawn();
        let hist_before = lbmf_trace::take_snapshot()
            .latency_histogram(EventKind::SerializeDeliver)
            .count();
        let mut entry = bench_with_stats(&mut c, "serialize/signal_roundtrip", &strategy, |b| {
            b.iter(|| strategy.serialize_remote(&target.remote))
        });
        entry.serialize = serialize_latency_now().filter(|sl| sl.count > hist_before);
        benchmarks.push(entry);
    }

    // The macro-benchmark: a whole work-stealing fib run on the
    // asymmetric runtime (2 workers so steals actually happen).
    {
        let strategy = Arc::new(SignalFence::new());
        let sched = Scheduler::new(2, strategy.clone());
        benchmarks.push(bench_with_stats(&mut c, "steal/fib_test", &strategy, |b| {
            b.iter(|| black_box(Kernel::Fib.run_timed(&sched, Scale::Test).checksum))
        }));
    }

    BenchReport {
        recorded_unix: SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        quick,
        host: HostMeta::current(),
        benchmarks,
    }
}

/// Fold externally collected mini-criterion JSONL (the `LBMF_BENCH_JSON`
/// hook) into a report as timing-only entries. Rows whose names collide
/// with suite entries are suffixed `@ingest` rather than dropped.
pub fn ingest_jsonl(report: &mut BenchReport, text: &str) -> Result<usize, String> {
    let rows = crate::json::parse_lines(text)?;
    let mut added = 0;
    for row in &rows {
        let get = |k: &str| {
            row.get(k)
                .and_then(crate::json::Json::as_f64)
                .ok_or_else(|| format!("ingest row missing number {k:?}"))
        };
        let mut name = row
            .get("name")
            .and_then(crate::json::Json::as_str)
            .ok_or("ingest row missing \"name\"")?
            .to_string();
        if report.entry(&name).is_some() {
            name.push_str("@ingest");
        }
        if report.entry(&name).is_some() {
            continue; // same external row fed twice
        }
        report.benchmarks.push(BenchEntry::plain(
            lbmf_bench::criterion::BenchResult {
                name,
                iters: get("iters")? as u64,
                samples: get("samples")? as usize,
                min_ns: get("min_ns")?,
                mean_ns: get("mean_ns")?,
                max_ns: get("max_ns")?,
                cv: get("cv")?,
            },
        ));
        added += 1;
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_appends_and_renames_collisions() {
        let mut report = BenchReport {
            recorded_unix: 0,
            quick: true,
            host: HostMeta::current(),
            benchmarks: vec![BenchEntry::plain(lbmf_bench::criterion::BenchResult {
                name: "a".into(),
                iters: 1,
                samples: 1,
                min_ns: 1.0,
                mean_ns: 1.0,
                max_ns: 1.0,
                cv: 0.0,
            })],
        };
        let jsonl = "{\"name\":\"a\",\"iters\":2,\"samples\":3,\"min_ns\":1,\"mean_ns\":2,\"max_ns\":3,\"cv\":0.1}\n\
                     {\"name\":\"b\",\"iters\":2,\"samples\":3,\"min_ns\":1,\"mean_ns\":2,\"max_ns\":3,\"cv\":0.1}";
        let added = ingest_jsonl(&mut report, jsonl).unwrap();
        assert_eq!(added, 2);
        assert!(report.entry("a@ingest").is_some());
        assert!(report.entry("b").is_some());
        assert!(ingest_jsonl(&mut report, "{\"name\":\"c\"}").is_err());
    }
}
