//! # lbmf-obs — the perf observatory
//!
//! The paper's argument is quantitative; until this crate, the repo's
//! numbers evaporated at process exit. `lbmf-obs` gives the benchmark
//! suite a memory and the runtime a pulse:
//!
//! * **`record`** ([`suite`]) drives the benchmark suite in process and
//!   writes a schema-versioned `BENCH_<n>.json` ([`schema`]) at the
//!   repository root: per-benchmark min/mean/max ns-per-iter with sample
//!   count and coefficient of variation, the fence-strategy label,
//!   [`FenceStats`](lbmf::stats::FenceStats) counter diffs, serialize
//!   round-trip percentiles from the trace rings, and host metadata.
//! * **`compare`** ([`compare`]) loads two recordings and reports
//!   noise-aware deltas — each benchmark's regression threshold scales
//!   with its own measured CV — with a `--gate` mode for CI.
//! * **`explain`** ([`explain`]) reads an exported Chrome trace back in,
//!   reconstructs the causal serialization chains from their correlation
//!   ids, and prints per-phase latency attribution (queue → delivery →
//!   drain → ack) with orphan/lossiness accounting — the offline half of
//!   the cross-thread flight recorder.
//! * **`sim` / `calibrate` / `validate`** ([`sim`]) point the observatory
//!   at the cycle-accurate simulator: `sim` attributes coherence traffic
//!   to the instruction classes that caused it and compares the l-mfence
//!   and mfence serialization bills, `calibrate` replays distilled
//!   Dekker-handoff and steal-probe kernels on both simulators and gates
//!   on DES-cost-table drift, and `validate` structurally checks any
//!   exported Chrome trace (flow pairing included).
//! * **`serve`** ([`http`], [`metrics`]) exposes `/metrics` (Prometheus
//!   exposition format: the live trace-ring export plus fence counters)
//!   and `/healthz` from a std-only HTTP server, so a long-running
//!   workload can be scraped while it steals.
//!
//! Everything is std-only ([`json`] is a hand-rolled parser/writer) —
//! the observatory obeys the same offline-build rule as the runtime it
//! watches, and its instrumentation reads are all drainer-side: scraping
//! `/metrics` never adds a fence to the traced fast path.

#![warn(missing_docs)]

pub mod compare;
pub mod explain;
pub mod http;
pub mod json;
pub mod metrics;
pub mod schema;
pub mod sim;
pub mod suite;
