//! Coherence-level observability over the cycle-accurate simulator.
//!
//! Two reports live here, both driven by `lbmf-sim` machines built from the
//! paper's own kernels:
//!
//! - [`traffic_report`] runs the Dekker handoff under dueling `l-mfence`s
//!   and under symmetric `mfence`s and rolls up the bus traffic each
//!   strategy generates — per `(op, cause)` transaction counts plus a
//!   serialization-cost breakdown (who paid cycles to order the guarded
//!   store, and through which mechanism).
//! - [`CalibrationReport::run`] is the cross-simulator calibration pass:
//!   it replays distilled Dekker-handoff and steal-probe kernels on the
//!   cycle machine, reads the per-transition cycle charges back out of
//!   [`Machine::apply`], and compares them against the corresponding
//!   [`DesCosts`] table entries the discrete-event models take on faith.
//!   Entries the simulated hardware cannot express (signal and
//!   `membarrier(2)` round trips, lock handoffs) are reported as
//!   unmeasured rather than silently skipped.
//!
//! The calibration report serializes under [`crate::schema::CALIB_SCHEMA`]
//! so CI can archive it next to the benchmark reports and gate on drift:
//! if someone retunes `CostModel` without re-anchoring `DesCosts` (or vice
//! versa), the per-entry delta leaves the tolerance band and the gate
//! trips.

use crate::json::{self, obj, Json};
use crate::schema::{check_schema, CALIB_SCHEMA};
use lbmf_des::costs::DesCosts;
use lbmf_sim::prelude::*;
use std::collections::BTreeMap;

// ----------------------------------------------------------------------
// Traffic attribution
// ----------------------------------------------------------------------

/// Bus traffic and serialization costs of one fence strategy's Dekker run.
#[derive(Clone, Debug)]
pub struct StrategyTraffic {
    /// Strategy label (`l-mfence` / `mfence`).
    pub label: String,
    /// Slowest CPU's cycle clock at completion.
    pub makespan: u64,
    /// Raw bus/coherence/link counters.
    pub stats: lbmf_sim::bus::BusStats,
    /// `(bus op, causing instruction class) -> transactions`, folded from
    /// the per-event attribution in the trace.
    pub by_cause: BTreeMap<(String, String), u64>,
    /// Cycles spent purely on serializing guarded stores.
    pub serialization_cycles: u64,
    /// How many serialization events that cost is spread over.
    pub serializations: u64,
    /// Which party pays the serialization cycles.
    pub paid_by: &'static str,
    /// Prometheus exposition of `stats` (for `--prometheus`).
    pub prometheus: String,
}

fn run_strategy(kinds: [FenceKind; 2], label: &str, iters: u64) -> StrategyTraffic {
    let opts = DekkerOptions {
        iters,
        cs_mem_ops: true,
        cs_work: 2,
    };
    let mut m = Machine::new(
        MachineConfig::default(),
        CostModel::default(),
        dekker_pair_with_turn(kinds, opts),
    );
    // The generous drain delay keeps guarded stores buffered across the
    // race window so the link-break machinery is actually exercised.
    assert!(m.run_pseudo_parallel(40, 10_000_000), "dekker run did not finish");
    m.flush_all();
    let mut by_cause: BTreeMap<(String, String), u64> = BTreeMap::new();
    for e in m.trace.iter() {
        if let EventKind::BusTransaction { op, cause, .. } = e.kind {
            *by_cause.entry((format!("{op:?}"), format!("{cause}"))).or_insert(0) += 1;
        }
    }
    let (serializations, serialization_cycles, paid_by) = match kinds[0] {
        FenceKind::Lmfence => (
            m.stats.link_breaks_remote,
            m.stats.link_breaks_remote * (m.cost.cache_to_cache + m.cost.lest_roundtrip),
            "requester (LE/ST round trip)",
        ),
        _ => (
            m.stats.mfences,
            m.stats.mfences * m.cost.mfence_base,
            "victim (full fence per pop)",
        ),
    };
    StrategyTraffic {
        label: label.to_string(),
        makespan: m.cpus.iter().map(|c| c.clock).max().unwrap_or(0),
        by_cause,
        serialization_cycles,
        serializations,
        paid_by,
        prometheus: lbmf_sim::bus::prometheus(&m.stats),
        stats: m.stats,
    }
}

/// Run the Dekker-with-turn kernel under both fence strategies and return
/// the per-strategy traffic attribution (`l-mfence` first).
pub fn traffic_report(iters: u64) -> [StrategyTraffic; 2] {
    [
        run_strategy([FenceKind::Lmfence, FenceKind::Lmfence], "l-mfence", iters),
        run_strategy([FenceKind::Mfence, FenceKind::Mfence], "mfence", iters),
    ]
}

/// Render the traffic comparison as an aligned text report.
pub fn render_traffic(strategies: &[StrategyTraffic]) -> String {
    let mut out = String::new();
    out.push_str("coherence traffic by fence strategy (Dekker handoff)\n");
    for s in strategies {
        out.push_str(&format!(
            "\n[{}] makespan {} cycles, {} bus transactions\n",
            s.label,
            s.makespan,
            s.stats.total_transactions()
        ));
        out.push_str("  bus traffic by causing instruction class:\n");
        for ((op, cause), n) in &s.by_cause {
            out.push_str(&format!("    {op:<10} {cause:<15} {n:>6}\n"));
        }
        out.push_str("  link clears by reason:\n");
        for (reason, n) in s.stats.link_clear_tallies() {
            if n > 0 {
                out.push_str(&format!("    {reason:<26} {n:>6}\n"));
            }
        }
        out.push_str(&format!(
            "  serialization: {} events, {} cycles, paid by {}\n",
            s.serializations, s.serialization_cycles, s.paid_by
        ));
    }
    if let [le, mf] = strategies {
        out.push_str(&format!(
            "\nserialization cycles: l-mfence {} (requester-side) vs mfence {} (victim-side)\n",
            le.serialization_cycles, mf.serialization_cycles
        ));
        let saved = mf.makespan as i64 - le.makespan as i64;
        out.push_str(&format!(
            "makespan: l-mfence {} vs mfence {} cycles ({saved:+} saved by l-mfence)\n",
            le.makespan, mf.makespan
        ));
    }
    out
}

// ----------------------------------------------------------------------
// Calibration
// ----------------------------------------------------------------------

/// One DES cost-table entry checked against a measured sim kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct CalibEntry {
    /// `DesCosts` field name.
    pub name: String,
    /// Which kernel produced the measurement.
    pub kernel: String,
    /// The cycles the DES cost table charges.
    pub des_cycles: u64,
    /// The cycles the cycle machine actually charged.
    pub sim_cycles: u64,
    /// `(sim - des) / des`, in percent.
    pub delta_pct: f64,
    /// Whether `|delta_pct|` is within the report's tolerance.
    pub within: bool,
}

/// The DES-vs-sim calibration report (`lbmf-obs calibrate`).
#[derive(Clone, Debug, PartialEq)]
pub struct CalibrationReport {
    /// Allowed per-entry divergence, in percent.
    pub tolerance_pct: f64,
    /// Measured entries.
    pub entries: Vec<CalibEntry>,
    /// `(name, des_cycles)` of cost-table entries the simulated hardware
    /// cannot measure (OS mechanisms: signals, membarrier, locks).
    pub unmeasured: Vec<(String, u64)>,
}

/// Drive CPU `i` until `probe(&machine)` changes, returning the cycle
/// charge of the step where it did.
fn step_until_changed<F: Fn(&Machine) -> u64>(m: &mut Machine, i: usize, probe: F) -> u64 {
    let before = probe(m);
    for _ in 0..64 {
        assert!(!m.cpus[i].halted, "cpu{i} halted before the probe changed");
        let cost = m.apply(Transition::Step(i));
        if probe(m) != before {
            return cost;
        }
    }
    panic!("probe did not change within 64 steps");
}

/// Dekker handoff: CPU 0 publishes its flag and fences; CPU 1 reads it.
/// Measures `mfence` (the fence completing over an empty store buffer) and
/// `cache_to_cache` (the partner pulling the flag line from Modified).
fn dekker_handoff() -> [(&'static str, u64); 2] {
    let mut w = ProgramBuilder::new("dekker-writer");
    w.st(Addr(1), 1u64).mfence().halt();
    let mut r = ProgramBuilder::new("dekker-reader");
    r.ld(0, Addr(1)).halt();
    let mut m = Machine::new(
        MachineConfig::default(),
        CostModel::default(),
        vec![w.build(), r.build()],
    );
    let mfence = step_until_changed(&mut m, 0, |m| m.stats.mfences);
    assert_eq!(m.stats.mfences, 1);
    let c2c = step_until_changed(&mut m, 1, |m| m.stats.cache_to_cache);
    assert_eq!(m.stats.link_breaks_remote, 0, "no link to break in the handoff");
    [("mfence", mfence), ("cache_to_cache", c2c)]
}

/// Steal probe: the victim guards its flag store with an `l-mfence`; the
/// thief's probe load breaks the link. Measures
/// `serialize_requester_lest` — the full charge on the thief's load
/// (cache-to-cache transfer plus the LE/ST round trip).
fn steal_probe_requester() -> [(&'static str, u64); 1] {
    let mut v = ProgramBuilder::new("steal-victim");
    v.lmfence(Addr(1), 1u64).halt();
    let mut t = ProgramBuilder::new("steal-thief");
    t.ld(0, Addr(1)).halt();
    let mut m = Machine::new(
        MachineConfig::default(),
        CostModel::default(),
        vec![v.build(), t.build()],
    );
    // Run the victim through K1.4: link set, guarded store buffered.
    for _ in 0..4 {
        m.apply(Transition::Step(0));
    }
    assert!(m.cpus[0].le_bit, "victim's link must be set before the probe");
    let probe = step_until_changed(&mut m, 1, |m| m.stats.link_breaks_remote);
    assert_eq!(m.stats.link_breaks_remote, 1);
    [("serialize_requester_lest", probe)]
}

/// Steal probe, victim side: the forced flush drains the guarded store to
/// a line the victim already owns. Measures `serialize_victim_lest` as the
/// charge of exactly such an owned-line drain (the second fence's drain,
/// after the first store made the line Modified).
fn steal_probe_victim() -> [(&'static str, u64); 1] {
    let mut b = ProgramBuilder::new("steal-victim-drain");
    b.st(Addr(5), 1u64).mfence().st(Addr(5), 2u64).mfence().halt();
    let mut m = Machine::new(MachineConfig::default(), CostModel::default(), vec![b.build()]);
    step_until_changed(&mut m, 0, |m| m.stats.mfences);
    assert_eq!(m.stats.store_completions, 1);
    let drain = step_until_changed(&mut m, 0, |m| m.stats.store_completions);
    [("serialize_victim_lest", drain)]
}

impl CalibrationReport {
    /// Run the calibration kernels and compare against
    /// [`DesCosts::default`].
    pub fn run(tolerance_pct: f64) -> CalibrationReport {
        let mut measured: BTreeMap<&'static str, (&'static str, u64)> = BTreeMap::new();
        for (name, cycles) in dekker_handoff() {
            measured.insert(name, ("dekker-handoff", cycles));
        }
        for (name, cycles) in steal_probe_requester() {
            measured.insert(name, ("steal-probe", cycles));
        }
        for (name, cycles) in steal_probe_victim() {
            measured.insert(name, ("steal-probe", cycles));
        }
        let des = DesCosts::default();
        let mut entries = Vec::new();
        for (name, des_cycles) in des.calibratable_entries() {
            let (kernel, sim_cycles) = measured
                .remove(name)
                .unwrap_or_else(|| panic!("no kernel measures DES entry `{name}`"));
            let delta_pct = if des_cycles == 0 {
                if sim_cycles == 0 { 0.0 } else { f64::INFINITY }
            } else {
                (sim_cycles as f64 - des_cycles as f64) / des_cycles as f64 * 100.0
            };
            entries.push(CalibEntry {
                name: name.to_string(),
                kernel: kernel.to_string(),
                des_cycles,
                sim_cycles,
                delta_pct,
                within: delta_pct.abs() <= tolerance_pct,
            });
        }
        assert!(measured.is_empty(), "measured entries {measured:?} missing from DES table");
        let unmeasured = vec![
            ("compiler_fence".to_string(), des.compiler_fence),
            ("serialize_requester_signal".to_string(), des.serialize_requester_signal),
            ("serialize_requester_membarrier".to_string(), des.serialize_requester_membarrier),
            ("serialize_victim_signal".to_string(), des.serialize_victim_signal),
            ("serialize_victim_membarrier".to_string(), des.serialize_victim_membarrier),
            ("lock".to_string(), des.lock),
        ];
        CalibrationReport { tolerance_pct, entries, unmeasured }
    }

    /// Every measured entry within tolerance?
    pub fn all_within(&self) -> bool {
        self.entries.iter().all(|e| e.within)
    }

    /// Human-readable calibration table with the per-entry verdicts.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "DES cost-table calibration against lbmf-sim (tolerance ±{:.1}%)\n",
            self.tolerance_pct
        ));
        out.push_str(&format!(
            "  {:<26} {:<15} {:>6} {:>6} {:>9}  verdict\n",
            "entry", "kernel", "des", "sim", "delta"
        ));
        for e in &self.entries {
            out.push_str(&format!(
                "  {:<26} {:<15} {:>6} {:>6} {:>8.2}%  {}\n",
                e.name,
                e.kernel,
                e.des_cycles,
                e.sim_cycles,
                e.delta_pct,
                if e.within { "within" } else { "DIVERGED" }
            ));
        }
        for (name, cycles) in &self.unmeasured {
            out.push_str(&format!(
                "  {name:<26} {:<15} {cycles:>6}      -         -  unmeasured (OS mechanism)\n",
                "-"
            ));
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.all_within() { "CALIBRATED" } else { "DIVERGED" }
        ));
        out
    }

    /// Machine-readable form under [`CALIB_SCHEMA`].
    pub fn render_json(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                obj(vec![
                    ("name", Json::Str(e.name.clone())),
                    ("kernel", Json::Str(e.kernel.clone())),
                    ("des_cycles", Json::Num(e.des_cycles as f64)),
                    ("sim_cycles", Json::Num(e.sim_cycles as f64)),
                    ("delta_pct", Json::Num(e.delta_pct)),
                    ("within", Json::Bool(e.within)),
                ])
            })
            .collect();
        let unmeasured = self
            .unmeasured
            .iter()
            .map(|(name, cycles)| {
                obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("des_cycles", Json::Num(*cycles as f64)),
                ])
            })
            .collect();
        obj(vec![
            ("schema", Json::Str(CALIB_SCHEMA.to_string())),
            ("tolerance_pct", Json::Num(self.tolerance_pct)),
            ("all_within", Json::Bool(self.all_within())),
            ("entries", Json::Arr(entries)),
            ("unmeasured", Json::Arr(unmeasured)),
        ])
        .render()
    }

    /// Parse a report previously written by [`CalibrationReport::render_json`].
    pub fn parse(text: &str) -> Result<CalibrationReport, String> {
        let root = json::parse(text)?;
        check_schema(&root, CALIB_SCHEMA)?;
        let tolerance_pct = root
            .get("tolerance_pct")
            .and_then(Json::as_f64)
            .ok_or("missing tolerance_pct")?;
        let need_u64 = |j: &Json, key: &str| -> Result<u64, String> {
            j.get(key).and_then(Json::as_u64).ok_or(format!("missing {key}"))
        };
        let need_str = |j: &Json, key: &str| -> Result<String, String> {
            Ok(j.get(key).and_then(Json::as_str).ok_or(format!("missing {key}"))?.to_string())
        };
        let mut entries = Vec::new();
        for e in root.get("entries").and_then(Json::as_arr).ok_or("missing entries")? {
            entries.push(CalibEntry {
                name: need_str(e, "name")?,
                kernel: need_str(e, "kernel")?,
                des_cycles: need_u64(e, "des_cycles")?,
                sim_cycles: need_u64(e, "sim_cycles")?,
                delta_pct: e.get("delta_pct").and_then(Json::as_f64).ok_or("missing delta_pct")?,
                within: matches!(e.get("within"), Some(Json::Bool(true))),
            });
        }
        let mut unmeasured = Vec::new();
        for u in root.get("unmeasured").and_then(Json::as_arr).ok_or("missing unmeasured")? {
            unmeasured.push((need_str(u, "name")?, need_u64(u, "des_cycles")?));
        }
        Ok(CalibrationReport { tolerance_pct, entries, unmeasured })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_deltas_are_zero_at_defaults() {
        let r = CalibrationReport::run(10.0);
        assert_eq!(r.entries.len(), 4);
        for e in &r.entries {
            assert_eq!(
                e.sim_cycles, e.des_cycles,
                "{}: sim {} != des {} (measured by {})",
                e.name, e.sim_cycles, e.des_cycles, e.kernel
            );
            assert_eq!(e.delta_pct, 0.0);
            assert!(e.within);
        }
        assert!(r.all_within());
        assert_eq!(r.unmeasured.len(), 6);
    }

    #[test]
    fn calibration_json_round_trips() {
        let r = CalibrationReport::run(5.0);
        let back = CalibrationReport::parse(&r.render_json()).unwrap();
        assert_eq!(back, r);
        assert!(CalibrationReport::parse("{\"schema\":\"nope/9\"}").is_err());
    }

    #[test]
    fn render_text_carries_the_verdict() {
        let mut r = CalibrationReport::run(10.0);
        assert!(r.render_text().contains("verdict: CALIBRATED"));
        r.entries[0].within = false;
        assert!(r.render_text().contains("DIVERGED"));
    }

    #[test]
    fn traffic_report_attributes_both_strategies() {
        let [le, mf] = traffic_report(3);
        assert_eq!(le.label, "l-mfence");
        assert_eq!(mf.label, "mfence");
        assert!(le.serializations > 0, "l-mfence run must break links remotely");
        assert!(mf.serializations > 0, "mfence run must complete fences");
        assert!(le.stats.mfences <= mf.stats.mfences, "l-mfence must not fence more often");
        // The by-cause rollup conserves the stats totals.
        for s in [&le, &mf] {
            assert_eq!(
                s.by_cause.values().sum::<u64>(),
                s.stats.total_transactions(),
                "{}: by-cause rollup must conserve transactions",
                s.label
            );
            assert!(s.prometheus.contains("lbmf_sim_bus_ops_total"));
        }
        let text = render_traffic(&[le, mf]);
        assert!(text.contains("serialization cycles: l-mfence"));
        assert!(text.contains("makespan: l-mfence"));
        assert!(text.contains("store-drain") || text.contains("load-exclusive"));
    }
}
