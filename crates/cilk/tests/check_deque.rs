//! Systematic checking of the THE deque's steal-vs-pop race.
//!
//! The victim's `pop` and a thief's `steal` run the Dekker duality on
//! `(T, H)` (see `deque.rs`). Under the `lbmf-check` controlled scheduler
//! and its modeled x86-TSO store buffers, bounded DFS exhausts the
//! interleavings of one pop racing one steal for the last job:
//!
//! * `Symmetric` (mfence in pop) and `SignalFence` (compiler fence in pop,
//!   remote serialization in steal) never lose or duplicate the job.
//! * `NoFence` (compiler fence in pop, **no** serialization in steal) lets
//!   the victim's `T--` sit in its store buffer while the thief reads the
//!   stale tail — both sides take the same job.

use lbmf::registry::register_current_thread;
use lbmf::strategy::{FenceStrategy, NoFence, SignalFence, Symmetric};
use lbmf_check::{Explorer, ViolationKind};
use lbmf_cilk::deque::{Steal, TheDeque};
use lbmf_cilk::job::JobCore;
use lbmf_cilk::stats::WorkerStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One victim pushes a single job and pops it; one thief tries to steal
/// it. The validate closure asserts the job was taken exactly once.
///
/// The recording cells are plain `AtomicU64`s on purpose: they are
/// bookkeeping, not part of the protocol under test, so they must not add
/// scheduling points or modeled-buffer traffic.
fn one_job_race<S, F>(mk: F) -> impl Fn(&lbmf_check::Exec)
where
    S: FenceStrategy + Send + Sync + 'static,
    F: Fn() -> S,
{
    move |exec| {
        let deque = Arc::new(TheDeque::new(Arc::new(mk()), 2));
        let popped = Arc::new(AtomicU64::new(0));
        let stolen = Arc::new(AtomicU64::new(0));

        let d = deque.clone();
        let p = popped.clone();
        exec.spawn(move || {
            // The victim registers itself so thieves can serialize it
            // remotely, exactly as a scheduler worker would.
            let reg = register_current_thread();
            d.set_owner(reg.remote());
            let stats = WorkerStats::default();
            d.push(1 as *mut JobCore<S>, &stats);
            if d.pop(&stats).is_some() {
                p.store(1, Ordering::SeqCst);
            }
        });

        let d = deque.clone();
        let s = stolen.clone();
        exec.spawn(move || {
            let stats = WorkerStats::default();
            // Bounded attempts: retry through Retry (victim holds the
            // lock) and Empty (victim has not pushed yet) so DFS explores
            // steals before, during, and after the pop.
            for _ in 0..6 {
                match d.steal(&stats) {
                    Steal::Success(_) => {
                        s.store(1, Ordering::SeqCst);
                        break;
                    }
                    Steal::Empty | Steal::Retry => lbmf_check::spin_yield(),
                }
            }
        });

        let p = popped.clone();
        let s = stolen.clone();
        exec.validate(move || {
            let p = p.load(Ordering::SeqCst);
            let s = s.load(Ordering::SeqCst);
            assert!(!(p == 1 && s == 1), "job taken twice (popped and stolen)");
            assert!(p == 1 || s == 1, "job lost (neither popped nor stolen)");
        });
    }
}

#[test]
fn deque_symmetric_never_loses_or_duplicates_within_preemption_bound_2() {
    let report = Explorer::dfs(2)
        .seed_override(None)
        .check("deque-symmetric", one_job_race(Symmetric::new));
    report.assert_no_violation();
    assert!(report.exhausted, "DFS must exhaust the bounded space");
}

#[test]
fn deque_signal_fence_never_loses_or_duplicates_within_preemption_bound_2() {
    let report = Explorer::dfs(2)
        .seed_override(None)
        .check("deque-signal", one_job_race(SignalFence::new));
    report.assert_no_violation();
    assert!(report.exhausted, "DFS must exhaust the bounded space");
}

#[test]
fn deque_without_serialization_duplicates_the_last_job() {
    // Negative control: the thief trusts the committed tail without
    // forcing the victim's buffered `T--` out — the classic THE bug the
    // victim-side mfence (or remote serialization) exists to prevent.
    let report = Explorer::dfs(2)
        .seed_override(None)
        .check("deque-nofence", one_job_race(NoFence::new));
    let v = report.expect_violation();
    assert_eq!(v.kind, ViolationKind::Assertion);
    assert!(
        v.message.contains("taken twice") || v.message.contains("job lost"),
        "expected a lost/duplicated job, got: {}",
        v.message
    );
    assert!(
        v.trace.contains("buffered"),
        "the failing trace must show the buffered store:\n{}",
        v.trace
    );
}

#[test]
fn deque_nofence_bug_replays_from_reported_seed() {
    let found = Explorer::random_walk(0xBADC_0FFE, 4_000)
        .seed_override(None)
        .check("deque-nofence-rand", one_job_race(NoFence::new));
    let v = found.expect_violation();
    let seed = v.seed.expect("randomized engines report a seed");

    let replay = Explorer::random_walk(0x1234_5678, 4_000)
        .seed_override(Some(seed))
        .check("deque-nofence-rand", one_job_race(NoFence::new));
    assert_eq!(replay.schedules_run, 1, "seed replay runs one schedule");
    assert_eq!(replay.expect_violation().trace, v.trace);
}
