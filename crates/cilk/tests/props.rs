//! Property-style tests for the work-stealing runtime: randomly shaped
//! fork-join computations must produce exactly the sequential result under
//! any worker count and fence strategy.
//!
//! The default build generates the random expression trees from a fixed
//! SplitMix64 seed (the hosts build offline, so `proptest` is not
//! available); the original proptest versions survive behind the
//! non-default `proptest` feature, which requires restoring the `proptest`
//! dev-dependency on a networked machine.

use lbmf::strategy::FenceStrategy;
use lbmf::strategy::{SignalFence, Symmetric};
use lbmf_cilk::{Scheduler, WorkerCtx};
use lbmf_prng::{Rng, SplitMix64};
use std::sync::Arc;

/// A randomly shaped fork-join expression tree.
#[derive(Clone, Debug)]
enum Expr {
    Leaf(u64),
    Add(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

/// A random tree of depth at most `depth` (mirrors the recursive proptest
/// strategy: at each level, half the mass goes to leaves).
fn random_expr(rng: &mut SplitMix64, depth: u32) -> Expr {
    if depth == 0 || rng.random_ratio(1, 2) {
        return Expr::Leaf(rng.bounded_u64(1000));
    }
    let a = Box::new(random_expr(rng, depth - 1));
    let b = Box::new(random_expr(rng, depth - 1));
    if rng.random_ratio(1, 2) {
        Expr::Add(a, b)
    } else {
        Expr::Mul(a, b)
    }
}

fn eval_seq(e: &Expr) -> u64 {
    match e {
        Expr::Leaf(v) => *v,
        Expr::Add(a, b) => eval_seq(a).wrapping_add(eval_seq(b)),
        Expr::Mul(a, b) => eval_seq(a).wrapping_mul(eval_seq(b)),
    }
}

fn eval_par<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, e: &Expr) -> u64 {
    match e {
        Expr::Leaf(v) => *v,
        Expr::Add(a, b) => {
            let (x, y) = ctx.join(|c| eval_par(c, a), |c| eval_par(c, b));
            x.wrapping_add(y)
        }
        Expr::Mul(a, b) => {
            let (x, y) = ctx.join(|c| eval_par(c, a), |c| eval_par(c, b));
            x.wrapping_mul(y)
        }
    }
}

/// Random expression trees evaluate identically in sequence and on the
/// symmetric pool.
#[test]
fn random_trees_match_sequential_symmetric() {
    let mut rng = SplitMix64::seed_from_u64(0xC11C_0001);
    let pool = Scheduler::new(3, Arc::new(Symmetric::new()));
    for _ in 0..24 {
        let e = random_expr(&mut rng, 8);
        let par = pool.run(|ctx| eval_par(ctx, &e));
        assert_eq!(par, eval_seq(&e), "tree diverged: {e:?}");
    }
}

/// Same under the asymmetric (signal-serialized) pool.
#[test]
fn random_trees_match_sequential_asymmetric() {
    let mut rng = SplitMix64::seed_from_u64(0xC11C_0002);
    let pool = Scheduler::new(2, Arc::new(SignalFence::new()));
    for _ in 0..24 {
        let e = random_expr(&mut rng, 8);
        let par = pool.run(|ctx| eval_par(ctx, &e));
        assert_eq!(par, eval_seq(&e), "tree diverged: {e:?}");
    }
}

/// Job conservation: pushes == pops + steals after any run.
#[test]
fn job_conservation() {
    let mut rng = SplitMix64::seed_from_u64(0xC11C_0003);
    for _ in 0..12 {
        let workers = rng.random_range(1..5);
        let e = random_expr(&mut rng, 8);
        let pool = Scheduler::new(workers, Arc::new(Symmetric::new()));
        pool.reset_stats();
        let _ = pool.run(|ctx| eval_par(ctx, &e));
        let s = pool.stats();
        assert_eq!(s.pushes, s.pops + s.steals, "workers={workers} tree={e:?}");
    }
}

/// Concurrent `run` calls from several external threads share the pool
/// safely (the injector serializes root submission).
#[test]
fn concurrent_runs_share_the_pool() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let pool = Arc::new(Scheduler::new(3, Arc::new(Symmetric::new())));
    let total = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for k in 1..=4u64 {
        let pool = pool.clone();
        let total = total.clone();
        handles.push(std::thread::spawn(move || {
            let v = pool.run(move |ctx| {
                let (a, b) = ctx.join(move |_| 10 * k, move |_| k);
                a + b
            });
            total.fetch_add(v, Ordering::Relaxed);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // sum of 11k for k=1..4
    assert_eq!(total.load(Ordering::Relaxed), 11 * (1 + 2 + 3 + 4));
}

/// The original proptest versions of the properties above. Compiled only
/// with `--features proptest` after restoring the `proptest`
/// dev-dependency (registry access required).
#[cfg(feature = "proptest")]
mod proptest_originals {
    use super::*;
    use proptest::prelude::*;

    fn expr_strategy() -> impl Strategy<Value = Expr> {
        let leaf = (0u64..1000).prop_map(Expr::Leaf);
        leaf.prop_recursive(8, 96, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
                (inner.clone(), inner).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        #[test]
        fn random_trees_match_sequential_symmetric_pt(e in expr_strategy()) {
            let pool = Scheduler::new(3, Arc::new(Symmetric::new()));
            let par = pool.run(|ctx| eval_par(ctx, &e));
            prop_assert_eq!(par, eval_seq(&e));
        }

        #[test]
        fn random_trees_match_sequential_asymmetric_pt(e in expr_strategy()) {
            let pool = Scheduler::new(2, Arc::new(SignalFence::new()));
            let par = pool.run(|ctx| eval_par(ctx, &e));
            prop_assert_eq!(par, eval_seq(&e));
        }

        #[test]
        fn job_conservation_pt(e in expr_strategy(), workers in 1usize..5) {
            let pool = Scheduler::new(workers, Arc::new(Symmetric::new()));
            pool.reset_stats();
            let _ = pool.run(|ctx| eval_par(ctx, &e));
            let s = pool.stats();
            prop_assert_eq!(s.pushes, s.pops + s.steals);
        }
    }
}
