//! Scoped, irregular parallelism: `scope`/`spawn` on top of the fork-join
//! scheduler.
//!
//! [`WorkerCtx::join`] expresses balanced binary fork-join — all the
//! paper's benchmarks need. A [`Scope`] adds the irregular form: spawn any
//! number of tasks that may borrow from the enclosing stack frame; the
//! scope does not return until every spawned task (including nested
//! spawns) has finished. Spawned tasks go through the same THE-protocol
//! deques, so they are stealable and their pops ride the same
//! location-based-fence fast path.
//!
//! ```
//! use lbmf_cilk::Scheduler;
//! use lbmf::strategy::Symmetric;
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let pool = Scheduler::new(2, Arc::new(Symmetric::new()));
//! let total = AtomicU64::new(0);
//! pool.run(|ctx| {
//!     let total = &total;
//!     ctx.scope(|scope, ctx| {
//!         for i in 1..=10u64 {
//!             scope.spawn(ctx, move |_, _| {
//!                 total.fetch_add(i, Ordering::Relaxed);
//!             });
//!         }
//!     });
//! });
//! assert_eq!(total.load(Ordering::Relaxed), 55);
//! ```

use crate::job::JobCore;
use crate::scheduler::WorkerCtx;
use lbmf::strategy::FenceStrategy;
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A scope within which tasks borrowing from the enclosing frame may be
/// spawned. Created by [`WorkerCtx::scope`].
pub struct Scope<'scope, S: FenceStrategy> {
    /// Spawned-but-unfinished task count.
    pending: AtomicUsize,
    /// First panic raised by a spawned task (propagated when the scope
    /// closes).
    panic: lbmf::sync::Mutex<Option<Box<dyn Any + Send>>>,
    /// Invariant over 'scope (the usual scoped-task variance guard).
    _marker: PhantomData<&'scope mut &'scope ()>,
    _strategy: PhantomData<S>,
}

/// A heap-allocated spawned task; freed by whoever executes it.
struct HeapJob<'scope, F, S>
where
    S: FenceStrategy,
    F: FnOnce(&WorkerCtx<'_, S>, &Scope<'scope, S>) + Send + 'scope,
{
    /// Read through the type-erased pointer, never through the field.
    #[allow(dead_code)]
    core: JobCore<S>,
    scope: *const Scope<'scope, S>,
    func: Option<F>,
}

impl<'scope, F, S> HeapJob<'scope, F, S>
where
    S: FenceStrategy,
    F: FnOnce(&WorkerCtx<'_, S>, &Scope<'scope, S>) + Send + 'scope,
{
    unsafe fn execute_erased(core: *mut JobCore<S>, ctx: &WorkerCtx<'_, S>) {
        // `core` is the first (repr-compatible) field: recover the box.
        let mut job = Box::from_raw(core as *mut Self);
        let scope = &*job.scope;
        let func = job.func.take().expect("scope job executed twice");
        let result = catch_unwind(AssertUnwindSafe(|| func(ctx, scope)));
        if let Err(payload) = result {
            let mut slot = scope.panic.lock();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        // The decrement releases the job's effects to the scope closer.
        scope.pending.fetch_sub(1, Ordering::AcqRel);
        // `job` drops here, freeing the allocation.
    }
}

impl<'scope, S: FenceStrategy> Scope<'scope, S> {
    /// Spawn a task that may borrow anything outliving the scope. The task
    /// receives the executing worker's context (for nested joins/spawns)
    /// and the scope itself (for nested spawns).
    pub fn spawn<F>(&self, ctx: &WorkerCtx<'_, S>, func: F)
    where
        F: FnOnce(&WorkerCtx<'_, S>, &Scope<'scope, S>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::AcqRel);
        let job = Box::new(HeapJob {
            core: JobCore {
                exec: HeapJob::<'scope, F, S>::execute_erased,
            },
            scope: self as *const Scope<'scope, S>,
            func: Some(func),
        });
        // repr: `core` is the first field, so the box pointer doubles as a
        // JobCore pointer (same layout trick as StackJob).
        let ptr = Box::into_raw(job) as *mut JobCore<S>;
        ctx.push_job(ptr);
    }

    /// Spawned tasks not yet finished (approximate; for monitoring).
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }
}

impl<'s, S: FenceStrategy> WorkerCtx<'s, S> {
    /// Open a scope: run `f`, then keep working (executing own and stolen
    /// tasks) until every task spawned in the scope has completed. Panics
    /// from spawned tasks are propagated after the scope closes.
    pub fn scope<'scope, R>(
        &self,
        f: impl FnOnce(&Scope<'scope, S>, &WorkerCtx<'_, S>) -> R,
    ) -> R {
        let scope = Scope {
            pending: AtomicUsize::new(0),
            panic: lbmf::sync::Mutex::new(None),
            _marker: PhantomData,
            _strategy: PhantomData,
        };
        // Even if `f` panics we must drain the spawned tasks first: they
        // borrow this frame.
        let out = catch_unwind(AssertUnwindSafe(|| f(&scope, self)));
        self.work_until(|| scope.pending.load(Ordering::Acquire) == 0);
        if let Some(payload) = scope.panic.lock().take() {
            resume_unwind(payload);
        }
        match out {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;
    use lbmf::strategy::{SignalFence, Symmetric};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn spawned_tasks_all_run() {
        let pool = Scheduler::new(3, Arc::new(Symmetric::new()));
        let hits = AtomicU64::new(0);
        pool.run(|ctx| {
            ctx.scope(|scope, ctx| {
                for _ in 0..500 {
                    scope.spawn(ctx, |_, _| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn nested_spawns() {
        let pool = Scheduler::new(2, Arc::new(SignalFence::new()));
        let hits = AtomicU64::new(0);
        pool.run(|ctx| {
            ctx.scope(|scope, ctx| {
                for _ in 0..10 {
                    scope.spawn(ctx, |ctx, scope| {
                        hits.fetch_add(1, Ordering::Relaxed);
                        for _ in 0..10 {
                            scope.spawn(ctx, |_, _| {
                                hits.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 110);
    }

    #[test]
    fn scope_borrows_stack_data() {
        let pool = Scheduler::new(2, Arc::new(Symmetric::new()));
        let data: Vec<u64> = (0..100).collect();
        let sum = AtomicU64::new(0);
        pool.run(|ctx| {
            ctx.scope(|scope, ctx| {
                for chunk in data.chunks(7) {
                    scope.spawn(ctx, |_, _| {
                        sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum());
    }

    #[test]
    fn spawn_mixes_with_join() {
        // A join whose `a` branch spawns scope tasks: the join's pop must
        // tolerate the foreign jobs above its own frame.
        let pool = Scheduler::new(2, Arc::new(Symmetric::new()));
        let hits = AtomicU64::new(0);
        let out = pool.run(|ctx| {
            ctx.scope(|scope, ctx| {
                let (x, y) = ctx.join(
                    |c| {
                        for _ in 0..5 {
                            scope.spawn(c, |_, _| {
                                hits.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                        1u64
                    },
                    |_| 2u64,
                );
                x + y
            })
        });
        assert_eq!(out, 3);
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn panics_in_spawned_tasks_propagate() {
        let pool = Scheduler::new(2, Arc::new(Symmetric::new()));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|ctx| {
                ctx.scope(|scope, ctx| {
                    scope.spawn(ctx, |_, _| panic!("spawned boom"));
                });
            })
        }));
        assert!(result.is_err());
        // Pool still usable.
        assert_eq!(pool.run(|_| 7), 7);
    }

    #[test]
    fn empty_scope_returns_value() {
        let pool = Scheduler::new(1, Arc::new(Symmetric::new()));
        let v = pool.run(|ctx| ctx.scope(|_, _| 42));
        assert_eq!(v, 42);
    }
}
