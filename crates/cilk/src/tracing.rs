//! Internal shim over `lbmf-trace`, compiled away without the `trace`
//! feature (mirror of `lbmf`'s private `trace` module — macros cannot be
//! shared across crates without exporting them, and these are not API).

/// Record an instant event carrying a causal correlation id:
/// `trace_event_corr!(Kind, addr, corr)`.
macro_rules! trace_event_corr {
    ($kind:ident, $addr:expr, $corr:expr) => {{
        #[cfg(feature = "trace")]
        ::lbmf_trace::record_corr(::lbmf_trace::EventKind::$kind, $addr, 0, $corr);
        #[cfg(not(feature = "trace"))]
        {
            let _ = (&$addr, &$corr);
        }
    }};
}

/// Mint a correlation id for one causal chain (0 with tracing compiled
/// out).
macro_rules! trace_mint_corr {
    () => {{
        #[cfg(feature = "trace")]
        {
            ::lbmf_trace::next_corr_id()
        }
        #[cfg(not(feature = "trace"))]
        {
            0u64
        }
    }};
}

pub(crate) use {trace_event_corr, trace_mint_corr};
