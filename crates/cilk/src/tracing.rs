//! Internal shim over `lbmf-trace`, compiled away without the `trace`
//! feature (mirror of `lbmf`'s private `trace` module — macros cannot be
//! shared across crates without exporting them, and these are not API).

/// Record an instant event: `trace_event!(Kind, addr)`.
macro_rules! trace_event {
    ($kind:ident, $addr:expr) => {{
        #[cfg(feature = "trace")]
        ::lbmf_trace::record(::lbmf_trace::EventKind::$kind, $addr, 0);
        #[cfg(not(feature = "trace"))]
        {
            let _ = &$addr;
        }
    }};
}

pub(crate) use trace_event;
