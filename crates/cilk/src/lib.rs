//! # lbmf-cilk — a work-stealing runtime with location-based fences
//!
//! A miniature Cilk-5: `P` workers, per-worker THE-protocol deques, and a
//! `join` fork-join primitive. The victim/thief handshake in the deque is
//! the Dekker-duality instance the paper's ACilk-5 experiment modifies
//! (Section 5): the victim's per-`pop` fence — executed on **every**
//! spawn-return in the original Cilk-5 — is replaced by a location-based
//! fence, remotely enforced by thieves on each steal attempt.
//!
//! Instantiate with:
//!
//! * [`lbmf::strategy::Symmetric`] → the Cilk-5 baseline (mfence per pop);
//! * [`lbmf::strategy::SignalFence`] → ACilk-5 with the paper's
//!   signal-based software prototype;
//! * [`lbmf::strategy::MembarrierFence`] → ACilk-5 with the cheaper
//!   kernel-assisted asymmetric fence.
//!
//! The [`mod@bench`] module carries the twelve Figure-4 benchmark kernels.
//!
//! ```
//! use lbmf_cilk::Scheduler;
//! use lbmf::strategy::SignalFence;
//! use std::sync::Arc;
//!
//! let pool = Scheduler::new(2, Arc::new(SignalFence::new()));
//! let sum = pool.run(|ctx| {
//!     let (a, b) = ctx.join(|_| 1 + 1, |_| 2 + 2);
//!     a + b
//! });
//! assert_eq!(sum, 6);
//! ```

#![warn(missing_docs)]

pub mod bench;
pub mod deque;
pub mod job;
pub mod par;
pub mod scheduler;
pub mod scope;
pub mod stats;
pub(crate) mod tracing;

pub use scheduler::{Scheduler, WorkerCtx};
pub use scope::Scope;
pub use stats::RuntimeStats;
