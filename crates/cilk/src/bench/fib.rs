//! `fib` and `fibx`: the spawn-overhead probes.
//!
//! `fib` has no sequential cutoff on purpose — the paper uses it to measure
//! raw spawn overhead ("fib is specifically designed to measure the spawn
//! overhead, and the number suggests that the spawn overhead is cut by half
//! if one could avoid the fence").
//!
//! `fibx` is a deep spine: at each of `depth` levels it joins the rest of
//! the spine against one small `fib(leaf)` — the "alternate between
//! fib(n-1) and fib(n-40)" shape: long dependence chain, constant supply of
//! small stealable tasks.

use crate::scheduler::WorkerCtx;
use lbmf::strategy::FenceStrategy;

/// Recursive Fibonacci with a join per node.
pub fn fib<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = ctx.join(|c| fib(c, n - 1), |c| fib(c, n - 2));
    a + b
}

/// Sequential Fibonacci (reference / baseline measurements).
pub fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

/// The deep-spine variant: `depth` levels, each joining the remaining
/// spine against `fib(leaf)`.
pub fn fibx<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, depth: u64, leaf: u64) -> u64 {
    if depth == 0 {
        return 0;
    }
    let (rest, small) = ctx.join(|c| fibx(c, depth - 1, leaf), |c| fib(c, leaf));
    rest.wrapping_add(small)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;
    use lbmf::strategy::Symmetric;
    use std::sync::Arc;

    #[test]
    fn fib_matches_sequential() {
        let s = Scheduler::new(2, Arc::new(Symmetric::new()));
        for n in [0u64, 1, 2, 10, 20] {
            assert_eq!(s.run(|ctx| fib(ctx, n)), fib_seq(n));
        }
    }

    #[test]
    fn fibx_is_depth_times_leaf_fib() {
        let s = Scheduler::new(2, Arc::new(Symmetric::new()));
        let r = s.run(|ctx| fibx(ctx, 10, 7));
        assert_eq!(r, 10 * fib_seq(7));
    }
}
