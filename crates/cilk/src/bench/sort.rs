//! `cilksort`: parallel merge sort with a parallel merge.
//!
//! Divide-and-conquer merge sort; below the cutoff it falls back to the
//! standard library's unstable sort (the paper's cilksort coarsens its base
//! case the same way). The merge itself is also parallel: split the larger
//! run at its midpoint, binary-search the split point in the smaller run,
//! and merge the two halves concurrently into disjoint output slices.

use crate::scheduler::WorkerCtx;
use lbmf::strategy::FenceStrategy;

const SORT_CUTOFF: usize = 2048;
const MERGE_CUTOFF: usize = 4096;

/// Deterministic pseudo-random input (xorshift-scrambled).
pub fn make_input(n: usize) -> Vec<u64> {
    let mut x = 0x853C49E6748FEA9Bu64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        })
        .collect()
}

/// Sort `v` and return a checksum (order-sensitive digest of the sorted
/// sequence).
pub fn cilksort<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, v: &mut [u64]) -> u64 {
    let mut tmp = vec![0u64; v.len()];
    sort_rec(ctx, v, &mut tmp);
    digest(v)
}

fn digest(v: &[u64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &x in v.iter().step_by((v.len() / 1024).max(1)) {
        h = (h ^ x).wrapping_mul(0x100000001b3);
    }
    h ^ v.len() as u64
}

fn sort_rec<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, v: &mut [u64], tmp: &mut [u64]) {
    if v.len() <= SORT_CUTOFF {
        v.sort_unstable();
        return;
    }
    let mid = v.len() / 2;
    {
        let (v1, v2) = v.split_at_mut(mid);
        let (t1, t2) = tmp.split_at_mut(mid);
        ctx.join(|c| sort_rec(c, v1, t1), |c| sort_rec(c, v2, t2));
    }
    // Merge the two sorted halves through tmp, then copy back.
    {
        let (a, b) = v.split_at(mid);
        merge_rec(ctx, a, b, tmp);
    }
    v.copy_from_slice(tmp);
}

/// Parallel merge of sorted `a` and `b` into `out`
/// (`out.len() == a.len() + b.len()`).
fn merge_rec<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, a: &[u64], b: &[u64], out: &mut [u64]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    if out.len() <= MERGE_CUTOFF {
        merge_seq(a, b, out);
        return;
    }
    // Ensure `a` is the larger run.
    let (a, b) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let ma = a.len() / 2;
    let pivot = a[ma];
    let mb = b.partition_point(|&x| x < pivot);
    let (a1, a2) = a.split_at(ma);
    let (b1, b2) = b.split_at(mb);
    let (o1, o2) = out.split_at_mut(ma + mb);
    ctx.join(|c| merge_rec(c, a1, b1, o1), |c| merge_rec(c, a2, b2, o2));
}

fn merge_seq(a: &[u64], b: &[u64], out: &mut [u64]) {
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;
    use lbmf::strategy::Symmetric;
    use std::sync::Arc;

    #[test]
    fn sorts_correctly() {
        let s = Scheduler::new(3, Arc::new(Symmetric::new()));
        let mut v = make_input(50_000);
        let mut expected = v.clone();
        expected.sort_unstable();
        s.run(|ctx| cilksort(ctx, &mut v));
        assert_eq!(v, expected);
    }

    #[test]
    fn checksum_matches_sequential_sort_digest() {
        let s = Scheduler::new(2, Arc::new(Symmetric::new()));
        let mut v = make_input(10_000);
        let check = s.run(|ctx| cilksort(ctx, &mut v));
        let mut w = make_input(10_000);
        w.sort_unstable();
        assert_eq!(check, digest(&w));
    }

    #[test]
    fn tiny_and_empty_inputs() {
        let s = Scheduler::new(1, Arc::new(Symmetric::new()));
        let mut empty: Vec<u64> = vec![];
        s.run(|ctx| cilksort(ctx, &mut empty));
        let mut one = vec![42u64];
        s.run(|ctx| cilksort(ctx, &mut one));
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn parallel_merge_handles_skew() {
        // One run much longer than the other.
        let s = Scheduler::new(2, Arc::new(Symmetric::new()));
        let mut v: Vec<u64> = (0..60_000).map(|i| (i * 7919) % 65536).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        s.run(|ctx| cilksort(ctx, &mut v));
        assert_eq!(v, expected);
    }
}
