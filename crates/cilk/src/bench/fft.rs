//! `fft`: recursive radix-2 Cooley-Tukey over complex doubles.
//!
//! The recursion splits into even/odd halves through a scratch buffer and
//! descends both halves in parallel; below the cutoff it runs sequentially
//! (same function, no joins). Sizes must be powers of two.

use crate::bench::f64_checksum;
use crate::scheduler::WorkerCtx;
use lbmf::strategy::FenceStrategy;

const FFT_CUTOFF: usize = 256;

/// A complex double.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from real/imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

/// Deterministic input signal.
pub fn make_input(n: usize) -> Vec<Complex> {
    assert!(n.is_power_of_two());
    let mut x = 0x2545F4914F6CDD1Du64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let re = ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            let im = ((x.wrapping_mul(0x9E3779B97F4A7C15) >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            Complex::new(re, im)
        })
        .collect()
}

/// In-place FFT of `data` (power-of-two length); returns a checksum over
/// the spectrum.
pub fn fft<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, data: &mut [Complex]) -> u64 {
    assert!(data.len().is_power_of_two());
    let mut scratch = vec![Complex::default(); data.len()];
    fft_rec(ctx, data, &mut scratch, true);
    // Checksum: bounded-precision digest of a spectrum sample.
    let step = (data.len() / 64).max(1);
    let mut acc = 0u64;
    for c in data.iter().step_by(step) {
        acc = acc
            .wrapping_mul(0x100000001b3)
            .wrapping_add(f64_checksum(c.re) ^ f64_checksum(c.im).rotate_left(17));
    }
    acc
}

fn fft_rec<S: FenceStrategy>(
    ctx: &WorkerCtx<'_, S>,
    data: &mut [Complex],
    scratch: &mut [Complex],
    parallel: bool,
) {
    let n = data.len();
    if n == 1 {
        return;
    }
    let half = n / 2;
    // Deinterleave even/odd into scratch halves.
    for i in 0..half {
        scratch[i] = data[2 * i];
        scratch[half + i] = data[2 * i + 1];
    }
    {
        let (even, odd) = scratch.split_at_mut(half);
        let (de, do_) = data.split_at_mut(half);
        if parallel && n > FFT_CUTOFF {
            ctx.join(
                |c| fft_rec(c, even, de, true),
                |c| fft_rec(c, odd, do_, true),
            );
        } else {
            fft_rec(ctx, even, de, false);
            fft_rec(ctx, odd, do_, false);
        }
    }
    // Combine with twiddle factors.
    let theta = -2.0 * std::f64::consts::PI / n as f64;
    for k in 0..half {
        let tw = Complex::new((theta * k as f64).cos(), (theta * k as f64).sin());
        let e = scratch[k];
        let o = tw.mul(scratch[half + k]);
        data[k] = e.add(o);
        data[half + k] = e.sub(o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;
    use lbmf::strategy::Symmetric;
    use std::sync::Arc;

    /// Reference O(n²) DFT.
    fn dft(input: &[Complex]) -> Vec<Complex> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::default();
                for (j, &x) in input.iter().enumerate() {
                    let th = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    acc = acc.add(x.mul(Complex::new(th.cos(), th.sin())));
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_reference_dft() {
        let s = Scheduler::new(2, Arc::new(Symmetric::new()));
        let input = make_input(64);
        let expected = dft(&input);
        let mut data = input.clone();
        s.run(|ctx| fft(ctx, &mut data));
        for (a, b) in data.iter().zip(expected.iter()) {
            assert!((a.re - b.re).abs() < 1e-9, "{a:?} vs {b:?}");
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let s = Scheduler::new(3, Arc::new(Symmetric::new()));
        let input = make_input(4096);
        let time_energy: f64 = input.iter().map(|c| c.norm_sq()).sum();
        let mut data = input.clone();
        s.run(|ctx| fft(ctx, &mut data));
        let freq_energy: f64 = data.iter().map(|c| c.norm_sq()).sum::<f64>() / data.len() as f64;
        assert!(
            (time_energy - freq_energy).abs() / time_energy < 1e-9,
            "Parseval violated: {time_energy} vs {freq_energy}"
        );
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let s = Scheduler::new(1, Arc::new(Symmetric::new()));
        let mut data = vec![Complex::default(); 1024];
        data[0] = Complex::new(1.0, 0.0);
        s.run(|ctx| fft(ctx, &mut data));
        for c in &data {
            assert!((c.re - 1.0).abs() < 1e-9 && c.im.abs() < 1e-9);
        }
    }
}
