//! The twelve benchmark kernels of the paper's Figure 4.
//!
//! | name | paper input | here |
//! |------|-------------|------|
//! | cholesky | 4000/40000 (sparse) | dense recursive Cholesky (substitution: the open-source Cilk-5 `cholesky` is sparse; the dense blocked version exercises the identical spawn structure — see DESIGN.md) |
//! | cilksort | 10⁸ | parallel merge sort with parallel merge |
//! | fft | 2²⁶ | recursive radix-2 Cooley-Tukey |
//! | fib | 42 | recursive Fibonacci, no cutoff (spawn-overhead probe) |
//! | fibx | 280 | a deep spine alternating a tiny `fib` per level (the paper's "alternate between fib(n-1) and fib(n-40)" shape) |
//! | heat | 2048×500 | Jacobi heat diffusion, divide-and-conquer over rows |
//! | knapsack | 32 | branch-and-bound 0/1 knapsack |
//! | lu | 4096 | recursive blocked LU (no pivoting, dominant diagonal) |
//! | matmul | 2048 | divide-and-conquer matrix multiply |
//! | nqueens | 14 | count N-queens placements |
//! | rectmul | 4096 | rectangular matrix multiply |
//! | strassen | 4096 | Strassen's algorithm |
//!
//! Every kernel returns a `u64` checksum that is **deterministic across
//! worker counts and fence strategies** (the join tree fixes the reduction
//! order), which is what the correctness tests rely on. Inputs come in
//! three scales: `Test` (CI-sized), `Small` (seconds-scale measurement),
//! and `Paper` (the Figure 4 inputs, memory permitting).

pub mod fft;
pub mod fib;
pub mod heat;
pub mod knapsack;
pub mod matrix;
pub mod nqueens;
pub mod sort;

use crate::scheduler::Scheduler;
use lbmf::strategy::FenceStrategy;
use std::time::{Duration, Instant};

/// Input scale for a kernel run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Milliseconds-scale inputs for CI.
    Test,
    /// Seconds-scale inputs for measurements on a laptop-class host.
    Small,
    /// The paper's Figure 4 inputs (scaled down only where the original
    /// would not fit in memory; each such case is noted on the variant).
    Paper,
}

/// One of the twelve Figure 4 benchmarks (names as in the paper).
#[allow(missing_docs)] // the variants are the Figure 4 benchmark names
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kernel {
    Cholesky,
    Cilksort,
    Fft,
    Fib,
    Fibx,
    Heat,
    Knapsack,
    Lu,
    Matmul,
    Nqueens,
    Rectmul,
    Strassen,
}

/// Result of a timed kernel run.
#[derive(Clone, Copy, Debug)]
pub struct TimedRun {
    /// Deterministic digest of the kernel's output.
    pub checksum: u64,
    /// Wall-clock time of the run (input preparation excluded).
    pub elapsed: Duration,
}

impl Kernel {
    /// All twelve, in the paper's Figure 4 order.
    pub fn all() -> [Kernel; 12] {
        use Kernel::*;
        [
            Cholesky, Cilksort, Fft, Fib, Fibx, Heat, Knapsack, Lu, Matmul, Nqueens, Rectmul,
            Strassen,
        ]
    }

    /// The benchmark's Figure 4 name.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Cholesky => "cholesky",
            Kernel::Cilksort => "cilksort",
            Kernel::Fft => "fft",
            Kernel::Fib => "fib",
            Kernel::Fibx => "fibx",
            Kernel::Heat => "heat",
            Kernel::Knapsack => "knapsack",
            Kernel::Lu => "lu",
            Kernel::Matmul => "matmul",
            Kernel::Nqueens => "nqueens",
            Kernel::Rectmul => "rectmul",
            Kernel::Strassen => "strassen",
        }
    }

    /// The paper's Figure 4 description.
    pub fn description(&self) -> &'static str {
        match self {
            Kernel::Cholesky => "Cholesky factorization",
            Kernel::Cilksort => "Parallel merge sort",
            Kernel::Fft => "Fast Fourier transform",
            Kernel::Fib => "Recursive Fibonacci",
            Kernel::Fibx => "Alternate between fib(n-1) and fib(n-40)",
            Kernel::Heat => "Jacobi heat diffusion",
            Kernel::Knapsack => "Recursive knapsack",
            Kernel::Lu => "LU-decomposition",
            Kernel::Matmul => "Matrix multiply",
            Kernel::Nqueens => "Count ways to place N queens",
            Kernel::Rectmul => "Rectangular matrix multiply",
            Kernel::Strassen => "Strassen matrix multiply",
        }
    }

    /// The paper's Figure 4 input string.
    pub fn paper_input(&self) -> &'static str {
        match self {
            Kernel::Cholesky => "4000/40000",
            Kernel::Cilksort => "10^8",
            Kernel::Fft => "2^26",
            Kernel::Fib => "42",
            Kernel::Fibx => "280",
            Kernel::Heat => "2048x500",
            Kernel::Knapsack => "32",
            Kernel::Lu => "4096",
            Kernel::Matmul => "2048",
            Kernel::Nqueens => "14",
            Kernel::Rectmul => "4096",
            Kernel::Strassen => "4096",
        }
    }

    /// Run once on `sched` at `scale`; input preparation is excluded from
    /// the timing.
    pub fn run_timed<S: FenceStrategy>(&self, sched: &Scheduler<S>, scale: Scale) -> TimedRun {
        match self {
            Kernel::Fib => {
                let n = match scale {
                    Scale::Test => 18,
                    Scale::Small => 27,
                    Scale::Paper => 42,
                };
                timed(|| sched.run(|ctx| fib::fib(ctx, n)))
            }
            Kernel::Fibx => {
                let (depth, leaf) = match scale {
                    Scale::Test => (40, 8),
                    Scale::Small => (280, 18),
                    Scale::Paper => (280, 25),
                };
                timed(|| sched.run(|ctx| fib::fibx(ctx, depth, leaf)))
            }
            Kernel::Cilksort => {
                let n = match scale {
                    Scale::Test => 20_000,
                    Scale::Small => 2_000_000,
                    Scale::Paper => 10_000_000, // 10^8 exceeds this host's RAM comfort
                };
                let input = sort::make_input(n);
                timed(move || {
                    let mut v = input.clone();
                    sched.run(|ctx| sort::cilksort(ctx, &mut v))
                })
            }
            Kernel::Fft => {
                let log2n = match scale {
                    Scale::Test => 12,
                    Scale::Small => 18,
                    Scale::Paper => 22, // 2^26 complex doubles = 1 GiB: beyond this host
                };
                let input = fft::make_input(1 << log2n);
                timed(move || {
                    let mut v = input.clone();
                    sched.run(|ctx| fft::fft(ctx, &mut v))
                })
            }
            Kernel::Heat => {
                let (nx, ny, steps) = match scale {
                    Scale::Test => (64, 64, 16),
                    Scale::Small => (512, 512, 50),
                    Scale::Paper => (2048, 2048, 100), // paper ran 2048x500 steps
                };
                timed(move || sched.run(|ctx| heat::heat(ctx, nx, ny, steps)))
            }
            Kernel::Knapsack => {
                let items = match scale {
                    Scale::Test => 20,
                    Scale::Small => 26,
                    Scale::Paper => 32,
                };
                let input = knapsack::make_input(items);
                timed(move || sched.run(|ctx| knapsack::knapsack(ctx, &input)))
            }
            Kernel::Lu => {
                let n = match scale {
                    Scale::Test => 64,
                    Scale::Small => 512,
                    Scale::Paper => 2048, // 4096 doubles² = 128 MiB ×2: slow on 1 core
                };
                timed(move || sched.run(|ctx| matrix::lu_bench(ctx, n)))
            }
            Kernel::Cholesky => {
                let n = match scale {
                    Scale::Test => 64,
                    Scale::Small => 512,
                    Scale::Paper => 2048,
                };
                timed(move || sched.run(|ctx| matrix::cholesky_bench(ctx, n)))
            }
            Kernel::Matmul => {
                let n = match scale {
                    Scale::Test => 64,
                    Scale::Small => 384,
                    Scale::Paper => 1024,
                };
                timed(move || sched.run(|ctx| matrix::matmul_bench(ctx, n)))
            }
            Kernel::Rectmul => {
                let (m, k, n) = match scale {
                    Scale::Test => (48, 96, 32),
                    Scale::Small => (256, 512, 384),
                    Scale::Paper => (1024, 2048, 512),
                };
                timed(move || sched.run(|ctx| matrix::rectmul_bench(ctx, m, k, n)))
            }
            Kernel::Strassen => {
                let n = match scale {
                    Scale::Test => 64,
                    Scale::Small => 512,
                    Scale::Paper => 1024,
                };
                timed(move || sched.run(|ctx| matrix::strassen_bench(ctx, n)))
            }
            Kernel::Nqueens => {
                let n = match scale {
                    Scale::Test => 8,
                    Scale::Small => 11,
                    Scale::Paper => 14,
                };
                timed(move || sched.run(|ctx| nqueens::nqueens(ctx, n)))
            }
        }
    }
}

fn timed(f: impl FnOnce() -> u64) -> TimedRun {
    let t0 = Instant::now();
    let checksum = f();
    TimedRun {
        checksum,
        elapsed: t0.elapsed(),
    }
}

/// Fold an `f64` into a checksum deterministically.
pub(crate) fn f64_checksum(x: f64) -> u64 {
    // Round to bounded precision so the value is robust to the (fixed but
    // implementation-defined) association of FP ops in base cases.
    (x * 1e6).round() as i64 as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbmf::strategy::{SignalFence, Symmetric};
    use std::sync::Arc;

    #[test]
    fn kernel_metadata_is_complete() {
        for k in Kernel::all() {
            assert!(!k.name().is_empty());
            assert!(!k.description().is_empty());
            assert!(!k.paper_input().is_empty());
        }
        assert_eq!(Kernel::all().len(), 12);
    }

    /// The headline correctness property: every kernel's checksum is
    /// identical across worker counts and fence strategies.
    #[test]
    fn checksums_deterministic_across_workers_and_strategies() {
        for kernel in Kernel::all() {
            let s1 = Scheduler::new(1, Arc::new(Symmetric::new()));
            let base = kernel.run_timed(&s1, Scale::Test).checksum;

            let s4 = Scheduler::new(4, Arc::new(Symmetric::new()));
            assert_eq!(
                kernel.run_timed(&s4, Scale::Test).checksum,
                base,
                "{} differs on 4 symmetric workers",
                kernel.name()
            );

            let sa = Scheduler::new(3, Arc::new(SignalFence::new()));
            assert_eq!(
                kernel.run_timed(&sa, Scale::Test).checksum,
                base,
                "{} differs under the asymmetric runtime",
                kernel.name()
            );
        }
    }
}
