//! Dense matrix kernels: `matmul`, `rectmul`, `strassen`, `lu`, and
//! `cholesky`.
//!
//! All kernels are divide-and-conquer over matrix *views* — raw
//! pointer/stride windows into a row-major buffer. Views are `Copy` and
//! `Send`; safety rests on the recursion structure: sibling `join` branches
//! always write **disjoint** windows (split rows, split columns, or
//! different quadrants), and read-only inputs are never aliased by a
//! concurrent writer. Each unsafe access is justified at the split site.
//!
//! The paper's `cholesky` benchmark is a *sparse* factorization; we
//! substitute the dense recursive Cholesky, which exercises the same
//! spawn/sync structure on the same runtime paths (see DESIGN.md).

use crate::bench::f64_checksum;
use crate::scheduler::WorkerCtx;
use lbmf::strategy::FenceStrategy;

/// Sequential base-case edge for the multiply recursion.
const MM_BASE: usize = 32;
/// Base size for the triangular/factorization recursions.
const FACT_BASE: usize = 32;
/// Strassen switches to the regular multiply below this size.
const STRASSEN_BASE: usize = 64;

// ---------------------------------------------------------------------
// Owned matrix + views
// ---------------------------------------------------------------------

/// An owned row-major matrix.
#[derive(Clone, Debug)]
pub struct Matrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major element storage (`rows * cols` values).
    pub data: Vec<f64>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Deterministic pseudo-random entries in [-0.5, 0.5).
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut x = seed | 1;
        let data = (0..rows * cols)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect();
        Matrix { rows, cols, data }
    }

    /// Symmetric positive-definite matrix (symmetric random + dominant
    /// diagonal, SPD by Gershgorin).
    pub fn spd(n: usize, seed: u64) -> Self {
        let r = Matrix::random(n, n, seed);
        let mut a = Matrix::zero(n, n);
        for i in 0..n {
            for j in 0..n {
                let v = 0.5 * (r.data[i * n + j] + r.data[j * n + i]);
                a.data[i * n + j] = v;
            }
        }
        for i in 0..n {
            a.data[i * n + i] += n as f64;
        }
        a
    }

    /// Diagonally dominant matrix (safe for LU without pivoting).
    pub fn diag_dominant(n: usize, seed: u64) -> Self {
        let mut a = Matrix::random(n, n, seed);
        for i in 0..n {
            a.data[i * n + i] += n as f64;
        }
        a
    }

    /// A read-only view of the whole matrix.
    pub fn view(&self) -> MatView {
        MatView {
            ptr: self.data.as_ptr(),
            rows: self.rows,
            cols: self.cols,
            stride: self.cols,
        }
    }

    /// A mutable view of the whole matrix.
    pub fn view_mut(&mut self) -> MatViewMut {
        MatViewMut {
            ptr: self.data.as_mut_ptr(),
            rows: self.rows,
            cols: self.cols,
            stride: self.cols,
        }
    }

    /// Element `(i, j)`.
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Bounded-precision digest used as benchmark checksum.
    pub fn checksum(&self) -> u64 {
        let step = (self.data.len() / 256).max(1);
        let mut acc = 0u64;
        for &v in self.data.iter().step_by(step) {
            acc = acc.wrapping_mul(0x100000001b3).wrapping_add(f64_checksum(v));
        }
        acc
    }
}

/// A read-only window into a matrix.
#[derive(Clone, Copy, Debug)]
pub struct MatView {
    ptr: *const f64,
    /// Rows visible through this window.
    pub rows: usize,
    /// Columns visible through this window.
    pub cols: usize,
    stride: usize,
}

// SAFETY: views are only sent into join branches that respect the
// disjointness discipline documented at module level.
unsafe impl Send for MatView {}
unsafe impl Sync for MatView {}

impl MatView {
    #[inline]
    unsafe fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        *self.ptr.add(i * self.stride + j)
    }

    fn sub(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> MatView {
        debug_assert!(r0 + rows <= self.rows && c0 + cols <= self.cols);
        MatView {
            ptr: unsafe { self.ptr.add(r0 * self.stride + c0) },
            rows,
            cols,
            stride: self.stride,
        }
    }

    fn split_rows(&self, r: usize) -> (MatView, MatView) {
        (self.sub(0, 0, r, self.cols), self.sub(r, 0, self.rows - r, self.cols))
    }

    fn split_cols(&self, c: usize) -> (MatView, MatView) {
        (self.sub(0, 0, self.rows, c), self.sub(0, c, self.rows, self.cols - c))
    }

    fn quad(&self, r: usize, c: usize) -> (MatView, MatView, MatView, MatView) {
        (
            self.sub(0, 0, r, c),
            self.sub(0, c, r, self.cols - c),
            self.sub(r, 0, self.rows - r, c),
            self.sub(r, c, self.rows - r, self.cols - c),
        )
    }
}

/// A mutable window into a matrix.
#[derive(Clone, Copy, Debug)]
pub struct MatViewMut {
    ptr: *mut f64,
    /// Rows visible through this window.
    pub rows: usize,
    /// Columns visible through this window.
    pub cols: usize,
    stride: usize,
}

// SAFETY: see MatView; additionally, sibling branches never receive
// overlapping mutable windows.
unsafe impl Send for MatViewMut {}
unsafe impl Sync for MatViewMut {}

impl MatViewMut {
    #[inline]
    unsafe fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        *self.ptr.add(i * self.stride + j)
    }

    #[inline]
    unsafe fn set(&self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        *self.ptr.add(i * self.stride + j) = v;
    }

    fn as_view(&self) -> MatView {
        MatView {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            stride: self.stride,
        }
    }

    fn sub(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> MatViewMut {
        debug_assert!(r0 + rows <= self.rows && c0 + cols <= self.cols);
        MatViewMut {
            ptr: unsafe { self.ptr.add(r0 * self.stride + c0) },
            rows,
            cols,
            stride: self.stride,
        }
    }

    fn split_rows(&self, r: usize) -> (MatViewMut, MatViewMut) {
        (self.sub(0, 0, r, self.cols), self.sub(r, 0, self.rows - r, self.cols))
    }

    fn split_cols(&self, c: usize) -> (MatViewMut, MatViewMut) {
        (self.sub(0, 0, self.rows, c), self.sub(0, c, self.rows, self.cols - c))
    }

    fn quad(&self, r: usize, c: usize) -> (MatViewMut, MatViewMut, MatViewMut, MatViewMut) {
        (
            self.sub(0, 0, r, c),
            self.sub(0, c, r, self.cols - c),
            self.sub(r, 0, self.rows - r, c),
            self.sub(r, c, self.rows - r, self.cols - c),
        )
    }
}

// ---------------------------------------------------------------------
// Multiply: C (+|-)= A · B, divide-and-conquer over the largest dimension
// ---------------------------------------------------------------------

fn mm_base(a: MatView, b: MatView, c: MatViewMut, sign: f64) {
    // i-k-j loop order for stride-friendly inner loop.
    for i in 0..a.rows {
        for k in 0..a.cols {
            // SAFETY: base case owns the whole window `c` exclusively.
            let aik = unsafe { a.at(i, k) } * sign;
            for j in 0..b.cols {
                unsafe {
                    c.set(i, j, c.at(i, j) + aik * b.at(k, j));
                }
            }
        }
    }
}

/// `C += sign · A·B`, parallel over row/column splits; the shared-K split
/// runs its two halves sequentially (they accumulate into the same `C`).
fn mm_rec<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, a: MatView, b: MatView, c: MatViewMut, sign: f64) {
    debug_assert_eq!(a.cols, b.rows);
    debug_assert_eq!(a.rows, c.rows);
    debug_assert_eq!(b.cols, c.cols);
    let (m, k, n) = (a.rows, a.cols, b.cols);
    if m <= MM_BASE && k <= MM_BASE && n <= MM_BASE {
        mm_base(a, b, c, sign);
        return;
    }
    if m >= k && m >= n {
        // Split rows of A and C: the two branches write disjoint C rows.
        let mid = m / 2;
        let (a1, a2) = a.split_rows(mid);
        let (c1, c2) = c.split_rows(mid);
        ctx.join(
            move |cx| mm_rec(cx, a1, b, c1, sign),
            move |cx| mm_rec(cx, a2, b, c2, sign),
        );
    } else if n >= k {
        // Split columns of B and C: disjoint C columns.
        let mid = n / 2;
        let (b1, b2) = b.split_cols(mid);
        let (c1, c2) = c.split_cols(mid);
        ctx.join(
            move |cx| mm_rec(cx, a, b1, c1, sign),
            move |cx| mm_rec(cx, a, b2, c2, sign),
        );
    } else {
        // Split the shared dimension: both halves accumulate into the same
        // C, so run them in sequence (as Cilk's rectmul does).
        let mid = k / 2;
        let (a1, a2) = a.split_cols(mid);
        let (b1, b2) = b.split_rows(mid);
        mm_rec(ctx, a1, b1, c, sign);
        mm_rec(ctx, a2, b2, c, sign);
    }
}

/// `C += A·B` (public entry for other kernels).
pub fn matmul_add<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, a: MatView, b: MatView, c: MatViewMut) {
    mm_rec(ctx, a, b, c, 1.0);
}

/// `C -= A·B`.
pub fn matmul_sub<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, a: MatView, b: MatView, c: MatViewMut) {
    mm_rec(ctx, a, b, c, -1.0);
}

/// The `matmul` benchmark: square C = A·B.
pub fn matmul_bench<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, n: usize) -> u64 {
    let a = Matrix::random(n, n, 0xA11CE);
    let b = Matrix::random(n, n, 0xB0B);
    let mut c = Matrix::zero(n, n);
    matmul_add(ctx, a.view(), b.view(), c.view_mut());
    c.checksum()
}

/// The `rectmul` benchmark: rectangular C = A·B.
pub fn rectmul_bench<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, m: usize, k: usize, n: usize) -> u64 {
    let a = Matrix::random(m, k, 0xFACE);
    let b = Matrix::random(k, n, 0xF00D);
    let mut c = Matrix::zero(m, n);
    matmul_add(ctx, a.view(), b.view(), c.view_mut());
    c.checksum()
}

// ---------------------------------------------------------------------
// Strassen
// ---------------------------------------------------------------------

fn add_views(a: MatView, b: MatView) -> Matrix {
    let mut out = Matrix::zero(a.rows, a.cols);
    for i in 0..a.rows {
        for j in 0..a.cols {
            // SAFETY: in-bounds by construction; `out` is freshly owned.
            out.data[i * a.cols + j] = unsafe { a.at(i, j) + b.at(i, j) };
        }
    }
    out
}

fn sub_views(a: MatView, b: MatView) -> Matrix {
    let mut out = Matrix::zero(a.rows, a.cols);
    for i in 0..a.rows {
        for j in 0..a.cols {
            out.data[i * a.cols + j] = unsafe { a.at(i, j) - b.at(i, j) };
        }
    }
    out
}

/// Strassen multiply: `C = A·B` for power-of-two square matrices.
pub fn strassen<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, a: MatView, b: MatView, c: MatViewMut) {
    let n = a.rows;
    debug_assert!(n.is_power_of_two());
    if n <= STRASSEN_BASE {
        mm_base(a, b, c, 1.0);
        return;
    }
    let h = n / 2;
    let (a11, a12, a21, a22) = a.quad(h, h);
    let (b11, b12, b21, b22) = b.quad(h, h);

    // The seven products, computed as a parallel join tree; each closure
    // builds its own operand temporaries and output.
    let m1 = move |cx: &WorkerCtx<'_, S>| {
        let l = add_views(a11, a22);
        let r = add_views(b11, b22);
        let mut m = Matrix::zero(h, h);
        strassen(cx, l.view(), r.view(), m.view_mut());
        m
    };
    let m2 = move |cx: &WorkerCtx<'_, S>| {
        let l = add_views(a21, a22);
        let mut m = Matrix::zero(h, h);
        strassen(cx, l.view(), b11, m.view_mut());
        m
    };
    let m3 = move |cx: &WorkerCtx<'_, S>| {
        let r = sub_views(b12, b22);
        let mut m = Matrix::zero(h, h);
        strassen(cx, a11, r.view(), m.view_mut());
        m
    };
    let m4 = move |cx: &WorkerCtx<'_, S>| {
        let r = sub_views(b21, b11);
        let mut m = Matrix::zero(h, h);
        strassen(cx, a22, r.view(), m.view_mut());
        m
    };
    let m5 = move |cx: &WorkerCtx<'_, S>| {
        let l = add_views(a11, a12);
        let mut m = Matrix::zero(h, h);
        strassen(cx, l.view(), b22, m.view_mut());
        m
    };
    let m6 = move |cx: &WorkerCtx<'_, S>| {
        let l = sub_views(a21, a11);
        let r = add_views(b11, b12);
        let mut m = Matrix::zero(h, h);
        strassen(cx, l.view(), r.view(), m.view_mut());
        m
    };
    let m7 = move |cx: &WorkerCtx<'_, S>| {
        let l = sub_views(a12, a22);
        let r = add_views(b21, b22);
        let mut m = Matrix::zero(h, h);
        strassen(cx, l.view(), r.view(), m.view_mut());
        m
    };

    // Join tree over the seven products.
    let ((p1, (p2, p3)), ((p4, p5), (p6, p7))) = ctx.join(
        |cx| cx.join(m1, |cy| cy.join(m2, m3)),
        |cx| cx.join(|cy| cy.join(m4, m5), |cy| cy.join(m6, m7)),
    );

    let (c11, c12, c21, c22) = c.quad(h, h);
    // SAFETY: the four quadrants are disjoint windows of `c`; each loop
    // writes only its own quadrant.
    for i in 0..h {
        for j in 0..h {
            let idx = i * h + j;
            unsafe {
                c11.set(i, j, p1.data[idx] + p4.data[idx] - p5.data[idx] + p7.data[idx]);
                c12.set(i, j, p3.data[idx] + p5.data[idx]);
                c21.set(i, j, p2.data[idx] + p4.data[idx]);
                c22.set(i, j, p1.data[idx] - p2.data[idx] + p3.data[idx] + p6.data[idx]);
            }
        }
    }
}

/// The `strassen` benchmark.
pub fn strassen_bench<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, n: usize) -> u64 {
    assert!(n.is_power_of_two(), "strassen requires a power-of-two size");
    let a = Matrix::random(n, n, 0x57A55E);
    let b = Matrix::random(n, n, 0x57A55F);
    let mut c = Matrix::zero(n, n);
    strassen(ctx, a.view(), b.view(), c.view_mut());
    c.checksum()
}

// ---------------------------------------------------------------------
// LU (no pivoting; inputs are diagonally dominant)
// ---------------------------------------------------------------------

fn lu_base(a: MatViewMut) {
    let n = a.rows;
    for k in 0..n {
        // SAFETY: the base case owns the window exclusively.
        unsafe {
            let pivot = a.at(k, k);
            debug_assert!(pivot.abs() > 1e-12, "zero pivot in LU base case");
            for i in k + 1..n {
                let l = a.at(i, k) / pivot;
                a.set(i, k, l);
                for j in k + 1..n {
                    a.set(i, j, a.at(i, j) - l * a.at(k, j));
                }
            }
        }
    }
}

/// Solve `L · X = B` in place (`B := L⁻¹B`) where `L` is the unit-lower
/// triangle of a factored block. Parallel over B's columns.
fn lower_solve<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, l: MatView, b: MatViewMut) {
    if b.cols > FACT_BASE {
        let mid = b.cols / 2;
        let (b1, b2) = b.split_cols(mid);
        ctx.join(
            move |cx| lower_solve(cx, l, b1),
            move |cx| lower_solve(cx, l, b2),
        );
        return;
    }
    let n = l.rows;
    for j in 0..b.cols {
        for i in 0..n {
            // SAFETY: this branch exclusively owns B's column window.
            unsafe {
                let mut v = b.at(i, j);
                for k in 0..i {
                    v -= l.at(i, k) * b.at(k, j);
                }
                b.set(i, j, v); // unit diagonal
            }
        }
    }
}

/// Solve `X · U = B` in place (`B := B·U⁻¹`). Parallel over B's rows.
fn upper_solve<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, u: MatView, b: MatViewMut) {
    if b.rows > FACT_BASE {
        let mid = b.rows / 2;
        let (b1, b2) = b.split_rows(mid);
        ctx.join(
            move |cx| upper_solve(cx, u, b1),
            move |cx| upper_solve(cx, u, b2),
        );
        return;
    }
    let n = u.rows;
    for i in 0..b.rows {
        for j in 0..n {
            // SAFETY: exclusive row window.
            unsafe {
                let mut v = b.at(i, j);
                for k in 0..j {
                    v -= b.at(i, k) * u.at(k, j);
                }
                b.set(i, j, v / u.at(j, j));
            }
        }
    }
}

/// Recursive blocked LU in place: A = L·U with L unit-lower.
pub fn lu<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, a: MatViewMut) {
    let n = a.rows;
    debug_assert_eq!(a.rows, a.cols);
    if n <= FACT_BASE {
        lu_base(a);
        return;
    }
    let h = n / 2;
    let (a11, a12, a21, a22) = a.quad(h, h);
    lu(ctx, a11);
    let u11 = a11.as_view();
    // The two solves touch disjoint quadrants.
    ctx.join(
        move |cx| lower_solve(cx, u11, a12),
        move |cx| upper_solve(cx, u11, a21),
    );
    // Schur complement: A22 -= A21 · A12.
    matmul_sub(ctx, a21.as_view(), a12.as_view(), a22);
    lu(ctx, a22);
}

/// The `lu` benchmark.
pub fn lu_bench<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, n: usize) -> u64 {
    let mut a = Matrix::diag_dominant(n, 0x1CEB00DA);
    lu(ctx, a.view_mut());
    a.checksum()
}

// ---------------------------------------------------------------------
// Cholesky (dense; lower triangular in place)
// ---------------------------------------------------------------------

fn cholesky_base(a: MatViewMut) {
    let n = a.rows;
    for k in 0..n {
        // SAFETY: exclusive window.
        unsafe {
            let mut d = a.at(k, k);
            for p in 0..k {
                d -= a.at(k, p) * a.at(k, p);
            }
            debug_assert!(d > 0.0, "matrix not positive definite");
            let d = d.sqrt();
            a.set(k, k, d);
            for i in k + 1..n {
                let mut v = a.at(i, k);
                for p in 0..k {
                    v -= a.at(i, p) * a.at(k, p);
                }
                a.set(i, k, v / d);
            }
        }
    }
}

/// Solve `X · L₁₁ᵀ = B` in place (`B := B·L₁₁⁻ᵀ`). Parallel over B's rows.
fn trans_solve<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, l: MatView, b: MatViewMut) {
    if b.rows > FACT_BASE {
        let mid = b.rows / 2;
        let (b1, b2) = b.split_rows(mid);
        ctx.join(
            move |cx| trans_solve(cx, l, b1),
            move |cx| trans_solve(cx, l, b2),
        );
        return;
    }
    let n = l.rows;
    for i in 0..b.rows {
        for j in 0..n {
            // SAFETY: exclusive row window.
            unsafe {
                let mut v = b.at(i, j);
                for k in 0..j {
                    v -= b.at(i, k) * l.at(j, k);
                }
                b.set(i, j, v / l.at(j, j));
            }
        }
    }
}

/// `C -= A·Aᵀ` restricted to what the Cholesky recursion reads (the full
/// square is updated; only the lower triangle is consumed). Parallel over
/// C's rows; the row-split recursion carries both the row block of A and
/// the full A (the right-hand, transposed operand).
fn syrk_sub<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, a: MatView, c: MatViewMut) {
    syrk_sub_rows(ctx, a, a, c);
}

fn syrk_sub_rows<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, rows: MatView, full: MatView, c: MatViewMut) {
    if c.rows > FACT_BASE {
        let mid = c.rows / 2;
        let (r1, r2) = rows.split_rows(mid);
        let (c1, c2) = c.split_rows(mid);
        ctx.join(
            move |cx| syrk_sub_rows(cx, r1, full, c1),
            move |cx| syrk_sub_rows(cx, r2, full, c2),
        );
        return;
    }
    syrk_sub_base(rows, full, c);
}

fn syrk_sub_base(rows: MatView, full: MatView, c: MatViewMut) {
    // C[i][j] -= Σ_k rows[i][k] · full[j][k]
    for i in 0..c.rows {
        for j in 0..c.cols {
            // SAFETY: exclusive row window of C.
            unsafe {
                let mut v = c.at(i, j);
                for k in 0..rows.cols {
                    v -= rows.at(i, k) * full.at(j, k);
                }
                c.set(i, j, v);
            }
        }
    }
}

/// Recursive blocked Cholesky in place: lower triangle of A becomes L with
/// A = L·Lᵀ.
pub fn cholesky<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, a: MatViewMut) {
    let n = a.rows;
    debug_assert_eq!(a.rows, a.cols);
    if n <= FACT_BASE {
        cholesky_base(a);
        return;
    }
    let h = n / 2;
    let (a11, _a12, a21, a22) = a.quad(h, h);
    cholesky(ctx, a11);
    trans_solve(ctx, a11.as_view(), a21);
    syrk_sub(ctx, a21.as_view(), a22);
    cholesky(ctx, a22);
}

/// The `cholesky` benchmark.
pub fn cholesky_bench<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, n: usize) -> u64 {
    let mut a = Matrix::spd(n, 0xC0FFEE);
    cholesky(ctx, a.view_mut());
    // Checksum over the lower triangle only (the upper is untouched input).
    let mut acc = 0u64;
    for i in (0..n).step_by((n / 64).max(1)) {
        for j in (0..=i).step_by((n / 64).max(1)) {
            acc = acc
                .wrapping_mul(0x100000001b3)
                .wrapping_add(f64_checksum(a.at(i, j)));
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;
    use lbmf::strategy::Symmetric;
    use std::sync::Arc;

    fn pool() -> Scheduler<Symmetric> {
        Scheduler::new(3, Arc::new(Symmetric::new()))
    }

    fn mm_ref(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zero(a.rows, b.cols);
        for i in 0..a.rows {
            for k in 0..a.cols {
                for j in 0..b.cols {
                    c.data[i * b.cols + j] += a.at(i, k) * b.at(k, j);
                }
            }
        }
        c
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!((a.rows, a.cols), (b.rows, b.cols));
        for (x, y) in a.data.iter().zip(b.data.iter()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_reference() {
        let s = pool();
        for (m, k, n) in [(17, 23, 9), (64, 64, 64), (100, 40, 70)] {
            let a = Matrix::random(m, k, 1);
            let b = Matrix::random(k, n, 2);
            let mut c = Matrix::zero(m, n);
            s.run(|ctx| matmul_add(ctx, a.view(), b.view(), c.view_mut()));
            assert_close(&c, &mm_ref(&a, &b), 1e-9);
        }
    }

    #[test]
    fn matmul_sub_subtracts() {
        let s = pool();
        let a = Matrix::random(40, 40, 3);
        let b = Matrix::random(40, 40, 4);
        let mut c = mm_ref(&a, &b);
        s.run(|ctx| matmul_sub(ctx, a.view(), b.view(), c.view_mut()));
        for v in &c.data {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn strassen_matches_reference() {
        let s = pool();
        let n = 128;
        let a = Matrix::random(n, n, 5);
        let b = Matrix::random(n, n, 6);
        let mut c = Matrix::zero(n, n);
        s.run(|ctx| strassen(ctx, a.view(), b.view(), c.view_mut()));
        assert_close(&c, &mm_ref(&a, &b), 1e-7);
    }

    #[test]
    fn lu_reconstructs_input() {
        let s = pool();
        let n = 96;
        let orig = Matrix::diag_dominant(n, 7);
        let mut a = orig.clone();
        s.run(|ctx| lu(ctx, a.view_mut()));
        // Rebuild L·U and compare.
        let mut l = Matrix::zero(n, n);
        let mut u = Matrix::zero(n, n);
        for i in 0..n {
            l.data[i * n + i] = 1.0;
            for j in 0..n {
                if j < i {
                    l.data[i * n + j] = a.at(i, j);
                } else {
                    u.data[i * n + j] = a.at(i, j);
                }
            }
        }
        let rebuilt = mm_ref(&l, &u);
        assert_close(&rebuilt, &orig, 1e-6);
    }

    #[test]
    fn cholesky_reconstructs_input() {
        let s = pool();
        let n = 96;
        let orig = Matrix::spd(n, 8);
        let mut a = orig.clone();
        s.run(|ctx| cholesky(ctx, a.view_mut()));
        // L·Lᵀ must equal the original (lower triangle holds L).
        let mut rebuilt = Matrix::zero(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for k in 0..=i.min(j) {
                    v += a.at(i, k) * a.at(j, k);
                }
                rebuilt.data[i * n + j] = v;
            }
        }
        assert_close(&rebuilt, &orig, 1e-6);
    }

    #[test]
    fn rectangular_shapes_work() {
        let s = pool();
        let checksum1 = s.run(|ctx| rectmul_bench(ctx, 48, 96, 32));
        let checksum2 = s.run(|ctx| rectmul_bench(ctx, 48, 96, 32));
        assert_eq!(checksum1, checksum2);
    }
}
