//! `heat`: Jacobi heat diffusion on a 2D grid.
//!
//! Each timestep computes the 5-point stencil from the previous grid into
//! the next (double buffering); the row range is divided recursively and
//! the halves run in parallel. Boundary rows/columns are held fixed.

use crate::bench::f64_checksum;
use crate::scheduler::WorkerCtx;
use lbmf::strategy::FenceStrategy;

const ROW_CUTOFF: usize = 16;

/// Run `steps` Jacobi iterations on an `nx` × `ny` grid; returns a
/// checksum over the final temperature field.
pub fn heat<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, nx: usize, ny: usize, steps: usize) -> u64 {
    assert!(nx >= 3 && ny >= 3);
    let mut cur = init_grid(nx, ny);
    let mut next = cur.clone();
    for _ in 0..steps {
        {
            let src = &cur;
            let dst = &mut next;
            // Interior rows 1..nx-1, divided recursively.
            step_rows(ctx, src, dst, ny, 1, nx - 1);
        }
        // Copy boundaries (they are fixed; the stencil never writes them).
        for j in 0..ny {
            next[j] = cur[j];
            next[(nx - 1) * ny + j] = cur[(nx - 1) * ny + j];
        }
        std::mem::swap(&mut cur, &mut next);
    }
    let step = (cur.len() / 256).max(1);
    let mut acc = 0u64;
    for &v in cur.iter().step_by(step) {
        acc = acc.wrapping_mul(0x100000001b3).wrapping_add(f64_checksum(v));
    }
    acc
}

fn init_grid(nx: usize, ny: usize) -> Vec<f64> {
    let mut g = vec![0.0; nx * ny];
    // Hot top edge, cold bottom, sinusoidal left/right.
    for cell in g.iter_mut().take(ny) {
        *cell = 100.0;
    }
    for i in 0..nx {
        let t = i as f64 / nx as f64;
        g[i * ny] = 50.0 * (std::f64::consts::PI * t).sin();
        g[i * ny + ny - 1] = 25.0 * (2.0 * std::f64::consts::PI * t).sin();
    }
    g
}

/// Wrapper making a raw grid pointer sendable across the join; the row
/// ranges written by the two branches are disjoint, and reads target the
/// immutable previous-step grid.
#[derive(Clone, Copy)]
struct GridPtr(*mut f64);
unsafe impl Send for GridPtr {}
unsafe impl Sync for GridPtr {}

fn step_rows<S: FenceStrategy>(
    ctx: &WorkerCtx<'_, S>,
    src: &[f64],
    dst: &mut [f64],
    ny: usize,
    lo: usize,
    hi: usize,
) {
    let dst_ptr = GridPtr(dst.as_mut_ptr());
    step_rows_raw(ctx, src, dst_ptr, ny, lo, hi);
}

fn step_rows_raw<S: FenceStrategy>(
    ctx: &WorkerCtx<'_, S>,
    src: &[f64],
    dst: GridPtr,
    ny: usize,
    lo: usize,
    hi: usize,
) {
    if hi - lo <= ROW_CUTOFF {
        for i in lo..hi {
            for j in 1..ny - 1 {
                let idx = i * ny + j;
                let v = 0.25
                    * (src[idx - ny] + src[idx + ny] + src[idx - 1] + src[idx + 1]);
                // SAFETY: rows [lo, hi) are written exclusively by this
                // branch; sibling branches cover disjoint ranges.
                unsafe { *dst.0.add(idx) = v };
            }
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    ctx.join(
        |c| step_rows_raw(c, src, dst, ny, lo, mid),
        |c| step_rows_raw(c, src, dst, ny, mid, hi),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;
    use lbmf::strategy::Symmetric;
    use std::sync::Arc;

    /// Sequential reference implementation.
    fn heat_seq(nx: usize, ny: usize, steps: usize) -> Vec<f64> {
        let mut cur = init_grid(nx, ny);
        let mut next = cur.clone();
        for _ in 0..steps {
            for i in 1..nx - 1 {
                for j in 1..ny - 1 {
                    let idx = i * ny + j;
                    next[idx] =
                        0.25 * (cur[idx - ny] + cur[idx + ny] + cur[idx - 1] + cur[idx + 1]);
                }
            }
            for j in 0..ny {
                next[j] = cur[j];
                next[(nx - 1) * ny + j] = cur[(nx - 1) * ny + j];
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    #[test]
    fn matches_sequential_reference() {
        let s = Scheduler::new(3, Arc::new(Symmetric::new()));
        let par = s.run(|ctx| heat(ctx, 40, 30, 12));
        // Recompute the checksum from the sequential grid.
        let seq = heat_seq(40, 30, 12);
        let step = (seq.len() / 256).max(1);
        let mut acc = 0u64;
        for &v in seq.iter().step_by(step) {
            acc = acc.wrapping_mul(0x100000001b3).wrapping_add(f64_checksum(v));
        }
        assert_eq!(par, acc);
    }

    #[test]
    fn zero_steps_returns_initial_grid_checksum() {
        let s = Scheduler::new(1, Arc::new(Symmetric::new()));
        let a = s.run(|ctx| heat(ctx, 16, 16, 0));
        let b = s.run(|ctx| heat(ctx, 16, 16, 0));
        assert_eq!(a, b);
    }

    #[test]
    fn diffusion_smooths_toward_interior() {
        // After many steps, an interior point near the hot edge warms up.
        let nx = 32;
        let ny = 32;
        let g0 = heat_seq(nx, ny, 0);
        let g = heat_seq(nx, ny, 200);
        let probe = 3 * ny + ny / 2; // row 3, middle column
        assert!(g[probe] > g0[probe], "heat must diffuse inward");
    }
}
