//! `nqueens`: count the placements of N queens on an N×N board.
//!
//! Bitmask backtracking; the first few levels branch in parallel via a
//! divide-and-conquer over the candidate columns, then switch to the
//! sequential solver.

use crate::scheduler::WorkerCtx;
use lbmf::strategy::FenceStrategy;

/// Depth up to which placements are explored in parallel.
const PARALLEL_DEPTH: u32 = 3;

fn solve_seq(n: u32, cols: u32, diag1: u32, diag2: u32) -> u64 {
    let full = (1u32 << n) - 1;
    if cols == full {
        return 1;
    }
    let mut count = 0;
    let mut candidates = full & !(cols | diag1 | diag2);
    while candidates != 0 {
        let bit = candidates & candidates.wrapping_neg();
        candidates -= bit;
        count += solve_seq(n, cols | bit, (diag1 | bit) << 1, (diag2 | bit) >> 1);
    }
    count
}

fn solve_par<S: FenceStrategy>(
    ctx: &WorkerCtx<'_, S>,
    n: u32,
    depth: u32,
    cols: u32,
    diag1: u32,
    diag2: u32,
) -> u64 {
    if depth >= PARALLEL_DEPTH {
        return solve_seq(n, cols, diag1, diag2);
    }
    let full = (1u32 << n) - 1;
    if cols == full {
        return 1;
    }
    // Gather candidate bits, then fold them with a join tree.
    let mut bits = [0u32; 32];
    let mut m = 0usize;
    let mut candidates = full & !(cols | diag1 | diag2);
    while candidates != 0 {
        let bit = candidates & candidates.wrapping_neg();
        candidates -= bit;
        bits[m] = bit;
        m += 1;
    }
    fold_bits(ctx, n, depth, cols, diag1, diag2, &bits[..m])
}

fn fold_bits<S: FenceStrategy>(
    ctx: &WorkerCtx<'_, S>,
    n: u32,
    depth: u32,
    cols: u32,
    diag1: u32,
    diag2: u32,
    bits: &[u32],
) -> u64 {
    match bits.len() {
        0 => 0,
        1 => {
            let bit = bits[0];
            solve_par(ctx, n, depth + 1, cols | bit, (diag1 | bit) << 1, (diag2 | bit) >> 1)
        }
        _ => {
            let (lo, hi) = bits.split_at(bits.len() / 2);
            let (a, b) = ctx.join(
                |c| fold_bits(c, n, depth, cols, diag1, diag2, lo),
                |c| fold_bits(c, n, depth, cols, diag1, diag2, hi),
            );
            a + b
        }
    }
}

/// Count N-queens placements (the kernel's checksum).
pub fn nqueens<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, n: u32) -> u64 {
    assert!((1..=16).contains(&n));
    solve_par(ctx, n, 0, 0, 0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;
    use lbmf::strategy::Symmetric;
    use std::sync::Arc;

    #[test]
    fn known_counts() {
        let s = Scheduler::new(2, Arc::new(Symmetric::new()));
        let expected = [
            (1u32, 1u64),
            (4, 2),
            (6, 4),
            (8, 92),
            (10, 724),
        ];
        for (n, count) in expected {
            assert_eq!(s.run(|ctx| nqueens(ctx, n)), count, "n={n}");
        }
    }
}
