//! `knapsack`: branch-and-bound 0/1 knapsack.
//!
//! Include/exclude branches run in parallel near the root; a shared
//! best-so-far bound (relaxed atomic max) prunes. Pruning makes the *work*
//! nondeterministic, but the returned optimum is unique, so the checksum is
//! still strategy- and schedule-independent.

use crate::scheduler::WorkerCtx;
use lbmf::strategy::FenceStrategy;
use std::sync::atomic::{AtomicU64, Ordering};

const PARALLEL_DEPTH: usize = 8;

/// Problem instance: items sorted by value density (for the bound).
#[derive(Clone, Debug)]
pub struct KnapsackInput {
    /// (weight, value), sorted by value/weight descending.
    pub items: Vec<(u64, u64)>,
    /// Knapsack weight capacity.
    pub capacity: u64,
}

/// Deterministic instance generator in the style of the Cilk benchmark's
/// inputs (random weights/values, capacity at half the total weight).
pub fn make_input(n: usize) -> KnapsackInput {
    let mut x = 0x9E3779B97F4A7C15u64;
    let mut items: Vec<(u64, u64)> = (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let w = 1 + (x % 97);
            let v = 1 + ((x >> 32) % 151);
            (w, v)
        })
        .collect();
    items.sort_by(|a, b| (b.1 * a.0).cmp(&(a.1 * b.0)));
    let capacity = items.iter().map(|i| i.0).sum::<u64>() / 2;
    KnapsackInput { items, capacity }
}

/// Solve; returns the optimal value.
pub fn knapsack<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, input: &KnapsackInput) -> u64 {
    let best = AtomicU64::new(0);
    branch(ctx, input, 0, 0, 0, &best);
    best.load(Ordering::Relaxed)
}

/// Fractional-relaxation upper bound from item `idx` onward.
fn bound(input: &KnapsackInput, idx: usize, weight: u64, value: u64) -> f64 {
    let mut cap = input.capacity.saturating_sub(weight) as f64;
    let mut b = value as f64;
    for &(w, v) in &input.items[idx..] {
        if cap <= 0.0 {
            break;
        }
        let take = (w as f64).min(cap);
        b += v as f64 * take / w as f64;
        cap -= take;
    }
    b
}

fn branch<S: FenceStrategy>(
    ctx: &WorkerCtx<'_, S>,
    input: &KnapsackInput,
    idx: usize,
    weight: u64,
    value: u64,
    best: &AtomicU64,
) {
    if weight > input.capacity {
        return;
    }
    // Publish improvements (relaxed max loop).
    let mut cur = best.load(Ordering::Relaxed);
    while value > cur {
        match best.compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
    if idx == input.items.len() {
        return;
    }
    if bound(input, idx, weight, value) <= best.load(Ordering::Relaxed) as f64 {
        return; // prune
    }
    let (w, v) = input.items[idx];
    if idx < PARALLEL_DEPTH {
        ctx.join(
            |c| branch(c, input, idx + 1, weight + w, value + v, best),
            |c| branch(c, input, idx + 1, weight, value, best),
        );
    } else {
        branch(ctx, input, idx + 1, weight + w, value + v, best);
        branch(ctx, input, idx + 1, weight, value, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;
    use lbmf::strategy::Symmetric;
    use std::sync::Arc;

    /// Exhaustive reference for small instances.
    fn brute_force(input: &KnapsackInput) -> u64 {
        let n = input.items.len();
        let mut best = 0;
        for mask in 0u64..(1 << n) {
            let (mut w, mut v) = (0u64, 0u64);
            for (i, &(wi, vi)) in input.items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    w += wi;
                    v += vi;
                }
            }
            if w <= input.capacity {
                best = best.max(v);
            }
        }
        best
    }

    #[test]
    fn matches_brute_force() {
        let s = Scheduler::new(2, Arc::new(Symmetric::new()));
        for n in [8usize, 12, 16] {
            let input = make_input(n);
            let expected = brute_force(&input);
            let got = s.run(|ctx| knapsack(ctx, &input));
            assert_eq!(got, expected, "n={n}");
        }
    }

    #[test]
    fn empty_and_zero_capacity() {
        let s = Scheduler::new(1, Arc::new(Symmetric::new()));
        let empty = KnapsackInput { items: vec![], capacity: 10 };
        assert_eq!(s.run(|ctx| knapsack(ctx, &empty)), 0);
        let tight = KnapsackInput {
            items: vec![(5, 10), (3, 7)],
            capacity: 0,
        };
        assert_eq!(s.run(|ctx| knapsack(ctx, &tight)), 0);
    }

    #[test]
    fn deterministic_optimum_across_runs() {
        let s = Scheduler::new(4, Arc::new(Symmetric::new()));
        let input = make_input(22);
        let a = s.run(|ctx| knapsack(ctx, &input));
        let b = s.run(|ctx| knapsack(ctx, &input));
        assert_eq!(a, b);
    }
}
