//! Stack-allocated, type-erased jobs for the work-stealing scheduler.
//!
//! A [`StackJob`] lives on the spawning worker's stack for exactly the
//! duration of its `join` frame: either the owner pops it back and runs it
//! inline, or a thief executes it and sets the latch the owner is waiting
//! on. The deque stores thin `*mut JobCore<S>` pointers; `JobCore` is the
//! first (`repr(C)`) field of `StackJob`, so the pointer doubles as a
//! pointer to the whole job (the classic container-of layout, as used by
//! Cilk-5's frames and rayon's `StackJob`).

use crate::scheduler::WorkerCtx;
use lbmf::fence::spin_until;
use lbmf::strategy::FenceStrategy;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

/// A one-shot completion flag with Release/Acquire semantics.
#[derive(Debug, Default)]
pub struct Latch {
    done: AtomicBool,
}

impl Latch {
    /// An unset latch.
    pub fn new() -> Self {
        Latch {
            done: AtomicBool::new(false),
        }
    }

    /// Mark complete (Release).
    #[inline]
    pub fn set(&self) {
        self.done.store(true, Ordering::Release);
    }

    /// Whether [`set`](Self::set) happened (Acquire).
    #[inline]
    pub fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Block (spin + yield) until set. Used by external callers; workers
    /// instead keep stealing while they wait (see `WorkerCtx::join`).
    pub fn wait(&self) {
        spin_until(|| self.probe());
    }
}

/// The type-erased header every job begins with.
#[repr(C)]
pub struct JobCore<S: FenceStrategy> {
    /// Execute the job on the given worker. `core` points at this header
    /// (and therefore at the containing job).
    pub(crate) exec: unsafe fn(core: *mut JobCore<S>, ctx: &WorkerCtx<'_, S>),
}

/// Execute a type-erased job pointer.
///
/// # Safety
///
/// `core` must point at a live job whose `exec` was set by [`StackJob`]
/// (or an equivalent container) and which has not been executed yet.
pub unsafe fn execute<S: FenceStrategy>(core: *mut JobCore<S>, ctx: &WorkerCtx<'_, S>) {
    ((*core).exec)(core, ctx);
}

/// A job allocated in the owner's `join` stack frame.
///
/// # Safety protocol
///
/// * The owner pushes `core_ptr()` onto its own deque and *must not return*
///   from the frame until either it pops the job back, or `latch` is set.
/// * If the owner pops the job back, it calls [`run_inline`]
///   (single-threaded path; the thief never saw it).
/// * If a thief executes it (via [`execute`]), the result (or panic) is
///   stored and `latch` is set; the owner then calls [`take_result`].
///
/// [`run_inline`]: StackJob::run_inline
/// [`take_result`]: StackJob::take_result
pub struct StackJob<F, R, S>
where
    S: FenceStrategy,
    F: FnOnce(&WorkerCtx<'_, S>) -> R + Send,
    R: Send,
{
    core: JobCore<S>,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    /// Set once the job has been executed by a thief.
    pub latch: Latch,
}

// SAFETY: access to `func`/`result` is serialized by the deque protocol
// (exactly one of owner/thief runs the job) and by `latch` (the owner reads
// `result` only after `probe()` returns true, which pairs Release/Acquire
// with the thief's `set()`).
unsafe impl<F, R, S> Sync for StackJob<F, R, S>
where
    S: FenceStrategy,
    F: FnOnce(&WorkerCtx<'_, S>) -> R + Send,
    R: Send,
{
}

impl<F, R, S> StackJob<F, R, S>
where
    S: FenceStrategy,
    F: FnOnce(&WorkerCtx<'_, S>) -> R + Send,
    R: Send,
{
    /// Wrap `func` as a stealable job.
    pub fn new(func: F) -> Self {
        StackJob {
            core: JobCore {
                exec: Self::execute_erased,
            },
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            latch: Latch::new(),
        }
    }

    /// The pointer pushed onto the deque.
    pub fn core_ptr(&self) -> *mut JobCore<S> {
        &self.core as *const JobCore<S> as *mut JobCore<S>
    }

    unsafe fn execute_erased(core: *mut JobCore<S>, ctx: &WorkerCtx<'_, S>) {
        // `core` is the first field of a repr(C) StackJob.
        let this = core as *mut Self;
        let func = (*(*this).func.get())
            .take()
            .expect("job executed twice");
        let result = catch_unwind(AssertUnwindSafe(|| func(ctx)));
        *(*this).result.get() = Some(result);
        (*this).latch.set();
    }

    /// Run the job on the owner after popping it back (it was never seen
    /// by a thief). Panics propagate directly on the owner's stack.
    ///
    /// # Safety
    ///
    /// Only the owner may call this, and only after popping the job's
    /// pointer back off its own deque.
    pub unsafe fn run_inline(&self, ctx: &WorkerCtx<'_, S>) -> R {
        let func = (*self.func.get()).take().expect("job executed twice");
        func(ctx)
    }

    /// Retrieve the result stored by a thief. Re-raises the thief's panic
    /// on the owner's stack.
    ///
    /// # Safety
    ///
    /// Only call after `latch.probe()` returned true.
    pub unsafe fn take_result(&self) -> R {
        match (*self.result.get()).take().expect("latch set without result") {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_set_probe_wait() {
        let l = Latch::new();
        assert!(!l.probe());
        l.set();
        assert!(l.probe());
        l.wait(); // returns immediately
    }

    #[test]
    fn latch_cross_thread() {
        let l = std::sync::Arc::new(Latch::new());
        let l2 = l.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            l2.set();
        });
        l.wait();
        h.join().unwrap();
    }
}
