//! Data-parallel helpers over the fork-join scheduler: recursive
//! divide-and-conquer `for_each` / `map_reduce` in the style the Figure-4
//! kernels use internally, packaged as a small reusable API.
//!
//! All helpers are deterministic: the reduction tree's shape depends only
//! on the input length and grain, so floating-point or otherwise
//! non-associative-sensitive reductions produce identical results for
//! every worker count and fence strategy.

use crate::scheduler::WorkerCtx;
use lbmf::strategy::FenceStrategy;

/// Default number of elements handled sequentially at the leaves.
pub const DEFAULT_GRAIN: usize = 1024;

/// Apply `f` to every index in `range`, in parallel, splitting down to
/// `grain` indices per leaf.
pub fn for_each_index<S, F>(ctx: &WorkerCtx<'_, S>, range: std::ops::Range<usize>, grain: usize, f: &F)
where
    S: FenceStrategy,
    F: Fn(usize) + Sync,
{
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return;
    }
    if len <= grain.max(1) {
        for i in range {
            f(i);
        }
        return;
    }
    let mid = range.start + len / 2;
    let (a, b) = (range.start..mid, mid..range.end);
    ctx.join(
        move |c| for_each_index(c, a, grain, f),
        move |c| for_each_index(c, b, grain, f),
    );
}

/// Apply `f` to every element of `slice` in parallel (mutable access,
/// disjoint splits).
pub fn for_each_mut<S, T, F>(ctx: &WorkerCtx<'_, S>, slice: &mut [T], grain: usize, f: &F)
where
    S: FenceStrategy,
    T: Send,
    F: Fn(&mut T) + Sync,
{
    if slice.len() <= grain.max(1) {
        for v in slice {
            f(v);
        }
        return;
    }
    let mid = slice.len() / 2;
    let (a, b) = slice.split_at_mut(mid);
    ctx.join(move |c| for_each_mut(c, a, grain, f), move |c| for_each_mut(c, b, grain, f));
}

/// Map each element through `map` and fold with the associative `reduce`,
/// returning `identity` for empty input. The reduction tree is fixed by
/// the input length, so results are deterministic even for `f64`.
pub fn map_reduce<S, T, R, M, F>(
    ctx: &WorkerCtx<'_, S>,
    slice: &[T],
    grain: usize,
    identity: R,
    map: &M,
    reduce: &F,
) -> R
where
    S: FenceStrategy,
    T: Sync,
    R: Send + Clone,
    M: Fn(&T) -> R + Sync,
    F: Fn(R, R) -> R + Sync,
{
    if slice.is_empty() {
        return identity;
    }
    if slice.len() <= grain.max(1) {
        let mut acc = identity;
        for v in slice {
            acc = reduce(acc, map(v));
        }
        return acc;
    }
    let mid = slice.len() / 2;
    let (a, b) = slice.split_at(mid);
    let ida = identity.clone();
    let idb = identity;
    let (ra, rb) = ctx.join(
        move |c| map_reduce(c, a, grain, ida, map, reduce),
        move |c| map_reduce(c, b, grain, idb, map, reduce),
    );
    reduce(ra, rb)
}

/// Parallel sum of a slice of `u64` (convenience over [`map_reduce`]).
pub fn sum<S: FenceStrategy>(ctx: &WorkerCtx<'_, S>, slice: &[u64]) -> u64 {
    map_reduce(ctx, slice, DEFAULT_GRAIN, 0u64, &|v| *v, &|a, b| {
        a.wrapping_add(b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;
    use lbmf::strategy::{SignalFence, Symmetric};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn for_each_index_covers_every_index_once() {
        let pool = Scheduler::new(3, Arc::new(Symmetric::new()));
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run(|ctx| {
            for_each_index(ctx, 0..hits.len(), 16, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_mut_transforms_in_place() {
        let pool = Scheduler::new(2, Arc::new(SignalFence::new()));
        let mut v: Vec<u64> = (0..5000).collect();
        pool.run(|ctx| for_each_mut(ctx, &mut v, 64, &|x| *x *= 2));
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn map_reduce_matches_sequential() {
        let pool = Scheduler::new(4, Arc::new(Symmetric::new()));
        let v: Vec<u64> = (1..=10_000).collect();
        let par = pool.run(|ctx| {
            map_reduce(ctx, &v, 128, 0u64, &|x| x * x, &|a, b| a + b)
        });
        let seq: u64 = v.iter().map(|x| x * x).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn float_reduction_deterministic_across_workers() {
        let v: Vec<f64> = (0..20_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let run = |workers| {
            let pool = Scheduler::new(workers, Arc::new(Symmetric::new()));
            pool.run(|ctx| {
                map_reduce(ctx, &v, 64, 0.0f64, &|x| *x, &|a, b| a + b)
            })
        };
        // Bitwise identical: the tree shape is input-determined.
        assert_eq!(run(1).to_bits(), run(4).to_bits());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = Scheduler::new(1, Arc::new(Symmetric::new()));
        assert_eq!(pool.run(|ctx| sum(ctx, &[])), 0);
        assert_eq!(pool.run(|ctx| sum(ctx, &[7])), 7);
        let mut nothing: [u64; 0] = [];
        pool.run(|ctx| for_each_mut(ctx, &mut nothing, 4, &|_| {}));
    }

    #[test]
    fn sum_helper() {
        let pool = Scheduler::new(2, Arc::new(Symmetric::new()));
        let v: Vec<u64> = (0..100_000).collect();
        assert_eq!(pool.run(|ctx| sum(ctx, &v)), (0..100_000u64).sum());
    }
}
