//! The THE-protocol deque of Cilk-5 (Frigo, Leiserson, Randall; PLDI '98),
//! parameterized over the victim-side fence strategy.
//!
//! The victim owns the **T**ail: `push` appends, `pop` decrements `T`,
//! fences, and checks the **H**ead. A thief takes the deque's lock (the
//! **E**xception in the original is folded into H here, as in later Cilk
//! versions), increments `H`, fences, and checks `T`. Victim and thief thus
//! run exactly the Dekker duality on `(T, H)`:
//!
//! ```text
//! victim pop:   T--; FENCE; if H > T  -> conflict path under lock
//! thief steal:  lock; H++; FENCE; serialize(victim); if H > T -> retreat
//! ```
//!
//! The victim's `FENCE` is the `l-mfence` position: the symmetric runtime
//! (`Symmetric` strategy) pays an `mfence` on **every pop** — the paper's
//! Cilk-5 baseline; the asymmetric runtime (ACilk-5) replaces it with a
//! compiler fence and has the thief remotely serialize the victim instead.

use crate::job::JobCore;
use crate::stats::WorkerStats;
#[allow(unused_imports)]
use crate::tracing::{trace_event_corr, trace_mint_corr};
use lbmf::hooks::{load_i64, load_ptr, store_i64, store_ptr};
use lbmf::registry::RemoteThread;
use lbmf::strategy::FenceStrategy;
use lbmf::sync::{CachePadded, Mutex};
use std::sync::atomic::{AtomicI64, AtomicPtr, Ordering};
use std::sync::{Arc, OnceLock};

/// Result of a steal attempt.
pub enum Steal<S: FenceStrategy> {
    /// Got a job.
    Success(*mut JobCore<S>),
    /// The deque was empty.
    Empty,
    /// The deque was locked by another thief; try elsewhere.
    Retry,
}

/// A THE-protocol work-stealing deque.
pub struct TheDeque<S: FenceStrategy> {
    /// `T`: next slot to push; owned by the victim.
    tail: CachePadded<AtomicI64>,
    /// `H`: next slot to steal; bumped by thieves under the lock.
    head: CachePadded<AtomicI64>,
    /// Thief-side lock (also taken by the victim's conflict path).
    lock: Mutex<()>,
    buf: Box<[AtomicPtr<JobCore<S>>]>,
    mask: i64,
    /// The owning worker's thread handle, for remote serialization.
    owner: OnceLock<RemoteThread>,
    strategy: Arc<S>,
}

// SAFETY: all shared state is atomics or lock-protected; the raw job
// pointers are managed by the deque protocol (see `job.rs`).
unsafe impl<S: FenceStrategy> Send for TheDeque<S> {}
unsafe impl<S: FenceStrategy> Sync for TheDeque<S> {}

impl<S: FenceStrategy> TheDeque<S> {
    /// A deque with capacity `2^log2_capacity` entries (spawn depth bound).
    pub fn new(strategy: Arc<S>, log2_capacity: u32) -> Self {
        let cap = 1usize << log2_capacity;
        let buf = (0..cap)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        TheDeque {
            tail: CachePadded::new(AtomicI64::new(0)),
            head: CachePadded::new(AtomicI64::new(0)),
            lock: Mutex::new(()),
            buf,
            mask: (cap - 1) as i64,
            owner: OnceLock::new(),
            strategy,
        }
    }

    /// Bind the owning worker's thread (once, at worker startup, before
    /// any push).
    pub fn set_owner(&self, owner: RemoteThread) {
        self.owner
            .set(owner)
            .unwrap_or_else(|_| panic!("deque owner set twice"));
    }

    #[inline]
    fn slot(&self, idx: i64) -> &AtomicPtr<JobCore<S>> {
        &self.buf[(idx & self.mask) as usize]
    }

    /// Number of queued jobs (approximate outside the owner).
    pub fn len(&self) -> usize {
        let t = load_i64(&self.tail, Ordering::Relaxed);
        let h = load_i64(&self.head, Ordering::Relaxed);
        (t - h).max(0) as usize
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner: push a job (the spawn path — no fence at all, as in Cilk-5).
    pub fn push(&self, job: *mut JobCore<S>, stats: &WorkerStats) {
        let t = load_i64(&self.tail, Ordering::Relaxed);
        let h = load_i64(&self.head, Ordering::Relaxed);
        assert!(
            t - h <= self.mask,
            "deque overflow: spawn depth exceeded capacity {}",
            self.mask + 1
        );
        store_ptr(self.slot(t), job, Ordering::Relaxed);
        // Publish the slot before the new tail (thieves read tail Acquire).
        store_i64(&self.tail, t + 1, Ordering::Release);
        WorkerStats::bump(&stats.pushes);
    }

    /// Owner: pop the most recently pushed job. This is the hot path whose
    /// fence the paper's ACilk-5 removes.
    pub fn pop(&self, stats: &WorkerStats) -> Option<*mut JobCore<S>> {
        let t = load_i64(&self.tail, Ordering::Relaxed) - 1;
        store_i64(&self.tail, t, Ordering::Relaxed); // T--
        self.strategy.primary_fence(); // the l-mfence position
        let h = load_i64(&self.head, Ordering::Acquire);
        if h > t {
            // Possible conflict with a thief: restore T and retry under
            // the lock, where H is stable.
            store_i64(&self.tail, t + 1, Ordering::Relaxed);
            WorkerStats::bump(&stats.pop_conflicts);
            let _guard = self.lock.lock();
            let t = load_i64(&self.tail, Ordering::Relaxed) - 1;
            store_i64(&self.tail, t, Ordering::Relaxed);
            // Under the lock no thief can move H; a full fence makes the
            // decrement visible before we conclude (cold path: cheap).
            lbmf::fence::full_fence();
            let h = load_i64(&self.head, Ordering::Acquire);
            if h > t {
                store_i64(&self.tail, t + 1, Ordering::Relaxed);
                return None;
            }
            WorkerStats::bump(&stats.pops);
            return Some(load_ptr(self.slot(t), Ordering::Relaxed));
        }
        WorkerStats::bump(&stats.pops);
        Some(load_ptr(self.slot(t), Ordering::Relaxed))
    }

    /// Thief: try to steal the oldest job. Every attempt pays the
    /// secondary-side cost: a fence plus a remote serialization of the
    /// victim (a no-op under the symmetric strategy).
    ///
    /// The whole attempt is one causal chain: the `steal-attempt`, the
    /// victim-serialization phases it triggers, and (on success) the
    /// `steal-success` all share one correlation id, so a trace shows
    /// *which* steal paid *which* serialization round trip.
    pub fn steal(&self, stats: &WorkerStats) -> Steal<S> {
        let guard = match self.lock.try_lock() {
            Some(g) => g,
            None => return Steal::Retry,
        };
        WorkerStats::bump(&stats.steal_attempts);
        let corr = trace_mint_corr!();
        trace_event_corr!(StealAttempt, self as *const _ as usize, corr);
        let h = load_i64(&self.head, Ordering::Relaxed);
        store_i64(&self.head, h + 1, Ordering::Relaxed); // H++
        self.strategy.secondary_fence();
        if let Some(owner) = self.owner.get() {
            // Location-based serialization: force the victim's (possibly
            // buffered) T decrement out so the comparison below is sound.
            self.strategy.serialize_remote_corr(owner, corr);
        }
        let t = load_i64(&self.tail, Ordering::Acquire);
        if h + 1 > t {
            store_i64(&self.head, h, Ordering::Relaxed); // retreat
            drop(guard);
            return Steal::Empty;
        }
        let job = load_ptr(self.slot(h), Ordering::Relaxed);
        drop(guard);
        WorkerStats::bump(&stats.steals);
        trace_event_corr!(StealSuccess, self as *const _ as usize, corr);
        Steal::Success(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbmf::strategy::{SignalFence, Symmetric};

    fn core(n: usize) -> *mut JobCore<Symmetric> {
        n as *mut JobCore<Symmetric>
    }

    #[test]
    fn push_pop_lifo() {
        let d: TheDeque<Symmetric> = TheDeque::new(Arc::new(Symmetric::new()), 4);
        let stats = WorkerStats::default();
        d.push(core(1), &stats);
        d.push(core(2), &stats);
        d.push(core(3), &stats);
        assert_eq!(d.len(), 3);
        assert_eq!(d.pop(&stats), Some(core(3)));
        assert_eq!(d.pop(&stats), Some(core(2)));
        assert_eq!(d.pop(&stats), Some(core(1)));
        assert_eq!(d.pop(&stats), None);
        assert_eq!(stats.pops.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn steal_fifo_from_other_end() {
        let d: TheDeque<Symmetric> = TheDeque::new(Arc::new(Symmetric::new()), 4);
        let stats = WorkerStats::default();
        d.push(core(1), &stats);
        d.push(core(2), &stats);
        match d.steal(&stats) {
            Steal::Success(p) => assert_eq!(p, core(1)),
            _ => panic!("steal failed"),
        }
        assert_eq!(d.pop(&stats), Some(core(2)));
        assert_eq!(d.pop(&stats), None);
        match d.steal(&stats) {
            Steal::Empty => {}
            _ => panic!("expected empty"),
        }
    }

    #[test]
    fn interleaved_push_pop_steal_accounts_for_all_jobs() {
        let d: TheDeque<Symmetric> = TheDeque::new(Arc::new(Symmetric::new()), 6);
        let stats = WorkerStats::default();
        let mut seen = std::collections::HashSet::new();
        let mut next = 1usize;
        for round in 0..10 {
            for _ in 0..4 {
                d.push(core(next), &stats);
                next += 1;
            }
            if round % 2 == 0 {
                if let Steal::Success(p) = d.steal(&stats) {
                    assert!(seen.insert(p as usize));
                }
            }
            while let Some(p) = d.pop(&stats) {
                assert!(seen.insert(p as usize));
            }
        }
        assert_eq!(seen.len(), next - 1, "every job seen exactly once");
    }

    #[test]
    fn concurrent_victim_thief_no_duplication_no_loss() {
        // One victim pushes/pops, several thieves steal; every job must be
        // obtained exactly once across all parties.
        use std::sync::atomic::AtomicU64;
        let strategy = Arc::new(SignalFence::new());
        let d: Arc<TheDeque<SignalFence>> = Arc::new(TheDeque::new(strategy, 16));
        let stolen = Arc::new(AtomicU64::new(0));
        let popped = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let thieves_done = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        const JOBS: usize = 20_000;
        const THIEVES: usize = 2;

        let mut thieves = Vec::new();
        for _ in 0..THIEVES {
            let d = d.clone();
            let stolen = stolen.clone();
            let stop = stop.clone();
            let done = thieves_done.clone();
            thieves.push(std::thread::spawn(move || {
                let stats = WorkerStats::default();
                let mut sum = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match d.steal(&stats) {
                        Steal::Success(p) => sum += p as u64,
                        Steal::Empty => std::thread::yield_now(),
                        Steal::Retry => {}
                    }
                }
                stolen.fetch_add(sum, Ordering::Relaxed);
                done.fetch_add(1, Ordering::Release);
            }));
        }

        let victim = {
            let d = d.clone();
            let popped = popped.clone();
            let stop = stop.clone();
            let thieves_done = thieves_done.clone();
            std::thread::spawn(move || {
                let reg = lbmf::registry::register_current_thread();
                d.set_owner(reg.remote());
                let stats = WorkerStats::default();
                let mut sum = 0u64;
                for j in 1..=JOBS {
                    d.push(j as *mut JobCore<SignalFence>, &stats);
                    // Pop roughly half back immediately.
                    if j % 2 == 0 {
                        if let Some(p) = d.pop(&stats) {
                            sum += p as u64;
                        }
                    }
                }
                while let Some(p) = d.pop(&stats) {
                    sum += p as u64;
                }
                popped.fetch_add(sum, Ordering::Relaxed);
                // Keep this thread (and its signal registration) alive
                // until all thieves stop stealing: signaling an exited
                // pthread is undefined behaviour.
                stop.store(true, Ordering::Relaxed);
                lbmf::fence::spin_until(|| thieves_done.load(Ordering::Acquire) == THIEVES);
            })
        };

        victim.join().unwrap();
        for t in thieves {
            t.join().unwrap();
        }
        let total = stolen.load(Ordering::Relaxed) + popped.load(Ordering::Relaxed);
        let expected: u64 = (1..=JOBS as u64).sum();
        assert_eq!(total, expected, "jobs lost or duplicated");
    }

    #[test]
    #[should_panic(expected = "deque overflow")]
    fn overflow_panics() {
        let d: TheDeque<Symmetric> = TheDeque::new(Arc::new(Symmetric::new()), 2);
        let stats = WorkerStats::default();
        for i in 0..5 {
            d.push(core(i + 1), &stats);
        }
    }
}
