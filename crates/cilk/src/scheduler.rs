//! The work-stealing scheduler (a miniature Cilk-5).
//!
//! `P` worker threads each own a [`TheDeque`]; work enters through
//! [`Scheduler::run`], which injects a root job and blocks until it
//! completes. Inside the runtime, parallelism is expressed with
//! [`WorkerCtx::join`] — the child-stealing analogue of `spawn`/`sync`:
//! the second closure is pushed onto the worker's own deque (stealable),
//! the first runs immediately, and the worker then pops the second back
//! (the common, fence-sensitive fast path) or, if it was stolen, steals
//! other work while waiting ("work-first" — scheduling overhead lands on
//! the thief's path, amortized against successful steals).

use crate::deque::{Steal, TheDeque};
use crate::job::{execute, JobCore, Latch, StackJob};
use crate::stats::{RuntimeStats, WorkerStats};
use lbmf::registry::register_current_thread;
use lbmf::strategy::FenceStrategy;
use lbmf::sync::{Condvar, Mutex};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Spawn-depth capacity of each worker deque (2^18 = 262144 frames).
const DEQUE_LOG2_CAPACITY: u32 = 18;

struct SendJobPtr<S: FenceStrategy>(*mut JobCore<S>);
// SAFETY: job pointers target StackJobs whose owners outlive execution.
unsafe impl<S: FenceStrategy> Send for SendJobPtr<S> {}

struct Inner<S: FenceStrategy> {
    strategy: Arc<S>,
    deques: Vec<TheDeque<S>>,
    worker_stats: Vec<WorkerStats>,
    injector: Mutex<VecDeque<SendJobPtr<S>>>,
    idle_mutex: Mutex<()>,
    idle_cv: Condvar,
    shutdown: AtomicBool,
    /// Workers that have left their main loop; the last ones out let
    /// everyone drop their signal registrations safely.
    exited: AtomicUsize,
    nworkers: usize,
}

/// A work-stealing scheduler over `P` workers and a fence strategy.
pub struct Scheduler<S: FenceStrategy> {
    inner: Arc<Inner<S>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl<S: FenceStrategy> Scheduler<S> {
    /// Start `nworkers` worker threads using `strategy` for the deque's
    /// victim/thief protocol.
    pub fn new(nworkers: usize, strategy: Arc<S>) -> Self {
        assert!(nworkers >= 1, "need at least one worker");
        let inner = Arc::new(Inner {
            deques: (0..nworkers)
                .map(|_| TheDeque::new(strategy.clone(), DEQUE_LOG2_CAPACITY))
                .collect(),
            worker_stats: (0..nworkers).map(|_| WorkerStats::default()).collect(),
            injector: Mutex::new(VecDeque::new()),
            idle_mutex: Mutex::new(()),
            idle_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            exited: AtomicUsize::new(0),
            nworkers,
            strategy,
        });
        let threads = (0..nworkers)
            .map(|index| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("lbmf-cilk-worker-{index}"))
                    .spawn(move || worker_main(inner, index))
                    .expect("failed to spawn worker")
            })
            .collect();
        Scheduler { inner, threads }
    }

    /// A pool sized to the host's available parallelism (at least 1).
    pub fn with_default_workers(strategy: Arc<S>) -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Scheduler::new(n, strategy)
    }

    /// Number of worker threads in the pool.
    pub fn num_workers(&self) -> usize {
        self.inner.nworkers
    }

    /// The fence strategy driving the deque protocol.
    pub fn strategy(&self) -> &S {
        &self.inner.strategy
    }

    /// Run `f` on the pool and block until it finishes. `f` may borrow from
    /// the caller's stack: the caller blocks until the job (and everything
    /// it joined) completes.
    pub fn run<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce(&WorkerCtx<'_, S>) -> R + Send,
    {
        let job = StackJob::new(f);
        self.inner
            .injector
            .lock()
            .push_back(SendJobPtr(job.core_ptr()));
        self.inner.idle_cv.notify_all();
        job.latch.wait();
        // SAFETY: latch set means the result was stored.
        unsafe { job.take_result() }
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats::aggregate(
            self.inner.worker_stats.iter(),
            self.inner.strategy.stats().snapshot(),
        )
    }

    /// Reset the per-worker and strategy counters (between measurements).
    pub fn reset_stats(&self) {
        for w in &self.inner.worker_stats {
            w.pushes.store(0, Ordering::Relaxed);
            w.pops.store(0, Ordering::Relaxed);
            w.pop_conflicts.store(0, Ordering::Relaxed);
            w.steal_attempts.store(0, Ordering::Relaxed);
            w.steals.store(0, Ordering::Relaxed);
            w.executed.store(0, Ordering::Relaxed);
        }
        self.inner.strategy.stats().reset();
    }
}

impl<S: FenceStrategy> Drop for Scheduler<S> {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.idle_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_main<S: FenceStrategy>(inner: Arc<Inner<S>>, index: usize) {
    let registration = register_current_thread();
    inner.deques[index].set_owner(registration.remote());
    let ctx = WorkerCtx {
        inner: &inner,
        index,
        rng: Cell::new(0x9E3779B97F4A7C15u64.wrapping_mul(index as u64 + 1) | 1),
    };
    while !inner.shutdown.load(Ordering::Acquire) {
        match ctx.find_work() {
            Some(job) => unsafe {
                WorkerStats::bump(&ctx.stats().executed);
                execute(job, &ctx);
            },
            None => {
                let guard = inner.idle_mutex.lock();
                if inner.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let _guard = inner.idle_cv.wait_for(guard, Duration::from_micros(500));
            }
        }
    }
    // Exit barrier: no worker drops its signal registration until every
    // worker has stopped stealing — signaling an exited pthread is UB.
    inner.exited.fetch_add(1, Ordering::AcqRel);
    lbmf::fence::spin_until(|| inner.exited.load(Ordering::Acquire) == inner.nworkers);
    drop(registration);
}

/// The execution context handed to every job; `join` is the spawn
/// primitive.
pub struct WorkerCtx<'s, S: FenceStrategy> {
    inner: &'s Inner<S>,
    index: usize,
    rng: Cell<u64>,
}

impl<'s, S: FenceStrategy> WorkerCtx<'s, S> {
    /// This worker's index in `0..num_workers`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total workers in the pool.
    pub fn num_workers(&self) -> usize {
        self.inner.nworkers
    }

    fn deque(&self) -> &TheDeque<S> {
        &self.inner.deques[self.index]
    }

    fn stats(&self) -> &WorkerStats {
        &self.inner.worker_stats[self.index]
    }

    fn next_rand(&self) -> u64 {
        // xorshift64*: cheap per-steal victim selection.
        let mut x = self.rng.get();
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng.set(x);
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Fork-join: push `b` (stealable), run `a`, then run or wait for `b`.
    pub fn join<RA, RB, A, B>(&self, a: A, b: B) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
        A: FnOnce(&WorkerCtx<'_, S>) -> RA + Send,
        B: FnOnce(&WorkerCtx<'_, S>) -> RB + Send,
    {
        let b_job = StackJob::new(b);
        let core = b_job.core_ptr();
        self.deque().push(core, self.stats());
        let ra = a(self);
        loop {
            match self.deque().pop(self.stats()) {
                Some(ptr) if ptr == core => {
                    // Fast path: nobody stole b — run it inline. Under an
                    // asymmetric strategy this pop cost no hardware fence.
                    let rb = unsafe { b_job.run_inline(self) };
                    return (ra, rb);
                }
                Some(other) => {
                    // A scope-spawned job sits above our b: run it, then
                    // keep popping toward b.
                    unsafe { execute(other, self) };
                }
                None => {
                    // b was stolen: steal other work while waiting.
                    self.wait_for(&b_job.latch);
                    return (ra, unsafe { b_job.take_result() });
                }
            }
        }
    }

    /// Keep the worker busy until `latch` is set.
    fn wait_for(&self, latch: &Latch) {
        self.work_until(|| latch.probe());
    }

    /// Keep the worker busy (executing own and stolen work) until `cond`
    /// holds. Used by joins waiting on stolen children and by scopes
    /// draining their spawned tasks.
    pub(crate) fn work_until(&self, mut cond: impl FnMut() -> bool) {
        while !cond() {
            match self.find_work() {
                Some(job) => unsafe {
                    WorkerStats::bump(&self.stats().executed);
                    execute(job, self);
                },
                None => std::thread::yield_now(),
            }
        }
    }

    /// Push a ready job (e.g. a scope spawn) onto this worker's deque.
    pub(crate) fn push_job(&self, job: *mut JobCore<S>) {
        self.deque().push(job, self.stats());
    }

    /// Own deque first, then random victims, then the injector.
    fn find_work(&self) -> Option<*mut JobCore<S>> {
        if let Some(job) = self.deque().pop(self.stats()) {
            return Some(job);
        }
        let n = self.inner.nworkers;
        if n > 1 {
            // One sweep over the other workers starting at a random point.
            let start = (self.next_rand() % n as u64) as usize;
            for k in 0..n {
                let v = (start + k) % n;
                if v == self.index {
                    continue;
                }
                match self.inner.deques[v].steal(self.stats()) {
                    Steal::Success(job) => return Some(job),
                    Steal::Empty | Steal::Retry => {}
                }
            }
        }
        let mut injector = self.inner.injector.lock();
        injector.pop_front().map(|p| p.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbmf::strategy::{SignalFence, Symmetric};

    fn fib(ctx: &WorkerCtx<'_, impl FenceStrategy>, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = ctx.join(|c| fib(c, n - 1), |c| fib(c, n - 2));
        a + b
    }

    #[test]
    fn fib_single_worker_symmetric() {
        let s = Scheduler::new(1, Arc::new(Symmetric::new()));
        assert_eq!(s.run(|ctx| fib(ctx, 15)), 610);
    }

    #[test]
    fn fib_multi_worker_symmetric() {
        let s = Scheduler::new(4, Arc::new(Symmetric::new()));
        assert_eq!(s.run(|ctx| fib(ctx, 18)), 2584);
        let stats = s.stats();
        assert!(stats.pushes > 0);
        assert_eq!(stats.pushes, stats.pops + stats.steals, "conservation");
    }

    #[test]
    fn fib_multi_worker_signal_fence() {
        let s = Scheduler::new(3, Arc::new(SignalFence::new()));
        assert_eq!(s.run(|ctx| fib(ctx, 16)), 987);
        let stats = s.stats();
        assert_eq!(stats.pushes, stats.pops + stats.steals, "conservation");
        // The victim fast path must have avoided hardware fences entirely.
        assert_eq!(stats.fences.primary_full_fences, 0);
        assert!(stats.fences.primary_compiler_fences > 0);
    }

    #[test]
    fn serial_run_uses_no_serializations_single_worker() {
        let s = Scheduler::new(1, Arc::new(SignalFence::new()));
        assert_eq!(s.run(|ctx| fib(ctx, 12)), 144);
        let stats = s.stats();
        assert_eq!(
            stats.fences.serializations_requested, 0,
            "no thieves exist with one worker"
        );
    }

    #[test]
    fn multiple_runs_reuse_pool() {
        let s = Scheduler::new(2, Arc::new(Symmetric::new()));
        for n in [5u64, 8, 10] {
            let expected = [5u64, 21, 55][match n {
                5 => 0,
                8 => 1,
                _ => 2,
            }];
            assert_eq!(s.run(|ctx| fib(ctx, n)), expected);
        }
    }

    #[test]
    fn default_worker_count_matches_host() {
        let s = Scheduler::with_default_workers(Arc::new(Symmetric::new()));
        assert!(s.num_workers() >= 1);
        assert_eq!(s.run(|ctx| fib(ctx, 10)), 55);
    }

    #[test]
    fn borrows_callers_stack() {
        let s = Scheduler::new(2, Arc::new(Symmetric::new()));
        let data = [1u64, 2, 3, 4];
        let sum = s.run(|ctx| {
            let (a, b) = ctx.join(
                |_| data[..2].iter().sum::<u64>(),
                |_| data[2..].iter().sum::<u64>(),
            );
            a + b
        });
        assert_eq!(sum, 10);
    }

    #[test]
    fn panics_propagate_to_caller() {
        let s = Scheduler::new(2, Arc::new(Symmetric::new()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.run(|ctx| {
                let ((), ()) = ctx.join(
                    |_| {},
                    |_| panic!("boom from joined task"),
                );
            })
        }));
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        assert_eq!(s.run(|ctx| fib(ctx, 10)), 55);
    }

    #[test]
    fn deep_sequential_joins_do_not_overflow_deque() {
        let s = Scheduler::new(2, Arc::new(Symmetric::new()));
        let total = s.run(|ctx| {
            fn count(ctx: &WorkerCtx<'_, impl FenceStrategy>, n: u64) -> u64 {
                if n == 0 {
                    return 0;
                }
                let (a, b) = ctx.join(|c| count(c, n - 1), |_| 1u64);
                a + b
            }
            count(ctx, 5_000)
        });
        assert_eq!(total, 5_000);
    }
}
