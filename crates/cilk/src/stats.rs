//! Per-worker and aggregated runtime statistics.
//!
//! The paper's Figure 5(b) analysis rests on two per-benchmark numbers this
//! module exposes: how many *steal attempts* (each costing a serialization
//! round trip under the asymmetric runtime) there were, and what fraction
//! became *successful steals* — 53.6% for `cholesky`, 72.8% for `lu`, over
//! 90% elsewhere, in the paper's runs.

use lbmf::stats::FenceStatsSnapshot;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters owned by one worker (all updates Relaxed — they are reporting,
/// not synchronization).
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Jobs pushed onto the worker's own deque (spawns).
    pub pushes: AtomicU64,
    /// Successful pops from the worker's own deque.
    pub pops: AtomicU64,
    /// Pops that hit the THE-protocol conflict path (took the lock).
    pub pop_conflicts: AtomicU64,
    /// Steal attempts against other workers' deques.
    pub steal_attempts: AtomicU64,
    /// Steals that returned a job.
    pub steals: AtomicU64,
    /// Jobs executed (own or stolen).
    pub executed: AtomicU64,
}

impl WorkerStats {
    /// Increment one counter (relaxed; reporting only).
    #[inline]
    pub fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// Aggregated snapshot across all workers plus the fence strategy's
/// counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuntimeStats {
    /// Jobs pushed (spawns) across all workers.
    pub pushes: u64,
    /// Successful own-deque pops.
    pub pops: u64,
    /// Pops that hit the THE conflict path.
    pub pop_conflicts: u64,
    /// Steal attempts against other deques.
    pub steal_attempts: u64,
    /// Successful steals.
    pub steals: u64,
    /// Jobs executed (own or stolen).
    pub executed: u64,
    /// The fence strategy's counters at snapshot time.
    pub fences: FenceStatsSnapshot,
}

impl RuntimeStats {
    /// Sum per-worker counters and attach the fence snapshot.
    pub fn aggregate<'a>(
        workers: impl Iterator<Item = &'a WorkerStats>,
        fences: FenceStatsSnapshot,
    ) -> Self {
        let mut out = RuntimeStats {
            fences,
            ..Default::default()
        };
        for w in workers {
            out.pushes += w.pushes.load(Ordering::Relaxed);
            out.pops += w.pops.load(Ordering::Relaxed);
            out.pop_conflicts += w.pop_conflicts.load(Ordering::Relaxed);
            out.steal_attempts += w.steal_attempts.load(Ordering::Relaxed);
            out.steals += w.steals.load(Ordering::Relaxed);
            out.executed += w.executed.load(Ordering::Relaxed);
        }
        out
    }

    /// Fraction of serialization requests that turned into successful
    /// steals — the paper's "signals into successful steals" conversion.
    pub fn steal_conversion(&self) -> f64 {
        if self.fences.serializations_requested == 0 {
            return 1.0;
        }
        self.steals as f64 / self.fences.serializations_requested as f64
    }

    /// Fences the primary (victim) path avoided relative to the symmetric
    /// runtime.
    pub fn fences_avoided(&self) -> u64 {
        self.fences.fences_avoided()
    }
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pushes={} pops={} (conflicts={}) steal_attempts={} steals={} executed={} \
             conversion={:.1}% | {}",
            self.pushes,
            self.pops,
            self.pop_conflicts,
            self.steal_attempts,
            self.steals,
            self.executed,
            self.steal_conversion() * 100.0,
            self.fences
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_sums_workers() {
        let a = WorkerStats::default();
        let b = WorkerStats::default();
        WorkerStats::bump(&a.pushes);
        WorkerStats::bump(&a.steals);
        WorkerStats::bump(&b.pushes);
        let agg = RuntimeStats::aggregate([&a, &b].into_iter(), FenceStatsSnapshot::default());
        assert_eq!(agg.pushes, 2);
        assert_eq!(agg.steals, 1);
    }

    #[test]
    fn conversion_handles_zero_requests() {
        let s = RuntimeStats::default();
        assert_eq!(s.steal_conversion(), 1.0);
    }

    #[test]
    fn conversion_ratio() {
        let s = RuntimeStats {
            steals: 3,
            fences: FenceStatsSnapshot {
                serializations_requested: 4,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((s.steal_conversion() - 0.75).abs() < 1e-9);
    }
}
