//! Cost parameters for the discrete-event simulations.
//!
//! All values are cycles on the paper's notional 2 GHz machine, anchored to
//! the calibration in [`lbmf_sim::cost::CostModel`] and the paper's Section
//! 5 measurements: an `mfence`-class stall of a few tens of cycles, a
//! signal round trip of ~10,000 cycles (plus the four kernel/user crossings
//! the *primary* pays to run the handler), and an LE/ST round trip of ~150
//! cycles with "negligible" impact on the primary.

use lbmf_sim::cost::CostModel;

/// Which serialization mechanism the simulated asymmetric runtime uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SerializeKind {
    /// Program-based fences: the victim pays per pop; steals pay nothing
    /// extra.
    Symmetric,
    /// The software prototype: each serialization is a signal round trip
    /// borne by the requester, plus handler time on the victim.
    Signal,
    /// Linux `membarrier(2)`: cheaper kernel-assisted round trip, small
    /// IPI cost on every other thread.
    Membarrier,
    /// The proposed LE/ST hardware: ~150 cycles on the requester only.
    LeSt,
}

impl SerializeKind {
    /// Human-readable mechanism name.
    pub fn label(self) -> &'static str {
        match self {
            SerializeKind::Symmetric => "symmetric-mfence",
            SerializeKind::Signal => "lbmf-signal",
            SerializeKind::Membarrier => "lbmf-membarrier",
            SerializeKind::LeSt => "lbmf-le/st",
        }
    }

    /// Whether the primary/victim fast path carries a hardware fence.
    pub fn victim_pays_fence(self) -> bool {
        matches!(self, SerializeKind::Symmetric)
    }
}

/// Cycle costs used by both simulations.
#[derive(Clone, Copy, Debug)]
pub struct DesCosts {
    /// Full hardware fence (the per-pop / per-read cost under Symmetric).
    pub mfence: u64,
    /// Compiler-fence-only ordering point (asymmetric fast path).
    pub compiler_fence: u64,
    /// Requester-side cost of one signal round trip.
    pub serialize_requester_signal: u64,
    /// Requester-side cost of one `membarrier(2)` round trip.
    pub serialize_requester_membarrier: u64,
    /// Requester-side cost of one LE/ST round trip.
    pub serialize_requester_lest: u64,
    /// Victim-side cost of signal delivery (four kernel/user crossings).
    pub serialize_victim_signal: u64,
    /// Victim-side cost of the membarrier IPI.
    pub serialize_victim_membarrier: u64,
    /// Victim-side cost of an LE/ST link break (negligible: SB flush).
    pub serialize_victim_lest: u64,
    /// Taking/releasing the deque or writer lock (uncontended).
    pub lock: u64,
    /// A cache-to-cache transfer (reading a flag another CPU wrote).
    pub cache_to_cache: u64,
}

impl Default for DesCosts {
    fn default() -> Self {
        let cm = CostModel::default();
        DesCosts {
            mfence: cm.mfence_base,
            compiler_fence: 0,
            serialize_requester_signal: cm.signal_roundtrip,
            serialize_requester_membarrier: 2_000,
            serialize_requester_lest: cm.cache_to_cache + cm.lest_roundtrip,
            // The paper: the primary "must handle the signal (which entails
            // crossing between kernel and user modes four times)".
            serialize_victim_signal: 4_000,
            serialize_victim_membarrier: 400,
            serialize_victim_lest: cm.sb_drain_owned,
            lock: 40,
            cache_to_cache: cm.cache_to_cache,
        }
    }
}

impl DesCosts {
    /// (requester cycles, victim cycles) for one serialization under
    /// `kind`.
    pub fn serialize(&self, kind: SerializeKind) -> (u64, u64) {
        match kind {
            SerializeKind::Symmetric => (0, 0),
            SerializeKind::Signal => (self.serialize_requester_signal, self.serialize_victim_signal),
            SerializeKind::Membarrier => (
                self.serialize_requester_membarrier,
                self.serialize_victim_membarrier,
            ),
            SerializeKind::LeSt => (self.serialize_requester_lest, self.serialize_victim_lest),
        }
    }

    /// Victim-side ordering cost at the l-mfence position.
    pub fn victim_fence(&self, kind: SerializeKind) -> u64 {
        if kind.victim_pays_fence() {
            self.mfence
        } else {
            self.compiler_fence
        }
    }

    /// The cost-table entries that the cycle-level machine can measure
    /// directly, `(name, cycles)` — the contract the `lbmf-obs calibrate`
    /// pass checks against `lbmf-sim` kernel runs. Signal and membarrier
    /// entries model OS mechanisms outside the simulated hardware and are
    /// deliberately absent (reported as unmeasured by the calibration).
    pub fn calibratable_entries(&self) -> [(&'static str, u64); 4] {
        [
            ("mfence", self.mfence),
            ("serialize_requester_lest", self.serialize_requester_lest),
            ("serialize_victim_lest", self.serialize_victim_lest),
            ("cache_to_cache", self.cache_to_cache),
        ]
    }
}

/// A deterministic SplitMix64 RNG for simulation decisions.
#[derive(Clone, Debug)]
pub struct SimRng(u64);

impl SimRng {
    /// Seeded generator (same seed, same stream).
    pub fn new(seed: u64) -> Self {
        SimRng(seed.wrapping_mul(2).wrapping_add(1))
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `0..n` (0 when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_costs_dominate_lest_by_orders_of_magnitude() {
        let c = DesCosts::default();
        let (sig_req, sig_vic) = c.serialize(SerializeKind::Signal);
        let (lest_req, lest_vic) = c.serialize(SerializeKind::LeSt);
        assert!(sig_req / lest_req >= 50);
        assert!(sig_vic > 100 * lest_vic.max(1) / 10);
        let (sym_req, sym_vic) = c.serialize(SerializeKind::Symmetric);
        assert_eq!((sym_req, sym_vic), (0, 0));
    }

    #[test]
    fn victim_fence_only_for_symmetric() {
        let c = DesCosts::default();
        assert!(c.victim_fence(SerializeKind::Symmetric) > 0);
        assert_eq!(c.victim_fence(SerializeKind::Signal), 0);
        assert_eq!(c.victim_fence(SerializeKind::LeSt), 0);
    }

    #[test]
    fn calibratable_entries_track_the_cost_model_anchors() {
        let c = DesCosts::default();
        let cm = CostModel::default();
        let entries = c.calibratable_entries();
        assert_eq!(entries[0], ("mfence", cm.mfence_base));
        assert_eq!(
            entries[1],
            ("serialize_requester_lest", cm.cache_to_cache + cm.lest_roundtrip)
        );
        assert_eq!(entries[2], ("serialize_victim_lest", cm.sb_drain_owned));
        assert_eq!(entries[3], ("cache_to_cache", cm.cache_to_cache));
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..100 {
            assert!(r.below(5) < 5);
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }
}
