//! Discrete-event simulation of the work-stealing runtime over a
//! benchmark's fork-join DAG — the Figure 5(b) substitute for a 16-core
//! machine.
//!
//! The simulator is a sequentialized copy of the real scheduler in
//! `lbmf-cilk`: per-worker deques of spawned tasks, LIFO pops by the owner
//! (each pop paying the victim-side fence under the symmetric strategy),
//! FIFO steals by thieves (each attempt paying the thief-side fence plus a
//! remote serialization of the victim — which also *delays the victim* by
//! the handler cost, the effect the paper calls out for the signal
//! prototype). Virtual time advances by always stepping the worker with
//! the smallest clock.

use crate::costs::{DesCosts, SerializeKind, SimRng};
use crate::dag::{Step, Task};
use lbmf_trace::{EventKind, FenceEvent, ThreadTrace, TraceSnapshot};
use std::collections::VecDeque;

/// Scheduling-action cycle costs (strategy-independent parts).
#[derive(Clone, Copy, Debug)]
pub struct SchedCosts {
    /// Pushing a spawned task and setting up the child frame.
    pub spawn: u64,
    /// Deque pop bookkeeping, excluding the fence.
    pub pop: u64,
    /// Probing a victim's deque (lock attempt, head/tail reads).
    pub probe: u64,
    /// Extra thief back-off after a failed probe (keeps both the real
    /// system and the simulation from busy-spinning at full tilt).
    pub failed_steal_backoff: u64,
}

impl Default for SchedCosts {
    fn default() -> Self {
        SchedCosts {
            spawn: 15,
            pop: 10,
            probe: 60,
            failed_steal_backoff: 2_000,
        }
    }
}

/// Simulation configuration.
#[derive(Clone, Copy, Debug)]
pub struct StealSimConfig {
    /// Number of simulated workers (the paper's 16 processors).
    pub workers: usize,
    /// Which serialization mechanism the runtime uses.
    pub kind: SerializeKind,
    /// Cycle cost table.
    pub costs: DesCosts,
    /// Scheduling-action cost table.
    pub sched: SchedCosts,
    /// Seed for victim selection and race outcomes.
    pub seed: u64,
}

impl StealSimConfig {
    /// A configuration with default cost tables and seed.
    pub fn new(workers: usize, kind: SerializeKind) -> Self {
        StealSimConfig {
            workers,
            kind,
            costs: DesCosts::default(),
            sched: SchedCosts::default(),
            seed: 0x5EED,
        }
    }
}

/// Simulation outcome.
#[derive(Clone, Copy, Debug)]
pub struct StealSimResult {
    /// Virtual completion time (cycles).
    pub makespan: u64,
    /// Pure work executed (cycles), equal to the DAG's serial work.
    pub total_work: u64,
    /// Fork nodes executed (spawns).
    pub spawns: u64,
    /// Pop attempts at join points.
    pub pops: u64,
    /// Hardware fences paid on the victim pop path (symmetric only).
    pub victim_fences: u64,
    /// Steal probes against other workers.
    pub steal_attempts: u64,
    /// Steals that obtained a task.
    pub steals: u64,
    /// Remote serializations performed (one per steal attempt under the
    /// asymmetric strategies).
    pub serializations: u64,
}

impl StealSimResult {
    /// Fraction of serializations that became successful steals (the
    /// paper's conversion metric; 1.0 when no serializations happened).
    pub fn conversion(&self) -> f64 {
        if self.serializations == 0 {
            1.0
        } else {
            self.steals as f64 / self.serializations as f64
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SpawnState {
    Queued,
    Stolen,
    Done,
}

struct Spawn {
    task: Task,
    state: SpawnState,
}

enum Cont {
    /// An expanded frame being executed.
    Steps { steps: Vec<Step>, ip: usize },
    /// Resume point after a fork's left child: pop or wait for `spawn`.
    AfterFork { spawn: usize },
    /// The fork's right child was stolen: steal other work until it
    /// completes. Work picked up meanwhile stacks *above* this cont, so
    /// nested joins-while-waiting need no extra bookkeeping.
    WaitJoin { spawn: usize },
    /// Thief-side: mark `spawn` done once its frame finished.
    Complete { spawn: usize },
}

struct Worker {
    clock: u64,
    conts: Vec<Cont>,
    deque: VecDeque<usize>,
}

/// Per-worker event collection during a traced run. Simulated events use
/// the real runtime's schema with virtual cycles in the `nanos` field, so
/// a simulated trace opens in Perfetto next to a real-execution one.
struct SimTrace {
    on: bool,
    events: Vec<Vec<FenceEvent>>,
    /// Simulator-local correlation ids (monotone, deterministic — the
    /// global `lbmf_trace::next_corr_id` would couple otherwise identical
    /// simulated runs to process history).
    next_corr: u64,
}

impl SimTrace {
    fn off() -> Self {
        SimTrace {
            on: false,
            events: Vec::new(),
            next_corr: 0,
        }
    }

    fn on(workers: usize) -> Self {
        SimTrace {
            on: true,
            events: vec![Vec::new(); workers],
            next_corr: 0,
        }
    }

    /// Mint a causal chain id (0 when tracing is off, matching the real
    /// runtime's compiled-out behavior).
    #[inline]
    fn mint_corr(&mut self) -> u64 {
        if self.on {
            self.next_corr += 1;
            self.next_corr
        } else {
            0
        }
    }

    #[inline]
    fn emit(&mut self, w: usize, clock: u64, kind: EventKind, addr: usize, dur: u64) {
        self.emit_corr(w, clock, kind, addr, dur, 0);
    }

    #[inline]
    fn emit_corr(&mut self, w: usize, clock: u64, kind: EventKind, addr: usize, dur: u64, corr: u64) {
        if self.on {
            self.events[w].push(FenceEvent {
                nanos: clock,
                thread: w as u32,
                kind,
                guarded_addr: addr,
                dur,
                corr,
            });
        }
    }

    fn into_snapshot(self) -> TraceSnapshot {
        TraceSnapshot {
            threads: self
                .events
                .into_iter()
                .enumerate()
                .map(|(w, events)| ThreadTrace {
                    tid: w as u32,
                    name: format!("sim-worker-{w}"),
                    events,
                    dropped: 0,
                })
                .collect(),
        }
    }
}

/// Run the simulation to completion.
pub fn simulate(root: Task, cfg: &StealSimConfig) -> StealSimResult {
    run(root, cfg, &mut SimTrace::off())
}

/// Run the simulation and also collect its event trace (same schedule and
/// result as [`simulate`] — tracing never perturbs the simulation).
pub fn simulate_traced(root: Task, cfg: &StealSimConfig) -> (StealSimResult, TraceSnapshot) {
    let mut trace = SimTrace::on(cfg.workers);
    let res = run(root, cfg, &mut trace);
    (res, trace.into_snapshot())
}

fn run(root: Task, cfg: &StealSimConfig, trace: &mut SimTrace) -> StealSimResult {
    assert!(cfg.workers >= 1);
    let mut workers: Vec<Worker> = (0..cfg.workers)
        .map(|_| Worker {
            clock: 0,
            conts: Vec::new(),
            deque: VecDeque::new(),
        })
        .collect();
    workers[0].conts.push(Cont::Steps {
        steps: root.expand(),
        ip: 0,
    });
    let mut spawns: Vec<Spawn> = Vec::new();
    let mut rng = SimRng::new(cfg.seed);
    let mut res = StealSimResult {
        makespan: 0,
        total_work: 0,
        spawns: 0,
        pops: 0,
        victim_fences: 0,
        steal_attempts: 0,
        steals: 0,
        serializations: 0,
    };

    // Root completion: worker 0's stack empties only when the whole DAG is
    // done (its AfterFork conts stall until every stolen child finished).
    let root_done = |workers: &Vec<Worker>| workers[0].conts.is_empty();

    let mut steps_guard: u64 = 0;
    loop {
        if root_done(&workers) {
            break;
        }
        steps_guard += 1;
        assert!(
            steps_guard < 2_000_000_000,
            "simulation failed to converge"
        );
        // The worker with the smallest clock acts next. Workers are always
        // runnable (idle ones steal).
        let w = (0..cfg.workers)
            .min_by_key(|&i| workers[i].clock)
            .unwrap();
        advance(w, &mut workers, &mut spawns, &mut rng, cfg, &mut res, trace);
    }
    res.makespan = workers.iter().map(|w| w.clock).max().unwrap_or(0);
    res
}

fn advance(
    w: usize,
    workers: &mut [Worker],
    spawns: &mut Vec<Spawn>,
    rng: &mut SimRng,
    cfg: &StealSimConfig,
    res: &mut StealSimResult,
    trace: &mut SimTrace,
) {
    enum Decision {
        Idle,
        FrameDone,
        DoStep(Step),
        AfterFork(usize),
        WaitJoin(usize),
        Complete(usize),
    }
    let decision = match workers[w].conts.last_mut() {
        None => Decision::Idle,
        Some(Cont::Steps { steps, ip }) => {
            if *ip < steps.len() {
                let step = steps[*ip];
                *ip += 1;
                Decision::DoStep(step)
            } else {
                Decision::FrameDone
            }
        }
        Some(Cont::AfterFork { spawn }) => Decision::AfterFork(*spawn),
        Some(Cont::WaitJoin { spawn }) => Decision::WaitJoin(*spawn),
        Some(Cont::Complete { spawn }) => Decision::Complete(*spawn),
    };
    match decision {
        Decision::Idle => {
            try_steal(w, workers, spawns, rng, cfg, res, trace);
        }
        Decision::FrameDone => {
            workers[w].conts.pop();
            workers[w].clock += 1;
        }
        Decision::DoStep(Step::Work(c)) => {
            workers[w].clock += c.max(1);
            res.total_work += c;
        }
        Decision::DoStep(Step::Call(t)) => {
            workers[w].clock += 2;
            workers[w].conts.push(Cont::Steps {
                steps: t.expand(),
                ip: 0,
            });
        }
        Decision::DoStep(Step::Fork(left, right)) => {
            let id = spawns.len();
            spawns.push(Spawn {
                task: right,
                state: SpawnState::Queued,
            });
            workers[w].deque.push_back(id);
            res.spawns += 1;
            workers[w].clock += cfg.sched.spawn;
            workers[w].conts.push(Cont::AfterFork { spawn: id });
            workers[w].conts.push(Cont::Steps {
                steps: left.expand(),
                ip: 0,
            });
        }
        Decision::AfterFork(id) => {
            workers[w].conts.pop();
            res.pops += 1;
            let mut cost = cfg.sched.pop + cfg.costs.victim_fence(cfg.kind);
            // The l-mfence position: what the victim's pop pays here is
            // the event the whole asymmetry is about.
            let fence_kind = if cfg.kind.victim_pays_fence() {
                res.victim_fences += 1;
                EventKind::PrimaryFullFence
            } else {
                EventKind::PrimaryFence
            };
            trace.emit(w, workers[w].clock, fence_kind, id, 0);
            match workers[w].deque.back().copied() {
                Some(top) if top == id => {
                    // Fast path: our spawn is still ours — run it inline.
                    workers[w].deque.pop_back();
                    spawns[id].state = SpawnState::Done; // owner-inlined
                    workers[w].conts.push(Cont::Steps {
                        steps: spawns[id].task.expand(),
                        ip: 0,
                    });
                }
                _ => match spawns[id].state {
                    SpawnState::Done => {}
                    SpawnState::Stolen => {
                        // THE conflict path: take the lock, discover the
                        // steal, then wait (stealing meanwhile).
                        cost += cfg.costs.lock;
                        workers[w].conts.push(Cont::WaitJoin { spawn: id });
                    }
                    SpawnState::Queued => {
                        unreachable!("balanced frames: queued spawn must be on top")
                    }
                },
            }
            workers[w].clock += cost;
        }
        Decision::WaitJoin(id) => {
            if spawns[id].state == SpawnState::Done {
                workers[w].conts.pop();
                workers[w].clock += 1;
            } else {
                try_steal(w, workers, spawns, rng, cfg, res, trace);
            }
        }
        Decision::Complete(id) => {
            spawns[id].state = SpawnState::Done;
            workers[w].conts.pop();
            workers[w].clock += 1;
        }
    }
}

fn try_steal(
    w: usize,
    workers: &mut [Worker],
    spawns: &mut [Spawn],
    rng: &mut SimRng,
    cfg: &StealSimConfig,
    res: &mut StealSimResult,
    trace: &mut SimTrace,
) {
    if cfg.workers == 1 {
        // Nobody to steal from; just idle briefly.
        workers[w].clock += cfg.sched.failed_steal_backoff;
        return;
    }
    // Probe one random victim per action, as the real thief loop does.
    let mut v = rng.below(cfg.workers as u64 - 1) as usize;
    if v >= w {
        v += 1;
    }
    res.steal_attempts += 1;
    if workers[v].deque.is_empty() {
        // Cheap peek (an unsynchronized head/tail read): an apparently
        // empty deque is skipped without engaging the Dekker protocol —
        // no lock, no fence, no serialization. This is how the paper's
        // runs keep signal-to-steal conversion in the 50-90% range.
        workers[w].clock += cfg.sched.probe + cfg.sched.failed_steal_backoff;
        return;
    }
    // Engage the full protocol: lock, H++, own fence, remote serialization
    // of the victim, read T. The whole attempt is one causal chain, same
    // schema as the real deque: steal-attempt → serialize phases (thief
    // and victim rows) → steal-success, linked by one correlation id in
    // virtual time.
    let corr = trace.mint_corr();
    trace.emit_corr(w, workers[w].clock, EventKind::StealAttempt, v, 0, corr);
    trace.emit(w, workers[w].clock, EventKind::SecondaryFence, v, 0);
    let (req_cost, victim_cost) = cfg.costs.serialize(cfg.kind);
    if req_cost > 0 || victim_cost > 0 {
        res.serializations += 1;
        let sent = workers[w].clock;
        trace.emit_corr(w, sent, EventKind::SerializeRequest, v, 0, corr);
        trace.emit_corr(w, sent, EventKind::SerializeSignalSent, v, 0, corr);
        // Victim-side handler phases, stamped on the victim's row. The
        // min-clock scheduler only lets the thief act when its clock is
        // the smallest, so `workers[v].clock >= sent`: the handler starts
        // at the victim's current clock (delivery latency = how far the
        // victim's clock is ahead) and the drain completes `victim_cost`
        // cycles later. These stamps are trace-only — the clock
        // arithmetic below is exactly what `simulate` (untraced) does.
        let enter = workers[v].clock;
        trace.emit_corr(v, enter, EventKind::SerializeHandlerEnter, w, 0, corr);
        trace.emit_corr(v, enter + victim_cost, EventKind::SerializeDrained, w, 0, corr);
        trace.emit_corr(w, sent, EventKind::SerializeDeliver, v, req_cost, corr);
        trace.emit_corr(w, sent + req_cost, EventKind::SerializeAckObserved, v, 0, corr);
    }
    let mut cost = cfg.sched.probe + cfg.costs.lock + cfg.costs.mfence + req_cost;
    // The victim is interrupted (signal handler / IPI / SB flush).
    workers[v].clock += victim_cost;
    // With a single queued item the victim races the thief for it: under
    // the asymmetric protocol the victim's fence-free T-decrement can sit
    // unseen in its store buffer until the serialization lands, so the
    // thief loses about half of these races. Benchmarks whose DAGs run
    // through serial chains (cholesky, lu) keep deques at one item and
    // lose often — the paper's poor-conversion cases; leaf-heavy DAGs
    // (fib) rarely expose a last item.
    let race_lost = workers[v].deque.len() == 1 && rng.below(2) == 0;
    if race_lost {
        cost += cfg.sched.failed_steal_backoff;
    } else {
        let id = workers[v].deque.pop_front().expect("non-empty checked");
        debug_assert_eq!(spawns[id].state, SpawnState::Queued);
        spawns[id].state = SpawnState::Stolen;
        res.steals += 1;
        trace.emit_corr(w, workers[w].clock + cost, EventKind::StealSuccess, v, 0, corr);
        workers[w].conts.push(Cont::Complete { spawn: id });
        workers[w].conts.push(Cont::Steps {
            steps: spawns[id].task.expand(),
            ip: 0,
        });
    }
    workers[w].clock += cost;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(root: Task, workers: usize, kind: SerializeKind) -> StealSimResult {
        simulate(root, &StealSimConfig::new(workers, kind))
    }

    #[test]
    fn single_worker_executes_all_work() {
        let root = Task::Fib { n: 15 };
        let m = root.measure();
        let r = run(root, 1, SerializeKind::Symmetric);
        assert_eq!(r.total_work, m.work);
        assert_eq!(r.spawns, m.forks);
        assert_eq!(r.steals, 0);
        assert!(r.makespan >= m.work);
    }

    #[test]
    fn work_conserved_across_worker_counts() {
        let root = Task::Sort { len: 200_000 };
        let w = root.measure().work;
        for p in [1usize, 2, 4, 16] {
            for kind in [SerializeKind::Symmetric, SerializeKind::Signal, SerializeKind::LeSt] {
                let r = run(root, p, kind);
                assert_eq!(r.total_work, w, "p={p} {kind:?}");
                assert_eq!(r.pops, r.spawns, "every spawn is popped or waited for");
            }
        }
    }

    #[test]
    fn parallelism_reduces_makespan() {
        let root = Task::Mm { m: 256, k: 256, n: 256 };
        let r1 = run(root, 1, SerializeKind::Symmetric);
        let r16 = run(root, 16, SerializeKind::Symmetric);
        assert!(
            (r16.makespan as f64) < 0.25 * r1.makespan as f64,
            "16 workers should be ≥4x faster: {} vs {}",
            r16.makespan,
            r1.makespan
        );
    }

    #[test]
    fn serial_asymmetric_beats_serial_symmetric() {
        // Figure 5(a)'s mechanism: with one worker, the asymmetric runtime
        // skips the per-pop fence and nothing ever serializes it.
        let root = Task::Fib { n: 20 };
        let sym = run(root, 1, SerializeKind::Symmetric);
        let asym = run(root, 1, SerializeKind::Signal);
        assert_eq!(asym.serializations, 0);
        assert!(asym.makespan < sym.makespan);
        assert!(sym.victim_fences > 0);
        assert_eq!(asym.victim_fences, 0);
    }

    #[test]
    fn lest_dominates_signal_in_parallel() {
        // Same DAG, same workers: the proposed hardware's cheap round trip
        // must never lose to the 10k-cycle signal prototype.
        let root = Task::Fib { n: 22 };
        let signal = run(root, 8, SerializeKind::Signal);
        let lest = run(root, 8, SerializeKind::LeSt);
        assert!(
            lest.makespan <= signal.makespan,
            "LE/ST {} vs signal {}",
            lest.makespan,
            signal.makespan
        );
    }

    #[test]
    fn conversion_is_a_fraction() {
        let r = run(Task::Fib { n: 18 }, 4, SerializeKind::Signal);
        let c = r.conversion();
        assert!((0.0..=1.0).contains(&c));
        assert!(r.steal_attempts >= r.steals);
    }

    #[test]
    fn traced_run_matches_untraced_and_counts_agree() {
        let cfg = StealSimConfig::new(4, SerializeKind::Signal);
        let root = Task::Fib { n: 18 };
        let plain = simulate(root, &cfg);
        let (traced, snap) = simulate_traced(root, &cfg);
        assert_eq!(plain.makespan, traced.makespan, "tracing must not perturb");
        assert_eq!(plain.steals, traced.steals);
        // The event stream is the result's counters, itemized.
        assert_eq!(snap.count(EventKind::StealSuccess), traced.steals);
        assert_eq!(snap.count(EventKind::SerializeRequest), traced.serializations);
        assert_eq!(snap.count(EventKind::PrimaryFence), traced.pops);
        assert_eq!(snap.count(EventKind::PrimaryFullFence), 0, "asymmetric run");
        assert_eq!(snap.threads.len(), 4);
        assert!(snap.threads.iter().all(|t| t.dropped == 0));
        assert_eq!(snap.threads[2].name, "sim-worker-2");
        // Virtual timestamps are per-worker monotone, and a simulated
        // snapshot exports through the same Chrome path as a real one.
        for t in &snap.threads {
            assert!(t.events.windows(2).all(|p| p[0].nanos <= p[1].nanos));
        }
        let json = lbmf_trace::chrome::export(&snap);
        lbmf_trace::chrome::validate_with_serialize_pair(&json).expect("valid chrome trace");
    }

    #[test]
    fn simulated_chains_reconstruct_like_real_ones() {
        use lbmf_trace::causal::{ChainSet, Completeness, Phase};
        let cfg = StealSimConfig::new(4, SerializeKind::Signal);
        let (res, snap) = simulate_traced(Task::Fib { n: 18 }, &cfg);
        let set = ChainSet::from_snapshot(&snap);
        assert!(!set.chains.is_empty());
        // Every chain comes from a steal attempt and is flagged as such.
        assert!(set.chains.iter().all(|c| c.is_steal()));
        // Every serialization produced a complete request→ack chain
        // (simulated rings never wrap, so no orphans are possible).
        let with_serialize = set
            .chains
            .iter()
            .filter(|c| c.round_trip_nanos().is_some())
            .count() as u64;
        assert_eq!(with_serialize, res.serializations);
        let complete = set
            .chains
            .iter()
            .filter(|c| c.completeness() == Completeness::Complete)
            .count() as u64;
        assert_eq!(complete, res.serializations);
        assert_eq!(set.accounting().dropped_events, 0);
        // Virtual-time phase attribution: the drain phase is exactly the
        // configured victim interruption cost on every chain.
        let (_, victim_cost) = cfg.costs.serialize(cfg.kind);
        for c in &set.chains {
            if c.completeness() == Completeness::Complete {
                assert_eq!(c.phase_nanos(Phase::Drain), Some(victim_cost));
                assert_eq!(c.phase_nanos(Phase::Queue), Some(0), "queueing is instant in sim");
            }
        }
        // The chains cross rows: requester and target differ.
        let cross = set
            .chains
            .iter()
            .filter(|c| c.requester().is_some() && c.target().is_some())
            .all(|c| c.requester() != c.target());
        assert!(cross, "victim phases land on the victim's row");
        // And the export carries matching flow events end to end.
        let json = lbmf_trace::chrome::export(&snap);
        lbmf_trace::chrome::validate(&json).expect("flow-paired chrome trace");
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"name\":\"steal-chain\""));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = StealSimConfig::new(4, SerializeKind::Signal);
        let a = simulate(Task::Fib { n: 18 }, &cfg);
        let b = simulate(Task::Fib { n: 18 }, &cfg);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.steals, b.steals);
    }
}

#[cfg(test)]
mod smoke {
    use super::*;
    #[test]
    #[ignore]
    fn fig5b_scale_smoke() {
        for name in ["fib", "cholesky", "heat", "cilksort"] {
            let root = Task::benchmark_root(name).unwrap();
            let t0 = std::time::Instant::now();
            let sym = simulate(root, &StealSimConfig::new(16, SerializeKind::Symmetric));
            let sig = simulate(root, &StealSimConfig::new(16, SerializeKind::Signal));
            let lest = simulate(root, &StealSimConfig::new(16, SerializeKind::LeSt));
            println!(
                "{name}: sym={} sig={} lest={} ratio_sig={:.3} ratio_lest={:.3} conv={:.2} ({:?})",
                sym.makespan, sig.makespan, lest.makespan,
                sig.makespan as f64 / sym.makespan as f64,
                lest.makespan as f64 / sym.makespan as f64,
                sig.conversion(), t0.elapsed()
            );
        }
    }
}

#[cfg(test)]
mod serial_ratio_smoke {
    use super::*;
    #[test]
    #[ignore]
    fn print_serial_ratios() {
        for name in ["fib", "fibx"] {
            let root = Task::benchmark_root(name).unwrap();
            let sym = simulate(root, &StealSimConfig::new(1, SerializeKind::Symmetric));
            let sig = simulate(root, &StealSimConfig::new(1, SerializeKind::Signal));
            println!("{name}: serial ratio {:.3}", sig.makespan as f64 / sym.makespan as f64);
        }
    }
}
