//! # lbmf-des — discrete-event reproductions of the parallel experiments
//!
//! The paper's Figure 5(b) (ACilk-5 vs Cilk-5 on 16 cores) and Figure 6
//! (ARW / ARW+ vs SRW across thread counts) were measured on a 16-core
//! Opteron. This repository's host has **one** core, so these experiments
//! are reproduced as discrete-event simulations whose per-operation costs
//! come from the same calibration as the cycle-level machine model in
//! `lbmf-sim` (mfence stalls, ~10⁴-cycle signal round trips, ~150-cycle
//! LE/ST round trips).
//!
//! * [`steal_sim`] — a sequentialized copy of the `lbmf-cilk` scheduler
//!   running over lazily-expanded fork-join DAGs ([`dag::Task`]) that
//!   mirror the twelve benchmarks' spawn structures.
//! * [`rw_sim`] — the readers-writer microbenchmark with the paper's three
//!   lock variants, including the ARW+ waiting heuristic.
//! * [`costs`] — the shared cost table and the serialization-mechanism
//!   axis (symmetric mfence, signal, membarrier, proposed LE/ST hardware).

#![warn(missing_docs)]

pub mod costs;
pub mod dag;
pub mod rw_sim;
pub mod steal_sim;

pub use costs::{DesCosts, SerializeKind};
pub use dag::Task;
pub use rw_sim::{RwSimConfig, RwSimResult, RwVariant};
pub use steal_sim::{SchedCosts, StealSimConfig, StealSimResult};
