//! Discrete-event simulation of the ARW / ARW+ / SRW readers-writer locks
//! — the Figure 6 substitute for a 16-core machine.
//!
//! The paper's microbenchmark: `P` threads each mostly read a 4-element
//! array; with a read-to-write ratio of `N:1`, each thread performs one
//! write every `N/P` reads. The three lock variants differ exactly where
//! the paper says:
//!
//! * **SRW**: every read pays an `mfence`; the writer publishes intent,
//!   fences, and waits for the per-reader flags directly.
//! * **ARW**: reads are fence-free; the writer serializes each registered
//!   reader *one by one* ("the writer ends up signaling a list of readers
//!   and waiting for their responses one by one, which becomes a
//!   serializing bottleneck").
//! * **ARW+**: the writer first publishes intent and spin-waits up to a
//!   window; readers acknowledge at their next lock acquire/release
//!   (paying a voluntary fence), and only unacknowledged readers get
//!   signaled.

use crate::costs::{DesCosts, SerializeKind};

/// Which lock variant to simulate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RwVariant {
    /// Symmetric: mfence on every read.
    Srw,
    /// Asymmetric, no waiting heuristic.
    Arw {
        /// The remote-serialization mechanism writers use.
        serialize: SerializeKind,
    },
    /// Asymmetric with the waiting heuristic.
    ArwPlus {
        /// The remote-serialization mechanism writers fall back to.
        serialize: SerializeKind,
        /// Spin window in cycles before signaling unacknowledged readers.
        window: u64,
    },
}

impl RwVariant {
    /// Human-readable variant name.
    pub fn label(self) -> String {
        match self {
            RwVariant::Srw => "SRW".to_string(),
            RwVariant::Arw { serialize } => format!("ARW[{}]", serialize.label()),
            RwVariant::ArwPlus { serialize, window } => {
                format!("ARW+[{} w={}]", serialize.label(), window)
            }
        }
    }
}

/// Simulation configuration.
#[derive(Clone, Copy, Debug)]
pub struct RwSimConfig {
    /// Number of simulated threads.
    pub threads: usize,
    /// Read-to-write ratio `N` (a write every `N / threads` reads per
    /// thread, as in the paper).
    pub ratio: u64,
    /// The lock variant under test.
    pub variant: RwVariant,
    /// Cycle cost table.
    pub costs: DesCosts,
    /// Reads each thread performs before the simulation ends.
    pub reads_per_thread: u64,
    /// Cycles spent inside a read section (the 4-element array read).
    pub read_work: u64,
    /// Cycles spent inside a write section.
    pub write_work: u64,
    /// Flag store + branch on the reader fast path, excluding the fence.
    pub read_overhead: u64,
}

impl RwSimConfig {
    /// A configuration with the default cost table and workload sizes.
    pub fn new(threads: usize, ratio: u64, variant: RwVariant) -> Self {
        RwSimConfig {
            threads,
            ratio,
            variant,
            costs: DesCosts::default(),
            reads_per_thread: 30_000,
            read_work: 16,
            write_work: 24,
            read_overhead: 8,
        }
    }
}

/// Simulation outcome.
#[derive(Clone, Copy, Debug)]
pub struct RwSimResult {
    /// Virtual completion time (cycles).
    pub makespan: u64,
    /// Read sections completed.
    pub reads: u64,
    /// Write sections completed.
    pub writes: u64,
    /// Serializations (signals/membarriers) writers performed.
    pub serializations: u64,
    /// Signals skipped thanks to the waiting heuristic.
    pub signals_skipped: u64,
    /// Reads that collided with an active write session.
    pub read_conflicts: u64,
}

impl RwSimResult {
    /// Reads per mega-cycle — Figure 6's throughput metric.
    pub fn read_throughput(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.reads as f64 * 1e6 / self.makespan as f64
    }
}

struct Thread {
    clock: u64,
    reads_done: u64,
    reads_since_write: u64,
    /// The thread acknowledged writer intent up to this session id.
    acked_session: u64,
}

/// Run the simulation.
pub fn simulate(cfg: &RwSimConfig) -> RwSimResult {
    assert!(cfg.threads >= 1);
    let p = cfg.threads as u64;
    let writes_every = (cfg.ratio / p).max(1);
    let mut threads: Vec<Thread> = (0..cfg.threads)
        .map(|i| Thread {
            // Tiny deterministic skew so threads do not act in lockstep.
            clock: i as u64 * 7,
            reads_done: 0,
            reads_since_write: 0,
            acked_session: 0,
        })
        .collect();
    let mut res = RwSimResult {
        makespan: 0,
        reads: 0,
        writes: 0,
        serializations: 0,
        signals_skipped: 0,
        read_conflicts: 0,
    };
    // The single most recent write session (writers are serialized by the
    // writer mutex, so one interval suffices for overlap checks as long as
    // we process threads in clock order).
    let mut session_id: u64 = 0;
    let mut session_start: u64 = 0;
    let mut session_end: u64 = 0;
    let mut writer_free_at: u64 = 0;

    while let Some(t) = (0..cfg.threads)
        .filter(|&i| threads[i].reads_done < cfg.reads_per_thread)
        .min_by_key(|&i| threads[i].clock)
    {
        // `t` is the unfinished thread with the smallest clock.
        let now = threads[t].clock;

        if threads[t].reads_since_write >= writes_every {
            // ----- write -----
            threads[t].reads_since_write = 0;
            let start = now.max(writer_free_at) + cfg.costs.lock;
            session_id += 1;
            // Publish intent + the writer's own fence.
            let mut time = start + cfg.costs.mfence;
            match cfg.variant {
                RwVariant::Srw => {
                    // Readers fenced themselves; just observe their flags.
                    time += cfg.threads as u64 * cfg.costs.cache_to_cache / 2;
                }
                RwVariant::Arw { serialize } => {
                    // Serialize every registered reader, one by one.
                    for (j, th) in threads.iter_mut().enumerate() {
                        if j == t {
                            continue;
                        }
                        let (req, vic) = cfg.costs.serialize(serialize);
                        time += req;
                        th.clock = th.clock.max(time).saturating_add(vic);
                        res.serializations += 1;
                    }
                }
                RwVariant::ArwPlus { serialize, window } => {
                    // Readers notice the intent at their next acquire /
                    // release — i.e. when their clock next advances past
                    // `start`.
                    let deadline = start + window;
                    let mut latest_ack = time;
                    for (j, th) in threads.iter_mut().enumerate() {
                        if j == t {
                            continue;
                        }
                        let ack_at = th.clock.max(start) + cfg.costs.mfence;
                        if ack_at <= deadline {
                            // Acks within the window: no signal needed.
                            th.acked_session = session_id;
                            th.clock = th.clock.max(ack_at);
                            latest_ack = latest_ack.max(ack_at);
                            res.signals_skipped += 1;
                        } else {
                            let (req, vic) = cfg.costs.serialize(serialize);
                            latest_ack = latest_ack.max(deadline) + req;
                            th.clock = th.clock.max(latest_ack).saturating_add(vic);
                            res.serializations += 1;
                        }
                    }
                    time = latest_ack;
                }
            }
            time += cfg.write_work;
            session_start = start;
            session_end = time;
            writer_free_at = time;
            res.writes += 1;
            threads[t].clock = time + cfg.costs.lock / 2;
        } else {
            // ----- read -----
            let fence = match cfg.variant {
                RwVariant::Srw => cfg.costs.mfence,
                _ => cfg.costs.compiler_fence,
            };
            let mut time = now + cfg.read_overhead + fence;
            if time >= session_start && time < session_end {
                // Writer active: back off, fence, wait for the session end.
                res.read_conflicts += 1;
                time = session_end + cfg.costs.mfence + cfg.read_overhead;
            }
            time += cfg.read_work;
            threads[t].clock = time;
            threads[t].reads_done += 1;
            threads[t].reads_since_write += 1;
            res.reads += 1;
        }
    }
    res.makespan = threads.iter().map(|t| t.clock).max().unwrap_or(0);
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(threads: usize, ratio: u64, variant: RwVariant) -> RwSimResult {
        let mut cfg = RwSimConfig::new(threads, ratio, variant);
        cfg.reads_per_thread = 5_000;
        simulate(&cfg)
    }

    const SIG: SerializeKind = SerializeKind::Signal;

    #[test]
    fn read_counts_match_configuration() {
        let r = run(4, 1000, RwVariant::Srw);
        assert_eq!(r.reads, 4 * 5_000);
        assert!(r.writes > 0);
    }

    #[test]
    fn single_thread_arw_beats_srw() {
        // With one thread the asymmetric lock wins outright: reads carry
        // no fence and writes serialize nobody.
        let srw = run(1, 1000, RwVariant::Srw);
        let arw = run(1, 1000, RwVariant::Arw { serialize: SIG });
        assert!(
            arw.read_throughput() > 1.5 * srw.read_throughput(),
            "ARW {} vs SRW {}",
            arw.read_throughput(),
            srw.read_throughput()
        );
        assert_eq!(arw.serializations, 0);
    }

    #[test]
    fn arw_collapses_at_low_ratio_high_threads() {
        // Figure 6(a): the one-by-one signaling bottleneck.
        let srw = run(16, 300, RwVariant::Srw);
        let arw = run(16, 300, RwVariant::Arw { serialize: SIG });
        assert!(
            arw.read_throughput() < srw.read_throughput(),
            "ARW {} vs SRW {}",
            arw.read_throughput(),
            srw.read_throughput()
        );
        assert!(arw.serializations > 0);
    }

    #[test]
    fn arw_wins_at_high_ratio() {
        // Figure 6(a): with writes rare, fence-free reads dominate.
        let srw = run(8, 100_000, RwVariant::Srw);
        let arw = run(8, 100_000, RwVariant::Arw { serialize: SIG });
        assert!(
            arw.read_throughput() > srw.read_throughput(),
            "ARW {} vs SRW {}",
            arw.read_throughput(),
            srw.read_throughput()
        );
    }

    #[test]
    fn waiting_heuristic_rescues_low_ratio() {
        // Figure 6(b): ARW+ skips nearly all signals because busy readers
        // acknowledge quickly.
        let arw = run(16, 300, RwVariant::Arw { serialize: SIG });
        let arw_plus = run(
            16,
            300,
            RwVariant::ArwPlus { serialize: SIG, window: 20_000 },
        );
        assert!(arw_plus.read_throughput() > arw.read_throughput());
        assert!(arw_plus.signals_skipped > arw_plus.serializations);
    }

    #[test]
    fn lest_serialization_beats_signal_serialization() {
        let sig = run(16, 300, RwVariant::Arw { serialize: SerializeKind::Signal });
        let lest = run(16, 300, RwVariant::Arw { serialize: SerializeKind::LeSt });
        assert!(lest.read_throughput() > sig.read_throughput());
    }

    #[test]
    fn deterministic() {
        let a = run(8, 500, RwVariant::Arw { serialize: SIG });
        let b = run(8, 500, RwVariant::Arw { serialize: SIG });
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.reads, b.reads);
    }
}
