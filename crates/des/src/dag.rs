//! Lazily-expanded fork-join task descriptors for the twelve benchmarks.
//!
//! The steal simulator executes *structures*, not numerics: a [`Task`]
//! expands into a short sequence of [`Step`]s — serial work (in cycles),
//! sequential sub-calls, and binary forks — mirroring each benchmark's real
//! spawn tree in `lbmf-cilk::bench`. Leaf work constants are rough per-op
//! cycle estimates; what the Figure 5(b) reproduction needs is the *ratio*
//! of useful work to scheduling events, and that is fixed by the structure
//! (cutoffs, fan-out, barriers), which is copied from the real kernels.

/// One benchmark task (all variants are a few words, `Copy`).
///
/// Variant fields follow the obvious conventions of each kernel (`n`
/// problem size, `len` element count, `rows`/`cols` extents, `level`
/// recursion depth, `index` a position used to individualize irregular
/// work) — documented once here rather than per field.
#[allow(missing_docs)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Task {
    Fib { n: u32 },
    FibxSpine { depth: u32, leaf: u32 },
    Sort { len: u64 },
    Merge { len: u64 },
    Fft { len: u64 },
    Heat { nx: u64, ny: u64, steps: u32 },
    HeatRows { rows: u64, ny: u64 },
    /// Branch-and-bound node; `index` individualizes (irregular) leaf work.
    Knap { level: u32, index: u64, par_depth: u32, total_items: u32 },
    /// `C += A·B` with dimensions (m, k, n).
    Mm { m: u64, k: u64, n: u64 },
    /// Triangular solve of `n×n` against `cols` columns (column-forked).
    TriSolve { n: u64, cols: u64 },
    /// `C -= A·Aᵀ` over `rows` rows with inner dimension `k` (row-forked).
    Syrk { rows: u64, k: u64 },
    Lu { n: u64 },
    Chol { n: u64 },
    Strassen { n: u64 },
    /// Join-tree node over Strassen's seven half-size products.
    StrNode { h: u64, lo: u8, hi: u8 },
    /// N-queens: fold over `count` candidate placements at `level`.
    NqFold { n: u32, level: u32, count: u32, index: u64 },
    /// N-queens: one placement explored (recurse or sequential subtree).
    NqNode { n: u32, level: u32, index: u64 },
}

/// One step of an expanded task, executed in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Serial work, in cycles.
    Work(u64),
    /// Sequential sub-task (plain call).
    Call(Task),
    /// `join(left, right)`: right is pushed (stealable), left runs now.
    Fork(Task, Task),
}

// Cutoffs copied from the real kernels.
const SORT_CUTOFF: u64 = 2048;
const MERGE_CUTOFF: u64 = 4096;
const FFT_CUTOFF: u64 = 256;
const HEAT_ROW_CUTOFF: u64 = 16;
const MM_BASE: u64 = 32;
const FACT_BASE: u64 = 32;
const STRASSEN_BASE: u64 = 64;
const NQ_PAR_DEPTH: u32 = 3;

fn log2(x: u64) -> u64 {
    63 - x.max(1).leading_zeros() as u64
}

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^ (z >> 31)
}

impl Task {
    /// Expand into steps. The returned vector is short (≤ a few entries)
    /// except for `Heat`, whose per-timestep barrier structure is a list.
    pub fn expand(&self) -> Vec<Step> {
        use Step::*;
        use Task::*;
        match *self {
            Fib { n } => {
                if n < 2 {
                    vec![Work(5)]
                } else {
                    vec![Fork(Fib { n: n - 1 }, Fib { n: n - 2 }), Work(10)]
                }
            }
            FibxSpine { depth, leaf } => {
                if depth == 0 {
                    vec![Work(5)]
                } else {
                    vec![
                        Fork(
                            FibxSpine { depth: depth - 1, leaf },
                            Fib { n: leaf },
                        ),
                        Work(10),
                    ]
                }
            }
            Sort { len } => {
                if len <= SORT_CUTOFF {
                    // sort_unstable: ~2 cycles per element-comparison.
                    vec![Work(2 * len * log2(len).max(1))]
                } else {
                    let half = len / 2;
                    vec![
                        Fork(Sort { len: half }, Sort { len: len - half }),
                        Call(Merge { len }),
                        Work(len), // copy back
                    ]
                }
            }
            Merge { len } => {
                if len <= MERGE_CUTOFF {
                    vec![Work(3 * len)]
                } else {
                    let half = len / 2;
                    // Binary search for the split point, then fork.
                    vec![
                        Work(2 * log2(len)),
                        Fork(Merge { len: half }, Merge { len: len - half }),
                    ]
                }
            }
            Fft { len } => {
                if len <= FFT_CUTOFF {
                    vec![Work(8 * len * log2(len).max(1))]
                } else {
                    let half = len / 2;
                    vec![
                        Work(4 * len), // deinterleave
                        Fork(Fft { len: half }, Fft { len: half }),
                        Work(10 * len), // twiddle combine
                    ]
                }
            }
            Heat { nx, ny, steps } => {
                let mut v = Vec::with_capacity(2 * steps as usize);
                for _ in 0..steps {
                    v.push(Call(HeatRows { rows: nx.saturating_sub(2), ny }));
                    v.push(Work(2 * ny)); // boundary copy + swap
                }
                v
            }
            HeatRows { rows, ny } => {
                if rows <= HEAT_ROW_CUTOFF {
                    vec![Work(6 * rows * ny)]
                } else {
                    let half = rows / 2;
                    vec![Fork(
                        HeatRows { rows: half, ny },
                        HeatRows { rows: rows - half, ny },
                    )]
                }
            }
            Knap { level, index, par_depth, total_items } => {
                if level >= par_depth {
                    // Sequential branch-and-bound subtree: size varies
                    // wildly with pruning — model with an index-hashed
                    // spread over two orders of magnitude.
                    let remaining = total_items.saturating_sub(level) as u64;
                    let base = 40 * remaining * remaining;
                    let spread = 1 + mix(index) % 128;
                    vec![Work(base * spread)]
                } else {
                    vec![
                        Work(30), // bound computation
                        Fork(
                            Knap { level: level + 1, index: index * 2, par_depth, total_items },
                            Knap { level: level + 1, index: index * 2 + 1, par_depth, total_items },
                        ),
                    ]
                }
            }
            Mm { m, k, n } => {
                if m <= MM_BASE && k <= MM_BASE && n <= MM_BASE {
                    vec![Work(m * k * n)]
                } else if m >= k && m >= n {
                    let half = m / 2;
                    vec![Fork(
                        Mm { m: half, k, n },
                        Mm { m: m - half, k, n },
                    )]
                } else if n >= k {
                    let half = n / 2;
                    vec![Fork(
                        Mm { m, k, n: half },
                        Mm { m, k, n: n - half },
                    )]
                } else {
                    let half = k / 2;
                    // Shared output: the two halves run sequentially.
                    vec![
                        Call(Mm { m, k: half, n }),
                        Call(Mm { m, k: k - half, n }),
                    ]
                }
            }
            TriSolve { n, cols } => {
                if cols <= FACT_BASE {
                    vec![Work(n * n * cols / 2)]
                } else {
                    let half = cols / 2;
                    vec![Fork(
                        TriSolve { n, cols: half },
                        TriSolve { n, cols: cols - half },
                    )]
                }
            }
            Syrk { rows, k } => {
                if rows <= FACT_BASE {
                    vec![Work(rows * k * k)]
                } else {
                    let half = rows / 2;
                    vec![Fork(
                        Syrk { rows: half, k },
                        Syrk { rows: rows - half, k },
                    )]
                }
            }
            Lu { n } => {
                if n <= FACT_BASE {
                    vec![Work(n * n * n / 3 + 10)]
                } else {
                    let h = n / 2;
                    vec![
                        Call(Lu { n: h }),
                        Fork(TriSolve { n: h, cols: h }, TriSolve { n: h, cols: h }),
                        Call(Mm { m: h, k: h, n: h }),
                        Call(Lu { n: h }),
                    ]
                }
            }
            Chol { n } => {
                if n <= FACT_BASE {
                    vec![Work(n * n * n / 6 + 10)]
                } else {
                    let h = n / 2;
                    vec![
                        Call(Chol { n: h }),
                        Call(TriSolve { n: h, cols: h }),
                        Call(Syrk { rows: h, k: h }),
                        Call(Chol { n: h }),
                    ]
                }
            }
            Strassen { n } => {
                if n <= STRASSEN_BASE {
                    vec![Work(n * n * n)]
                } else {
                    let h = n / 2;
                    vec![
                        Call(StrNode { h, lo: 0, hi: 7 }),
                        Work(8 * h * h), // quadrant recombination
                    ]
                }
            }
            StrNode { h, lo, hi } => {
                if hi - lo == 1 {
                    // Operand temporaries + the product itself.
                    vec![Work(3 * h * h), Call(Strassen { n: h })]
                } else {
                    let mid = (lo + hi) / 2;
                    vec![Fork(
                        StrNode { h, lo, hi: mid },
                        StrNode { h, lo: mid, hi },
                    )]
                }
            }
            NqFold { n, level, count, index } => match count {
                0 => vec![Work(5)],
                1 => vec![Call(NqNode { n, level, index })],
                _ => {
                    let half = count / 2;
                    vec![Fork(
                        NqFold { n, level, count: half, index: index * 2 },
                        NqFold { n, level, count: count - half, index: index * 2 + 1 },
                    )]
                }
            },
            NqNode { n, level, index } => {
                if level >= NQ_PAR_DEPTH {
                    // Sequential backtracking subtree; highly irregular.
                    let depth = (n - level) as u64;
                    let size = 3u64.saturating_pow(depth.min(12) as u32);
                    let spread = 1 + mix(index) % 16;
                    vec![Work(8 * size * spread / 8)]
                } else {
                    // Roughly n - 2·level candidates survive the masks.
                    let count = (n as i64 - 2 * level as i64).max(1) as u32;
                    vec![
                        Work(20),
                        Call(NqFold { n, level: level + 1, count, index }),
                    ]
                }
            }
        }
    }

    /// The root task for each Figure-4 benchmark at DES scale (structural
    /// sizes chosen so the simulated DAG has 10⁴–10⁶ nodes).
    pub fn benchmark_root(name: &str) -> Option<Task> {
        use Task::*;
        Some(match name {
            "fib" => Fib { n: 30 },
            "fibx" => FibxSpine { depth: 280, leaf: 17 },
            "cilksort" => Sort { len: 10_000_000 },
            "fft" => Fft { len: 1 << 22 },
            "heat" => Heat { nx: 2048, ny: 2048, steps: 100 },
            "knapsack" => Knap { level: 0, index: 1, par_depth: 10, total_items: 32 },
            "lu" => Lu { n: 2048 },
            "cholesky" => Chol { n: 2048 },
            "matmul" => Mm { m: 1024, k: 1024, n: 1024 },
            "rectmul" => Mm { m: 2048, k: 1024, n: 512 },
            "strassen" => Strassen { n: 2048 },
            "nqueens" => NqNode { n: 14, level: 0, index: 1 },
            _ => return None,
        })
    }

    /// Total serial work (cycles) and node count of the DAG under this
    /// task — computed by structural recursion (memoization would be
    /// better; sizes here keep plain recursion affordable).
    pub fn measure(&self) -> DagMeasure {
        let mut m = DagMeasure::default();
        measure_rec(*self, &mut m);
        m
    }
}

/// Aggregate DAG statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DagMeasure {
    /// Total serial work in cycles (T₁ without scheduling overhead).
    pub work: u64,
    /// Number of fork (spawn) nodes.
    pub forks: u64,
    /// Number of tasks expanded.
    pub tasks: u64,
}

fn measure_rec(task: Task, m: &mut DagMeasure) {
    m.tasks += 1;
    for step in task.expand() {
        match step {
            Step::Work(w) => m.work += w,
            Step::Call(t) => measure_rec(t, m),
            Step::Fork(a, b) => {
                m.forks += 1;
                measure_rec(a, m);
                measure_rec(b, m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fib_expansion_matches_recurrence() {
        let m = Task::Fib { n: 10 }.measure();
        // #tasks for fib(n) = 2·fib(n+1) − 1.
        assert_eq!(m.tasks, 2 * 89 - 1);
        assert_eq!(m.forks, 89 - 1); // internal nodes
    }

    #[test]
    fn all_benchmarks_have_roots() {
        for name in [
            "cholesky", "cilksort", "fft", "fib", "fibx", "heat", "knapsack", "lu", "matmul",
            "nqueens", "rectmul", "strassen",
        ] {
            assert!(Task::benchmark_root(name).is_some(), "{name}");
        }
        assert!(Task::benchmark_root("bogus").is_none());
    }

    #[test]
    fn leaf_tasks_have_pure_work() {
        for t in [
            Task::Fib { n: 0 },
            Task::Sort { len: 100 },
            Task::Merge { len: 64 },
            Task::Mm { m: 8, k: 8, n: 8 },
            Task::HeatRows { rows: 4, ny: 64 },
        ] {
            let steps = t.expand();
            assert!(matches!(steps.as_slice(), [Step::Work(_)]), "{t:?} -> {steps:?}");
        }
    }

    #[test]
    fn structural_sizes_are_tractable() {
        // Keep the DES affordable: every benchmark's DAG stays under ~8M
        // tasks (fib, the spawn-overhead probe, is deliberately the
        // largest).
        for name in [
            "cilksort", "fft", "heat", "knapsack", "lu", "cholesky", "matmul", "rectmul",
            "strassen", "nqueens", "fibx",
        ] {
            let m = Task::benchmark_root(name).unwrap().measure();
            assert!(m.tasks < 2_000_000, "{name}: {} tasks", m.tasks);
            assert!(m.work > 0);
        }
        let fib = Task::benchmark_root("fib").unwrap().measure();
        assert!(fib.tasks < 8_000_000);
    }

    #[test]
    fn knapsack_leaves_are_irregular() {
        let a = Task::Knap { level: 10, index: 5, par_depth: 10, total_items: 32 }.expand();
        let b = Task::Knap { level: 10, index: 6, par_depth: 10, total_items: 32 }.expand();
        assert_ne!(a, b, "pruned subtrees should differ in size");
    }

    #[test]
    fn lu_has_series_parallel_structure() {
        let steps = Task::Lu { n: 128 }.expand();
        assert_eq!(steps.len(), 4);
        assert!(matches!(steps[1], Step::Fork(_, _)));
        assert!(matches!(steps[0], Step::Call(Task::Lu { n: 64 })));
    }
}
