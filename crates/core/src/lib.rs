//! # lbmf — location-based memory fences for real threads
//!
//! Software realizations of the *location-based memory fence* from
//! Ladan-Mozes, Lee & Vyukov, SPAA 2011, plus the asymmetric
//! synchronization protocols the paper builds on them.
//!
//! A **program-based** fence (`mfence`) stalls the executing processor
//! unconditionally. A **location-based** fence serializes the primary
//! thread only when another thread actually inspects the guarded location —
//! the secondary *remotely enforces* the fence. The paper's proposed LE/ST
//! hardware lives in the sibling crate `lbmf-sim`; this crate provides the
//! two software mechanisms that exist on stock hardware:
//!
//! * [`strategy::SignalFence`] — the paper's prototype: a POSIX signal
//!   handshake (≈10⁴ cycles per serialization);
//! * [`strategy::MembarrierFence`] — Linux `membarrier(2)` with
//!   `PRIVATE_EXPEDITED` (≈10³ cycles), the modern kernel-assisted
//!   asymmetric fence;
//!
//! along with [`strategy::Symmetric`] (the program-based baseline) and
//! [`strategy::NoFence`] (the deliberately broken Figure-1 idiom, for
//! demonstrations).
//!
//! On top of the strategies:
//!
//! * [`dekker::AsymmetricDekker`] — the Figure 3(a) protocol with a turn
//!   tie-break;
//! * [`biased::BiasedLock`] — a biased lock in the style of Java monitors;
//! * [`arw::AsymRwLock`] — the reader-biased readers-writer lock of
//!   Section 5, covering the paper's SRW / ARW / ARW+ variants through its
//!   strategy parameter and spin window.
//!
//! ## Quickstart
//!
//! ```
//! use lbmf::prelude::*;
//! use std::sync::Arc;
//!
//! // An ARW lock whose readers never execute a hardware fence.
//! let lock = Arc::new(AsymRwLock::new(Arc::new(SignalFence::new())));
//!
//! let l = lock.clone();
//! let reader = std::thread::spawn(move || {
//!     let h = l.register_reader();
//!     h.read(|| { /* fence-free read section */ })
//! });
//! reader.join().unwrap();
//!
//! lock.with_write(|| { /* writer serialized every registered reader */ });
//! assert_eq!(lock.strategy().stats().snapshot().primary_full_fences, 0);
//! ```
//!
//! ## Memory-model footing
//!
//! The asymmetric fast paths pair `Release`/`Acquire` atomics with a
//! compiler fence; the cross-thread ordering they need is established by
//! the serialization handshake itself (the signal handler runs *in* the
//! primary thread and performs a `SeqCst` fence before acknowledging, and
//! `membarrier` provides the analogous kernel-level barrier), mirroring the
//! paper's hardware argument. The symmetric strategy uses `SeqCst` fences
//! and is sound under the plain Rust memory model.

#![warn(missing_docs)]

pub mod arw;
pub mod biased;
pub mod dekker;
pub mod fence;
pub mod hooks;
pub mod litmus;
pub mod owned;
pub mod registry;
pub mod safepoint;
pub mod stats;
pub mod strategy;
pub mod sync;
pub mod sys;
pub(crate) mod trace;

/// The commonly used surface of the crate.
pub mod prelude {
    pub use crate::arw::{AsymRwLock, ReaderHandle, WriteGuard};
    pub use crate::biased::{BiasedLock, Owner};
    pub use crate::dekker::{AsymmetricDekker, Primary};
    pub use crate::fence::{compiler_fence_only, full_fence, spin_for, spin_until};
    pub use crate::litmus::{run_sb_litmus, LitmusHistogram};
    pub use crate::owned::{CellOwner, OwnedCell};
    pub use crate::registry::{register_current_thread, Registration, RemoteThread};
    pub use crate::safepoint::{Mutator, Safepoint};
    pub use crate::stats::{FenceStats, FenceStatsSnapshot};
    pub use crate::strategy::{FenceStrategy, MembarrierFence, NoFence, SignalFence, Symmetric};
}
