//! Thread-owned data with occasional remote updates — the paper's network
//! packet-processing motivation (Section 1): "each processing thread
//! maintains its own data structures for its group of source addresses,
//! but occasionally, a thread might need to update data structures
//! maintained by a different thread."
//!
//! An [`OwnedCell<T, S>`] gives its owner thread fence-free mutable access
//! (the asymmetric-Dekker fast path via [`BiasedLock`]) while any other
//! thread can perform a *remote update*: it revokes the owner's bias,
//! forces the owner to serialize, mutates, and hands the cell back.

use crate::biased::{BiasedLock, Owner};
use crate::strategy::FenceStrategy;
use std::cell::UnsafeCell;
use std::sync::Arc;

/// A value owned by one thread, remotely updatable by others.
pub struct OwnedCell<T, S: FenceStrategy> {
    lock: Arc<BiasedLock<S>>,
    data: UnsafeCell<T>,
}

// SAFETY: all access to `data` happens under the biased lock's mutual
// exclusion (owner fast path XOR revoker path); `T: Send` because the
// value is mutated from multiple threads (one at a time).
unsafe impl<T: Send, S: FenceStrategy> Sync for OwnedCell<T, S> {}
unsafe impl<T: Send, S: FenceStrategy> Send for OwnedCell<T, S> {}

impl<T: Send, S: FenceStrategy> OwnedCell<T, S> {
    /// A cell with no owner bound yet, holding `value`.
    pub fn new(strategy: Arc<S>, value: T) -> Self {
        OwnedCell {
            lock: Arc::new(BiasedLock::new(strategy)),
            data: UnsafeCell::new(value),
        }
    }

    /// Bind the calling thread as the owner; its accesses take the
    /// fence-free fast path from now on.
    ///
    /// # Panics
    ///
    /// Panics if an owner is already bound.
    pub fn register_owner(self: &Arc<Self>) -> CellOwner<T, S> {
        CellOwner {
            owner: self.lock.register_owner(),
            cell: Arc::clone(self),
        }
    }

    /// Update the value from a non-owner thread: revokes the owner's bias
    /// (remote serialization), mutates, releases.
    pub fn remote_update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let _guard = self.lock.revoke_lock();
        // SAFETY: the revoker guard excludes the owner and other revokers.
        f(unsafe { &mut *self.data.get() })
    }

    /// Read a snapshot from a non-owner thread (same exclusion as
    /// [`remote_update`](Self::remote_update)).
    pub fn remote_read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let _guard = self.lock.revoke_lock();
        // SAFETY: as above.
        f(unsafe { &*self.data.get() })
    }

    /// The underlying biased lock (for statistics).
    pub fn lock(&self) -> &BiasedLock<S> {
        &self.lock
    }
}

/// The owner's handle; only valid on the registering thread.
pub struct CellOwner<T, S: FenceStrategy> {
    cell: Arc<OwnedCell<T, S>>,
    owner: Owner<S>,
}

impl<T: Send, S: FenceStrategy> CellOwner<T, S> {
    /// Mutable access on the fence-free fast path.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.owner.with_lock(|| {
            // SAFETY: the owner guard excludes revokers.
            f(unsafe { &mut *self.cell.data.get() })
        })
    }

    /// Read-only access on the fast path.
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.with(|v| f(v))
    }

    /// The cell this owner handle belongs to.
    pub fn cell(&self) -> &Arc<OwnedCell<T, S>> {
        &self.cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{SignalFence, Symmetric};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[test]
    fn owner_fast_path_mutates() {
        let cell = Arc::new(OwnedCell::new(Arc::new(SignalFence::new()), 0u64));
        let c = cell.clone();
        std::thread::spawn(move || {
            let owner = c.register_owner();
            for _ in 0..1_000 {
                owner.with(|v| *v += 1);
            }
            owner.read(|v| assert_eq!(*v, 1_000));
        })
        .join()
        .unwrap();
        assert_eq!(cell.remote_read(|v| *v), 1_000);
        // The owner never executed a hardware fence.
        assert_eq!(cell.lock().strategy().stats().snapshot().primary_full_fences, 0);
    }

    #[test]
    fn remote_updates_interleave_safely() {
        // Owner increments by 1; remote threads add 1000s; the final sum
        // must be exact (no lost updates despite the fence-free owner).
        let cell = Arc::new(OwnedCell::new(Arc::new(SignalFence::new()), 0i64));
        let stop = Arc::new(AtomicBool::new(false));

        const OWNER_ADDS: i64 = 50_000;
        const REMOTE_ADDS: i64 = 200;

        let c = cell.clone();
        let s = stop.clone();
        let owner_thread = std::thread::spawn(move || {
            let owner = c.register_owner();
            for _ in 0..OWNER_ADDS {
                owner.with(|v| *v += 1);
            }
            // Keep the owner registered until remotes finish (signals must
            // have a live target).
            while !s.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_micros(50));
            }
        });

        let mut remotes = Vec::new();
        for _ in 0..2 {
            let c = cell.clone();
            remotes.push(std::thread::spawn(move || {
                for _ in 0..REMOTE_ADDS {
                    c.remote_update(|v| *v += 1_000);
                }
            }));
        }
        for r in remotes {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        owner_thread.join().unwrap();

        let expected = OWNER_ADDS + 2 * REMOTE_ADDS * 1_000;
        assert_eq!(cell.remote_read(|v| *v), expected);
    }

    #[test]
    fn non_copy_payloads_work() {
        let cell = Arc::new(OwnedCell::new(
            Arc::new(Symmetric::new()),
            Vec::<String>::new(),
        ));
        cell.remote_update(|v| v.push("from-remote".to_string()));
        let c = cell.clone();
        std::thread::spawn(move || {
            let owner = c.register_owner();
            owner.with(|v| v.push("from-owner".to_string()));
            owner.read(|v| assert_eq!(v.len(), 2));
        })
        .join()
        .unwrap();
        assert_eq!(cell.remote_read(|v| v.join(",")), "from-remote,from-owner");
    }
}
