//! Safepoint coordination — the paper's JVM motivation (Section 1): "JVM
//! employs the Dekker duality to coordinate between mutator threads
//! (primary) executing outside of JVM (via Java Native Interface) and the
//! garbage collector (secondary)."
//!
//! Mutators run *pinned regions* (the analogue of executing native code
//! that the collector must not interrupt) on a fence-free fast path; the
//! collector requests a stop-the-world pause, remotely serializing each
//! registered mutator so their possibly-buffered pin flags become visible,
//! and waits for all of them to drain out.
//!
//! Built as a domain wrapper over [`AsymRwLock`]: pinned regions are read
//! sections, the world-stop is the write lock (with the ARW+ waiting
//! heuristic available through the spin window).

use crate::arw::{AsymRwLock, ReaderHandle};
use crate::strategy::FenceStrategy;
#[allow(unused_imports)]
use crate::trace::{trace_event, trace_span_end, trace_span_start};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A stop-the-world coordination point.
pub struct Safepoint<S: FenceStrategy> {
    lock: Arc<AsymRwLock<S>>,
}

impl<S: FenceStrategy> Safepoint<S> {
    /// A safepoint whose world-stops signal every registered mutator.
    pub fn new(strategy: Arc<S>) -> Self {
        Safepoint {
            lock: Arc::new(AsymRwLock::new(strategy)),
        }
    }

    /// A safepoint using the waiting heuristic: the collector spins up to
    /// `spin_window` iterations for mutators to acknowledge before
    /// signaling them.
    pub fn with_spin_window(strategy: Arc<S>, spin_window: u32) -> Self {
        Safepoint {
            lock: Arc::new(AsymRwLock::with_spin_window(strategy, spin_window)),
        }
    }

    /// Register the calling thread as a mutator.
    pub fn register_mutator(&self) -> Mutator<S> {
        Mutator {
            handle: self.lock.register_reader(),
        }
    }

    /// Stop the world: wait for every registered mutator to leave its
    /// pinned region (serializing them remotely as needed), run `f`
    /// exclusively, then release the world.
    pub fn stop_the_world<R>(&self, f: impl FnOnce() -> R) -> R {
        let key = Arc::as_ptr(&self.lock) as *const () as usize;
        trace_event!(SafepointEnter, key);
        let start = trace_span_start!();
        let out = self.lock.with_write(f);
        trace_span_end!(SafepointExit, key, start);
        out
    }

    /// Number of currently registered mutators.
    pub fn mutators(&self) -> usize {
        self.lock.active_readers()
    }

    /// World-stops performed so far.
    pub fn pauses(&self) -> u64 {
        self.lock.writes.load(Ordering::Relaxed)
    }

    /// The underlying lock (statistics, strategy).
    pub fn lock(&self) -> &AsymRwLock<S> {
        &self.lock
    }
}

/// A registered mutator thread's handle.
pub struct Mutator<S: FenceStrategy> {
    handle: ReaderHandle<S>,
}

impl<S: FenceStrategy> Mutator<S> {
    /// Run `f` pinned: a stop-the-world request waits until `f` returns.
    /// Entering costs two flag accesses and a compiler fence under an
    /// asymmetric strategy — the fence-free fast path.
    pub fn pinned<R>(&self, f: impl FnOnce() -> R) -> R {
        self.handle.read(f)
    }

    /// A cheap safepoint poll: if a world-stop is pending, park until it
    /// finishes (acknowledging the collector, which lets it skip the
    /// signal under the waiting heuristic); otherwise return immediately.
    pub fn safepoint_check(&self) {
        self.handle.read(|| {});
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::SignalFence;
    use std::sync::atomic::{AtomicBool, AtomicU64};
    use std::time::Duration;

    #[test]
    fn stop_the_world_excludes_pinned_regions() {
        let sp = Arc::new(Safepoint::new(Arc::new(SignalFence::new())));
        let world_stopped = Arc::new(AtomicBool::new(false));
        let violations = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        let mut mutators = Vec::new();
        for _ in 0..3 {
            let sp = sp.clone();
            let ws = world_stopped.clone();
            let v = violations.clone();
            let s = stop.clone();
            mutators.push(std::thread::spawn(move || {
                let m = sp.register_mutator();
                while !s.load(Ordering::Relaxed) {
                    m.pinned(|| {
                        if ws.load(Ordering::SeqCst) {
                            v.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            }));
        }
        crate::fence::spin_until(|| sp.mutators() == 3);
        for _ in 0..20 {
            sp.stop_the_world(|| {
                world_stopped.store(true, Ordering::SeqCst);
                std::thread::sleep(Duration::from_micros(100));
                world_stopped.store(false, Ordering::SeqCst);
            });
        }
        stop.store(true, Ordering::Relaxed);
        for m in mutators {
            m.join().unwrap();
        }
        assert_eq!(
            violations.load(Ordering::Relaxed),
            0,
            "a mutator was pinned during a world-stop"
        );
        assert_eq!(sp.pauses(), 20);
    }

    #[test]
    fn safepoint_check_is_fence_free_when_quiet() {
        let sp = Arc::new(Safepoint::new(Arc::new(SignalFence::new())));
        let sp2 = sp.clone();
        std::thread::spawn(move || {
            let m = sp2.register_mutator();
            for _ in 0..500 {
                m.safepoint_check();
            }
        })
        .join()
        .unwrap();
        let snap = sp.lock().strategy().stats().snapshot();
        assert_eq!(snap.primary_full_fences, 0);
        assert_eq!(snap.primary_compiler_fences, 500);
    }

    #[test]
    fn world_stop_without_mutators_is_immediate() {
        let sp: Safepoint<SignalFence> = Safepoint::new(Arc::new(SignalFence::new()));
        let out = sp.stop_the_world(|| 42);
        assert_eq!(out, 42);
        assert_eq!(sp.pauses(), 1);
        assert_eq!(sp.mutators(), 0);
    }
}
