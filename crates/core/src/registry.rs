//! Thread registration for remote serialization.
//!
//! The software prototype of `l-mfence` (Section 5) serializes the primary
//! thread by sending it a POSIX signal: "a software signal generates an
//! interrupt on the processor receiving the signal, and the processor
//! flushes its store buffer before calling the signal handling routine."
//! To target a thread we need its `pthread_t` and a per-thread ack word the
//! handler can bump — that is what a [`ThreadSlot`] holds and what
//! [`register_current_thread`] creates.
//!
//! The handler is installed once, for a real-time signal (`SIGRTMIN + 3`):
//! real-time signals queue rather than coalesce, and `SA_SIGINFO` delivery
//! carries a pointer to the target's [`ThreadSlot`] in `si_value`, so the
//! handler needs no thread-local lookup — it is a handful of
//! async-signal-safe atomic operations.

use crate::sys;
#[allow(unused_imports)]
use crate::trace::{trace_event_corr, trace_mint_corr, trace_span_end_corr, trace_span_start};
use std::os::raw::{c_int, c_void};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

/// Per-registered-thread state shared with the signal handler.
#[derive(Debug)]
pub struct ThreadSlot {
    /// The registered thread's `pthread_t`.
    pthread: AtomicU64,
    /// Bumped by the signal handler after it fences; waiters compare
    /// against a pre-send snapshot.
    ack: AtomicU64,
    /// Signals delivered to this slot (handler-side counter, equals `ack`).
    handled: AtomicU64,
    /// Cleared when the thread deregisters; senders then treat
    /// serialization as trivially complete (a dead thread has no store
    /// buffer to flush).
    active: AtomicBool,
    /// Causal-span handoff: the requester stores its chain's correlation
    /// id here before queueing the signal; the handler reads it back to
    /// stamp its phase events. Plain relaxed word, last-writer-wins under
    /// concurrent requesters — a lost id turns into an orphan in the
    /// attribution report, mirroring the protocol's own "accept a
    /// concurrent ack" looseness, and never affects correctness.
    #[cfg(feature = "trace")]
    pending_corr: AtomicU64,
    /// The handler's own event ring. The handler cannot touch the target
    /// thread's TLS ring (it may have interrupted that very thread
    /// mid-append, and a reentrant append would corrupt the seqlock
    /// protocol), so each slot gets a dedicated aux ring. Single-producer
    /// holds because the serialization signal is auto-blocked during its
    /// own handler (no `SA_NODEFER`), so handler runs on one thread never
    /// overlap. `OnceLock::get` from the handler is one atomic load —
    /// async-signal-safe, as are the ring's preallocated relaxed stores.
    #[cfg(feature = "trace")]
    handler_ring: std::sync::OnceLock<Arc<lbmf_trace::ThreadRing>>,
}

impl ThreadSlot {
    fn new(pthread: sys::pthread_t) -> Self {
        ThreadSlot {
            #[allow(clippy::unnecessary_cast)] // pthread_t width varies by platform
            pthread: AtomicU64::new(pthread as u64),
            ack: AtomicU64::new(0),
            handled: AtomicU64::new(0),
            active: AtomicBool::new(true),
            #[cfg(feature = "trace")]
            pending_corr: AtomicU64::new(0),
            #[cfg(feature = "trace")]
            handler_ring: std::sync::OnceLock::new(),
        }
    }

    /// Signals handled on behalf of this slot so far.
    pub fn acks(&self) -> u64 {
        self.ack.load(Ordering::Acquire)
    }

    /// Whether the registered thread is still alive (signals deliverable).
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }
}

/// Handle to a registered thread, used by fence strategies to force that
/// thread to serialize. Cloneable and sendable.
#[derive(Clone, Debug)]
pub struct RemoteThread {
    slot: Arc<ThreadSlot>,
}

impl RemoteThread {
    /// The shared per-thread slot (ack counters, liveness).
    pub fn slot(&self) -> &Arc<ThreadSlot> {
        &self.slot
    }

    /// A stable opaque key identifying the target thread across handles
    /// (the slot's address). Trace events use it as the `guarded_addr` of
    /// serialize requests/deliveries, and it matches the key the check
    /// harness maps to its virtual thread.
    pub fn key(&self) -> usize {
        Arc::as_ptr(&self.slot) as usize
    }

    /// Whether this handle refers to the *calling* thread. Protocols use
    /// it to skip self-serialization (a thread is trivially serialized
    /// with respect to itself).
    pub fn is_current(&self) -> bool {
        let stored = self.slot.pthread.load(Ordering::Acquire) as sys::pthread_t;
        // SAFETY: pthread_equal on a live id and pthread_self.
        unsafe { sys::pthread_equal(stored, sys::pthread_self()) != 0 }
    }

    /// Send one serialization signal and wait for the handler's ack.
    ///
    /// Returns `true` if a signal round trip actually happened (`false`
    /// when the thread already deregistered). Correctness of accepting a
    /// *concurrent* ack: any handler run that begins after our pre-send
    /// snapshot also begins after our caller's preceding `mfence`, which is
    /// all the Dekker argument needs.
    pub fn serialize(&self) -> bool {
        self.serialize_with_corr(trace_mint_corr!())
    }

    /// [`RemoteThread::serialize`] as one phase-stamped causal chain:
    /// `corr` (usually from the strategy's `serialize-request` event)
    /// links the requester-side `serialize-signal-sent` /
    /// `serialize-ack-observed` instants and the handler-side
    /// `serialize-handler-enter` / `serialize-drained` stamps into one
    /// cross-thread span. Pass `corr = 0` (or build without the `trace`
    /// feature) for an uncorrelated round trip.
    pub fn serialize_with_corr(&self, corr: u64) -> bool {
        #[cfg(not(feature = "trace"))]
        let _ = corr;
        if !self.slot.is_active() {
            return false;
        }
        // Under a check harness the target is a *virtual* thread: the
        // harness drains its modeled store buffer and no real signal is
        // needed (or wanted — the scheduler has the target suspended).
        if crate::hooks::serialize_hook(Arc::as_ptr(&self.slot) as usize) {
            return true;
        }
        let start = trace_span_start!();
        let before = self.slot.ack.load(Ordering::Acquire);
        // Publish the chain id for the handler before the signal exists;
        // see `ThreadSlot::pending_corr` for the concurrent-sender story.
        #[cfg(feature = "trace")]
        self.slot.pending_corr.store(corr, Ordering::Relaxed);
        let sig = serialization_signal();
        let value = sys::sigval {
            sival_ptr: Arc::as_ptr(&self.slot) as *mut c_void,
        };
        let pthread = self.slot.pthread.load(Ordering::Acquire) as sys::pthread_t;
        let rc = unsafe { sys::pthread_sigqueue(pthread, sig, value) };
        if rc != 0 {
            // ESRCH etc.: the thread is gone; nothing to serialize.
            self.slot.active.store(false, Ordering::Release);
            return false;
        }
        trace_event_corr!(SerializeSignalSent, self.key(), corr);
        crate::fence::spin_until(|| {
            self.slot.ack.load(Ordering::Acquire) > before || !self.slot.is_active()
        });
        trace_event_corr!(SerializeAckObserved, self.key(), corr);
        // Recorded on the *secondary* (calling) thread — the handler must
        // stay async-signal-safe and the primary's ring single-producer.
        trace_span_end_corr!(SerializeDeliver, self.key(), start, corr);
        true
    }
}

/// RAII registration of the current thread; deregisters on drop.
#[derive(Debug)]
pub struct Registration {
    remote: RemoteThread,
}

impl Registration {
    /// A cloneable handle other threads can use to serialize this one.
    pub fn remote(&self) -> RemoteThread {
        self.remote.clone()
    }
}

impl Drop for Registration {
    fn drop(&mut self) {
        // Drain the modeled store buffer (check harness only) before the
        // deactivation becomes visible: a thread that sees the slot
        // inactive skips serializing us, which is only sound if our
        // earlier stores are already globally visible — which x86's FIFO
        // buffer guarantees, and the model must too.
        crate::hooks::deregister_hook();
        self.remote.slot.active.store(false, Ordering::Release);
    }
}

/// The real-time signal used for serialization requests.
fn serialization_signal() -> c_int {
    sys::SIGRTMIN() + 3
}

/// The signal handler: the kernel's delivery path has already drained the
/// receiving CPU's store buffer (that is the prototype's entire mechanism);
/// we add an explicit fence for portability, then ack.
///
/// The causal-span stamps bracket the fence: `serialize-handler-enter`
/// before it, `serialize-drained` after, both into the slot's dedicated
/// handler ring (see `ThreadSlot::handler_ring` for why not the TLS ring
/// and why single-producer holds). Everything here stays
/// async-signal-safe: atomic loads/stores into preallocated slots plus
/// vDSO clock reads (warmed at registration).
extern "C" fn serialize_handler(_sig: c_int, info: *mut sys::siginfo_t, _ctx: *mut c_void) {
    // SAFETY: senders always place a valid `*const ThreadSlot` in si_value
    // and keep the Arc alive until the ack arrives.
    unsafe {
        let slot_ptr = (*info).si_value().sival_ptr as *const ThreadSlot;
        if slot_ptr.is_null() {
            return;
        }
        #[cfg(feature = "trace")]
        let stamped = (*slot_ptr)
            .handler_ring
            .get()
            .filter(|_| lbmf_trace::is_enabled())
            .map(|ring| {
                let corr = (*slot_ptr).pending_corr.load(Ordering::Relaxed);
                let enter = lbmf_trace::now_nanos();
                ring.append_corr(
                    enter,
                    lbmf_trace::EventKind::SerializeHandlerEnter,
                    slot_ptr as usize,
                    0,
                    corr,
                );
                (ring, corr)
            });
        std::sync::atomic::fence(Ordering::SeqCst);
        #[cfg(feature = "trace")]
        if let Some((ring, corr)) = stamped {
            ring.append_corr(
                lbmf_trace::now_nanos(),
                lbmf_trace::EventKind::SerializeDrained,
                slot_ptr as usize,
                0,
                corr,
            );
        }
        (*slot_ptr).handled.fetch_add(1, Ordering::AcqRel);
        (*slot_ptr).ack.fetch_add(1, Ordering::AcqRel);
    }
}

fn install_handler_once() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| unsafe {
        let sa = sys::sigaction_t {
            sa_sigaction: serialize_handler
                as extern "C" fn(c_int, *mut sys::siginfo_t, *mut c_void)
                as usize,
            sa_mask: sys::sigset_t::empty(),
            sa_flags: sys::SA_SIGINFO | sys::SA_RESTART,
            sa_restorer: 0,
        };
        let rc = sys::sigaction(serialization_signal(), &sa, std::ptr::null_mut());
        assert_eq!(rc, 0, "failed to install serialization signal handler");
    });
}

/// Global registry keeping every slot alive for the life of the process
/// (slots are tiny; a signal in flight must never dangle).
fn registry() -> &'static Mutex<Vec<Arc<ThreadSlot>>> {
    static REGISTRY: std::sync::OnceLock<Mutex<Vec<Arc<ThreadSlot>>>> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register the calling thread as a serialization target. Installs the
/// process-wide signal handler on first use.
pub fn register_current_thread() -> Registration {
    install_handler_once();
    let slot = Arc::new(ThreadSlot::new(unsafe { sys::pthread_self() }));
    // Give the signal handler its ring (and warm the trace clock) before
    // any signal can target this slot. Registration is the only writer,
    // so `set` cannot fail.
    #[cfg(feature = "trace")]
    {
        let name = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| "thread".into());
        let _ = slot
            .handler_ring
            .set(lbmf_trace::register_aux_ring(format!("{name}/serialize-handler")));
    }
    registry().lock().unwrap().push(slot.clone());
    // Let an active check harness map this slot to its virtual thread, so
    // later `serialize_hook` calls with the same key drain that thread's
    // modeled store buffer.
    crate::hooks::register_hook(Arc::as_ptr(&slot) as usize);
    Registration {
        remote: RemoteThread { slot },
    }
}

/// Number of threads ever registered (monitoring/tests).
pub fn registered_count() -> usize {
    registry().lock().unwrap().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn register_and_signal_roundtrip() {
        let (tx, rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let h = std::thread::spawn(move || {
            let reg = register_current_thread();
            tx.send(reg.remote()).unwrap();
            // Stay alive until the main thread finishes signaling.
            done_rx.recv().unwrap();
        });
        let remote = rx.recv().unwrap();
        assert!(remote.slot().is_active());
        let before = remote.slot().acks();
        assert!(remote.serialize());
        assert!(remote.slot().acks() > before);
        done_tx.send(()).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn serialize_after_deregistration_is_noop() {
        let (tx, rx) = std::sync::mpsc::channel();
        let h = std::thread::spawn(move || {
            let reg = register_current_thread();
            tx.send(reg.remote()).unwrap();
            // Registration dropped here.
        });
        let remote = rx.recv().unwrap();
        h.join().unwrap();
        // The thread deregistered (and exited): serialize is a no-op.
        assert!(!remote.serialize());
    }

    #[test]
    fn concurrent_serializers_all_observe_acks() {
        let (tx, rx) = std::sync::mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let target = std::thread::spawn(move || {
            let reg = register_current_thread();
            tx.send(reg.remote()).unwrap();
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_micros(100));
            }
        });
        let remote = rx.recv().unwrap();
        let total = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = remote.clone();
            let t = total.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    if r.serialize() {
                        t.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        target.join().unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 100);
        assert!(remote.slot().acks() >= 1);
    }

    #[test]
    fn registered_count_grows() {
        let before = registered_count();
        let _reg = register_current_thread();
        assert!(registered_count() > before);
    }
}
