//! Minimal in-repo FFI surface replacing the `libc` crate.
//!
//! The build hosts have no registry access, so this crate cannot depend on
//! `libc`. Everything the signal prototype needs is a handful of symbols
//! that `std` already links from glibc (`pthread_*`, `sigaction`) plus one
//! raw syscall (`membarrier`), declared here for x86-64 Linux/glibc — the
//! only configuration the experiment hosts run.
//!
//! Layout notes (x86-64 glibc):
//!
//! * `sigset_t` is 1024 bits (128 bytes);
//! * `struct sigaction` is `{ handler union, sa_mask, sa_flags,
//!   sa_restorer }` — handler first on x86-64;
//! * `siginfo_t` places the `sigval` payload of a queued signal at byte
//!   offset 24: `si_signo`, `si_errno`, `si_code` (12 bytes), 4 bytes of
//!   union alignment padding, then `si_pid`/`si_uid` (8 bytes), then
//!   `si_value`.

#![allow(non_camel_case_types)]

use std::os::raw::{c_int, c_long, c_void};

/// Thread identifier as used by the pthread API (`unsigned long` on Linux).
pub type pthread_t = usize;

/// The value payload of a queued (`SA_SIGINFO`) signal.
#[repr(C)]
#[derive(Clone, Copy)]
pub union sigval {
    /// Integer payload (unused here, part of the ABI union).
    pub sival_int: c_int,
    /// Pointer payload — carries the target's `ThreadSlot`.
    pub sival_ptr: *mut c_void,
}

/// glibc signal set: 1024 bits.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigset_t {
    bits: [u64; 16],
}

impl sigset_t {
    /// An empty (all-clear) signal mask.
    pub const fn empty() -> Self {
        sigset_t { bits: [0; 16] }
    }
}

/// glibc `struct sigaction` for x86-64.
#[repr(C)]
pub struct sigaction_t {
    /// Handler: either a `void (*)(int)` or, with [`SA_SIGINFO`], a
    /// `void (*)(int, siginfo_t *, void *)`, stored as a word.
    pub sa_sigaction: usize,
    /// Signals blocked while the handler runs.
    pub sa_mask: sigset_t,
    /// `SA_*` flags.
    pub sa_flags: c_int,
    /// Obsolete trampoline slot (kernel-managed; must be present for ABI).
    pub sa_restorer: usize,
}

/// Prefix of glibc `siginfo_t` up to and including the queued-signal
/// payload, padded to the ABI's full 128-byte size.
#[repr(C)]
pub struct siginfo_t {
    /// Signal number.
    pub si_signo: c_int,
    /// Errno value associated with the signal.
    pub si_errno: c_int,
    /// Signal origin code (`SI_QUEUE` for `pthread_sigqueue`).
    pub si_code: c_int,
    _pad0: c_int,
    /// Sending process id.
    pub si_pid: c_int,
    /// Sending user id.
    pub si_uid: c_int,
    /// The `sigval` passed by the sender.
    pub si_value: sigval,
    _pad: [u64; 12],
}

impl siginfo_t {
    /// The queued payload (named like libc's accessor for familiarity).
    ///
    /// # Safety
    ///
    /// Only meaningful when the signal was delivered with a payload
    /// (`SI_QUEUE`), which is the only way this repo's signal arrives.
    pub unsafe fn si_value(&self) -> sigval {
        self.si_value
    }
}

/// Deliver extra handler arguments (`siginfo_t`, context).
pub const SA_SIGINFO: c_int = 4;
/// Restart interruptible syscalls instead of failing them with `EINTR`.
pub const SA_RESTART: c_int = 0x1000_0000;

extern "C" {
    /// The calling thread's pthread id.
    pub fn pthread_self() -> pthread_t;
    /// Nonzero iff two pthread ids denote the same thread.
    pub fn pthread_equal(a: pthread_t, b: pthread_t) -> c_int;
    /// Queue `sig` with payload `value` to a specific thread (glibc).
    pub fn pthread_sigqueue(thread: pthread_t, sig: c_int, value: sigval) -> c_int;
    /// Install a signal handler.
    pub fn sigaction(signum: c_int, act: *const sigaction_t, old: *mut sigaction_t) -> c_int;
    fn __libc_current_sigrtmin() -> c_int;
}

/// The first real-time signal number usable by applications.
#[allow(non_snake_case)]
pub fn SIGRTMIN() -> c_int {
    // SAFETY: no arguments, returns a plain int.
    unsafe { __libc_current_sigrtmin() }
}

/// `membarrier(2)` command: query supported commands.
pub const MEMBARRIER_CMD_QUERY: c_int = 0;
/// `membarrier(2)` command: expedited barrier across the process's CPUs.
pub const MEMBARRIER_CMD_PRIVATE_EXPEDITED: c_int = 8;
/// `membarrier(2)` command: register intent to use the expedited barrier.
pub const MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED: c_int = 16;

/// Raw `membarrier(cmd, 0, 0)` syscall; returns the kernel's raw result
/// (negative errno on failure), or `-ENOSYS`-style `-38` where the repo
/// has no syscall stub for the target architecture.
pub fn membarrier(cmd: c_int) -> c_long {
    #[cfg(target_arch = "x86_64")]
    {
        const SYS_MEMBARRIER: u64 = 324;
        let ret: i64;
        // SAFETY: membarrier takes no pointers; flags and cpu_id are zero.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MEMBARRIER as i64 => ret,
                in("rdi") cmd as i64,
                in("rsi") 0i64,
                in("rdx") 0i64,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret as c_long
    }
    #[cfg(target_arch = "aarch64")]
    {
        const SYS_MEMBARRIER: u64 = 283;
        let ret: i64;
        // SAFETY: membarrier takes no pointers; flags and cpu_id are zero.
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") SYS_MEMBARRIER as i64,
                inlateout("x0") cmd as i64 => ret,
                in("x1") 0i64,
                in("x2") 0i64,
                options(nostack),
            );
        }
        ret as c_long
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let _ = cmd;
        -38 // -ENOSYS: strategy probing treats this as "unsupported"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pthread_self_is_stable_and_equal_to_itself() {
        let a = unsafe { pthread_self() };
        let b = unsafe { pthread_self() };
        assert_ne!(a, 0);
        assert_ne!(unsafe { pthread_equal(a, b) }, 0);
    }

    #[test]
    fn distinct_threads_have_distinct_ids() {
        let main_id = unsafe { pthread_self() };
        let other = std::thread::spawn(move || {
            let me = unsafe { pthread_self() };
            assert_eq!(unsafe { pthread_equal(me, main_id) }, 0);
        });
        other.join().unwrap();
    }

    #[test]
    fn sigrtmin_is_in_realtime_range() {
        let s = SIGRTMIN();
        assert!((32..64).contains(&s), "SIGRTMIN out of range: {s}");
    }

    #[test]
    fn membarrier_query_does_not_crash() {
        // Any result is acceptable (kernels/sandboxes may deny it); the
        // call itself must be well-formed.
        let _ = membarrier(MEMBARRIER_CMD_QUERY);
    }

    #[test]
    fn abi_layout_sanity() {
        assert_eq!(std::mem::size_of::<sigset_t>(), 128);
        assert_eq!(std::mem::size_of::<sigaction_t>(), 128 + 8 + 8 + 8);
        assert_eq!(std::mem::size_of::<siginfo_t>(), 128);
        assert_eq!(std::mem::offset_of!(siginfo_t, si_value), 24);
    }
}
