//! The asymmetric multiple-readers single-writer lock of Section 5.
//!
//! Readers are the *primary* side: each registered reader has its own
//! padded `reading` flag, and a read acquisition is flag-store →
//! `primary_fence()` → check writer intent. Writers are the *secondary*
//! side: they compete on a mutex, publish intent, fence, and then engage in
//! an augmented Dekker protocol **with each registered reader**: remotely
//! serialize it (so its possibly-buffered `reading` flag becomes visible)
//! and wait for it to drain out.
//!
//! Three paper variants, one type:
//!
//! * **SRW** — `AsymRwLock<Symmetric>`: readers pay an `mfence` per read;
//!   the writer trusts `reading` flags directly (no serialization needed).
//! * **ARW** — `AsymRwLock<SignalFence>` with `spin_window == 0`: readers
//!   are fence-free; the writer signals every reader, one by one — the
//!   serializing bottleneck the paper measures in Figure 6(a).
//! * **ARW+** — nonzero `spin_window`: the writer first publishes intent
//!   and spin-waits; readers that notice the intent *acknowledge* it
//!   (executing their own fence), letting the writer skip their signals —
//!   Figure 6(b).

use crate::fence::{full_fence, spin_for, spin_until};
use crate::hooks::{load_u64, store_u64};
use crate::registry::{register_current_thread, Registration};
use crate::strategy::FenceStrategy;
use crate::sync::{CachePadded, Mutex, MutexGuard, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Per-registered-reader state.
pub struct ReaderSlot {
    /// Nonzero while the reader is inside (or entering) a read section.
    reading: CachePadded<AtomicU64>,
    /// Intent epoch this reader has acknowledged (ARW+): an ack at epoch
    /// `e` means the reader fenced and will not read until the writer with
    /// epoch `e` finishes.
    acked: CachePadded<AtomicU64>,
    remote: crate::registry::RemoteThread,
    active: AtomicBool,
}

/// The reader-biased readers-writer lock.
pub struct AsymRwLock<S: FenceStrategy> {
    strategy: Arc<S>,
    /// Writer intent: 0 = none, otherwise the active writer's epoch.
    write_intent: CachePadded<AtomicU64>,
    /// Monotonic epoch source for writer sessions.
    epoch: AtomicU64,
    writer_mutex: Mutex<()>,
    readers: RwLock<Vec<Arc<ReaderSlot>>>,
    /// ARW+ waiting-heuristic spin budget; 0 disables the heuristic.
    spin_window: u32,
    /// Completed read acquisitions.
    pub reads: AtomicU64,
    /// Completed write acquisitions.
    pub writes: AtomicU64,
    /// Reads that found writer intent and had to back off.
    pub read_conflicts: AtomicU64,
    /// Reader signals the writer skipped thanks to acknowledgments.
    pub signals_skipped: AtomicU64,
}

impl<S: FenceStrategy> AsymRwLock<S> {
    /// A lock without the waiting heuristic (plain ARW / SRW).
    pub fn new(strategy: Arc<S>) -> Self {
        Self::with_spin_window(strategy, 0)
    }

    /// A lock with the ARW+ waiting heuristic: the writer spins up to
    /// `spin_window` iterations for reader acknowledgments before
    /// signaling.
    pub fn with_spin_window(strategy: Arc<S>, spin_window: u32) -> Self {
        AsymRwLock {
            strategy,
            write_intent: CachePadded::new(AtomicU64::new(0)),
            epoch: AtomicU64::new(1),
            writer_mutex: Mutex::new(()),
            readers: RwLock::new(Vec::new()),
            spin_window,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            read_conflicts: AtomicU64::new(0),
            signals_skipped: AtomicU64::new(0),
        }
    }

    /// The fence strategy in use.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// The ARW+ waiting-heuristic budget (0 = plain ARW/SRW).
    pub fn spin_window(&self) -> u32 {
        self.spin_window
    }

    /// Register the calling thread as a reader. The handle's read path is
    /// only valid on this thread (it is `!Send` by construction through the
    /// registration).
    pub fn register_reader(self: &Arc<Self>) -> ReaderHandle<S> {
        let reg = register_current_thread();
        let slot = Arc::new(ReaderSlot {
            reading: CachePadded::new(AtomicU64::new(0)),
            acked: CachePadded::new(AtomicU64::new(0)),
            remote: reg.remote(),
            active: AtomicBool::new(true),
        });
        self.readers.write().push(slot.clone());
        ReaderHandle {
            lock: Arc::clone(self),
            slot,
            _registration: reg,
        }
    }

    /// Acquire the write lock (the secondary path).
    pub fn write_lock(&self) -> WriteGuard<'_, S> {
        let inner = self.writer_mutex.lock();
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed);
        store_u64(&self.write_intent, epoch, Ordering::Release);
        self.strategy.secondary_fence();

        let readers = self.readers.read();
        if self.spin_window > 0 {
            // ARW+ heuristic: give readers a chance to acknowledge the
            // intent before resorting to signals. The writer's own reader
            // slot (a reader that "turned into a writer", as the paper
            // puts it) is trivially quiescent and skipped.
            spin_for(self.spin_window, || {
                readers
                    .iter()
                    .filter(|r| r.active.load(Ordering::Acquire) && !r.remote.is_current())
                    .all(|r| load_u64(&r.acked, Ordering::Acquire) >= epoch)
            });
        }
        for slot in readers.iter() {
            if !slot.active.load(Ordering::Acquire) || slot.remote.is_current() {
                continue;
            }
            if self.spin_window > 0 && load_u64(&slot.acked, Ordering::Acquire) >= epoch {
                // The reader fenced and parked itself: its `reading == 0`
                // store is visible and it will not re-enter this epoch.
                self.signals_skipped.fetch_add(1, Ordering::Relaxed);
            } else {
                // Serialize the reader so its flag is trustworthy, then
                // wait it out. The one-by-one loop is the serializing
                // bottleneck the paper identifies for the ARW lock.
                self.strategy.serialize_remote(&slot.remote);
            }
            spin_until(|| {
                load_u64(&slot.reading, Ordering::Acquire) == 0 || !slot.active.load(Ordering::Acquire)
            });
        }
        drop(readers);
        self.writes.fetch_add(1, Ordering::Relaxed);
        WriteGuard { lock: self, _inner: inner }
    }

    /// Run `f` under the write lock.
    pub fn with_write<T>(&self, f: impl FnOnce() -> T) -> T {
        let _g = self.write_lock();
        f()
    }

    /// Non-blocking write attempt: fails fast if another writer holds the
    /// lock or any reader is mid-section *after* serialization. On failure
    /// nothing is held and the intent has been withdrawn.
    pub fn try_write_lock(&self) -> Option<WriteGuard<'_, S>> {
        let inner = self.writer_mutex.try_lock()?;
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed);
        store_u64(&self.write_intent, epoch, Ordering::Release);
        self.strategy.secondary_fence();
        let readers = self.readers.read();
        for slot in readers.iter() {
            if !slot.active.load(Ordering::Acquire) || slot.remote.is_current() {
                continue;
            }
            self.strategy.serialize_remote(&slot.remote);
            if load_u64(&slot.reading, Ordering::Acquire) != 0 {
                drop(readers);
                store_u64(&self.write_intent, 0, Ordering::Release);
                return None;
            }
        }
        drop(readers);
        self.writes.fetch_add(1, Ordering::Relaxed);
        Some(WriteGuard { lock: self, _inner: inner })
    }

    /// Number of currently registered (active) readers.
    pub fn active_readers(&self) -> usize {
        self.readers
            .read()
            .iter()
            .filter(|r| r.active.load(Ordering::Acquire))
            .count()
    }
}

/// A registered reader's handle; use from the registering thread.
pub struct ReaderHandle<S: FenceStrategy> {
    lock: Arc<AsymRwLock<S>>,
    slot: Arc<ReaderSlot>,
    _registration: Registration,
}

impl<S: FenceStrategy> ReaderHandle<S> {
    /// Run `f` inside a read section (the primary fast path).
    pub fn read<T>(&self, f: impl FnOnce() -> T) -> T {
        let l = &*self.lock;
        loop {
            store_u64(&self.slot.reading, 1, Ordering::Release);
            l.strategy.primary_fence(); // the l-mfence position
            let intent = load_u64(&l.write_intent, Ordering::Acquire);
            if intent == 0 {
                break;
            }
            // Writer active: back off, fence, acknowledge, and wait. The
            // voluntary fence is what makes the acknowledgment sufficient
            // for the writer to skip the signal (ARW+).
            l.read_conflicts.fetch_add(1, Ordering::Relaxed);
            store_u64(&self.slot.reading, 0, Ordering::Release);
            full_fence();
            store_u64(&self.slot.acked, intent, Ordering::Release);
            spin_until(|| load_u64(&l.write_intent, Ordering::Acquire) == 0);
        }
        let out = f();
        store_u64(&self.slot.reading, 0, Ordering::Release);
        l.reads.fetch_add(1, Ordering::Relaxed);
        out
    }

    /// The lock this handle reads on.
    pub fn lock_ref(&self) -> &Arc<AsymRwLock<S>> {
        &self.lock
    }
}

impl<S: FenceStrategy> Drop for ReaderHandle<S> {
    fn drop(&mut self) {
        self.slot.active.store(false, Ordering::Release);
    }
}

/// RAII guard for the write lock.
pub struct WriteGuard<'a, S: FenceStrategy> {
    lock: &'a AsymRwLock<S>,
    _inner: MutexGuard<'a, ()>,
}

impl<S: FenceStrategy> Drop for WriteGuard<'_, S> {
    fn drop(&mut self) {
        store_u64(&self.lock.write_intent, 0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{SignalFence, Symmetric};
    use std::sync::atomic::AtomicI64;
    use std::time::Duration;

    /// Readers observe a consistent (non-torn) pair of values; the writer
    /// updates both halves under the write lock.
    fn stress<S: FenceStrategy>(lock: Arc<AsymRwLock<S>>, readers: usize, iters: u64) {
        let a = Arc::new(AtomicI64::new(0));
        let b = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for _ in 0..readers {
            let l = lock.clone();
            let a = a.clone();
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                let h = l.register_reader();
                for _ in 0..iters {
                    h.read(|| {
                        let x = a.load(Ordering::Relaxed);
                        let y = b.load(Ordering::Relaxed);
                        assert_eq!(x, -y, "torn read: writer ran during read section");
                    });
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(2));
        let l = lock.clone();
        let wa = a.clone();
        let wb = b.clone();
        let writer = std::thread::spawn(move || {
            for i in 1..=(iters / 10).max(5) as i64 {
                l.with_write(|| {
                    wa.store(i, Ordering::Relaxed);
                    // A window where the invariant is broken: readers must
                    // never observe it.
                    std::thread::yield_now();
                    wb.store(-i, Ordering::Relaxed);
                });
            }
        });
        for h in handles {
            h.join().unwrap();
        }
        writer.join().unwrap();
        assert_eq!(a.load(Ordering::Relaxed), -b.load(Ordering::Relaxed));
    }

    #[test]
    fn srw_variant_stress() {
        stress(Arc::new(AsymRwLock::new(Arc::new(Symmetric::new()))), 2, 1_000);
    }

    #[test]
    fn arw_variant_stress() {
        stress(Arc::new(AsymRwLock::new(Arc::new(SignalFence::new()))), 2, 500);
    }

    #[test]
    fn arw_plus_variant_stress() {
        stress(
            Arc::new(AsymRwLock::with_spin_window(Arc::new(SignalFence::new()), 2_000)),
            2,
            500,
        );
    }

    #[test]
    fn try_write_lock_succeeds_when_idle_and_fails_under_reader() {
        let lock = Arc::new(AsymRwLock::new(Arc::new(Symmetric::new())));
        assert!(lock.try_write_lock().is_some());

        // A reader camping inside a read section must defeat try_write.
        let l = lock.clone();
        let (tx, rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let reader = std::thread::spawn(move || {
            let h = l.register_reader();
            h.read(|| {
                tx.send(()).unwrap();
                release_rx.recv().unwrap();
            });
        });
        rx.recv().unwrap();
        assert!(lock.try_write_lock().is_none());
        release_tx.send(()).unwrap();
        reader.join().unwrap();
        assert!(lock.try_write_lock().is_some());
    }

    #[test]
    fn reader_turned_writer_skips_its_own_slot() {
        // The paper's microbenchmark shape: the same thread reads mostly
        // and occasionally writes. Its write must not serialize (or spin
        // on) its own reader slot.
        let lock = Arc::new(AsymRwLock::with_spin_window(Arc::new(SignalFence::new()), 50_000));
        let l = lock.clone();
        std::thread::spawn(move || {
            let h = l.register_reader();
            for _ in 0..50 {
                h.read(|| {});
            }
            let t0 = std::time::Instant::now();
            l.with_write(|| {});
            // No other readers: the write must be fast (no spin window) and
            // must not signal anyone.
            assert!(t0.elapsed() < std::time::Duration::from_millis(50));
        })
        .join()
        .unwrap();
        assert_eq!(
            lock.strategy().stats().snapshot().serializations_requested,
            0,
            "a lone reader-writer must not serialize itself"
        );
    }

    #[test]
    fn writer_without_readers_proceeds() {
        let lock: Arc<AsymRwLock<SignalFence>> =
            Arc::new(AsymRwLock::new(Arc::new(SignalFence::new())));
        lock.with_write(|| {});
        assert_eq!(lock.writes.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reader_fast_path_avoids_full_fences_with_signal_strategy() {
        let lock = Arc::new(AsymRwLock::new(Arc::new(SignalFence::new())));
        let l2 = lock.clone();
        std::thread::spawn(move || {
            let h = l2.register_reader();
            for _ in 0..50 {
                h.read(|| {});
            }
        })
        .join()
        .unwrap();
        let snap = lock.strategy().stats().snapshot();
        assert_eq!(snap.primary_compiler_fences, 50);
        assert_eq!(snap.primary_full_fences, 0);
        assert_eq!(lock.reads.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn writer_signals_each_active_reader_in_plain_arw() {
        let lock = Arc::new(AsymRwLock::new(Arc::new(SignalFence::new())));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let l = lock.clone();
            let s = stop.clone();
            handles.push(std::thread::spawn(move || {
                let h = l.register_reader();
                while !s.load(Ordering::Relaxed) {
                    h.read(|| {});
                }
            }));
        }
        spin_until(|| lock.active_readers() == 3);
        lock.with_write(|| {});
        let snap = lock.strategy().stats().snapshot();
        assert!(
            snap.serializations_requested >= 3,
            "writer must serialize every registered reader, got {}",
            snap.serializations_requested
        );
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn deregistered_readers_are_skipped() {
        let lock: Arc<AsymRwLock<SignalFence>> =
            Arc::new(AsymRwLock::new(Arc::new(SignalFence::new())));
        let l2 = lock.clone();
        std::thread::spawn(move || {
            let h = l2.register_reader();
            h.read(|| {});
            // handle dropped: reader deregisters
        })
        .join()
        .unwrap();
        assert_eq!(lock.active_readers(), 0);
        lock.with_write(|| {});
        assert_eq!(lock.writes.load(Ordering::Relaxed), 1);
    }
}
