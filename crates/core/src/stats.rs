//! Counters for fence and serialization activity.
//!
//! The paper's parallel analysis hinges on two per-run quantities: how many
//! program-based fences the primary path *avoided*, and how many remote
//! serializations (signal round trips) the secondary path *paid*. Every
//! fence strategy carries a [`FenceStats`] so experiments can report both.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative, thread-safe fence statistics.
#[derive(Debug, Default)]
pub struct FenceStats {
    /// Full hardware fences executed on the primary path.
    pub primary_full_fences: AtomicU64,
    /// Compiler-only fences executed on the primary path (the asymmetric
    /// fast path).
    pub primary_compiler_fences: AtomicU64,
    /// Full fences executed on the secondary path.
    pub secondary_full_fences: AtomicU64,
    /// Remote serializations requested by secondaries.
    pub serializations_requested: AtomicU64,
    /// Remote serializations that required an actual signal/membarrier
    /// round trip (vs. short-circuited).
    pub serializations_delivered: AtomicU64,
}

impl FenceStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment one counter (relaxed; reporting only).
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot all counters.
    ///
    /// **Not atomic across fields**: each counter is read individually
    /// with `Relaxed` loads, so a snapshot taken while other threads are
    /// bumping counters can mix values from different instants (e.g. a
    /// `serializations_requested` that is already incremented paired with
    /// a `serializations_delivered` that is not yet). Each field is
    /// individually exact and monotone; for cross-field consistency,
    /// snapshot at a quiescent point (threads joined / locks released).
    /// Differencing two snapshots of one phase with
    /// [`FenceStatsSnapshot::diff`] is the supported way to isolate that
    /// phase's activity.
    pub fn snapshot(&self) -> FenceStatsSnapshot {
        FenceStatsSnapshot {
            primary_full_fences: self.primary_full_fences.load(Ordering::Relaxed),
            primary_compiler_fences: self.primary_compiler_fences.load(Ordering::Relaxed),
            secondary_full_fences: self.secondary_full_fences.load(Ordering::Relaxed),
            serializations_requested: self.serializations_requested.load(Ordering::Relaxed),
            serializations_delivered: self.serializations_delivered.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero (between experiment phases).
    ///
    /// Like [`snapshot`](Self::snapshot), this is **not atomic across
    /// fields**: a concurrent bump can land between the per-field zeroing
    /// stores, leaving a mixed state. Prefer resetting only while the
    /// strategy is otherwise idle — or skip resetting entirely and
    /// subtract a phase-start snapshot via
    /// [`FenceStatsSnapshot::diff`], which never perturbs the counters.
    pub fn reset(&self) {
        self.primary_full_fences.store(0, Ordering::Relaxed);
        self.primary_compiler_fences.store(0, Ordering::Relaxed);
        self.secondary_full_fences.store(0, Ordering::Relaxed);
        self.serializations_requested.store(0, Ordering::Relaxed);
        self.serializations_delivered.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`FenceStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FenceStatsSnapshot {
    /// Full hardware fences executed on the primary path.
    pub primary_full_fences: u64,
    /// Compiler-only fences executed on the primary path.
    pub primary_compiler_fences: u64,
    /// Full fences executed on the secondary path.
    pub secondary_full_fences: u64,
    /// Remote serializations requested by secondaries.
    pub serializations_requested: u64,
    /// Serializations that required an actual round trip.
    pub serializations_delivered: u64,
}

impl FenceStatsSnapshot {
    /// Fences the primary path avoided relative to a symmetric design
    /// (every compiler-only fence would have been a full fence).
    pub fn fences_avoided(&self) -> u64 {
        self.primary_compiler_fences
    }

    /// Every counter as a `(stable_name, value)` pair, in declaration
    /// order. The names are part of the observability schema: exporters
    /// (Prometheus `/metrics`, `BENCH_<n>.json`) iterate this instead of
    /// hand-listing fields, so a counter added here automatically reaches
    /// every export — and renaming one is a schema change.
    pub fn fields(&self) -> [(&'static str, u64); 5] {
        [
            ("primary_full_fences", self.primary_full_fences),
            ("primary_compiler_fences", self.primary_compiler_fences),
            ("secondary_full_fences", self.secondary_full_fences),
            ("serializations_requested", self.serializations_requested),
            ("serializations_delivered", self.serializations_delivered),
        ]
    }

    /// Per-field difference `self - earlier`: the activity between two
    /// snapshots of the same [`FenceStats`]. Counters are monotone, so on
    /// snapshots taken in order from one instance this is exact per field
    /// (saturating, for robustness against an interleaved
    /// [`FenceStats::reset`]). This replaces hand-subtracting fields when
    /// isolating an experiment phase.
    pub fn diff(&self, earlier: &FenceStatsSnapshot) -> FenceStatsSnapshot {
        FenceStatsSnapshot {
            primary_full_fences: self
                .primary_full_fences
                .saturating_sub(earlier.primary_full_fences),
            primary_compiler_fences: self
                .primary_compiler_fences
                .saturating_sub(earlier.primary_compiler_fences),
            secondary_full_fences: self
                .secondary_full_fences
                .saturating_sub(earlier.secondary_full_fences),
            serializations_requested: self
                .serializations_requested
                .saturating_sub(earlier.serializations_requested),
            serializations_delivered: self
                .serializations_delivered
                .saturating_sub(earlier.serializations_delivered),
        }
    }
}

impl fmt::Display for FenceStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "primary full={} compiler={} | secondary full={} | serialize req={} delivered={}",
            self.primary_full_fences,
            self.primary_compiler_fences,
            self.secondary_full_fences,
            self.serializations_requested,
            self.serializations_delivered
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = FenceStats::new();
        FenceStats::bump(&s.primary_full_fences);
        FenceStats::bump(&s.primary_compiler_fences);
        FenceStats::bump(&s.primary_compiler_fences);
        let snap = s.snapshot();
        assert_eq!(snap.primary_full_fences, 1);
        assert_eq!(snap.primary_compiler_fences, 2);
        assert_eq!(snap.fences_avoided(), 2);
        s.reset();
        assert_eq!(s.snapshot(), FenceStatsSnapshot::default());
    }

    #[test]
    fn diff_isolates_a_phase() {
        let s = FenceStats::new();
        FenceStats::bump(&s.primary_compiler_fences);
        FenceStats::bump(&s.serializations_requested);
        let start = s.snapshot();
        FenceStats::bump(&s.primary_compiler_fences);
        FenceStats::bump(&s.primary_compiler_fences);
        FenceStats::bump(&s.serializations_requested);
        FenceStats::bump(&s.serializations_delivered);
        let phase = s.snapshot().diff(&start);
        assert_eq!(phase.primary_compiler_fences, 2);
        assert_eq!(phase.serializations_requested, 1);
        assert_eq!(phase.serializations_delivered, 1);
        assert_eq!(phase.primary_full_fences, 0);
        // Saturates rather than wrapping if a reset slipped in between.
        let stale = FenceStatsSnapshot {
            primary_compiler_fences: 1_000,
            ..Default::default()
        };
        assert_eq!(s.snapshot().diff(&stale).primary_compiler_fences, 0);
    }

    #[test]
    fn fields_cover_every_counter_with_stable_names() {
        let s = FenceStats::new();
        FenceStats::bump(&s.primary_full_fences);
        FenceStats::bump(&s.secondary_full_fences);
        FenceStats::bump(&s.secondary_full_fences);
        let snap = s.snapshot();
        let fields = snap.fields();
        assert_eq!(
            fields.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            [
                "primary_full_fences",
                "primary_compiler_fences",
                "secondary_full_fences",
                "serializations_requested",
                "serializations_delivered"
            ]
        );
        let get = |name: &str| fields.iter().find(|(n, _)| *n == name).unwrap().1;
        assert_eq!(get("primary_full_fences"), 1);
        assert_eq!(get("secondary_full_fences"), 2);
        assert_eq!(get("serializations_requested"), 0);
    }

    #[test]
    fn display_is_readable() {
        let s = FenceStats::new();
        FenceStats::bump(&s.serializations_requested);
        let text = format!("{}", s.snapshot());
        assert!(text.contains("serialize req=1"));
    }
}
