//! A biased lock: the motivating application class of Section 1 (Java
//! monitors with biased locking, JVM/JNI coordination).
//!
//! The lock is permanently biased to one *owner* thread, whose acquire is
//! the asymmetric-Dekker fast path: flag store → `primary_fence()` → flag
//! load. Other threads are *revokers*: they compete on an internal mutex,
//! publish a revocation request, force the owner to serialize, and wait for
//! the owner to drain out of the critical section. Priority goes to the
//! revoker (the owner retreats), which is the standard biased-lock shape —
//! revocation is presumed rare.

use crate::fence::spin_until;
use crate::hooks::{load_usize, store_usize};
use crate::registry::{register_current_thread, Registration, RemoteThread};
use crate::strategy::FenceStrategy;
use crate::sync::{CachePadded, Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A lock biased toward one owner thread.
pub struct BiasedLock<S: FenceStrategy> {
    strategy: Arc<S>,
    /// Owner's "I am inside" flag (the guarded location).
    owner_flag: CachePadded<AtomicUsize>,
    /// Nonzero while a revoker wants or holds the lock.
    revoke_flag: CachePadded<AtomicUsize>,
    owner_thread: OnceLock<RemoteThread>,
    revoker_mutex: Mutex<()>,
    /// Owner fast-path acquisitions.
    pub owner_acquires: AtomicU64,
    /// Owner acquisitions that had to wait for a revoker first.
    pub owner_waits: AtomicU64,
    /// Revoker acquisitions.
    pub revocations: AtomicU64,
}

impl<S: FenceStrategy> BiasedLock<S> {
    /// A biased lock with no owner bound yet.
    pub fn new(strategy: Arc<S>) -> Self {
        BiasedLock {
            strategy,
            owner_flag: CachePadded::new(AtomicUsize::new(0)),
            revoke_flag: CachePadded::new(AtomicUsize::new(0)),
            owner_thread: OnceLock::new(),
            revoker_mutex: Mutex::new(()),
            owner_acquires: AtomicU64::new(0),
            owner_waits: AtomicU64::new(0),
            revocations: AtomicU64::new(0),
        }
    }

    /// The fence strategy in use.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Bind the calling thread as the bias owner.
    ///
    /// # Panics
    ///
    /// Panics if an owner is already bound.
    pub fn register_owner(self: &Arc<Self>) -> Owner<S> {
        let reg = register_current_thread();
        self.owner_thread
            .set(reg.remote())
            .expect("owner already registered");
        Owner {
            lock: Arc::clone(self),
            _registration: reg,
        }
    }

    /// Acquire as a revoker (any non-owner thread).
    pub fn revoke_lock(&self) -> RevokerGuard<'_, S> {
        let inner = self.revoker_mutex.lock();
        store_usize(&self.revoke_flag, 1, Ordering::Release);
        self.strategy.secondary_fence();
        if let Some(owner) = self.owner_thread.get() {
            self.strategy.serialize_remote(owner);
        }
        // The owner retreats on seeing revoke_flag; wait it out.
        spin_until(|| load_usize(&self.owner_flag, Ordering::Acquire) == 0);
        self.revocations.fetch_add(1, Ordering::Relaxed);
        RevokerGuard { lock: self, _inner: inner }
    }
}

/// The owner role handle.
pub struct Owner<S: FenceStrategy> {
    lock: Arc<BiasedLock<S>>,
    _registration: Registration,
}

impl<S: FenceStrategy> Owner<S> {
    /// Fast-path acquire: two cache accesses plus the strategy's primary
    /// fence when no revoker is active.
    pub fn lock(&self) -> OwnerGuard<'_, S> {
        let l = &*self.lock;
        loop {
            store_usize(&l.owner_flag, 1, Ordering::Release);
            l.strategy.primary_fence();
            if load_usize(&l.revoke_flag, Ordering::Acquire) == 0 {
                l.owner_acquires.fetch_add(1, Ordering::Relaxed);
                return OwnerGuard { lock: l };
            }
            // A revoker is active: retreat (revokers have priority).
            store_usize(&l.owner_flag, 0, Ordering::Release);
            l.owner_waits.fetch_add(1, Ordering::Relaxed);
            spin_until(|| load_usize(&l.revoke_flag, Ordering::Acquire) == 0);
        }
    }

    /// Run `f` under the owner lock.
    pub fn with_lock<T>(&self, f: impl FnOnce() -> T) -> T {
        let _g = self.lock();
        f()
    }

    /// The lock this owner handle belongs to.
    pub fn lock_ref(&self) -> &Arc<BiasedLock<S>> {
        &self.lock
    }
}

/// RAII guard for the owner's critical section.
pub struct OwnerGuard<'a, S: FenceStrategy> {
    lock: &'a BiasedLock<S>,
}

impl<S: FenceStrategy> Drop for OwnerGuard<'_, S> {
    fn drop(&mut self) {
        store_usize(&self.lock.owner_flag, 0, Ordering::Release);
    }
}

/// RAII guard for a revoker's critical section.
pub struct RevokerGuard<'a, S: FenceStrategy> {
    lock: &'a BiasedLock<S>,
    _inner: MutexGuard<'a, ()>,
}

impl<S: FenceStrategy> Drop for RevokerGuard<'_, S> {
    fn drop(&mut self) {
        store_usize(&self.lock.revoke_flag, 0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{SignalFence, Symmetric};
    use std::time::Duration;

    fn stress<S: FenceStrategy>(strategy: Arc<S>, owner_iters: u64, revokers: usize) {
        let lock = Arc::new(BiasedLock::new(strategy));
        let shared = Arc::new(AtomicU64::new(0));
        let inside = Arc::new(AtomicUsize::new(0));

        let l2 = lock.clone();
        let s2 = shared.clone();
        let in2 = inside.clone();
        let owner = std::thread::spawn(move || {
            let o = l2.register_owner();
            for _ in 0..owner_iters {
                o.with_lock(|| {
                    assert_eq!(in2.fetch_add(1, Ordering::SeqCst), 0);
                    s2.fetch_add(1, Ordering::Relaxed);
                    in2.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let mut handles = Vec::new();
        for _ in 0..revokers {
            let l = lock.clone();
            let s = shared.clone();
            let ins = inside.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..owner_iters / 20 {
                    let _g = l.revoke_lock();
                    assert_eq!(ins.fetch_add(1, Ordering::SeqCst), 0);
                    s.fetch_add(1, Ordering::Relaxed);
                    ins.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        owner.join().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        let expected = owner_iters + revokers as u64 * (owner_iters / 20);
        assert_eq!(shared.load(Ordering::Relaxed), expected);
        assert_eq!(lock.owner_acquires.load(Ordering::Relaxed), owner_iters);
    }

    #[test]
    fn symmetric_biased_lock_stress() {
        stress(Arc::new(Symmetric::new()), 2_000, 2);
    }

    #[test]
    fn signal_biased_lock_stress() {
        stress(Arc::new(SignalFence::new()), 1_000, 2);
    }

    #[test]
    fn revoker_without_owner_succeeds() {
        let lock: Arc<BiasedLock<Symmetric>> = Arc::new(BiasedLock::new(Arc::new(Symmetric::new())));
        let _g = lock.revoke_lock();
        assert_eq!(lock.revocations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn owner_fast_path_counts_no_waits_when_uncontended() {
        let lock = Arc::new(BiasedLock::new(Arc::new(SignalFence::new())));
        let l2 = lock.clone();
        std::thread::spawn(move || {
            let o = l2.register_owner();
            for _ in 0..100 {
                o.with_lock(|| {});
            }
        })
        .join()
        .unwrap();
        assert_eq!(lock.owner_acquires.load(Ordering::Relaxed), 100);
        assert_eq!(lock.owner_waits.load(Ordering::Relaxed), 0);
        // Fast path executed compiler fences only.
        assert_eq!(
            lock.strategy().stats().snapshot().primary_compiler_fences,
            100
        );
        assert_eq!(lock.strategy().stats().snapshot().primary_full_fences, 0);
    }
}
