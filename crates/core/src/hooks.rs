//! Check-harness instrumentation hooks.
//!
//! `lbmf-check` (the deterministic schedule-exploration harness) runs the
//! *real* protocol implementations — [`dekker`](crate::dekker),
//! [`biased`](crate::biased), [`arw`](crate::arw), and the `lbmf-cilk`
//! THE-deque — under a controlled scheduler with a modeled TSO store
//! buffer per virtual thread. For that to work, the protocols' shared
//! flag accesses, fences, spin loops, and remote serializations are routed
//! through the free functions in this module.
//!
//! Without the `check-hooks` feature every function here compiles to the
//! plain atomic operation it wraps (`store_usize` *is* `a.store(v, o)`),
//! so production builds pay nothing. With the feature enabled (test builds
//! pull it in through the `lbmf-check` dev-dependency), each call first
//! consults a thread-local [`VtHooks`] installation:
//!
//! * absent (ordinary threads, including the existing stress tests): the
//!   plain operation runs, unchanged;
//! * present (a virtual thread of an `lbmf-check` execution): the
//!   operation becomes a *scheduling event* — stores go into the virtual
//!   thread's modeled store buffer, loads forward from it, fences drain
//!   it, and every event is a point where the exploration engine may
//!   preempt the thread.
//!
//! The hook trait works on type-erased [`Loc`] handles so one small
//! object-safe interface covers every atomic width the protocols use.

use std::sync::atomic::{AtomicI64, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Why a virtual thread reached a yield point (recorded in failure
/// traces; the numbering is part of the replay format).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum YieldKind {
    /// A compiler-only fence (the asymmetric primary's `l-mfence` slot).
    CompilerFence,
    /// An explicit yield inserted by a test body (e.g. inside a critical
    /// section, so conflicting threads can interleave there).
    Explicit,
}

/// A type-erased handle to one of the atomic shared locations the
/// protocols synchronize through.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Loc {
    /// An `AtomicUsize` (Dekker and biased-lock flags).
    Usize(*const AtomicUsize),
    /// An `AtomicU64` (ARW reader flags, write intent, ack epochs).
    U64(*const AtomicU64),
    /// An `AtomicI64` (THE-deque head/tail).
    I64(*const AtomicI64),
    /// An `AtomicPtr`, erased to `u8` (THE-deque job slots).
    Ptr(*const AtomicPtr<u8>),
}

impl Loc {
    /// Stable identity of the underlying cell (its address).
    pub fn key(&self) -> usize {
        match *self {
            Loc::Usize(p) => p as usize,
            Loc::U64(p) => p as usize,
            Loc::I64(p) => p as usize,
            Loc::Ptr(p) => p as usize,
        }
    }

    /// Read the globally committed value, bit-cast to `u64`.
    ///
    /// # Safety
    ///
    /// The pointed-to atomic must still be alive. The harness guarantees
    /// this by joining every virtual thread (and dropping all pending
    /// buffer entries) before the execution's shared state is torn down.
    pub unsafe fn committed_load(&self) -> u64 {
        match *self {
            Loc::Usize(p) => (*p).load(Ordering::SeqCst) as u64,
            Loc::U64(p) => (*p).load(Ordering::SeqCst),
            Loc::I64(p) => (*p).load(Ordering::SeqCst) as u64,
            Loc::Ptr(p) => (*p).load(Ordering::SeqCst) as u64,
        }
    }

    /// Commit `val` (bit-cast from `u64`) to the underlying atomic — the
    /// modeled store buffer draining one entry.
    ///
    /// # Safety
    ///
    /// Same liveness contract as [`Loc::committed_load`].
    pub unsafe fn commit(&self, val: u64) {
        match *self {
            Loc::Usize(p) => (*p).store(val as usize, Ordering::SeqCst),
            Loc::U64(p) => (*p).store(val, Ordering::SeqCst),
            Loc::I64(p) => (*p).store(val as i64, Ordering::SeqCst),
            Loc::Ptr(p) => (*p).store(val as *mut u8, Ordering::SeqCst),
        }
    }
}

/// The interface a controlled scheduler implements to intercept a virtual
/// thread's shared-memory operations.
///
/// All methods are called from the virtual thread itself, at the moment
/// the operation would execute. Implementations may block the calling
/// thread (that is the whole point: handing control to another virtual
/// thread) but must eventually return or unwind.
pub trait VtHooks {
    /// A store to a shared location: enqueue into the thread's modeled
    /// store buffer (the real atomic is written later, at a drain point).
    fn op_store(&self, loc: Loc, val: u64);
    /// A load from a shared location: newest own-buffer entry for `loc`
    /// if any (TSO store forwarding), else the committed value.
    fn op_load(&self, loc: Loc) -> u64;
    /// A full fence executed by this thread: drain its store buffer.
    fn op_fence(&self);
    /// A non-draining scheduling point (compiler fence, explicit yield).
    fn op_yield(&self, kind: YieldKind);
    /// One iteration of a spin-wait loop. Schedulers treat this as "give
    /// way": another runnable thread must be scheduled if one exists.
    fn spin_yield(&self);
    /// A remote serialization of the thread registered under `slot_key`
    /// (the paper's "T2 enforces the fence onto T1"): drain *that*
    /// thread's store buffer.
    fn serialize(&self, slot_key: usize);
    /// The calling virtual thread registered itself for remote
    /// serialization under `slot_key`.
    fn on_register(&self, slot_key: usize);
}

#[cfg(feature = "check-hooks")]
mod active {
    use super::VtHooks;
    use std::cell::RefCell;
    use std::sync::Arc;

    thread_local! {
        static HOOKS: RefCell<Option<Arc<dyn VtHooks>>> = const { RefCell::new(None) };
    }

    /// Install `hooks` for the calling thread; restored on guard drop.
    pub fn install(hooks: Arc<dyn VtHooks>) -> InstallGuard {
        let previous = HOOKS.with(|h| h.borrow_mut().replace(hooks));
        InstallGuard { previous }
    }

    /// The calling thread's installed hooks, if any.
    pub fn current() -> Option<Arc<dyn VtHooks>> {
        HOOKS.with(|h| h.borrow().clone())
    }

    /// RAII restoration of the previously installed hooks.
    pub struct InstallGuard {
        previous: Option<Arc<dyn VtHooks>>,
    }

    impl Drop for InstallGuard {
        fn drop(&mut self) {
            let previous = self.previous.take();
            HOOKS.with(|h| *h.borrow_mut() = previous);
        }
    }
}

#[cfg(feature = "check-hooks")]
pub use active::{current, install, InstallGuard};

macro_rules! hooked_atomic {
    ($store:ident, $load:ident, $atomic:ty, $value:ty, $variant:ident) => {
        /// Instrumented store: a modeled-TSO buffer write under a check
        /// harness, the plain atomic store otherwise.
        #[inline]
        pub fn $store(a: &$atomic, v: $value, order: Ordering) {
            #[cfg(feature = "check-hooks")]
            if let Some(h) = current() {
                h.op_store(Loc::$variant(a as *const _), v as u64);
                return;
            }
            a.store(v, order);
        }

        /// Instrumented load: store-forwarded under a check harness, the
        /// plain atomic load otherwise.
        #[inline]
        pub fn $load(a: &$atomic, order: Ordering) -> $value {
            #[cfg(feature = "check-hooks")]
            if let Some(h) = current() {
                return h.op_load(Loc::$variant(a as *const _)) as $value;
            }
            a.load(order)
        }
    };
}

hooked_atomic!(store_usize, load_usize, AtomicUsize, usize, Usize);
hooked_atomic!(store_u64, load_u64, AtomicU64, u64, U64);
hooked_atomic!(store_i64, load_i64, AtomicI64, i64, I64);

/// Instrumented pointer store (THE-deque job slots).
#[inline]
pub fn store_ptr<T>(a: &AtomicPtr<T>, v: *mut T, order: Ordering) {
    #[cfg(feature = "check-hooks")]
    if let Some(h) = current() {
        // SAFETY: AtomicPtr<T> and AtomicPtr<u8> share layout (both wrap
        // one pointer-sized word); the erased handle only ever stores a
        // whole pointer value back through it.
        let erased = unsafe { &*(a as *const AtomicPtr<T> as *const AtomicPtr<u8>) };
        h.op_store(Loc::Ptr(erased as *const _), v as usize as u64);
        return;
    }
    a.store(v, order);
}

/// Instrumented pointer load (THE-deque job slots).
#[inline]
pub fn load_ptr<T>(a: &AtomicPtr<T>, order: Ordering) -> *mut T {
    #[cfg(feature = "check-hooks")]
    if let Some(h) = current() {
        // SAFETY: see `store_ptr`.
        let erased = unsafe { &*(a as *const AtomicPtr<T> as *const AtomicPtr<u8>) };
        return h.op_load(Loc::Ptr(erased as *const _)) as usize as *mut T;
    }
    a.load(order)
}

/// Hook half of [`full_fence`](crate::fence::full_fence): drains the
/// virtual thread's modeled store buffer under a harness.
#[inline]
pub fn fence_hook() {
    #[cfg(feature = "check-hooks")]
    if let Some(h) = current() {
        h.op_fence();
    }
}

/// Hook half of
/// [`compiler_fence_only`](crate::fence::compiler_fence_only): a
/// scheduling point that deliberately does **not** drain the buffer —
/// that asymmetry is what the harness exists to check.
#[inline]
pub fn compiler_fence_hook() {
    #[cfg(feature = "check-hooks")]
    if let Some(h) = current() {
        h.op_yield(YieldKind::CompilerFence);
    }
}

/// Hook for the sync shims' lock operations ([`crate::sync::Mutex`] /
/// [`crate::sync::RwLock`] acquire attempts and releases): drains the
/// virtual thread's modeled store buffer under a harness.
///
/// On x86 a lock acquire attempt is a `lock`-prefixed RMW, which drains
/// the store buffer whether or not it wins; a lock release is a plain
/// store that FIFO-orders after every earlier buffered store. Either way,
/// by the time another thread observes the lock word's new value, the
/// issuing thread's earlier stores are globally visible. The sync shims
/// use *unmodeled* std atomics whose effects the serialized harness makes
/// visible immediately — so the modeled buffer must drain at the same
/// moment, or the model would admit executions TSO forbids (e.g. a
/// thief's retreated deque head still buffered after its lock release).
#[inline]
pub fn lock_fence_hook() {
    #[cfg(feature = "check-hooks")]
    if let Some(h) = current() {
        h.op_fence();
    }
}

/// One spin-loop iteration (called by
/// [`spin_until`](crate::fence::spin_until) /
/// [`spin_for`](crate::fence::spin_for) and the sync shims).
#[inline]
pub fn spin_yield() {
    #[cfg(feature = "check-hooks")]
    if let Some(h) = current() {
        h.spin_yield();
    }
}

/// An explicit yield for test bodies (e.g. inside a critical section).
#[inline]
pub fn explicit_yield() {
    #[cfg(feature = "check-hooks")]
    if let Some(h) = current() {
        h.op_yield(YieldKind::Explicit);
    }
}

/// Remote serialization of the thread registered under `slot_key`.
/// Returns `true` when a harness modeled it (callers then skip the real
/// signal round trip — the virtual target has no real store buffer worth
/// draining, only the modeled one).
#[inline]
pub fn serialize_hook(slot_key: usize) -> bool {
    #[cfg(feature = "check-hooks")]
    if let Some(h) = current() {
        h.serialize(slot_key);
        return true;
    }
    let _ = slot_key;
    false
}

/// Report the calling virtual thread's *deregistration* as a
/// serialization target: drains its modeled store buffer under a harness.
///
/// The deactivation store in [`Registration::drop`]
/// (`crate::registry::Registration`) FIFO-orders after every store the
/// thread buffered earlier, so on x86 any thread that observes the slot
/// inactive (and therefore skips the remote serialization) is guaranteed
/// to also observe those stores. The slot flag itself is an unmodeled std
/// atomic — immediately visible under the serialized harness — so the
/// modeled buffer must drain before it flips.
#[inline]
pub fn deregister_hook() {
    #[cfg(feature = "check-hooks")]
    if let Some(h) = current() {
        h.op_fence();
    }
}

/// Report the calling thread's registration for remote serialization.
#[inline]
pub fn register_hook(slot_key: usize) {
    #[cfg(feature = "check-hooks")]
    if let Some(h) = current() {
        h.on_register(slot_key);
    }
    #[cfg(not(feature = "check-hooks"))]
    let _ = slot_key;
}

#[cfg(all(test, feature = "check-hooks"))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::{Arc, Mutex};

    #[derive(Default)]
    struct Recorder {
        events: Mutex<Vec<String>>,
    }

    impl VtHooks for Recorder {
        fn op_store(&self, loc: Loc, val: u64) {
            self.events.lock().unwrap().push(format!("store {val}"));
            // Commit immediately: this recorder models an empty buffer.
            unsafe { loc.commit(val) };
        }
        fn op_load(&self, loc: Loc) -> u64 {
            self.events.lock().unwrap().push("load".into());
            unsafe { loc.committed_load() }
        }
        fn op_fence(&self) {
            self.events.lock().unwrap().push("fence".into());
        }
        fn op_yield(&self, kind: YieldKind) {
            self.events.lock().unwrap().push(format!("yield {kind:?}"));
        }
        fn spin_yield(&self) {
            self.events.lock().unwrap().push("spin".into());
        }
        fn serialize(&self, _slot_key: usize) {
            self.events.lock().unwrap().push("serialize".into());
        }
        fn on_register(&self, _slot_key: usize) {
            self.events.lock().unwrap().push("register".into());
        }
    }

    #[test]
    fn wrappers_route_through_installed_hooks_and_restore_on_drop() {
        let rec = Arc::new(Recorder::default());
        let cell = AtomicUsize::new(0);
        {
            let _guard = install(rec.clone());
            store_usize(&cell, 7, Ordering::Release);
            assert_eq!(load_usize(&cell, Ordering::Acquire), 7);
            fence_hook();
            spin_yield();
            assert!(serialize_hook(123));
        }
        // Uninstalled: plain operations, no recording.
        store_usize(&cell, 9, Ordering::Release);
        assert!(!serialize_hook(123));
        assert_eq!(cell.load(Ordering::Relaxed), 9);
        let events = rec.events.lock().unwrap().clone();
        assert_eq!(events, ["store 7", "load", "fence", "spin", "serialize"]);
    }

    #[test]
    fn nested_installs_restore_previous() {
        let outer = Arc::new(Recorder::default());
        let inner = Arc::new(Recorder::default());
        let _g1 = install(outer.clone());
        {
            let _g2 = install(inner.clone());
            spin_yield();
        }
        spin_yield();
        assert_eq!(inner.events.lock().unwrap().len(), 1);
        assert_eq!(outer.events.lock().unwrap().len(), 1);
    }
}
