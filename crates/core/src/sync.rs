//! Std-backed synchronization shims with `parking_lot`-style APIs.
//!
//! The workspace builds offline, so the `parking_lot` and `crossbeam`
//! crates are out of reach; the few pieces the repo used live here
//! instead:
//!
//! * [`CachePadded`] — pad-and-align to 128 bytes so hot flags of
//!   different threads never share a cache line (two 64-byte lines: the
//!   spatial prefetcher pulls line pairs on modern x86);
//! * [`Mutex`] / [`RwLock`] — `std` locks minus poisoning, with
//!   `lock()` returning the guard directly and `try_lock()` returning an
//!   `Option`, exactly the `parking_lot` calling convention the protocol
//!   code was written against;
//! * [`Condvar`] — a condition variable whose `wait_for` *consumes and
//!   returns* the guard (our guards wrap an `Option` so the std handoff
//!   can happen inside).
//!
//! All blocking entry points are harness-aware: under an active
//! `lbmf-check` virtual-thread scheduler (see [`crate::hooks`]) they
//! spin through `hooks::spin_yield()` instead of parking the OS thread,
//! because a controlled scheduler must see every wait as a scheduling
//! point — an OS-blocked virtual thread would deadlock the exploration.

use crate::hooks;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{PoisonError, TryLockError};
use std::time::Duration;

/// Pads and aligns a value to 128 bytes (a spatial-prefetch pair of
/// cache lines) to prevent false sharing between adjacent hot atomics.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value`.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.value.fmt(f)
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

/// A mutual-exclusion lock; `lock()` hands back the guard directly
/// (poisoning is ignored: a panicking critical section in this codebase
/// is already a failed test).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held. Under a check harness this spins
    /// through the virtual scheduler rather than parking the OS thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        loop {
            if let Some(guard) = self.try_lock() {
                return guard;
            }
            hooks::spin_yield();
            std::hint::spin_loop();
        }
    }

    /// Acquire without blocking; `None` if the lock is held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        // On x86 the acquire attempt is a locked RMW: it drains the store
        // buffer, win or lose. Model that (no-op outside a harness).
        hooks::lock_fence_hook();
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                mutex: self,
                inner: Some(g),
            }),
            Err(TryLockError::WouldBlock) => None,
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                mutex: self,
                inner: Some(p.into_inner()),
            }),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    // `Option` so Condvar::wait_for can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // The release store FIFO-orders after earlier buffered stores; the
        // real unlock below is visible immediately under the harness, so
        // drain the modeled buffer first (no-op outside a harness).
        hooks::lock_fence_hook();
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A readers-writer lock with the `parking_lot` calling convention.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new unlocked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until a shared read guard is held.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        loop {
            if let Some(g) = self.try_read() {
                return g;
            }
            hooks::spin_yield();
            std::hint::spin_loop();
        }
    }

    /// Block until the exclusive write guard is held.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        loop {
            if let Some(g) = self.try_write() {
                return g;
            }
            hooks::spin_yield();
            std::hint::spin_loop();
        }
    }

    /// Non-blocking shared acquire.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        hooks::lock_fence_hook();
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(TryLockError::WouldBlock) => None,
            Err(TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
        }
    }

    /// Non-blocking exclusive acquire.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        hooks::lock_fence_hook();
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(TryLockError::WouldBlock) => None,
            Err(TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        hooks::lock_fence_hook();
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        hooks::lock_fence_hook();
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable paired with [`Mutex`]. `wait_for` consumes the
/// guard and returns it reacquired, which keeps the std guard handoff
/// hidden and stays harness-safe (under a check scheduler the wait
/// degrades to unlock → virtual yield → relock).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wait until notified or `timeout` elapses; returns the reacquired
    /// guard. Spurious wakeups are allowed (callers already loop).
    pub fn wait_for<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> MutexGuard<'a, T> {
        #[cfg(feature = "check-hooks")]
        if hooks::current().is_some() {
            let mutex = guard.mutex;
            drop(guard);
            hooks::spin_yield();
            return mutex.lock();
        }
        let mutex = guard.mutex;
        let std_guard = guard.inner.take().expect("guard present");
        let (reacquired, _timed_out) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            mutex,
            inner: Some(reacquired),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn cache_padded_is_128_aligned_and_transparent() {
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert_eq!(p.into_inner(), 7);
    }

    #[test]
    fn mutex_excludes_and_try_lock_observes_holder() {
        let m = Mutex::new(0u32);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn mutex_contended_increments_are_lossless() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = RwLock::new(5i32);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        assert!(l.try_write().is_none());
        drop((r1, r2));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_for_returns_reacquired_guard() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            *m2.lock() = true;
            cv2.notify_all();
        });
        let mut guard = m.lock();
        let woke = Arc::new(AtomicUsize::new(0));
        while !*guard {
            guard = cv.wait_for(guard, Duration::from_millis(50));
            woke.fetch_add(1, Ordering::Relaxed);
        }
        assert!(*guard);
        drop(guard);
        waker.join().unwrap();
    }
}
