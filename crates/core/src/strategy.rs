//! Fence strategies: program-based, and two software realizations of
//! location-based memory fences.
//!
//! A [`FenceStrategy`] packages the three ordering actions the asymmetric
//! protocols need:
//!
//! * the **primary** thread's store→load ordering point — where the paper
//!   places `l-mfence` (Figure 3(a), line K1);
//! * the **secondary** thread's own program-based fence (line J2);
//! * the secondary's **remote serialization** of the primary — the paper's
//!   "T2 enforces the fence onto T1".
//!
//! | strategy | primary pays | secondary pays | models |
//! |---|---|---|---|
//! | [`Symmetric`] | `mfence` | `mfence` | the baseline (Cilk-5 / SRW) |
//! | [`SignalFence`] | compiler fence | `mfence` + signal round trip (~10⁴ cycles) | the paper's software prototype |
//! | [`MembarrierFence`] | compiler fence | `mfence` + `membarrier(2)` (~10³ cycles) | kernel-assisted asymmetric fence; brackets the LE/ST hardware from above |
//! | [`NoFence`] | compiler fence | `mfence`, **no serialization** | the broken Figure-1 protocol, for demonstrations |

use crate::fence::{compiler_fence_only, full_fence};
use crate::registry::RemoteThread;
use crate::stats::FenceStats;
#[allow(unused_imports)]
use crate::trace::{
    trace_event, trace_event_corr, trace_mint_corr, trace_span_end_corr, trace_span_start,
};

/// Ordering actions for one side of an asymmetric synchronization pattern.
///
/// Contract required from implementations (the paper's Definition 2, in
/// software terms): after `serialize_remote(t)` returns, every store that
/// thread `t` committed before the serialization point is visible to the
/// caller, provided `t` brackets its own fast path with `primary_fence()`
/// at the store→load position.
pub trait FenceStrategy: Send + Sync + 'static {
    /// The primary's store→load ordering point (the `l-mfence` position).
    fn primary_fence(&self);

    /// The secondary's own program-based fence (always a real fence: the
    /// asymmetry only ever removes the *primary's* cost).
    fn secondary_fence(&self) {
        full_fence();
        FenceStats::bump(&self.stats().secondary_full_fences);
        trace_event!(SecondaryFence);
    }

    /// Force `target` to serialize its instruction stream. Mints a fresh
    /// correlation id for the round trip's causal span (see
    /// [`FenceStrategy::serialize_remote_corr`]).
    fn serialize_remote(&self, target: &RemoteThread) {
        self.serialize_remote_corr(target, trace_mint_corr!());
    }

    /// [`FenceStrategy::serialize_remote`] under a caller-supplied causal
    /// correlation id, so a larger operation (a deque steal) can link the
    /// serialization's phase events into its own chain. `corr = 0` means
    /// "no chain". Strategies whose serialization is a no-op (symmetric,
    /// the broken control) ignore the id — they produce no round trip to
    /// attribute.
    fn serialize_remote_corr(&self, target: &RemoteThread, corr: u64);

    /// Short machine-readable name for reports.
    fn name(&self) -> &'static str;

    /// Whether the primary path avoids the hardware fence.
    fn is_asymmetric(&self) -> bool;

    /// Activity counters.
    fn stats(&self) -> &FenceStats;
}

// ---------------------------------------------------------------------
// Symmetric (program-based, the baseline)
// ---------------------------------------------------------------------

/// Program-based fences on both sides; remote serialization is a no-op
/// because the primary already serialized itself.
#[derive(Debug, Default)]
pub struct Symmetric {
    stats: FenceStats,
}

impl Symmetric {
    /// A symmetric (program-based) strategy with fresh counters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FenceStrategy for Symmetric {
    fn primary_fence(&self) {
        full_fence();
        FenceStats::bump(&self.stats.primary_full_fences);
        trace_event!(PrimaryFullFence);
    }

    fn serialize_remote_corr(&self, target: &RemoteThread, _corr: u64) {
        FenceStats::bump(&self.stats.serializations_requested);
        trace_event!(SerializeRequest, target.key());
        // Nothing to do: the primary executed a real fence itself (and
        // with no round trip there is no chain to correlate).
    }

    fn name(&self) -> &'static str {
        "symmetric-mfence"
    }

    fn is_asymmetric(&self) -> bool {
        false
    }

    fn stats(&self) -> &FenceStats {
        &self.stats
    }
}

// ---------------------------------------------------------------------
// Signal-based software prototype (the paper's Section 5 implementation)
// ---------------------------------------------------------------------

/// The paper's software prototype: the primary runs fence-free (compiler
/// fence only); the secondary serializes it by sending a POSIX signal and
/// spinning for the handler's acknowledgment. Signal delivery enters the
/// kernel on the primary's CPU, draining its store buffer.
#[derive(Debug, Default)]
pub struct SignalFence {
    stats: FenceStats,
}

impl SignalFence {
    /// A signal-based strategy with fresh counters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FenceStrategy for SignalFence {
    fn primary_fence(&self) {
        compiler_fence_only();
        FenceStats::bump(&self.stats.primary_compiler_fences);
        trace_event!(PrimaryFence);
    }

    fn serialize_remote_corr(&self, target: &RemoteThread, corr: u64) {
        FenceStats::bump(&self.stats.serializations_requested);
        trace_event_corr!(SerializeRequest, target.key(), corr);
        if target.serialize_with_corr(corr) {
            FenceStats::bump(&self.stats.serializations_delivered);
        }
    }

    fn name(&self) -> &'static str {
        "lbmf-signal"
    }

    fn is_asymmetric(&self) -> bool {
        true
    }

    fn stats(&self) -> &FenceStats {
        &self.stats
    }
}

// ---------------------------------------------------------------------
// membarrier(2): the modern kernel-assisted asymmetric fence
// ---------------------------------------------------------------------

use crate::sys::{
    membarrier, MEMBARRIER_CMD_PRIVATE_EXPEDITED, MEMBARRIER_CMD_QUERY,
    MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED,
};

/// Kernel-assisted asymmetric fence: `membarrier(PRIVATE_EXPEDITED)` makes
/// every thread of the process execute a memory barrier before the call
/// returns, at IPI cost — orders of magnitude cheaper than a signal
/// handshake, though still above the paper's projected LE/ST cost (which
/// bothers only the one processor holding the link).
#[derive(Debug)]
pub struct MembarrierFence {
    stats: FenceStats,
}

impl MembarrierFence {
    /// Probe for kernel support and register the process. Returns `None`
    /// when the kernel lacks `MEMBARRIER_CMD_PRIVATE_EXPEDITED`.
    pub fn try_new() -> Option<Self> {
        let supported = membarrier(MEMBARRIER_CMD_QUERY);
        if supported < 0 {
            return None;
        }
        if supported & (MEMBARRIER_CMD_PRIVATE_EXPEDITED as std::os::raw::c_long) == 0 {
            return None;
        }
        if membarrier(MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED) != 0 {
            return None;
        }
        Some(MembarrierFence {
            stats: FenceStats::new(),
        })
    }
}

impl FenceStrategy for MembarrierFence {
    fn primary_fence(&self) {
        compiler_fence_only();
        FenceStats::bump(&self.stats.primary_compiler_fences);
        trace_event!(PrimaryFence);
    }

    fn serialize_remote_corr(&self, target: &RemoteThread, corr: u64) {
        FenceStats::bump(&self.stats.serializations_requested);
        trace_event_corr!(SerializeRequest, target.key(), corr);
        let start = trace_span_start!();
        let rc = membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED);
        debug_assert_eq!(rc, 0, "membarrier failed after successful registration");
        FenceStats::bump(&self.stats.serializations_delivered);
        // The kernel IPI has no observable interior phases; the chain is
        // the request bookended by the completed round trip.
        trace_event_corr!(SerializeAckObserved, target.key(), corr);
        trace_span_end_corr!(SerializeDeliver, target.key(), start, corr);
    }

    fn name(&self) -> &'static str {
        "lbmf-membarrier"
    }

    fn is_asymmetric(&self) -> bool {
        true
    }

    fn stats(&self) -> &FenceStats {
        &self.stats
    }
}

// ---------------------------------------------------------------------
// NoFence: the deliberately broken Figure-1 protocol
// ---------------------------------------------------------------------

/// No hardware ordering at all on the primary side and no remote
/// serialization: the incorrect Figure-1 idiom. Exists so tests and
/// examples can demonstrate *why* the fence is needed. Never use this for
/// actual synchronization.
#[derive(Debug, Default)]
pub struct NoFence {
    stats: FenceStats,
}

impl NoFence {
    /// The broken strategy (demonstrations only).
    pub fn new() -> Self {
        Self::default()
    }
}

impl FenceStrategy for NoFence {
    fn primary_fence(&self) {
        compiler_fence_only();
        FenceStats::bump(&self.stats.primary_compiler_fences);
        trace_event!(PrimaryFence);
    }

    fn serialize_remote_corr(&self, target: &RemoteThread, _corr: u64) {
        FenceStats::bump(&self.stats.serializations_requested);
        trace_event!(SerializeRequest, target.key());
    }

    fn name(&self) -> &'static str {
        "none (broken)"
    }

    fn is_asymmetric(&self) -> bool {
        true
    }

    fn stats(&self) -> &FenceStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::register_current_thread;

    #[test]
    fn symmetric_counts_primary_fences() {
        let s = Symmetric::new();
        s.primary_fence();
        s.primary_fence();
        s.secondary_fence();
        let snap = s.stats().snapshot();
        assert_eq!(snap.primary_full_fences, 2);
        assert_eq!(snap.secondary_full_fences, 1);
        assert_eq!(snap.fences_avoided(), 0);
        assert!(!s.is_asymmetric());
    }

    #[test]
    fn signal_fence_roundtrip_counts() {
        let s = SignalFence::new();
        s.primary_fence();
        assert_eq!(s.stats().snapshot().primary_compiler_fences, 1);
        assert!(s.is_asymmetric());

        // Serialize a live helper thread.
        let (tx, rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let h = std::thread::spawn(move || {
            let reg = register_current_thread();
            tx.send(reg.remote()).unwrap();
            done_rx.recv().unwrap();
        });
        let remote = rx.recv().unwrap();
        s.serialize_remote(&remote);
        let snap = s.stats().snapshot();
        assert_eq!(snap.serializations_requested, 1);
        assert_eq!(snap.serializations_delivered, 1);
        done_tx.send(()).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn membarrier_roundtrip_when_kernel_supports_it() {
        // Sandboxes may filter the syscall; skip (loudly) rather than fail
        // — the harnesses fall back to SignalFence in that case.
        let Some(m) = MembarrierFence::try_new() else {
            eprintln!("skipping: membarrier PRIVATE_EXPEDITED unsupported here");
            return;
        };
        let reg = register_current_thread();
        m.serialize_remote(&reg.remote());
        assert_eq!(m.stats().snapshot().serializations_delivered, 1);
    }

    #[test]
    fn nofence_does_nothing_but_count() {
        let s = NoFence::new();
        s.primary_fence();
        let reg = register_current_thread();
        s.serialize_remote(&reg.remote());
        let snap = s.stats().snapshot();
        assert_eq!(snap.serializations_requested, 1);
        assert_eq!(snap.serializations_delivered, 0);
    }
}
