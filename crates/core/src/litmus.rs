//! A real-thread litmus-test harness (a miniature `litmus7`).
//!
//! Runs the store-buffering shape — the Dekker core — on two live threads,
//! iteration-synchronized by a sense-reversing spin barrier, and collects
//! the outcome histogram. With no fences, real TSO hardware (given >1
//! core) can exhibit the relaxed `(0, 0)` outcome; with a program-based
//! fence pair, or with the location-based pair (primary compiler fence +
//! secondary fence-and-serialize), it cannot. The simulator's exhaustive
//! exploration (`lbmf-sim`) proves the same sets; this harness is the
//! real-hardware cross-check.
//!
//! On the 1-core experiment host the relaxed outcome is unobservable
//! either way (the kernel's context switches serialize the store buffer),
//! so tests assert only the *forbidden-outcome* direction.

use crate::registry::{register_current_thread, RemoteThread};
use crate::strategy::FenceStrategy;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Outcome histogram of a two-register litmus run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LitmusHistogram {
    counts: BTreeMap<(u64, u64), u64>,
}

impl LitmusHistogram {
    /// Count one observation of `outcome`.
    pub fn record(&mut self, outcome: (u64, u64)) {
        *self.counts.entry(outcome).or_insert(0) += 1;
    }

    /// Observations of `outcome` (0 if never seen).
    pub fn count(&self, outcome: (u64, u64)) -> u64 {
        self.counts.get(&outcome).copied().unwrap_or(0)
    }

    /// Total observations across all outcomes.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Iterate `(outcome, count)` pairs in outcome order.
    pub fn outcomes(&self) -> impl Iterator<Item = (&(u64, u64), &u64)> {
        self.counts.iter()
    }
}

impl std::fmt::Display for LitmusHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for ((a, b), n) in &self.counts {
            writeln!(f, "  r0={a} r1={b} : {n}")?;
        }
        Ok(())
    }
}

/// A sense-reversing two-party spin barrier (no OS blocking: litmus
/// iterations are nanoseconds long).
struct SpinBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    parties: usize,
}

impl SpinBarrier {
    fn new(parties: usize) -> Self {
        SpinBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            parties,
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.store(gen + 1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins > 256 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// Shared state of one store-buffering litmus run.
struct SbState {
    x: AtomicU64,
    y: AtomicU64,
    r0: AtomicU64,
    r1: AtomicU64,
    barrier: SpinBarrier,
}

/// Run the store-buffering litmus `iters` times under `strategy`:
///
/// * thread 0 (primary): `x = 1; primary_fence(); r0 = y`
/// * thread 1 (secondary): `y = 1; secondary_fence(); serialize(thread 0); r1 = x`
///
/// Returns the histogram of `(r0, r1)`. `(0, 0)` is the relaxed outcome
/// the fences exist to forbid.
pub fn run_sb_litmus<S: FenceStrategy>(strategy: Arc<S>, iters: u64) -> LitmusHistogram {
    let state = Arc::new(SbState {
        x: AtomicU64::new(0),
        y: AtomicU64::new(0),
        r0: AtomicU64::new(0),
        r1: AtomicU64::new(0),
        barrier: SpinBarrier::new(2),
    });
    let (tx, rx) = std::sync::mpsc::channel::<RemoteThread>();

    let s0 = state.clone();
    let strat0 = strategy.clone();
    let primary = std::thread::spawn(move || {
        let reg = register_current_thread();
        tx.send(reg.remote()).unwrap();
        for _ in 0..iters {
            s0.barrier.wait(); // start together
            s0.x.store(1, Ordering::Relaxed);
            strat0.primary_fence();
            let r = s0.y.load(Ordering::Relaxed);
            s0.r0.store(r, Ordering::Relaxed);
            s0.barrier.wait(); // end of iteration
            s0.barrier.wait(); // histogram recorded; reset done
        }
    });

    let s1 = state.clone();
    let remote = rx.recv().unwrap();
    let mut histogram = LitmusHistogram::default();
    for _ in 0..iters {
        s1.barrier.wait();
        s1.y.store(1, Ordering::Relaxed);
        strategy.secondary_fence();
        strategy.serialize_remote(&remote);
        let r = s1.x.load(Ordering::Relaxed);
        s1.r1.store(r, Ordering::Relaxed);
        s1.barrier.wait();
        // Record and reset between barriers (both threads are parked at
        // the third barrier, so plain stores are safe).
        histogram.record((
            s1.r0.load(Ordering::Relaxed),
            s1.r1.load(Ordering::Relaxed),
        ));
        s1.x.store(0, Ordering::Relaxed);
        s1.y.store(0, Ordering::Relaxed);
        s1.barrier.wait();
    }
    primary.join().unwrap();
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{NoFence, SignalFence, Symmetric};

    const ITERS: u64 = 20_000;

    #[test]
    fn symmetric_fences_forbid_relaxed_outcome() {
        let h = run_sb_litmus(Arc::new(Symmetric::new()), ITERS);
        assert_eq!(h.total(), ITERS);
        assert_eq!(h.count((0, 0)), 0, "mfence pair must forbid 0/0:\n{h}");
    }

    #[test]
    fn location_based_pair_forbids_relaxed_outcome() {
        let h = run_sb_litmus(Arc::new(SignalFence::new()), ITERS / 10);
        assert_eq!(h.total(), ITERS / 10);
        assert_eq!(
            h.count((0, 0)),
            0,
            "l-mfence (signal) pairing must forbid 0/0:\n{h}"
        );
    }

    #[test]
    fn unfenced_run_completes_and_counts() {
        // On a single-core host the relaxed outcome will not appear, so we
        // only assert bookkeeping; on a multicore host this same harness
        // exhibits (0,0) — see the README note.
        let h = run_sb_litmus(Arc::new(NoFence::new()), ITERS / 10);
        assert_eq!(h.total(), ITERS / 10);
        let legal: u64 = [(0, 0), (0, 1), (1, 0), (1, 1)]
            .iter()
            .map(|o| h.count(*o))
            .sum();
        assert_eq!(legal, h.total(), "only 0/1 register values possible:\n{h}");
    }

    #[test]
    fn histogram_arithmetic() {
        let mut h = LitmusHistogram::default();
        h.record((0, 1));
        h.record((0, 1));
        h.record((1, 1));
        assert_eq!(h.count((0, 1)), 2);
        assert_eq!(h.count((1, 0)), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.outcomes().count(), 2);
        let text = format!("{h}");
        assert!(text.contains("r0=0 r1=1 : 2"));
    }
}
