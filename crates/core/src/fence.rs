//! Program-based fences and spin helpers.
//!
//! On x86-64, `std::sync::atomic::fence(SeqCst)` compiles to a full
//! serializing operation (an `mfence` or a locked RMW — both drain the
//! store buffer before later loads commit), which is exactly the
//! program-based fence the paper contrasts `l-mfence` against.
//! `compiler_fence(SeqCst)` only stops the *compiler* from reordering —
//! the paper's software prototype uses precisely this on the primary's fast
//! path ("we achieve this simply by inserting a compiler fence").

use crate::hooks;
use std::sync::atomic::{compiler_fence, fence, Ordering};

/// A full program-based memory fence (the paper's `mfence`): all stores
/// before it are globally visible before any load after it executes.
///
/// Under an `lbmf-check` harness this additionally drains the calling
/// virtual thread's modeled store buffer — the same drain the hardware
/// fence performs on the real store buffer.
#[inline]
pub fn full_fence() {
    fence(Ordering::SeqCst);
    hooks::fence_hook();
}

/// A compiler-only fence: prevents compile-time reordering across this
/// point but emits no hardware fence. This is the primary-side cost of the
/// software `l-mfence` prototype.
///
/// Under an `lbmf-check` harness this is a scheduling point that (by
/// design) does **not** drain the modeled store buffer.
#[inline]
pub fn compiler_fence_only() {
    compiler_fence(Ordering::SeqCst);
    hooks::compiler_fence_hook();
}

/// Spin until `cond()` holds, yielding to the OS scheduler after a short
/// busy phase. The yield matters: on few-core hosts (including the 1-core
/// machine these experiments run on) a pure busy-wait can starve the very
/// thread that must make the condition true.
#[inline]
pub fn spin_until(mut cond: impl FnMut() -> bool) {
    let mut spins = 0u32;
    while !cond() {
        hooks::spin_yield();
        spins += 1;
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Spin until `cond()` holds or roughly `budget_spins` busy iterations have
/// elapsed; returns whether the condition was met. Used by the ARW+ lock's
/// waiting heuristic.
#[inline]
pub fn spin_for(budget_spins: u32, mut cond: impl FnMut() -> bool) -> bool {
    for s in 0..budget_spins {
        if cond() {
            return true;
        }
        hooks::spin_yield();
        if s % 128 == 127 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
    cond()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
    use std::sync::Arc;

    #[test]
    fn fences_do_not_crash() {
        full_fence();
        compiler_fence_only();
    }

    #[test]
    fn spin_until_returns_when_condition_met() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = flag.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            f2.store(true, Relaxed);
        });
        spin_until(|| flag.load(Relaxed));
        h.join().unwrap();
        assert!(flag.load(Relaxed));
    }

    #[test]
    fn spin_for_times_out() {
        assert!(!spin_for(1000, || false));
        assert!(spin_for(1, || true));
    }
}
