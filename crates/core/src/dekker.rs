//! The asymmetric Dekker protocol (paper Figure 3(a)) over a pluggable
//! [`FenceStrategy`], plus the turn-based tie-break the paper notes is
//! needed against livelock.
//!
//! Roles:
//!
//! * the **primary** thread enters often; its fast path is flag-store →
//!   `strategy.primary_fence()` → flag-load. Under an asymmetric strategy
//!   the fence is compiler-only, so an uncontended entry costs two cache
//!   hits.
//! * **secondary** threads first compete among themselves (an internal
//!   mutex — the paper's "augmented" protocol), then run flag-store →
//!   `mfence` → *remote-serialize the primary* → flag-load.
//!
//! The protocol degenerates to the classic symmetric Dekker when
//! instantiated with [`Symmetric`](crate::strategy::Symmetric).

use crate::fence::spin_until;
use crate::hooks::{load_usize, store_usize};
use crate::registry::{register_current_thread, Registration, RemoteThread};
use crate::strategy::FenceStrategy;
use crate::sync::{CachePadded, Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

const TURN_PRIMARY: usize = 0;
const TURN_SECONDARY: usize = 1;

/// Two-party mutual exclusion biased toward the primary thread.
pub struct AsymmetricDekker<S: FenceStrategy> {
    strategy: Arc<S>,
    /// `L1`: the primary's intent flag.
    primary_flag: CachePadded<AtomicUsize>,
    /// `L2`: the (winning) secondary's intent flag.
    secondary_flag: CachePadded<AtomicUsize>,
    /// Tie-break for livelock freedom (the full Dekker protocol).
    turn: CachePadded<AtomicUsize>,
    /// Handle for remotely serializing the primary; set by
    /// [`register_primary`](Self::register_primary).
    primary_thread: OnceLock<RemoteThread>,
    /// Secondaries compete for the right to engage the primary.
    secondary_mutex: Mutex<()>,
    /// Primary critical-section entries.
    pub primary_entries: AtomicU64,
    /// Secondary critical-section entries.
    pub secondary_entries: AtomicU64,
    /// Times the primary observed a conflict and had to wait or retreat.
    pub primary_conflicts: AtomicU64,
}

impl<S: FenceStrategy> AsymmetricDekker<S> {
    /// A protocol instance with no primary registered yet.
    pub fn new(strategy: Arc<S>) -> Self {
        AsymmetricDekker {
            strategy,
            primary_flag: CachePadded::new(AtomicUsize::new(0)),
            secondary_flag: CachePadded::new(AtomicUsize::new(0)),
            turn: CachePadded::new(AtomicUsize::new(TURN_PRIMARY)),
            primary_thread: OnceLock::new(),
            secondary_mutex: Mutex::new(()),
            primary_entries: AtomicU64::new(0),
            secondary_entries: AtomicU64::new(0),
            primary_conflicts: AtomicU64::new(0),
        }
    }

    /// The fence strategy in use.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Register the *calling* thread as the primary. Must be called exactly
    /// once, from the thread that will run the primary fast path.
    ///
    /// # Panics
    ///
    /// Panics if a primary was already registered.
    pub fn register_primary(self: &Arc<Self>) -> Primary<S> {
        let reg = register_current_thread();
        self.primary_thread
            .set(reg.remote())
            .expect("primary already registered");
        Primary {
            dekker: Arc::clone(self),
            _registration: reg,
        }
    }

    /// Acquire as a secondary thread: compete with other secondaries, then
    /// engage the primary with the fenced protocol.
    pub fn secondary_lock(&self) -> SecondaryGuard<'_, S> {
        let inner = self.secondary_mutex.lock();
        loop {
            store_usize(&self.secondary_flag, 1, Ordering::Release); // J1
            self.strategy.secondary_fence(); // J2
            // Remotely force the primary to serialize so its (possibly
            // buffered) flag store becomes visible before we read it.
            if let Some(primary) = self.primary_thread.get() {
                self.strategy.serialize_remote(primary);
            }
            if load_usize(&self.primary_flag, Ordering::Acquire) == 0 {
                // J3: primary not competing — enter.
                self.secondary_entries.fetch_add(1, Ordering::Relaxed);
                return SecondaryGuard { dekker: self, _inner: inner };
            }
            if load_usize(&self.turn, Ordering::Acquire) == TURN_PRIMARY {
                // Retreat and let the primary go first.
                store_usize(&self.secondary_flag, 0, Ordering::Release);
                spin_until(|| {
                    load_usize(&self.turn, Ordering::Acquire) == TURN_SECONDARY
                        || load_usize(&self.primary_flag, Ordering::Acquire) == 0
                });
            } else {
                // Our turn: hold the flag and wait the primary out.
                spin_until(|| load_usize(&self.primary_flag, Ordering::Acquire) == 0);
                self.secondary_entries.fetch_add(1, Ordering::Relaxed);
                return SecondaryGuard { dekker: self, _inner: inner };
            }
        }
    }

    /// Non-blocking secondary attempt; `None` if the primary holds the
    /// critical section (or another secondary holds the inner mutex).
    pub fn try_secondary_lock(&self) -> Option<SecondaryGuard<'_, S>> {
        let inner = self.secondary_mutex.try_lock()?;
        store_usize(&self.secondary_flag, 1, Ordering::Release);
        self.strategy.secondary_fence();
        if let Some(primary) = self.primary_thread.get() {
            self.strategy.serialize_remote(primary);
        }
        if load_usize(&self.primary_flag, Ordering::Acquire) == 0 {
            self.secondary_entries.fetch_add(1, Ordering::Relaxed);
            Some(SecondaryGuard { dekker: self, _inner: inner })
        } else {
            store_usize(&self.secondary_flag, 0, Ordering::Release);
            None
        }
    }
}

/// The primary role: owned by the registered primary thread.
pub struct Primary<S: FenceStrategy> {
    dekker: Arc<AsymmetricDekker<S>>,
    _registration: Registration,
}

impl<S: FenceStrategy> Primary<S> {
    /// The fast-path acquire (lines K1–K2 of Figure 3(a), plus tie-break).
    pub fn lock(&self) -> PrimaryGuard<'_, S> {
        let d = &*self.dekker;
        loop {
            store_usize(&d.primary_flag, 1, Ordering::Release); // K1: guarded store
            d.strategy.primary_fence(); // the l-mfence position
            if load_usize(&d.secondary_flag, Ordering::Acquire) == 0 {
                // K2: no secondary competing — the common case.
                d.primary_entries.fetch_add(1, Ordering::Relaxed);
                return PrimaryGuard { dekker: d };
            }
            d.primary_conflicts.fetch_add(1, Ordering::Relaxed);
            if load_usize(&d.turn, Ordering::Acquire) == TURN_SECONDARY {
                store_usize(&d.primary_flag, 0, Ordering::Release);
                spin_until(|| {
                    load_usize(&d.turn, Ordering::Acquire) == TURN_PRIMARY
                        || load_usize(&d.secondary_flag, Ordering::Acquire) == 0
                });
            } else {
                spin_until(|| load_usize(&d.secondary_flag, Ordering::Acquire) == 0);
                d.primary_entries.fetch_add(1, Ordering::Relaxed);
                return PrimaryGuard { dekker: d };
            }
        }
    }

    /// Non-blocking fast-path attempt.
    pub fn try_lock(&self) -> Option<PrimaryGuard<'_, S>> {
        let d = &*self.dekker;
        store_usize(&d.primary_flag, 1, Ordering::Release);
        d.strategy.primary_fence();
        if load_usize(&d.secondary_flag, Ordering::Acquire) == 0 {
            d.primary_entries.fetch_add(1, Ordering::Relaxed);
            Some(PrimaryGuard { dekker: d })
        } else {
            d.primary_conflicts.fetch_add(1, Ordering::Relaxed);
            store_usize(&d.primary_flag, 0, Ordering::Release);
            None
        }
    }

    /// Run `f` inside the primary critical section.
    pub fn with_lock<T>(&self, f: impl FnOnce() -> T) -> T {
        let _g = self.lock();
        f()
    }

    /// The protocol instance this primary handle belongs to.
    pub fn dekker(&self) -> &Arc<AsymmetricDekker<S>> {
        &self.dekker
    }
}

/// RAII guard for the primary's critical section.
pub struct PrimaryGuard<'a, S: FenceStrategy> {
    dekker: &'a AsymmetricDekker<S>,
}

impl<S: FenceStrategy> Drop for PrimaryGuard<'_, S> {
    fn drop(&mut self) {
        store_usize(&self.dekker.turn, TURN_SECONDARY, Ordering::Release);
        store_usize(&self.dekker.primary_flag, 0, Ordering::Release); // K6
    }
}

/// RAII guard for a secondary's critical section.
pub struct SecondaryGuard<'a, S: FenceStrategy> {
    dekker: &'a AsymmetricDekker<S>,
    _inner: MutexGuard<'a, ()>,
}

impl<S: FenceStrategy> Drop for SecondaryGuard<'_, S> {
    fn drop(&mut self) {
        store_usize(&self.dekker.turn, TURN_PRIMARY, Ordering::Release);
        store_usize(&self.dekker.secondary_flag, 0, Ordering::Release); // J7
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{SignalFence, Symmetric};
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    fn hammer<S: FenceStrategy>(strategy: Arc<S>, secondaries: usize, iters: u64) {
        let dekker = Arc::new(AsymmetricDekker::new(strategy));
        let counter = Arc::new(AtomicU64::new(0));
        let inside = Arc::new(AtomicU64::new(0));

        let d2 = dekker.clone();
        let c2 = counter.clone();
        let in2 = inside.clone();
        let primary = std::thread::spawn(move || {
            let p = d2.register_primary();
            for _ in 0..iters {
                let _g = p.lock();
                let now = in2.fetch_add(1, Ordering::SeqCst);
                assert_eq!(now, 0, "mutual exclusion violated (primary)");
                c2.fetch_add(1, Ordering::Relaxed);
                in2.fetch_sub(1, Ordering::SeqCst);
            }
        });

        // Give the primary a moment to register before secondaries engage.
        std::thread::sleep(Duration::from_millis(5));
        let mut handles = Vec::new();
        for _ in 0..secondaries {
            let d = dekker.clone();
            let c = counter.clone();
            let ins = inside.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..iters / 10 {
                    let _g = d.secondary_lock();
                    let now = ins.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(now, 0, "mutual exclusion violated (secondary)");
                    c.fetch_add(1, Ordering::Relaxed);
                    ins.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        primary.join().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        let expected = iters + secondaries as u64 * (iters / 10);
        assert_eq!(counter.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn symmetric_dekker_mutual_exclusion_stress() {
        hammer(Arc::new(Symmetric::new()), 2, 2_000);
    }

    #[test]
    fn signal_dekker_mutual_exclusion_stress() {
        hammer(Arc::new(SignalFence::new()), 2, 1_000);
    }

    #[test]
    fn membarrier_dekker_mutual_exclusion_stress() {
        if let Some(m) = crate::strategy::MembarrierFence::try_new() {
            hammer(Arc::new(m), 2, 1_000);
        }
    }

    #[test]
    fn primary_try_lock_fails_under_secondary_hold() {
        let dekker = Arc::new(AsymmetricDekker::new(Arc::new(Symmetric::new())));
        let d2 = dekker.clone();
        let (tx, rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let primary_thread = std::thread::spawn(move || {
            let p = d2.register_primary();
            tx.send(()).unwrap();
            // Wait until the secondary holds the lock, then try.
            done_rx.recv().unwrap();
            assert!(p.try_lock().is_none());
            done_rx.recv().unwrap();
            assert!(p.try_lock().is_some());
        });
        rx.recv().unwrap();
        {
            let _g = dekker.secondary_lock();
            done_tx.send(()).unwrap();
            std::thread::sleep(Duration::from_millis(30));
        }
        done_tx.send(()).unwrap();
        primary_thread.join().unwrap();
    }

    #[test]
    fn secondary_try_lock_fails_under_primary_hold() {
        let dekker = Arc::new(AsymmetricDekker::new(Arc::new(Symmetric::new())));
        let d2 = dekker.clone();
        let (tx, rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let primary_thread = std::thread::spawn(move || {
            let p = d2.register_primary();
            let g = p.lock();
            tx.send(()).unwrap();
            done_rx.recv().unwrap();
            drop(g);
        });
        rx.recv().unwrap();
        assert!(dekker.try_secondary_lock().is_none());
        done_tx.send(()).unwrap();
        primary_thread.join().unwrap();
        assert!(dekker.try_secondary_lock().is_some());
    }

    #[test]
    fn counters_track_entries() {
        let dekker = Arc::new(AsymmetricDekker::new(Arc::new(Symmetric::new())));
        let d2 = dekker.clone();
        std::thread::spawn(move || {
            let p = d2.register_primary();
            for _ in 0..10 {
                p.with_lock(|| {});
            }
        })
        .join()
        .unwrap();
        {
            let _g = dekker.secondary_lock();
        }
        assert_eq!(dekker.primary_entries.load(Ordering::Relaxed), 10);
        assert_eq!(dekker.secondary_entries.load(Ordering::Relaxed), 1);
    }
}
