//! Internal shims over `lbmf-trace`, compiled away without the `trace`
//! feature.
//!
//! Emission sites call these macros; with `--no-default-features` every
//! invocation expands to a no-op that merely consumes its arguments, so
//! the disabled build carries zero tracing code (the compile-time half of
//! the "zero-cost when disabled" claim — the runtime half, that the
//! *enabled* record path adds no fence/RMW, is asserted by
//! `tests/trace_fastpath.rs` at the workspace root).

/// Record an instant event: `trace_event!(Kind)`,
/// `trace_event!(Kind, addr)` or `trace_event!(Kind, addr, dur)`.
macro_rules! trace_event {
    ($kind:ident) => {
        trace_event!($kind, 0usize, 0u64)
    };
    ($kind:ident, $addr:expr) => {
        trace_event!($kind, $addr, 0u64)
    };
    ($kind:ident, $addr:expr, $dur:expr) => {{
        #[cfg(feature = "trace")]
        ::lbmf_trace::record(::lbmf_trace::EventKind::$kind, $addr, $dur);
        #[cfg(not(feature = "trace"))]
        {
            let _ = (&$addr, &$dur);
        }
    }};
}

/// Start a span: evaluates to the start timestamp (0 when tracing is
/// compiled out). Pass the result to `trace_span_end!`.
macro_rules! trace_span_start {
    () => {{
        #[cfg(feature = "trace")]
        {
            ::lbmf_trace::now_nanos()
        }
        #[cfg(not(feature = "trace"))]
        {
            0u64
        }
    }};
}

/// End a span begun with `trace_span_start!`: records `Kind` at the start
/// time with `dur` = elapsed.
macro_rules! trace_span_end {
    ($kind:ident, $addr:expr, $start:expr) => {{
        #[cfg(feature = "trace")]
        ::lbmf_trace::record_span(::lbmf_trace::EventKind::$kind, $addr, $start);
        #[cfg(not(feature = "trace"))]
        {
            let _ = (&$addr, &$start);
        }
    }};
}

pub(crate) use {trace_event, trace_span_end, trace_span_start};
