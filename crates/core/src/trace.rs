//! Internal shims over `lbmf-trace`, compiled away without the `trace`
//! feature.
//!
//! Emission sites call these macros; with `--no-default-features` every
//! invocation expands to a no-op that merely consumes its arguments, so
//! the disabled build carries zero tracing code (the compile-time half of
//! the "zero-cost when disabled" claim — the runtime half, that the
//! *enabled* record path adds no fence/RMW, is asserted by
//! `tests/trace_fastpath.rs` at the workspace root).

/// Record an instant event: `trace_event!(Kind)`,
/// `trace_event!(Kind, addr)` or `trace_event!(Kind, addr, dur)`.
macro_rules! trace_event {
    ($kind:ident) => {
        trace_event!($kind, 0usize, 0u64)
    };
    ($kind:ident, $addr:expr) => {
        trace_event!($kind, $addr, 0u64)
    };
    ($kind:ident, $addr:expr, $dur:expr) => {{
        #[cfg(feature = "trace")]
        ::lbmf_trace::record(::lbmf_trace::EventKind::$kind, $addr, $dur);
        #[cfg(not(feature = "trace"))]
        {
            let _ = (&$addr, &$dur);
        }
    }};
}

/// Record an instant event carrying a causal correlation id:
/// `trace_event_corr!(Kind, addr, corr)`.
macro_rules! trace_event_corr {
    ($kind:ident, $addr:expr, $corr:expr) => {{
        #[cfg(feature = "trace")]
        ::lbmf_trace::record_corr(::lbmf_trace::EventKind::$kind, $addr, 0u64, $corr);
        #[cfg(not(feature = "trace"))]
        {
            let _ = (&$addr, &$corr);
        }
    }};
}

/// Mint a correlation id for one causal serialization chain (0 when
/// tracing is compiled out — chain events then carry no id and the
/// reconstruction simply sees no chains).
macro_rules! trace_mint_corr {
    () => {{
        #[cfg(feature = "trace")]
        {
            ::lbmf_trace::next_corr_id()
        }
        #[cfg(not(feature = "trace"))]
        {
            0u64
        }
    }};
}

/// Start a span: evaluates to the start timestamp (0 when tracing is
/// compiled out). Pass the result to `trace_span_end!`.
macro_rules! trace_span_start {
    () => {{
        #[cfg(feature = "trace")]
        {
            ::lbmf_trace::now_nanos()
        }
        #[cfg(not(feature = "trace"))]
        {
            0u64
        }
    }};
}

/// End a span begun with `trace_span_start!`: records `Kind` at the start
/// time with `dur` = elapsed.
macro_rules! trace_span_end {
    ($kind:ident, $addr:expr, $start:expr) => {{
        #[cfg(feature = "trace")]
        ::lbmf_trace::record_span(::lbmf_trace::EventKind::$kind, $addr, $start);
        #[cfg(not(feature = "trace"))]
        {
            let _ = (&$addr, &$start);
        }
    }};
}

/// `trace_span_end!` carrying a causal correlation id.
macro_rules! trace_span_end_corr {
    ($kind:ident, $addr:expr, $start:expr, $corr:expr) => {{
        #[cfg(feature = "trace")]
        ::lbmf_trace::record_span_corr(::lbmf_trace::EventKind::$kind, $addr, $start, $corr);
        #[cfg(not(feature = "trace"))]
        {
            let _ = (&$addr, &$start, &$corr);
        }
    }};
}

pub(crate) use {
    trace_event, trace_event_corr, trace_mint_corr, trace_span_end, trace_span_end_corr,
    trace_span_start,
};
