//! Public-API coverage for the real-thread litmus harness
//! ([`lbmf::litmus`]): histogram bookkeeping and the forbidden-outcome
//! direction of the store-buffering test.
//!
//! These run on live OS threads (no check harness), so on a single-core
//! host they can only assert the *absence* of the forbidden `(0, 0)`
//! outcome under correctly paired fences — which holds on any host — not
//! its presence without them.

use lbmf::litmus::{run_sb_litmus, LitmusHistogram};
use lbmf::strategy::{SignalFence, Symmetric};
use std::sync::Arc;

#[test]
fn histogram_record_count_total() {
    let mut h = LitmusHistogram::default();
    assert_eq!(h.total(), 0);
    assert_eq!(h.count((0, 0)), 0, "unseen outcomes count zero");

    h.record((1, 0));
    h.record((0, 1));
    h.record((1, 0));
    h.record((1, 1));

    assert_eq!(h.count((1, 0)), 2);
    assert_eq!(h.count((0, 1)), 1);
    assert_eq!(h.count((1, 1)), 1);
    assert_eq!(h.count((0, 0)), 0);
    assert_eq!(h.total(), 4);
}

#[test]
fn histogram_outcomes_iterate_in_sorted_order() {
    let mut h = LitmusHistogram::default();
    // Insert deliberately out of order; iteration must sort by outcome.
    h.record((1, 1));
    h.record((0, 1));
    h.record((1, 0));
    h.record((0, 0));
    h.record((0, 1));

    let seen: Vec<((u64, u64), u64)> = h.outcomes().map(|(o, n)| (*o, *n)).collect();
    assert_eq!(
        seen,
        vec![((0, 0), 1), ((0, 1), 2), ((1, 0), 1), ((1, 1), 1)],
        "BTreeMap ordering is part of the report format"
    );
}

#[test]
fn histogram_display_lists_every_outcome_with_counts() {
    let mut h = LitmusHistogram::default();
    h.record((0, 1));
    h.record((1, 1));
    h.record((1, 1));
    let text = format!("{h}");
    assert!(text.contains("r0=0 r1=1 : 1"), "got:\n{text}");
    assert!(text.contains("r0=1 r1=1 : 2"), "got:\n{text}");
    // Sorted order also shows up in the rendered text.
    assert!(
        text.find("r0=0").unwrap() < text.find("r0=1").unwrap(),
        "display follows outcome order:\n{text}"
    );
}

#[test]
fn histogram_display_of_empty_is_empty() {
    let h = LitmusHistogram::default();
    assert_eq!(format!("{h}"), "");
    assert_eq!(h.outcomes().count(), 0);
}

#[test]
fn equal_histograms_compare_equal() {
    let mut a = LitmusHistogram::default();
    let mut b = LitmusHistogram::default();
    a.record((1, 0));
    a.record((0, 1));
    b.record((0, 1));
    b.record((1, 0));
    assert_eq!(a, b, "recording order must not matter");
}

const ITERS: u64 = 2_000;

#[test]
fn symmetric_litmus_forbids_relaxed_outcome_on_any_host() {
    let h = run_sb_litmus(Arc::new(Symmetric::new()), ITERS);
    assert_eq!(h.total(), ITERS, "every iteration records exactly once");
    assert_eq!(h.count((0, 0)), 0, "mfence pair forbids 0/0:\n{h}");
    // All observed register values are 0/1.
    for (&(a, b), _) in h.outcomes() {
        assert!(a <= 1 && b <= 1, "impossible register value ({a},{b})");
    }
}

#[test]
fn location_based_litmus_forbids_relaxed_outcome_on_any_host() {
    let h = run_sb_litmus(Arc::new(SignalFence::new()), ITERS);
    assert_eq!(h.total(), ITERS);
    assert_eq!(
        h.count((0, 0)),
        0,
        "compiler fence + remote serialization forbids 0/0:\n{h}"
    );
}
