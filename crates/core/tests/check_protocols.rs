//! Systematic concurrency checking of the *implementation* protocols.
//!
//! These tests run the production Dekker / ARW / biased-lock code —
//! unmodified, on real threads — under the `lbmf-check` controlled
//! scheduler and its explicit x86-TSO store-buffer model. Bounded DFS
//! with preemption bound 2 *exhausts* the schedule space, so the passing
//! tests are proofs (within the bound, for the modeled semantics), and
//! the `NoFence` negative controls show the harness actually finds the
//! store-buffering violation the paper's Figure 1 warns about when the
//! serialization side of the protocol is removed.

use lbmf::dekker::AsymmetricDekker;
use lbmf::arw::AsymRwLock;
use lbmf::biased::BiasedLock;
use lbmf::strategy::{FenceStrategy, NoFence, SignalFence, Symmetric};
use lbmf_check::{Explorer, Shared, ViolationKind};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Asymmetric Dekker
// ---------------------------------------------------------------------

/// One primary and one secondary each enter the critical section once,
/// touching a conflict-detecting witness inside it.
fn dekker_body<S, F>(mk: F) -> impl Fn(&lbmf_check::Exec)
where
    S: FenceStrategy + Send + Sync + 'static,
    F: Fn() -> S,
{
    move |exec| {
        let dekker = Arc::new(AsymmetricDekker::new(Arc::new(mk())));
        let witness = Arc::new(Shared::new(0u64));

        let d = dekker.clone();
        let w = witness.clone();
        exec.spawn(move || {
            let primary = d.register_primary();
            let _g = primary.lock();
            w.with_mut(|v| *v += 1);
        });

        let d = dekker.clone();
        let w = witness.clone();
        exec.spawn(move || {
            let _g = d.secondary_lock();
            w.with_mut(|v| *v += 10);
        });

        let w = witness.clone();
        exec.validate(move || assert_eq!(w.read(), 11, "both sections must have run"));
    }
}

#[test]
fn dekker_symmetric_is_safe_within_preemption_bound_2() {
    let report = Explorer::dfs(2)
        .seed_override(None)
        .check("dekker-symmetric", dekker_body(Symmetric::new));
    report.assert_no_violation();
    assert!(report.exhausted, "DFS must exhaust the bounded space");
}

#[test]
fn dekker_signal_fence_is_safe_within_preemption_bound_2() {
    let report = Explorer::dfs(2)
        .seed_override(None)
        .check("dekker-signal", dekker_body(SignalFence::new));
    report.assert_no_violation();
    assert!(report.exhausted, "DFS must exhaust the bounded space");
}

#[test]
fn dekker_without_serialization_violates_mutual_exclusion() {
    // Negative control: NoFence keeps the compiler fence on the primary
    // side but drops the remote serialization — exactly the broken
    // Figure-1 configuration. The harness must find the interleaving
    // where both threads sit in the critical section.
    let report = Explorer::dfs(2)
        .seed_override(None)
        .check("dekker-nofence", dekker_body(NoFence::new));
    let v = report.expect_violation();
    assert_eq!(v.kind, ViolationKind::Assertion);
    assert!(
        v.message.contains("mutual exclusion"),
        "witness overlap expected, got: {}",
        v.message
    );
    assert!(
        v.trace.contains("buffered"),
        "the failing trace must show the buffered intent store:\n{}",
        v.trace
    );
}

#[test]
fn dekker_nofence_failure_trace_is_deterministic() {
    // Two identical explorations must produce byte-identical minimized
    // failure traces: the trace uses stable location/thread labels, and
    // both the scheduler and the DFS engine are deterministic.
    let run = || {
        Explorer::dfs(2)
            .seed_override(None)
            .check("dekker-nofence-det", dekker_body(NoFence::new))
    };
    let a = run();
    let b = run();
    assert_eq!(a.expect_violation().trace, b.expect_violation().trace);
    assert_eq!(a.expect_violation().choices, b.expect_violation().choices);
}

#[test]
fn dekker_nofence_violation_replays_from_printed_seed() {
    // Randomized engines print an LBMF_CHECK_SEED value; feeding it back
    // reruns exactly the failing schedule. (seed_override is the in-process
    // equivalent of setting the environment variable.)
    let found = Explorer::random_walk(0xC0FFEE, 2_000)
        .seed_override(None)
        .check("dekker-nofence-rand", dekker_body(NoFence::new));
    let v = found.expect_violation();
    let seed = v.seed.expect("randomized engines report a seed");

    let replay = Explorer::random_walk(0xDEAD_BEEF, 2_000)
        .seed_override(Some(seed))
        .check("dekker-nofence-rand", dekker_body(NoFence::new));
    assert_eq!(replay.schedules_run, 1, "seed replay runs one schedule");
    let vr = replay.expect_violation();
    assert_eq!(vr.trace, v.trace, "seed replay reproduces the exact interleaving");
}

// ---------------------------------------------------------------------
// ARW readers-writer lock
// ---------------------------------------------------------------------

/// One reader and one writer; read and write sections are mutually
/// exclusive by the lock's contract, so they share one witness.
fn arw_body<S, F>(mk: F) -> impl Fn(&lbmf_check::Exec)
where
    S: FenceStrategy + Send + Sync + 'static,
    F: Fn() -> S,
{
    move |exec| {
        let lock = Arc::new(AsymRwLock::new(Arc::new(mk())));
        let witness = Arc::new(Shared::new(0u64));

        let l = lock.clone();
        let w = witness.clone();
        exec.spawn(move || {
            let h = l.register_reader();
            h.read(|| {
                w.with_mut(|v| *v += 1);
            });
        });

        let l = lock.clone();
        let w = witness.clone();
        exec.spawn(move || {
            l.with_write(|| {
                w.with_mut(|v| *v += 10);
            });
        });

        let w = witness.clone();
        exec.validate(move || assert_eq!(w.read(), 11));
    }
}

#[test]
fn arw_symmetric_is_safe_within_preemption_bound_2() {
    let report = Explorer::dfs(2)
        .seed_override(None)
        .check("arw-symmetric", arw_body(Symmetric::new));
    report.assert_no_violation();
    assert!(report.exhausted);
}

#[test]
fn arw_signal_fence_is_safe_within_preemption_bound_2() {
    let report = Explorer::dfs(2)
        .seed_override(None)
        .check("arw-signal", arw_body(SignalFence::new));
    report.assert_no_violation();
    assert!(report.exhausted);
}

#[test]
fn arw_without_serialization_violates_reader_exclusion() {
    // NoFence writer trusts the reader's `reading` flag without forcing
    // the reader to serialize: the flag store can still sit in the
    // reader's store buffer, so the writer enters over a live reader.
    let report = Explorer::dfs(2)
        .seed_override(None)
        .check("arw-nofence", arw_body(NoFence::new));
    let v = report.expect_violation();
    assert_eq!(v.kind, ViolationKind::Assertion);
    assert!(v.message.contains("mutual exclusion"), "{}", v.message);
}

// ---------------------------------------------------------------------
// Biased lock
// ---------------------------------------------------------------------

fn biased_body<S, F>(mk: F) -> impl Fn(&lbmf_check::Exec)
where
    S: FenceStrategy + Send + Sync + 'static,
    F: Fn() -> S,
{
    move |exec| {
        let lock = Arc::new(BiasedLock::new(Arc::new(mk())));
        let witness = Arc::new(Shared::new(0u64));

        let l = lock.clone();
        let w = witness.clone();
        exec.spawn(move || {
            let owner = l.register_owner();
            let _g = owner.lock();
            w.with_mut(|v| *v += 1);
        });

        let l = lock.clone();
        let w = witness.clone();
        exec.spawn(move || {
            let _g = l.revoke_lock();
            w.with_mut(|v| *v += 10);
        });

        let w = witness.clone();
        exec.validate(move || assert_eq!(w.read(), 11));
    }
}

#[test]
fn biased_symmetric_is_safe_within_preemption_bound_2() {
    let report = Explorer::dfs(2)
        .seed_override(None)
        .check("biased-symmetric", biased_body(Symmetric::new));
    report.assert_no_violation();
    assert!(report.exhausted);
}

#[test]
fn biased_signal_fence_is_safe_within_preemption_bound_2() {
    let report = Explorer::dfs(2)
        .seed_override(None)
        .check("biased-signal", biased_body(SignalFence::new));
    report.assert_no_violation();
    assert!(report.exhausted);
}

#[test]
fn biased_without_serialization_violates_mutual_exclusion() {
    let report = Explorer::dfs(2)
        .seed_override(None)
        .check("biased-nofence", biased_body(NoFence::new));
    let v = report.expect_violation();
    assert_eq!(v.kind, ViolationKind::Assertion);
    assert!(v.message.contains("mutual exclusion"), "{}", v.message);
}

// ---------------------------------------------------------------------
// PCT over the protocols
// ---------------------------------------------------------------------

#[test]
fn pct_finds_the_dekker_nofence_bug_too() {
    let report = Explorer::pct(11, 3, 2_000)
        .seed_override(None)
        .check("dekker-nofence-pct", dekker_body(NoFence::new));
    let v = report.expect_violation();
    assert!(v.seed.is_some());
}
