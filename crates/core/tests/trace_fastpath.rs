//! The runtime half of the zero-fence tracing claim: with event
//! recording *enabled and live* — including the causal-span machinery, a
//! real remote serialization having stamped this very slot's handler
//! ring moments before — the primary's instrumented fast path still
//! performs no hooked hardware fence, no serialization, and no extra
//! shared-memory operations — the `lbmf-check` hooks see exactly the
//! protocol's own plain stores, compiler fence, and load.
//!
//! (The compile-time half — `--no-default-features` removes the code
//! entirely — is covered by the CI build step.)
//!
//! This links `lbmf-check` as a dev-dependency, which turns on the
//! `check-hooks` feature of the `lbmf` build under test; the `trace`
//! feature is on by default.

use lbmf::dekker::AsymmetricDekker;
use lbmf::hooks::{install, Loc, VtHooks, YieldKind};
use lbmf::strategy::{FenceStrategy, SignalFence};
use std::sync::{Arc, Mutex};

/// Records every hooked operation; models an empty store buffer by
/// committing stores immediately (single-threaded probe, so that's exact).
#[derive(Default)]
struct Recorder {
    events: Mutex<Vec<String>>,
}

impl VtHooks for Recorder {
    fn op_store(&self, loc: Loc, val: u64) {
        self.events.lock().unwrap().push(format!("store {val}"));
        unsafe { loc.commit(val) };
    }
    fn op_load(&self, loc: Loc) -> u64 {
        self.events.lock().unwrap().push("load".into());
        unsafe { loc.committed_load() }
    }
    fn op_fence(&self) {
        self.events.lock().unwrap().push("fence".into());
    }
    fn op_yield(&self, kind: YieldKind) {
        self.events.lock().unwrap().push(format!("yield {kind:?}"));
    }
    fn spin_yield(&self) {
        self.events.lock().unwrap().push("spin".into());
    }
    fn serialize(&self, _slot_key: usize) {
        self.events.lock().unwrap().push("serialize".into());
    }
    fn on_register(&self, _slot_key: usize) {
        self.events.lock().unwrap().push("register".into());
    }
}

#[test]
fn traced_primary_fast_path_performs_no_fence_and_no_rmw() {
    let rec = Arc::new(Recorder::default());
    let rec2 = rec.clone();
    std::thread::Builder::new()
        .name("fastpath-probe".into())
        .spawn(move || {
            let dekker = Arc::new(AsymmetricDekker::new(Arc::new(SignalFence::new())));
            let primary = dekker.register_primary();
            // Warm the thread's trace ring (first record lazily allocates
            // and registers it) so the probed iteration is steady-state.
            primary.with_lock(|| {});
            // A real serialize round trip first — before the hooks are
            // watching — so the causal-span machinery (pending-corr
            // handoff, the slot's dedicated handler ring, the handler's
            // phase stamps) has all been exercised against this very
            // slot. The fast path must stay pure even with the full span
            // pipeline warm, not just on a never-serialized thread.
            std::thread::Builder::new()
                .name("fastpath-secondary".into())
                .spawn({
                    let dekker = dekker.clone();
                    move || {
                        let _g = dekker.secondary_lock();
                    }
                })
                .unwrap()
                .join()
                .unwrap();
            assert_eq!(
                dekker.strategy().stats().snapshot().serializations_delivered,
                1,
                "warm-up serialization must have completed its round trip"
            );
            rec2.events.lock().unwrap().clear();
            let _guard = install(rec2.clone());
            primary.with_lock(|| {});
        })
        .unwrap()
        .join()
        .unwrap();

    let events = rec.events.lock().unwrap().clone();
    // Exactly the protocol's own operations — flag store, the compiler
    // fence at the l-mfence position, the secondary-flag load, then the
    // guard-drop stores of turn and flag. Tracing was live throughout
    // (the `trace` feature is default-on) yet added nothing the hooks
    // can see: its ring append is plain `Relaxed` stores and unhooked
    // compiler fences by construction.
    assert_eq!(
        events,
        vec![
            "store 1".to_string(),          // K1: primary_flag <- 1
            "yield CompilerFence".into(),   // the l-mfence position
            "load".into(),                  // K2: read secondary_flag
            "store 1".into(),               // drop: turn <- SECONDARY
            "store 0".into(),               // drop: primary_flag <- 0
        ],
        "instrumented fast path must be exactly the protocol's ops"
    );
    assert!(
        !events.iter().any(|e| e == "fence" || e == "serialize"),
        "no hardware fence or serialization on the traced primary path"
    );

    // And the traced iteration really did record: the probe thread's ring
    // holds primary-fence events and zero full-fence events.
    let snap = lbmf_trace::take_snapshot();
    let t = snap
        .threads
        .iter()
        .find(|t| t.name == "fastpath-probe")
        .expect("probe thread's ring registered");
    assert!(t.events.iter().any(|e| e.kind == lbmf_trace::EventKind::PrimaryFence));
    assert!(t.events.iter().all(|e| e.kind != lbmf_trace::EventKind::PrimaryFullFence));
}
