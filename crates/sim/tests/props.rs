//! Property-based tests: random programs, random schedules, and the
//! machine's semantic invariants.
//!
//! Strategy: generate arbitrary straight-line programs over a small address
//! space (loads, stores, fences, `l-mfence`s, local work), run them under a
//! randomly sampled schedule, and assert the checkers of [`lbmf_sim::check`]
//! hold on the recorded trace:
//!
//! * every load reads the latest completed store (or its own forwarded one);
//! * each CPU's stores complete in FIFO order (TSO principle 3);
//! * guarded stores are never read remotely before completing (Lemma 3);
//! * MESI single-writer-multiple-readers and clean-line agreement.

use lbmf_sim::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

/// A generatable instruction blueprint (resolved to real instructions).
#[derive(Clone, Debug)]
enum Op {
    Load { reg: u8, addr: u64 },
    Store { addr: u64, val: u64 },
    Fence,
    Lmfence { addr: u64, val: u64 },
    Alu,
}

fn op_strategy(num_addrs: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..4, 0..num_addrs).prop_map(|(reg, addr)| Op::Load { reg, addr }),
        4 => (0..num_addrs, 1u64..16).prop_map(|(addr, val)| Op::Store { addr, val }),
        1 => Just(Op::Fence),
        2 => (0..num_addrs, 1u64..16).prop_map(|(addr, val)| Op::Lmfence { addr, val }),
        1 => Just(Op::Alu),
    ]
}

fn build_program(name: &str, ops: &[Op]) -> Program {
    let mut b = ProgramBuilder::new(name);
    for op in ops {
        match *op {
            Op::Load { reg, addr } => {
                b.ld(reg, Addr(addr));
            }
            Op::Store { addr, val } => {
                b.st(Addr(addr), val);
            }
            Op::Fence => {
                b.mfence();
            }
            Op::Lmfence { addr, val } => {
                b.lmfence(Addr(addr), val);
            }
            Op::Alu => {
                b.add(7, Operand::Reg(7), 1u64);
            }
        }
    }
    b.halt();
    b.build()
}

fn machine_config(line_shift: u32, cache_capacity: usize, sb_capacity: usize) -> MachineConfig {
    MachineConfig {
        geom: Geometry::new(line_shift),
        sb_capacity,
        cache_capacity,
        record_trace: true,
        interrupts_enabled: false,
        coherence: Coherence::Mesi,
    }
}

fn run_and_check(
    progs: Vec<Program>,
    cfg: MachineConfig,
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut m = Machine::new(cfg, CostModel::zero(), progs);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let done = m.run_random(&mut rng, 100_000);
    prop_assert!(done, "random run did not terminate");
    if let Err(e) = check_all(&m, &[]) {
        return Err(TestCaseError::fail(e));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Two CPUs, default geometry: all trace invariants hold on every
    /// random program and schedule.
    #[test]
    fn random_programs_two_cpus_satisfy_invariants(
        ops0 in proptest::collection::vec(op_strategy(4), 0..12),
        ops1 in proptest::collection::vec(op_strategy(4), 0..12),
        seed in any::<u64>(),
    ) {
        let progs = vec![build_program("p0", &ops0), build_program("p1", &ops1)];
        run_and_check(progs, machine_config(0, usize::MAX, 8), seed)?;
    }

    /// Three CPUs sharing four addresses.
    #[test]
    fn random_programs_three_cpus_satisfy_invariants(
        ops0 in proptest::collection::vec(op_strategy(4), 0..8),
        ops1 in proptest::collection::vec(op_strategy(4), 0..8),
        ops2 in proptest::collection::vec(op_strategy(4), 0..8),
        seed in any::<u64>(),
    ) {
        let progs = vec![
            build_program("p0", &ops0),
            build_program("p1", &ops1),
            build_program("p2", &ops2),
        ];
        run_and_check(progs, machine_config(0, usize::MAX, 8), seed)?;
    }

    /// False sharing (4-word lines) must not break any invariant.
    #[test]
    fn random_programs_false_sharing_satisfy_invariants(
        ops0 in proptest::collection::vec(op_strategy(8), 0..10),
        ops1 in proptest::collection::vec(op_strategy(8), 0..10),
        seed in any::<u64>(),
    ) {
        let progs = vec![build_program("p0", &ops0), build_program("p1", &ops1)];
        run_and_check(progs, machine_config(2, usize::MAX, 8), seed)?;
    }

    /// Tiny caches (constant evictions, including of guarded lines) must
    /// not break any invariant.
    #[test]
    fn random_programs_tiny_cache_satisfy_invariants(
        ops0 in proptest::collection::vec(op_strategy(6), 0..10),
        ops1 in proptest::collection::vec(op_strategy(6), 0..10),
        seed in any::<u64>(),
    ) {
        let progs = vec![build_program("p0", &ops0), build_program("p1", &ops1)];
        run_and_check(progs, machine_config(0, 2, 8), seed)?;
    }

    /// Tiny store buffers (capacity 1–2: constant stalls) must not break
    /// any invariant.
    #[test]
    fn random_programs_tiny_sb_satisfy_invariants(
        ops0 in proptest::collection::vec(op_strategy(4), 0..10),
        ops1 in proptest::collection::vec(op_strategy(4), 0..10),
        sb in 1usize..3,
        seed in any::<u64>(),
    ) {
        let progs = vec![build_program("p0", &ops0), build_program("p1", &ops1)];
        run_and_check(progs, machine_config(0, usize::MAX, sb), seed)?;
    }

    /// With interrupts enabled the invariants still hold.
    #[test]
    fn random_programs_with_interrupts_satisfy_invariants(
        ops0 in proptest::collection::vec(op_strategy(4), 0..10),
        ops1 in proptest::collection::vec(op_strategy(4), 0..10),
        seed in any::<u64>(),
    ) {
        let cfg = MachineConfig {
            interrupts_enabled: true,
            ..machine_config(0, usize::MAX, 8)
        };
        let progs = vec![build_program("p0", &ops0), build_program("p1", &ops1)];
        run_and_check(progs, cfg, seed)?;
    }

    /// The final coherent state of single-CPU programs equals a simple
    /// sequential interpretation (the machine is SC for one processor).
    #[test]
    fn single_cpu_is_sequentially_consistent(
        ops in proptest::collection::vec(op_strategy(4), 0..16),
        seed in any::<u64>(),
    ) {
        let prog = build_program("p0", &ops);
        let mut m = Machine::new(machine_config(0, usize::MAX, 4), CostModel::zero(), vec![prog]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        prop_assert!(m.run_random(&mut rng, 100_000));

        // Reference interpretation.
        let mut mem = std::collections::HashMap::new();
        let mut regs = [0u64; 8];
        for op in &ops {
            match *op {
                Op::Load { reg, addr } => {
                    regs[reg as usize] = *mem.get(&addr).unwrap_or(&0);
                }
                Op::Store { addr, val } | Op::Lmfence { addr, val } => {
                    mem.insert(addr, val);
                }
                Op::Fence => {}
                Op::Alu => regs[7] = regs[7].wrapping_add(1),
            }
        }
        for (addr, val) in &mem {
            prop_assert_eq!(m.coherent_word(Addr(*addr)), *val, "addr {}", addr);
        }
        for (r, expected) in regs.iter().enumerate().take(7) {
            prop_assert_eq!(m.cpus[0].regs[r], *expected, "reg {}", r);
        }
    }

    /// Fingerprints are schedule-insensitive for terminal states of
    /// *deterministic-outcome* programs (single CPU): any two schedules end
    /// in the same semantic state.
    #[test]
    fn single_cpu_terminal_fingerprint_is_schedule_independent(
        ops in proptest::collection::vec(op_strategy(3), 0..10),
        seed1 in any::<u64>(),
        seed2 in any::<u64>(),
    ) {
        let make = || {
            let cfg = MachineConfig { record_trace: false, ..machine_config(0, usize::MAX, 4) };
            Machine::new(cfg, CostModel::zero(), vec![build_program("p", &ops)])
        };
        let mut m1 = make();
        let mut m2 = make();
        let mut r1 = rand::rngs::StdRng::seed_from_u64(seed1);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(seed2);
        prop_assert!(m1.run_random(&mut r1, 100_000));
        prop_assert!(m2.run_random(&mut r2, 100_000));
        // Settle caches: flush already done (terminal). Fingerprints may
        // still differ in cache residency... so compare architectural state
        // instead: registers and coherent memory.
        for r in 0..8 {
            prop_assert_eq!(m1.cpus[0].regs[r], m2.cpus[0].regs[r]);
        }
        for a in 0..4u64 {
            prop_assert_eq!(m1.coherent_word(Addr(a)), m2.coherent_word(Addr(a)));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Explorer soundness (differential): every outcome reachable by a
    /// random schedule must appear in the exhaustive exploration's outcome
    /// set. (The converse — completeness of the random sampler — is not
    /// expected.)
    #[test]
    fn explorer_outcomes_contain_all_random_schedule_outcomes(
        ops0 in proptest::collection::vec(op_strategy(3), 0..6),
        ops1 in proptest::collection::vec(op_strategy(3), 0..6),
        seeds in proptest::collection::vec(any::<u64>(), 8),
    ) {
        let progs = vec![build_program("p0", &ops0), build_program("p1", &ops1)];
        let outcome = |m: &Machine| -> (Vec<u64>, Vec<u64>) {
            (
                m.cpus.iter().flat_map(|c| c.regs[..4].to_vec()).collect(),
                (0..3u64).map(|a| m.coherent_word(Addr(a))).collect(),
            )
        };
        let exhaustive = Explorer::default()
            .explore(Machine::for_checking(progs.clone()), outcome);
        prop_assert!(!exhaustive.truncated);
        for seed in seeds {
            let mut m = Machine::for_checking(progs.clone());
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            prop_assert!(m.run_random(&mut rng, 100_000));
            let got = outcome(&m);
            prop_assert!(
                exhaustive.has_outcome(&got),
                "random schedule produced an outcome the explorer missed: {:?}",
                got
            );
        }
    }
}
