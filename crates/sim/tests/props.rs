//! Property-style tests: random programs, random schedules, and the
//! machine's semantic invariants.
//!
//! Strategy: generate arbitrary straight-line programs over a small address
//! space (loads, stores, fences, `l-mfence`s, local work), run them under a
//! randomly sampled schedule, and assert the checkers of [`lbmf_sim::check`]
//! hold on the recorded trace:
//!
//! * every load reads the latest completed store (or its own forwarded one);
//! * each CPU's stores complete in FIFO order (TSO principle 3);
//! * guarded stores are never read remotely before completing (Lemma 3);
//! * MESI single-writer-multiple-readers and clean-line agreement.
//!
//! Program shapes and schedule seeds come from a fixed SplitMix64 stream
//! (the hosts build offline, so `proptest` is unavailable); the original
//! proptest forms survive behind the non-default `proptest` feature.

use lbmf_prng::{Rng, SplitMix64};
use lbmf_sim::prelude::*;

/// A generatable instruction blueprint (resolved to real instructions).
#[derive(Clone, Debug)]
enum Op {
    Load { reg: u8, addr: u64 },
    Store { addr: u64, val: u64 },
    Fence,
    Lmfence { addr: u64, val: u64 },
    Alu,
}

/// One random op with the original proptest weights
/// (load 4 : store 4 : fence 1 : l-mfence 2 : alu 1).
fn random_op(rng: &mut SplitMix64, num_addrs: u64) -> Op {
    match rng.bounded_u64(12) {
        0..=3 => Op::Load {
            reg: rng.bounded_u64(4) as u8,
            addr: rng.bounded_u64(num_addrs),
        },
        4..=7 => Op::Store {
            addr: rng.bounded_u64(num_addrs),
            val: 1 + rng.bounded_u64(15),
        },
        8 => Op::Fence,
        9 | 10 => Op::Lmfence {
            addr: rng.bounded_u64(num_addrs),
            val: 1 + rng.bounded_u64(15),
        },
        _ => Op::Alu,
    }
}

fn random_ops(rng: &mut SplitMix64, num_addrs: u64, max_len: usize) -> Vec<Op> {
    let len = rng.random_range(0..max_len);
    (0..len).map(|_| random_op(rng, num_addrs)).collect()
}

fn build_program(name: &str, ops: &[Op]) -> Program {
    let mut b = ProgramBuilder::new(name);
    for op in ops {
        match *op {
            Op::Load { reg, addr } => {
                b.ld(reg, Addr(addr));
            }
            Op::Store { addr, val } => {
                b.st(Addr(addr), val);
            }
            Op::Fence => {
                b.mfence();
            }
            Op::Lmfence { addr, val } => {
                b.lmfence(Addr(addr), val);
            }
            Op::Alu => {
                b.add(7, Operand::Reg(7), 1u64);
            }
        }
    }
    b.halt();
    b.build()
}

fn machine_config(line_shift: u32, cache_capacity: usize, sb_capacity: usize) -> MachineConfig {
    MachineConfig {
        geom: Geometry::new(line_shift),
        sb_capacity,
        cache_capacity,
        record_trace: true,
        interrupts_enabled: false,
        coherence: Coherence::Mesi,
    }
}

fn run_and_check(progs: Vec<Program>, cfg: MachineConfig, seed: u64) {
    let mut m = Machine::new(cfg, CostModel::zero(), progs);
    let mut rng = SplitMix64::seed_from_u64(seed);
    assert!(m.run_random(&mut rng, 100_000), "random run did not terminate");
    if let Err(e) = check_all(&m, &[]) {
        panic!("invariant violated (seed {seed}): {e}");
    }
}

/// Two CPUs, default geometry: all trace invariants hold on every random
/// program and schedule.
#[test]
fn random_programs_two_cpus_satisfy_invariants() {
    let mut rng = SplitMix64::seed_from_u64(0x51B0_0001);
    for _ in 0..64 {
        let ops0 = random_ops(&mut rng, 4, 12);
        let ops1 = random_ops(&mut rng, 4, 12);
        let progs = vec![build_program("p0", &ops0), build_program("p1", &ops1)];
        run_and_check(progs, machine_config(0, usize::MAX, 8), rng.next_u64());
    }
}

/// Three CPUs sharing four addresses.
#[test]
fn random_programs_three_cpus_satisfy_invariants() {
    let mut rng = SplitMix64::seed_from_u64(0x51B0_0002);
    for _ in 0..48 {
        let progs = vec![
            build_program("p0", &random_ops(&mut rng, 4, 8)),
            build_program("p1", &random_ops(&mut rng, 4, 8)),
            build_program("p2", &random_ops(&mut rng, 4, 8)),
        ];
        run_and_check(progs, machine_config(0, usize::MAX, 8), rng.next_u64());
    }
}

/// False sharing (4-word lines) must not break any invariant.
#[test]
fn random_programs_false_sharing_satisfy_invariants() {
    let mut rng = SplitMix64::seed_from_u64(0x51B0_0003);
    for _ in 0..48 {
        let ops0 = random_ops(&mut rng, 8, 10);
        let ops1 = random_ops(&mut rng, 8, 10);
        let progs = vec![build_program("p0", &ops0), build_program("p1", &ops1)];
        run_and_check(progs, machine_config(2, usize::MAX, 8), rng.next_u64());
    }
}

/// Tiny caches (constant evictions, including of guarded lines) must not
/// break any invariant.
#[test]
fn random_programs_tiny_cache_satisfy_invariants() {
    let mut rng = SplitMix64::seed_from_u64(0x51B0_0004);
    for _ in 0..48 {
        let ops0 = random_ops(&mut rng, 6, 10);
        let ops1 = random_ops(&mut rng, 6, 10);
        let progs = vec![build_program("p0", &ops0), build_program("p1", &ops1)];
        run_and_check(progs, machine_config(0, 2, 8), rng.next_u64());
    }
}

/// Tiny store buffers (capacity 1–2: constant stalls) must not break any
/// invariant.
#[test]
fn random_programs_tiny_sb_satisfy_invariants() {
    let mut rng = SplitMix64::seed_from_u64(0x51B0_0005);
    for _ in 0..48 {
        let ops0 = random_ops(&mut rng, 4, 10);
        let ops1 = random_ops(&mut rng, 4, 10);
        let sb = 1 + rng.random_range(0..2);
        let progs = vec![build_program("p0", &ops0), build_program("p1", &ops1)];
        run_and_check(progs, machine_config(0, usize::MAX, sb), rng.next_u64());
    }
}

/// With interrupts enabled the invariants still hold.
#[test]
fn random_programs_with_interrupts_satisfy_invariants() {
    let mut rng = SplitMix64::seed_from_u64(0x51B0_0006);
    for _ in 0..48 {
        let cfg = MachineConfig {
            interrupts_enabled: true,
            ..machine_config(0, usize::MAX, 8)
        };
        let ops0 = random_ops(&mut rng, 4, 10);
        let ops1 = random_ops(&mut rng, 4, 10);
        let progs = vec![build_program("p0", &ops0), build_program("p1", &ops1)];
        run_and_check(progs, cfg, rng.next_u64());
    }
}

/// The final coherent state of single-CPU programs equals a simple
/// sequential interpretation (the machine is SC for one processor).
#[test]
fn single_cpu_is_sequentially_consistent() {
    let mut rng = SplitMix64::seed_from_u64(0x51B0_0007);
    for _ in 0..64 {
        let ops = random_ops(&mut rng, 4, 16);
        let prog = build_program("p0", &ops);
        let mut m = Machine::new(machine_config(0, usize::MAX, 4), CostModel::zero(), vec![prog]);
        let mut sched = SplitMix64::seed_from_u64(rng.next_u64());
        assert!(m.run_random(&mut sched, 100_000));

        // Reference interpretation.
        let mut mem = std::collections::HashMap::new();
        let mut regs = [0u64; 8];
        for op in &ops {
            match *op {
                Op::Load { reg, addr } => {
                    regs[reg as usize] = *mem.get(&addr).unwrap_or(&0);
                }
                Op::Store { addr, val } | Op::Lmfence { addr, val } => {
                    mem.insert(addr, val);
                }
                Op::Fence => {}
                Op::Alu => regs[7] = regs[7].wrapping_add(1),
            }
        }
        for (addr, val) in &mem {
            assert_eq!(m.coherent_word(Addr(*addr)), *val, "addr {addr}");
        }
        for (r, expected) in regs.iter().enumerate().take(7) {
            assert_eq!(m.cpus[0].regs[r], *expected, "reg {r}");
        }
    }
}

/// Terminal state is schedule-insensitive for deterministic-outcome
/// programs (single CPU): any two schedules end in the same semantic state.
#[test]
fn single_cpu_terminal_fingerprint_is_schedule_independent() {
    let mut rng = SplitMix64::seed_from_u64(0x51B0_0008);
    for _ in 0..48 {
        let ops = random_ops(&mut rng, 3, 10);
        let make = || {
            let cfg = MachineConfig {
                record_trace: false,
                ..machine_config(0, usize::MAX, 4)
            };
            Machine::new(cfg, CostModel::zero(), vec![build_program("p", &ops)])
        };
        let mut m1 = make();
        let mut m2 = make();
        let mut r1 = SplitMix64::seed_from_u64(rng.next_u64());
        let mut r2 = SplitMix64::seed_from_u64(rng.next_u64());
        assert!(m1.run_random(&mut r1, 100_000));
        assert!(m2.run_random(&mut r2, 100_000));
        // Compare architectural state: registers and coherent memory
        // (cache residency may legitimately differ between schedules).
        for r in 0..8 {
            assert_eq!(m1.cpus[0].regs[r], m2.cpus[0].regs[r]);
        }
        for a in 0..4u64 {
            assert_eq!(m1.coherent_word(Addr(a)), m2.coherent_word(Addr(a)));
        }
    }
}

/// Explorer soundness (differential): every outcome reachable by a random
/// schedule must appear in the exhaustive exploration's outcome set. (The
/// converse — completeness of the random sampler — is not expected.)
#[test]
fn explorer_outcomes_contain_all_random_schedule_outcomes() {
    let mut rng = SplitMix64::seed_from_u64(0x51B0_0009);
    for _ in 0..16 {
        let ops0 = random_ops(&mut rng, 3, 6);
        let ops1 = random_ops(&mut rng, 3, 6);
        let progs = vec![build_program("p0", &ops0), build_program("p1", &ops1)];
        let outcome = |m: &Machine| -> (Vec<u64>, Vec<u64>) {
            (
                m.cpus.iter().flat_map(|c| c.regs[..4].to_vec()).collect(),
                (0..3u64).map(|a| m.coherent_word(Addr(a))).collect(),
            )
        };
        let exhaustive = Explorer::default().explore(Machine::for_checking(progs.clone()), outcome);
        assert!(!exhaustive.truncated);
        for _ in 0..8 {
            let mut m = Machine::for_checking(progs.clone());
            let mut sched = SplitMix64::seed_from_u64(rng.next_u64());
            assert!(m.run_random(&mut sched, 100_000));
            let got = outcome(&m);
            assert!(
                exhaustive.has_outcome(&got),
                "random schedule produced an outcome the explorer missed: {got:?}"
            );
        }
    }
}

/// The original proptest forms of the properties above. Compiled only with
/// `--features proptest` after restoring the `proptest` dev-dependency
/// (registry access required).
#[cfg(feature = "proptest")]
mod proptest_originals {
    use super::*;
    use proptest::prelude::*;

    fn op_strategy(num_addrs: u64) -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (0u8..4, 0..num_addrs).prop_map(|(reg, addr)| Op::Load { reg, addr }),
            4 => (0..num_addrs, 1u64..16).prop_map(|(addr, val)| Op::Store { addr, val }),
            1 => Just(Op::Fence),
            2 => (0..num_addrs, 1u64..16).prop_map(|(addr, val)| Op::Lmfence { addr, val }),
            1 => Just(Op::Alu),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn random_programs_two_cpus_satisfy_invariants_pt(
            ops0 in proptest::collection::vec(op_strategy(4), 0..12),
            ops1 in proptest::collection::vec(op_strategy(4), 0..12),
            seed in any::<u64>(),
        ) {
            let progs = vec![build_program("p0", &ops0), build_program("p1", &ops1)];
            run_and_check(progs, machine_config(0, usize::MAX, 8), seed);
        }
    }
}
