//! Model-checking the paper's claims over *all* interleavings.
//!
//! These tests are the empirical counterparts of the paper's formal results:
//!
//! * **Section 2 / Figure 1** — the Dekker duality is broken under TSO
//!   without fences: the relaxed store-buffering outcome is reachable and
//!   the unfenced Dekker protocol violates mutual exclusion.
//! * **Theorem 4** — the LE/ST mechanism implements the `l-mfence`
//!   specification: wherever a pair of `mfence`s forbids an outcome, the
//!   corresponding `l-mfence` placement forbids it too.
//! * **Theorem 7** — the asymmetric Dekker protocol (primary `l-mfence`,
//!   secondary `mfence`) provides mutual exclusion.

use lbmf_sim::prelude::*;

/// Outcome of the SB litmus: (r0 of CPU0, r0 of CPU1).
fn sb_outcome(m: &Machine) -> (u64, u64) {
    (m.cpus[0].regs[0], m.cpus[1].regs[0])
}

fn explore_sb(kinds: [FenceKind; 2]) -> ExploreResult<(u64, u64)> {
    let m = Machine::for_checking(litmus_sb(kinds));
    let r = Explorer::default().explore(m, sb_outcome);
    assert!(!r.truncated, "SB exploration truncated for {kinds:?}");
    r
}

#[test]
fn sb_unfenced_allows_relaxed_outcome() {
    let r = explore_sb([FenceKind::None, FenceKind::None]);
    assert!(
        r.has_outcome(&(0, 0)),
        "TSO must allow both threads to miss each other's store"
    );
}

#[test]
fn sb_one_sided_fence_still_allows_relaxed_outcome() {
    // A single fence — of either kind, on either side — is not enough:
    // the *pairing* requirement of Section 3.
    for kinds in [
        [FenceKind::Mfence, FenceKind::None],
        [FenceKind::None, FenceKind::Mfence],
        [FenceKind::Lmfence, FenceKind::None],
        [FenceKind::None, FenceKind::Lmfence],
    ] {
        let r = explore_sb(kinds);
        assert!(
            r.has_outcome(&(0, 0)),
            "one-sided {kinds:?} should still allow 0/0; outcomes {:?}",
            r.outcomes
        );
    }
}

#[test]
fn sb_paired_fences_forbid_relaxed_outcome() {
    // Theorem 4's consequence: l-mfence may substitute for mfence in any
    // pairing, and the relaxed outcome disappears.
    for kinds in [
        [FenceKind::Mfence, FenceKind::Mfence],
        [FenceKind::Lmfence, FenceKind::Mfence],
        [FenceKind::Mfence, FenceKind::Lmfence],
        [FenceKind::Lmfence, FenceKind::Lmfence],
    ] {
        let r = explore_sb(kinds);
        assert!(
            !r.has_outcome(&(0, 0)),
            "paired {kinds:?} must forbid 0/0; outcomes {:?}",
            r.outcomes
        );
        assert!(!r.outcomes.is_empty(), "some outcome must be reachable");
    }
}

#[test]
fn sb_paired_fences_keep_sc_outcomes_reachable() {
    // The fences must not be vacuous: the sequentially consistent outcomes
    // remain reachable.
    let r = explore_sb([FenceKind::Lmfence, FenceKind::Mfence]);
    assert!(r.has_outcome(&(1, 1)) || r.has_outcome(&(0, 1)) || r.has_outcome(&(1, 0)));
    // (1,1): both stores complete before both loads.
    assert!(r.has_outcome(&(1, 1)), "fully serialized outcome reachable");
}

#[test]
fn mp_litmus_forbids_stale_data() {
    // Message passing needs no fence under TSO: stores complete FIFO and
    // loads commit in order (ordering principles 1 and 3).
    let m = Machine::for_checking(litmus_mp());
    let r = Explorer::default().explore(m, |m| (m.cpus[1].regs[0], m.cpus[1].regs[1]));
    assert!(!r.truncated);
    assert!(
        !r.has_outcome(&(1, 0)),
        "flag=1 with data=0 must be impossible under TSO; outcomes {:?}",
        r.outcomes
    );
    assert!(r.has_outcome(&(1, 1)));
    assert!(r.has_outcome(&(0, 0)));
}

#[test]
fn lb_litmus_forbids_both_ones() {
    // Load buffering: a store is never reordered before an older load
    // (ordering principle 2).
    let m = Machine::for_checking(litmus_lb());
    let r = Explorer::default().explore(m, |m| (m.cpus[0].regs[0], m.cpus[1].regs[0]));
    assert!(!r.truncated);
    assert!(!r.has_outcome(&(1, 1)), "outcomes {:?}", r.outcomes);
}

#[test]
fn two_plus_two_w_forbids_cross_final_state() {
    // 2+2W: FIFO completion on both CPUs forbids the final state where each
    // location holds the *other* CPU's first store.
    let m = Machine::for_checking(litmus_2_2w());
    let r = Explorer::default().explore(m, |m| (m.coherent_word(L1), m.coherent_word(L2)));
    assert!(!r.truncated);
    assert!(!r.has_outcome(&(1, 1)), "outcomes {:?}", r.outcomes);
    // Other final states are reachable.
    assert!(r.has_outcome(&(2, 2)) || r.has_outcome(&(1, 2)) || r.has_outcome(&(2, 1)));
}

#[test]
fn guarded_read_always_sees_completed_store_or_zero() {
    // Lemma 3's litmus: the secondary either reads before the guarded store
    // commits (0) or observes the full value (1) — never a torn view, and
    // the coherent final state is always 1.
    let m = Machine::for_checking(litmus_guarded_read());
    let r = Explorer::default().explore(m, |m| (m.cpus[1].regs[0], m.coherent_word(L1)));
    assert!(!r.truncated);
    for (read, final_l1) in r.outcomes.iter() {
        assert!(*read == 0 || *read == 1);
        assert_eq!(*final_l1, 1, "guarded store must eventually complete");
    }
}

// -----------------------------------------------------------------------
// Dekker mutual exclusion (Theorem 7)
// -----------------------------------------------------------------------

fn explore_dekker(kinds: [FenceKind; 2], iters: u64) -> ExploreResult<(u64, u64)> {
    let opt = DekkerOptions {
        iters,
        cs_mem_ops: true,
        cs_work: 0,
    };
    let m = Machine::for_checking(dekker_pair(kinds, opt));
    Explorer::default().explore(m, |m| (m.cpus[0].regs[1], m.cpus[1].regs[1]))
}

#[test]
fn dekker_unfenced_violates_mutual_exclusion() {
    let r = explore_dekker([FenceKind::None, FenceKind::None], 1);
    assert!(
        r.mutex_violations > 0,
        "Figure 1 without fences must be broken under TSO"
    );
}

#[test]
fn dekker_one_sided_fence_violates_mutual_exclusion() {
    for kinds in [
        [FenceKind::Mfence, FenceKind::None],
        [FenceKind::None, FenceKind::Mfence],
        [FenceKind::Lmfence, FenceKind::None],
        [FenceKind::None, FenceKind::Lmfence],
    ] {
        let r = explore_dekker(kinds, 1);
        assert!(
            r.mutex_violations > 0,
            "one-sided {kinds:?} must still admit a violation"
        );
    }
}

#[test]
fn dekker_symmetric_mfence_is_mutually_exclusive() {
    let r = explore_dekker([FenceKind::Mfence, FenceKind::Mfence], 1);
    assert!(!r.truncated);
    assert_eq!(r.mutex_violations, 0);
    // Completion is possible (both finish one iteration).
    assert!(r.has_outcome(&(1, 1)));
}

#[test]
fn dekker_asymmetric_lmfence_is_mutually_exclusive() {
    // Theorem 7: primary l-mfence + secondary mfence.
    let r = explore_dekker([FenceKind::Lmfence, FenceKind::Mfence], 1);
    assert!(!r.truncated);
    assert_eq!(r.mutex_violations, 0, "Theorem 7 violated");
    assert!(r.has_outcome(&(1, 1)));
}

#[test]
fn dekker_mirrored_lmfence_is_mutually_exclusive() {
    // Section 4's closing remark: the secondary may mirror the l-mfence and
    // the protocol still provides mutual exclusion.
    let r = explore_dekker([FenceKind::Lmfence, FenceKind::Lmfence], 1);
    assert!(!r.truncated);
    assert_eq!(r.mutex_violations, 0);
    assert!(r.has_outcome(&(1, 1)));
}

#[test]
fn dekker_asymmetric_two_iterations_still_exclusive() {
    // Two iterations exercise link reuse across protocol rounds (the flag
    // returns to 0 and a new l-mfence guards it again).
    let r = explore_dekker([FenceKind::Lmfence, FenceKind::Mfence], 2);
    assert!(!r.truncated, "state space exceeded bounds");
    assert_eq!(r.mutex_violations, 0);
    assert!(r.has_outcome(&(2, 2)));
}

// -----------------------------------------------------------------------
// Per-trace checking across all interleavings
// -----------------------------------------------------------------------

fn traced_for_checking(progs: Vec<Program>) -> Machine {
    let cfg = MachineConfig {
        record_trace: true,
        ..MachineConfig::default()
    };
    Machine::new(cfg, CostModel::zero(), progs)
}

#[test]
fn all_guarded_read_traces_satisfy_lemma_3() {
    let m = traced_for_checking(litmus_guarded_read());
    let (r, failure) = Explorer::default().explore_checking(m, |m| check_all(m, &[]));
    assert!(failure.is_none(), "trace check failed: {failure:?}");
    assert!(r.terminals > 0);
}

#[test]
fn all_asymmetric_sb_traces_satisfy_definitions() {
    let m = traced_for_checking(litmus_sb([FenceKind::Lmfence, FenceKind::Mfence]));
    let (r, failure) = Explorer::default().explore_checking(m, |m| check_all(m, &[]));
    assert!(failure.is_none(), "trace check failed: {failure:?}");
    assert!(r.terminals > 0);
}

#[test]
fn all_asymmetric_dekker_traces_satisfy_definitions() {
    let opt = DekkerOptions {
        iters: 1,
        cs_mem_ops: true,
        cs_work: 0,
    };
    let m = traced_for_checking(dekker_asymmetric(opt));
    let (r, failure) = Explorer::default().explore_checking(m, |m| {
        check_all(m, &[])?;
        check_no_mutex_violation(m)
    });
    assert!(failure.is_none(), "trace check failed: {failure:?}");
    assert!(r.terminals > 0);
}

// -----------------------------------------------------------------------
// Interrupts and false sharing
// -----------------------------------------------------------------------

#[test]
fn dekker_asymmetric_survives_interrupts() {
    // Context switches drain the store buffer and break the link; mutual
    // exclusion must still hold on every interleaving.
    let opt = DekkerOptions {
        iters: 1,
        cs_mem_ops: false,
        cs_work: 0,
    };
    let cfg = MachineConfig {
        record_trace: false,
        interrupts_enabled: true,
        ..MachineConfig::default()
    };
    let m = Machine::new(cfg, CostModel::zero(), dekker_asymmetric(opt));
    let r = Explorer::default().explore(m, |m| (m.cpus[0].regs[1], m.cpus[1].regs[1]));
    assert!(!r.truncated);
    assert_eq!(r.mutex_violations, 0);
}

#[test]
fn false_sharing_breaks_link_but_preserves_correctness() {
    // With 4-word lines, L1 (addr 0) and L2 (addr 1) share a cache line, so
    // the secondary's *own-flag write* also collides with the primary's
    // guarded line. The protocol must remain mutually exclusive — links
    // just break more often.
    let opt = DekkerOptions {
        iters: 1,
        cs_mem_ops: false,
        cs_work: 0,
    };
    let cfg = MachineConfig {
        geom: Geometry::new(2),
        record_trace: false,
        ..MachineConfig::default()
    };
    let m = Machine::new(cfg, CostModel::zero(), dekker_asymmetric(opt));
    let r = Explorer::default().explore(m, |m| (m.cpus[0].regs[1], m.cpus[1].regs[1]));
    assert!(!r.truncated);
    assert_eq!(r.mutex_violations, 0);
    assert!(r.has_outcome(&(1, 1)));
}

#[test]
fn tiny_cache_evictions_preserve_correctness() {
    // A 1-line cache forces the guarded line out constantly, exercising the
    // eviction notification path on every interleaving.
    let opt = DekkerOptions {
        iters: 1,
        cs_mem_ops: true,
        cs_work: 0,
    };
    let cfg = MachineConfig {
        cache_capacity: 1,
        record_trace: false,
        ..MachineConfig::default()
    };
    let m = Machine::new(cfg, CostModel::zero(), dekker_asymmetric(opt));
    let r = Explorer::default().explore(m, |m| (m.cpus[0].regs[1], m.cpus[1].regs[1]));
    assert!(!r.truncated);
    assert_eq!(r.mutex_violations, 0);
}

#[test]
fn iriw_readers_agree_on_write_order() {
    // Footnote 4: all *other* processors observe a consistent ordering of
    // two writes. Readers that fence between their loads may never
    // disagree: (1,0) on both readers is forbidden.
    let m = Machine::for_checking(litmus_iriw(true));
    let r = Explorer::new(20_000_000, 100_000).explore(m, |m| {
        (
            (m.cpus[2].regs[0], m.cpus[2].regs[1]),
            (m.cpus[3].regs[0], m.cpus[3].regs[1]),
        )
    });
    assert!(!r.truncated, "IRIW state space exceeded bounds");
    assert!(
        !r.has_outcome(&((1, 0), (1, 0))),
        "readers disagreed on write order: {:?}",
        r.outcomes
    );
    // Sanity: plenty of legal outcomes exist.
    assert!(r.outcomes.len() >= 4);
}

#[test]
fn iriw_unfenced_readers_still_agree_under_tso() {
    // Even without reader fences, TSO (atomic stores via coherence) keeps
    // IRIW's forbidden outcome unreachable — unlike POWER-style models.
    let m = Machine::for_checking(litmus_iriw(false));
    let r = Explorer::new(20_000_000, 100_000).explore(m, |m| {
        (
            (m.cpus[2].regs[0], m.cpus[2].regs[1]),
            (m.cpus[3].regs[0], m.cpus[3].regs[1]),
        )
    });
    assert!(!r.truncated);
    assert!(!r.has_outcome(&((1, 0), (1, 0))), "{:?}", r.outcomes);
}

#[test]
fn full_dekker_with_turn_is_mutually_exclusive_and_live() {
    // The turn-augmented (livelock-free) Dekker protocol: mutual exclusion
    // over all interleavings, and deterministic progress on the
    // cycle-driven runner (which livelocks the simplified protocol).
    let opt = DekkerOptions {
        iters: 1,
        cs_mem_ops: false,
        cs_work: 0,
    };
    for kinds in [
        [FenceKind::Mfence, FenceKind::Mfence],
        [FenceKind::Lmfence, FenceKind::Mfence],
    ] {
        let m = Machine::for_checking(dekker_pair_with_turn(kinds, opt));
        let r = Explorer::default().explore(m, |m| (m.cpus[0].regs[1], m.cpus[1].regs[1]));
        assert!(!r.truncated, "{kinds:?}");
        assert_eq!(r.mutex_violations, 0, "{kinds:?}");
        assert!(r.has_outcome(&(1, 1)), "{kinds:?}");
    }
    // Progress under the deterministic scheduler, many iterations.
    let opt = DekkerOptions {
        iters: 200,
        cs_mem_ops: true,
        cs_work: 2,
    };
    let cfg = MachineConfig {
        record_trace: false,
        ..MachineConfig::default()
    };
    let mut m = Machine::new(
        cfg,
        CostModel::default(),
        dekker_pair_with_turn([FenceKind::Lmfence, FenceKind::Mfence], opt),
    );
    assert!(m.run_pseudo_parallel(8, 50_000_000), "turn protocol must not livelock");
    assert_eq!(m.cpus[0].regs[1], 200);
    assert_eq!(m.cpus[1].regs[1], 200);
    assert_eq!(m.mutex_violations, 0);
}

#[test]
fn full_dekker_with_turn_unfenced_still_broken() {
    let opt = DekkerOptions {
        iters: 1,
        cs_mem_ops: false,
        cs_work: 0,
    };
    let m = Machine::for_checking(dekker_pair_with_turn([FenceKind::None, FenceKind::None], opt));
    let r = Explorer::default().explore(m, |m| (m.cpus[0].regs[1], m.cpus[1].regs[1]));
    assert!(
        r.mutex_violations > 0,
        "the turn tie-break does not fix the missing fences"
    );
}

#[test]
fn r_litmus_relaxed_outcome_needs_the_fence() {
    // Unfenced: TSO allows P1 to read L1 = 0 even when its own L2 store
    // wins the coherence race.
    let m = Machine::for_checking(litmus_r(false));
    let r = Explorer::default().explore(m, |m| (m.cpus[1].regs[0], m.coherent_word(L2)));
    assert!(!r.truncated);
    assert!(r.has_outcome(&(0, 1)), "unfenced R must allow (0,1): {:?}", r.outcomes);

    // With an mfence on P1 the outcome vanishes.
    let m = Machine::for_checking(litmus_r(true));
    let r = Explorer::default().explore(m, |m| (m.cpus[1].regs[0], m.coherent_word(L2)));
    assert!(!r.truncated);
    assert!(!r.has_outcome(&(0, 1)), "fenced R must forbid (0,1): {:?}", r.outcomes);
    assert!(r.has_outcome(&(0, 2)) && r.has_outcome(&(1, 1)) && r.has_outcome(&(1, 2)));
}

#[test]
fn s_litmus_forbidden_without_any_fence() {
    // (r0 = 1, final L1 = 2) contradicts FIFO completion + in-order
    // commit; no fence is needed to forbid it under TSO.
    let m = Machine::for_checking(litmus_s());
    let r = Explorer::default().explore(m, |m| (m.cpus[1].regs[0], m.coherent_word(L1)));
    assert!(!r.truncated);
    assert!(!r.has_outcome(&(1, 2)), "S forbidden outcome reachable: {:?}", r.outcomes);
    assert!(r.has_outcome(&(1, 1)), "the benign (1,1) shape must exist");
}
