//! Bus/event conservation laws for the coherence observability layer.
//!
//! The coherence-level trace (`BusTransaction`, `MesiTransition`) is an
//! *accounting* of the machine's behaviour, not a parallel bookkeeping
//! path — so its totals must agree exactly with `BusStats`, the per-line
//! MESI timelines must fold into the caches' final states, and every
//! remote link break must be traceable to the bus transaction that
//! caused it.

use lbmf_sim::bus::BusOp;
use lbmf_sim::prelude::*;
use lbmf_sim::trace::BusCause;
use std::collections::BTreeMap;

fn traced_machine(kinds: [FenceKind; 2], iters: u64) -> Machine {
    let opt = DekkerOptions {
        iters,
        cs_mem_ops: true,
        cs_work: 2,
    };
    Machine::new(
        MachineConfig::default(),
        CostModel::default(),
        dekker_pair_with_turn(kinds, opt),
    )
}

fn run(m: &mut Machine) {
    // A generous drain delay keeps guarded stores buffered across the race
    // window, so the remote-downgrade paths are actually exercised.
    assert!(m.run_pseudo_parallel(40, 1_000_000), "run did not finish");
    m.flush_all();
}

fn bus_event_counts(m: &Machine) -> BTreeMap<&'static str, u64> {
    let mut counts: BTreeMap<&'static str, u64> =
        [("BusRd", 0), ("BusRdX", 0), ("BusUpgr", 0), ("Writeback", 0)]
            .into_iter()
            .collect();
    for e in m.trace.iter() {
        if let EventKind::BusTransaction { op, .. } = e.kind {
            let key = match op {
                BusOp::BusRd => "BusRd",
                BusOp::BusRdX => "BusRdX",
                BusOp::BusUpgr => "BusUpgr",
                BusOp::Writeback => "Writeback",
            };
            *counts.get_mut(key).unwrap() += 1;
        }
    }
    counts
}

/// Every `stats.record` routes through the event emitter, so `BusStats`
/// equals the per-op `BusTransaction` event counts exactly.
#[test]
fn bus_stats_equal_bus_transaction_events() {
    for kinds in [[FenceKind::Lmfence, FenceKind::Lmfence], [FenceKind::Mfence, FenceKind::Mfence]] {
        let mut m = traced_machine(kinds, 3);
        run(&mut m);
        let counts = bus_event_counts(&m);
        assert_eq!(counts["BusRd"], m.stats.bus_rd, "{kinds:?}");
        assert_eq!(counts["BusRdX"], m.stats.bus_rdx, "{kinds:?}");
        assert_eq!(counts["BusUpgr"], m.stats.bus_upgr, "{kinds:?}");
        assert_eq!(counts["Writeback"], m.stats.writebacks, "{kinds:?}");
        assert_eq!(
            counts.values().sum::<u64>(),
            m.stats.total_transactions(),
            "{kinds:?}"
        );
        assert!(m.stats.total_requests() > 0, "workload must exercise the bus");
    }
}

/// Per-reason `LinkCleared` event counts equal the `BusStats` tallies.
#[test]
fn link_clear_events_equal_tallies() {
    let mut m = traced_machine([FenceKind::Lmfence, FenceKind::Lmfence], 3);
    run(&mut m);
    let mut by_reason: BTreeMap<String, u64> = BTreeMap::new();
    for e in m.trace.iter() {
        if let EventKind::LinkCleared { reason } = e.kind {
            *by_reason.entry(format!("{reason}")).or_insert(0) += 1;
        }
    }
    let mut total = 0;
    for (label, n) in m.stats.link_clear_tallies() {
        assert_eq!(
            by_reason.get(label).copied().unwrap_or(0),
            n,
            "tally mismatch for {label}"
        );
        total += n;
    }
    assert_eq!(m.stats.link_clears_total(), total);
    assert!(total > 0, "l-mfence workload must clear links");
}

/// Every remote-downgrade link break is preceded by the bus transaction
/// (from another CPU) that forced it, and followed by the forced flush
/// of the victim's guarded store.
#[test]
fn remote_downgrades_have_matching_bus_op_and_flush() {
    let mut m = traced_machine([FenceKind::Lmfence, FenceKind::Lmfence], 3);
    run(&mut m);
    let events = &m.trace.events;
    let mut seen = 0u64;
    for (k, e) in events.iter().enumerate() {
        if !matches!(e.kind, EventKind::LinkCleared { reason: LinkClearReason::RemoteDowngrade }) {
            continue;
        }
        seen += 1;
        let victim = e.cpu;
        let request = events[..k]
            .iter()
            .rev()
            .find(|p| matches!(p.kind, EventKind::BusTransaction { .. }));
        let request = request.expect("remote downgrade without a bus transaction before it");
        assert_ne!(
            request.cpu, victim,
            "the breaking transaction must come from another CPU"
        );
        // The mechanism's whole point: the guarded store becomes visible
        // before the requester's transaction completes. The flush events
        // follow the clear within the same atomic transition — unless the
        // link was broken between LE and the guarded store's commit, when
        // there is nothing to flush yet.
        let mut pending = 0i64;
        for p in events[..k].iter().filter(|p| p.cpu == victim) {
            match p.kind {
                EventKind::StoreCommitted { .. } => pending += 1,
                EventKind::StoreCompleted { .. } => pending -= 1,
                _ => {}
            }
        }
        if pending > 0 {
            let flushed = events[k + 1..]
                .iter()
                .take(12)
                .any(|n| n.cpu == victim && matches!(n.kind, EventKind::StoreCompleted { .. }));
            assert!(flushed, "remote downgrade at seq {} forced no flush", e.seq);
        }
    }
    assert_eq!(seen, m.stats.link_breaks_remote);
    assert!(seen > 0, "dueling l-mfences must break links remotely");
}

/// The per-(cpu, line) MESI timeline is continuous (each transition's
/// `from` matches the tracked state) and folds into the caches' final
/// resident states.
#[test]
fn mesi_timeline_folds_to_final_cache_states() {
    let mut m = traced_machine([FenceKind::Lmfence, FenceKind::Mfence], 3);
    run(&mut m);
    let mut tracked: BTreeMap<(usize, u64), Mesi> = BTreeMap::new();
    let mut transitions = 0u64;
    for e in m.trace.iter() {
        if let EventKind::MesiTransition { line, from, to } = e.kind {
            let cur = tracked.get(&(e.cpu, line.0)).copied().unwrap_or(Mesi::I);
            assert_eq!(cur, from, "timeline discontinuity on cpu{} {line}", e.cpu);
            assert_ne!(from, to, "no-op transition recorded");
            tracked.insert((e.cpu, line.0), to);
            transitions += 1;
        }
    }
    assert!(transitions > 0, "workload must transition MESI states");
    for i in 0..m.num_cpus() {
        for (line, state) in m.caches[i].states() {
            assert_eq!(
                tracked.get(&(i, line.0)).copied().unwrap_or(Mesi::I),
                state,
                "cpu{i} {line} final state not reproduced by the timeline"
            );
        }
    }
    for (&(cpu, line), &state) in &tracked {
        if state != Mesi::I {
            assert_eq!(
                m.caches[cpu].state(LineId(line)),
                state,
                "timeline says cpu{cpu} L{line} resident, cache disagrees"
            );
        }
    }
}

/// Capacity evictions are accounted too: the victim's drop shows on the
/// timeline and dirty victims produce an eviction-attributed writeback.
#[test]
fn evictions_are_attributed() {
    let cfg = MachineConfig {
        cache_capacity: 2,
        ..MachineConfig::default()
    };
    let mut b = ProgramBuilder::new("evictor");
    b.st(Addr(1), 1u64).mfence();
    for a in 10..14u64 {
        b.ld(0, Addr(a));
    }
    b.halt();
    let mut m = Machine::new(cfg, CostModel::default(), vec![b.build()]);
    run(&mut m);
    let evicted_wb = m.trace.iter().any(|e| {
        matches!(
            e.kind,
            EventKind::BusTransaction { op: BusOp::Writeback, cause: BusCause::Eviction, .. }
        )
    });
    assert!(evicted_wb, "dirty victim must produce an eviction writeback");
    let drops = m
        .trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::MesiTransition { to: Mesi::I, .. }))
        .count();
    assert!(drops >= 2, "capacity-2 cache walking 5 lines must drop lines");
}

/// The Chrome export of a traced run validates (flow pairing included)
/// and carries the advertised tracks.
#[test]
fn chrome_export_validates_and_has_all_tracks() {
    let mut m = traced_machine([FenceKind::Lmfence, FenceKind::Lmfence], 3);
    run(&mut m);
    assert!(m.stats.link_breaks_remote > 0);
    let json = lbmf_sim::chrome::export(&m);
    lbmf_trace::chrome::validate(&json).expect("sim export must validate");
    assert!(json.contains("\"name\":\"le/st-link\""));
    assert!(json.contains(" MESI\""));
    let starts = json.matches("\"ph\":\"s\"").count() as u64;
    assert_eq!(starts, m.stats.link_breaks_remote, "one flow arrow per remote break");
}

/// The conservation laws hold on *every* interleaving, not just the
/// pseudo-parallel schedule: explore a small protocol with tracing on and
/// re-check at each terminal.
#[test]
fn conservation_holds_across_explored_interleavings() {
    let cfg = MachineConfig {
        record_trace: true,
        ..MachineConfig::default()
    };
    let m = Machine::new(cfg, CostModel::zero(), litmus_sb([FenceKind::Lmfence, FenceKind::Lmfence]));
    let explorer = Explorer::new(200_000, 10_000);
    let (result, failure) = explorer.explore_checking(m, |m| {
        let counts = bus_event_counts(m);
        if counts.values().sum::<u64>() != m.stats.total_transactions() {
            return Err(format!(
                "bus conservation broken: events {counts:?} vs stats {:?}",
                m.stats
            ));
        }
        let clears = m
            .trace
            .iter()
            .filter(|e| matches!(e.kind, EventKind::LinkCleared { .. }))
            .count() as u64;
        if clears != m.stats.link_clears_total() {
            return Err(format!(
                "link-clear conservation broken: {clears} events vs {} tallied",
                m.stats.link_clears_total()
            ));
        }
        Ok(())
    });
    assert!(!result.truncated, "exploration must be exhaustive");
    assert!(result.terminals > 0);
    if let Some(f) = failure {
        panic!("conservation violated on some interleaving: {f}");
    }
}

/// The Prometheus exposition of sim counters reflects the stats verbatim.
#[test]
fn prometheus_exposition_matches_stats() {
    let mut m = traced_machine([FenceKind::Lmfence, FenceKind::Lmfence], 2);
    run(&mut m);
    let text = lbmf_sim::bus::prometheus(&m.stats);
    for (family, value) in [
        ("lbmf_sim_bus_ops_total{op=\"BusRd\"}", m.stats.bus_rd),
        ("lbmf_sim_bus_ops_total{op=\"BusRdX\"}", m.stats.bus_rdx),
        ("lbmf_sim_link_clears_total{reason=\"remote-downgrade\"}", m.stats.link_breaks_remote),
        ("lbmf_sim_mfences_total", m.stats.mfences),
        ("lbmf_sim_store_completions_total", m.stats.store_completions),
    ] {
        assert!(
            text.contains(&format!("{family} {value}\n")),
            "missing `{family} {value}` in:\n{text}"
        );
    }
}
