//! The LE/ST mechanism across coherence-protocol variants.
//!
//! Section 2 of the paper: "we assume that the target architecture employs
//! the MESI cache coherence protocol, although the mechanism can be adapted
//! to other variants such as MSI and MOESI". These tests *are* that
//! adaptation check: the litmus outcomes, the Dekker theorems, and the
//! trace invariants must be identical under all three protocols (the
//! protocol changes cost and traffic, never observable memory semantics).

use lbmf_prng::{Rng, SplitMix64};
use lbmf_sim::prelude::*;

const PROTOCOLS: [Coherence; 3] = [Coherence::Msi, Coherence::Mesi, Coherence::Moesi];

fn checking_machine(progs: Vec<Program>, coherence: Coherence) -> Machine {
    let cfg = MachineConfig {
        record_trace: false,
        coherence,
        ..MachineConfig::default()
    };
    Machine::new(cfg, CostModel::zero(), progs)
}

#[test]
fn sb_outcomes_identical_across_protocols() {
    for kinds in [
        [FenceKind::None, FenceKind::None],
        [FenceKind::Lmfence, FenceKind::Mfence],
        [FenceKind::Lmfence, FenceKind::Lmfence],
    ] {
        let mut reference = None;
        for p in PROTOCOLS {
            let m = checking_machine(litmus_sb(kinds), p);
            let r = Explorer::default().explore(m, |m| (m.cpus[0].regs[0], m.cpus[1].regs[0]));
            assert!(!r.truncated, "{} {kinds:?}", p.label());
            match &reference {
                None => reference = Some(r.outcomes),
                Some(expect) => assert_eq!(
                    &r.outcomes,
                    expect,
                    "{} disagrees on {kinds:?}",
                    p.label()
                ),
            }
        }
    }
}

#[test]
fn dekker_theorem_7_holds_under_all_protocols() {
    let opt = DekkerOptions {
        iters: 1,
        cs_mem_ops: true,
        cs_work: 0,
    };
    for p in PROTOCOLS {
        let m = checking_machine(dekker_asymmetric(opt), p);
        let r = Explorer::default().explore(m, |m| (m.cpus[0].regs[1], m.cpus[1].regs[1]));
        assert!(!r.truncated, "{}", p.label());
        assert_eq!(r.mutex_violations, 0, "Theorem 7 violated under {}", p.label());
        assert!(r.has_outcome(&(1, 1)), "{}", p.label());
    }
}

#[test]
fn dekker_unfenced_broken_under_all_protocols() {
    let opt = DekkerOptions {
        iters: 1,
        cs_mem_ops: false,
        cs_work: 0,
    };
    for p in PROTOCOLS {
        let m = checking_machine(dekker_pair([FenceKind::None, FenceKind::None], opt), p);
        let r = Explorer::default().explore(m, |m| (m.cpus[0].regs[1], m.cpus[1].regs[1]));
        assert!(
            r.mutex_violations > 0,
            "the TSO bug must exist regardless of protocol ({})",
            p.label()
        );
    }
}

#[test]
fn moesi_reaches_owned_state_and_supplies_data() {
    // CPU0 writes (M), CPU1 reads: under MOESI CPU0 keeps the dirty line
    // as Owned and memory stays stale; CPU1 still observes the value.
    let mut b0 = ProgramBuilder::new("writer");
    b0.st(Addr(1), 42u64).mfence().halt();
    let mut b1 = ProgramBuilder::new("reader");
    b1.ld(0, Addr(1)).halt();
    let cfg = MachineConfig {
        coherence: Coherence::Moesi,
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, CostModel::default(), vec![b0.build(), b1.build()]);
    while !m.cpus[0].halted {
        m.apply(Transition::Step(0));
    }
    m.apply(Transition::Step(1));
    assert_eq!(m.cpus[1].regs[0], 42, "reader must see the dirty data");
    let line = m.cfg.geom.line_of(Addr(1));
    assert_eq!(m.caches[0].state(line), Mesi::O, "writer keeps Owned");
    assert_eq!(m.caches[1].state(line), Mesi::S);
    assert_eq!(m.mem_word(Addr(1)), 0, "memory stays stale under MOESI");
    assert_eq!(m.coherent_word(Addr(1)), 42);
    m.check_coherence().unwrap();
}

#[test]
fn msi_never_grants_silent_exclusive_on_read() {
    // Under MSI a lone read miss installs S, so a subsequent store must
    // issue a bus upgrade (observable as traffic).
    let mut b = ProgramBuilder::new("p");
    b.ld(0, Addr(1)).st(Addr(1), 1u64).mfence().halt();
    let cfg = MachineConfig {
        coherence: Coherence::Msi,
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, CostModel::default(), vec![b.build()]);
    let mut guard = 0;
    while !m.is_terminal() {
        let ts = m.enabled_transitions();
        m.apply(ts[0]);
        guard += 1;
        assert!(guard < 1000);
    }
    assert!(m.stats.bus_upgr >= 1, "MSI store-after-read needs an upgrade");

    // Under MESI the same program upgrades silently (E -> M).
    let mut b = ProgramBuilder::new("p");
    b.ld(0, Addr(1)).st(Addr(1), 1u64).mfence().halt();
    let mut m2 = Machine::new(MachineConfig::default(), CostModel::default(), vec![b.build()]);
    let mut guard = 0;
    while !m2.is_terminal() {
        let ts = m2.enabled_transitions();
        m2.apply(ts[0]);
        guard += 1;
        assert!(guard < 1000);
    }
    assert_eq!(m2.stats.bus_upgr, 0, "MESI upgrades E->M silently");
}

#[test]
fn msi_link_requires_modified_state() {
    // Under MSI the LE acquires M directly, and the link still works: a
    // lone l-mfence skips the fence, a remote read breaks the link.
    let mut b0 = ProgramBuilder::new("primary");
    b0.lmfence(Addr(1), 7u64).halt();
    let mut b1 = ProgramBuilder::new("secondary");
    b1.ld(0, Addr(1)).halt();
    let cfg = MachineConfig {
        coherence: Coherence::Msi,
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, CostModel::default(), vec![b0.build(), b1.build()]);
    while !m.cpus[0].halted {
        m.apply(Transition::Step(0));
    }
    assert_eq!(m.stats.mfences, 0, "lone l-mfence must not stall under MSI");
    assert!(m.cpus[0].le_bit);
    m.apply(Transition::Step(1));
    assert_eq!(m.cpus[1].regs[0], 7);
    assert!(!m.cpus[0].le_bit, "remote read must break the link");
    m.check_coherence().unwrap();
}

#[test]
fn owned_line_eviction_writes_back() {
    // Get a line into O (MOESI), then force its eviction with a tiny
    // cache; the dirty data must land in memory.
    let mut b0 = ProgramBuilder::new("writer");
    b0.st(Addr(1), 9u64)
        .mfence()
        .work(1) // placeholder; reader runs here
        .ld(2, Addr(10))
        .ld(3, Addr(11))
        .halt();
    let mut b1 = ProgramBuilder::new("reader");
    b1.ld(0, Addr(1)).halt();
    let cfg = MachineConfig {
        coherence: Coherence::Moesi,
        cache_capacity: 2,
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg, CostModel::default(), vec![b0.build(), b1.build()]);
    // Writer stores + fences (line M).
    for _ in 0..3 {
        m.apply(Transition::Step(0));
    }
    // Reader downgrades it to O.
    m.apply(Transition::Step(1));
    let line = m.cfg.geom.line_of(Addr(1));
    assert_eq!(m.caches[0].state(line), Mesi::O);
    // Writer's two more loads evict the O line from its 2-line cache.
    while !m.cpus[0].halted {
        m.apply(Transition::Step(0));
    }
    assert_eq!(m.mem_word(Addr(1)), 9, "evicted Owned line must write back");
    m.check_coherence().unwrap();
}

// -----------------------------------------------------------------------
// Property tests across protocols
// -----------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Op {
    Load(u8, u64),
    Store(u64, u64),
    Fence,
    Lmfence(u64, u64),
}

/// One random op with the original proptest weights
/// (load 4 : store 4 : fence 1 : l-mfence 2).
fn random_op(rng: &mut SplitMix64) -> Op {
    match rng.bounded_u64(11) {
        0..=3 => Op::Load(rng.bounded_u64(4) as u8, rng.bounded_u64(4)),
        4..=7 => Op::Store(rng.bounded_u64(4), 1 + rng.bounded_u64(15)),
        8 => Op::Fence,
        _ => Op::Lmfence(rng.bounded_u64(4), 1 + rng.bounded_u64(15)),
    }
}

fn random_ops(rng: &mut SplitMix64, max_len: usize) -> Vec<Op> {
    let len = rng.random_range(0..max_len);
    (0..len).map(|_| random_op(rng)).collect()
}

fn build(name: &str, ops: &[Op]) -> Program {
    let mut b = ProgramBuilder::new(name);
    for op in ops {
        match *op {
            Op::Load(r, a) => {
                b.ld(r, Addr(a));
            }
            Op::Store(a, v) => {
                b.st(Addr(a), v);
            }
            Op::Fence => {
                b.mfence();
            }
            Op::Lmfence(a, v) => {
                b.lmfence(Addr(a), v);
            }
        }
    }
    b.halt();
    b.build()
}

/// Random programs satisfy all trace invariants under every protocol.
#[test]
fn random_programs_satisfy_invariants_under_all_protocols() {
    let mut rng = SplitMix64::seed_from_u64(0x5151_0001);
    for case in 0..48 {
        let ops0 = random_ops(&mut rng, 10);
        let ops1 = random_ops(&mut rng, 10);
        let proto = PROTOCOLS[case % 3];
        let cfg = MachineConfig {
            record_trace: true,
            coherence: proto,
            ..MachineConfig::default()
        };
        let progs = vec![build("p0", &ops0), build("p1", &ops1)];
        let mut m = Machine::new(cfg, CostModel::zero(), progs);
        let mut sched = SplitMix64::seed_from_u64(rng.next_u64());
        assert!(m.run_random(&mut sched, 100_000));
        if let Err(e) = check_all(&m, &[]) {
            panic!("invariant violated under {}: {e}", proto.label());
        }
    }
}

/// The final coherent memory state is protocol-independent for the same
/// program under the same schedule seed.
#[test]
fn final_state_protocol_independent() {
    let mut rng = SplitMix64::seed_from_u64(0x5151_0002);
    for _ in 0..32 {
        let ops0 = random_ops(&mut rng, 10);
        let ops1 = random_ops(&mut rng, 10);
        let seed = rng.next_u64();
        let run = |coherence| {
            let cfg = MachineConfig {
                record_trace: false,
                coherence,
                ..MachineConfig::default()
            };
            let progs = vec![build("p0", &ops0), build("p1", &ops1)];
            let mut m = Machine::new(cfg, CostModel::zero(), progs);
            let mut sched = SplitMix64::seed_from_u64(seed);
            assert!(m.run_random(&mut sched, 100_000));
            (0..4u64).map(|a| m.coherent_word(Addr(a))).collect::<Vec<_>>()
        };
        let msi = run(Coherence::Msi);
        let mesi = run(Coherence::Mesi);
        let moesi = run(Coherence::Moesi);
        // Transition enablement depends only on program state and store
        // buffers — never on cache states — so the same seed yields the
        // same interleaving under every protocol, and the final coherent
        // memory must agree exactly.
        assert_eq!(msi, mesi, "MSI vs MESI diverged");
        assert_eq!(mesi, moesi, "MESI vs MOESI diverged");
    }
}

/// The original proptest forms. Compiled only with `--features proptest`
/// after restoring the `proptest` dev-dependency (registry access
/// required).
#[cfg(feature = "proptest")]
mod proptest_originals {
    use super::*;
    use proptest::prelude::*;

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (0u8..4, 0u64..4).prop_map(|(r, a)| Op::Load(r, a)),
            4 => (0u64..4, 1u64..16).prop_map(|(a, v)| Op::Store(a, v)),
            1 => Just(Op::Fence),
            2 => (0u64..4, 1u64..16).prop_map(|(a, v)| Op::Lmfence(a, v)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        #[test]
        fn random_programs_satisfy_invariants_under_all_protocols_pt(
            ops0 in proptest::collection::vec(op_strategy(), 0..10),
            ops1 in proptest::collection::vec(op_strategy(), 0..10),
            seed in any::<u64>(),
            proto_idx in 0usize..3,
        ) {
            let cfg = MachineConfig {
                record_trace: true,
                coherence: PROTOCOLS[proto_idx],
                ..MachineConfig::default()
            };
            let progs = vec![build("p0", &ops0), build("p1", &ops1)];
            let mut m = Machine::new(cfg, CostModel::zero(), progs);
            let mut rng = SplitMix64::seed_from_u64(seed);
            prop_assert!(m.run_random(&mut rng, 100_000));
            if let Err(e) = check_all(&m, &[]) {
                return Err(TestCaseError::fail(e));
            }
        }
    }
}
