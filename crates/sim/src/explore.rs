//! Bounded exhaustive interleaving exploration (a small model checker),
//! with counterexample extraction.
//!
//! The explorer enumerates every reachable interleaving of a machine's
//! transitions ([`Transition::Step`], [`Transition::Drain`], and optionally
//! [`Transition::Interrupt`]) with a visited-state set keyed on the
//! machine's semantic [`fingerprint`](Machine::fingerprint). This is how the
//! repository *verifies* the paper's theorems rather than asserting them:
//!
//! * Theorem 7 (mutual exclusion of the asymmetric Dekker protocol) becomes
//!   "no reachable state has two CPUs in the critical section";
//! * Theorem 4 / Definition 2 become litmus-test outcome sets: the
//!   store-buffering outcome `r0 == 0 && r1 == 0` must be reachable without
//!   fences, and unreachable with `mfence` or `l-mfence` pairs.
//!
//! When a mutual-exclusion violation is found, the explorer reconstructs
//! the transition sequence that reaches it; [`replay`] re-executes that
//! schedule with tracing enabled to produce a human-readable
//! counterexample.
//!
//! Fingerprints are 64-bit hashes; a collision could in principle hide a
//! state. The protocol state spaces explored here are in the thousands, so
//! the collision probability is ~2⁻⁵⁰ — acceptable for a test oracle, and
//! the random-walk runners provide an independent (hash-free) sample.

use crate::cost::CostModel;
use crate::isa::Program;
use crate::machine::{Machine, MachineConfig, Transition};
use std::collections::BTreeSet;
use std::collections::HashSet;

/// Exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct Explorer {
    /// Stop after visiting this many distinct states.
    pub max_states: usize,
    /// Ignore paths longer than this many transitions.
    pub max_depth: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_states: 2_000_000,
            max_depth: 100_000,
        }
    }
}

/// Result of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreResult<O: Ord> {
    /// Outcomes extracted at every terminal state reached.
    pub outcomes: BTreeSet<O>,
    /// Number of transitions that produced a mutual-exclusion violation.
    pub mutex_violations: usize,
    /// The transition sequence reaching the *first* violation found, if
    /// any — feed it to [`replay`] for a traced counterexample.
    pub first_violation: Option<Vec<Transition>>,
    /// Distinct states visited.
    pub states_visited: usize,
    /// Terminal states reached (pre-dedup by outcome).
    pub terminals: usize,
    /// True if a bound was hit and the exploration is incomplete.
    pub truncated: bool,
}

impl<O: Ord> ExploreResult<O> {
    /// Whether `outcome` was observed at some terminal state.
    pub fn has_outcome(&self, outcome: &O) -> bool {
        self.outcomes.contains(outcome)
    }
}

/// Arena node for path reconstruction: which node we came from, and by
/// which transition.
#[derive(Clone, Copy)]
struct PathNode {
    parent: usize,
    via: Transition,
}

const ROOT: usize = usize::MAX;

impl Explorer {
    /// An explorer with explicit state and depth bounds.
    pub fn new(max_states: usize, max_depth: usize) -> Self {
        Explorer { max_states, max_depth }
    }

    /// Exhaustively explore all interleavings of `initial`, extracting an
    /// outcome at each terminal state.
    ///
    /// `initial` should be built with [`Machine::for_checking`] (zero cost
    /// model, no trace recording) to keep states canonical.
    pub fn explore<O, F>(&self, initial: Machine, mut extract: F) -> ExploreResult<O>
    where
        O: Ord,
        F: FnMut(&Machine) -> O,
    {
        let mut visited: HashSet<u64> = HashSet::new();
        let mut outcomes = BTreeSet::new();
        let mut mutex_violations = 0usize;
        let mut first_violation: Option<Vec<Transition>> = None;
        let mut terminals = 0usize;
        let mut truncated = false;
        // Path arena: one node per *pushed* state (root excluded).
        let mut arena: Vec<PathNode> = Vec::new();
        // Depth-first over (machine, depth, arena index of this state).
        let mut stack: Vec<(Machine, usize, usize)> = vec![(initial, 0, ROOT)];
        while let Some((m, depth, node)) = stack.pop() {
            if !visited.insert(m.fingerprint()) {
                continue;
            }
            if visited.len() >= self.max_states {
                truncated = true;
                break;
            }
            if m.is_terminal() {
                terminals += 1;
                outcomes.insert(extract(&m));
                continue;
            }
            if depth >= self.max_depth {
                truncated = true;
                continue;
            }
            for t in m.enabled_transitions() {
                let mut next = m.clone();
                let before = next.mutex_violations;
                next.apply(t);
                let child = arena.len();
                arena.push(PathNode { parent: node, via: t });
                if next.mutex_violations > before {
                    mutex_violations += 1;
                    if first_violation.is_none() {
                        first_violation = Some(reconstruct_path(&arena, child));
                    }
                }
                stack.push((next, depth + 1, child));
            }
        }
        ExploreResult {
            outcomes,
            mutex_violations,
            first_violation,
            states_visited: visited.len(),
            terminals,
            truncated,
        }
    }

    /// Explore and run `check` on the machine at every terminal state
    /// (useful with trace recording enabled to validate per-trace
    /// properties). Returns the first failure, if any, plus stats.
    pub fn explore_checking<F>(
        &self,
        initial: Machine,
        mut check: F,
    ) -> (ExploreResult<u8>, Option<String>)
    where
        F: FnMut(&Machine) -> Result<(), String>,
    {
        let mut first_failure = None;
        let result = self.explore(initial, |m| {
            if first_failure.is_none() {
                if let Err(e) = check(m) {
                    first_failure = Some(e);
                }
            }
            0u8
        });
        (result, first_failure)
    }
}

impl Explorer {
    /// Breadth-first search for the *shortest* schedule that produces a
    /// mutual-exclusion violation. Returns `None` when the protocol is
    /// correct (within bounds). More memory-hungry than [`explore`];
    /// intended for counterexample presentation.
    ///
    /// [`explore`]: Explorer::explore
    pub fn find_shortest_violation(&self, initial: Machine) -> Option<Vec<Transition>> {
        let mut visited: HashSet<u64> = HashSet::new();
        let mut arena: Vec<PathNode> = Vec::new();
        let mut queue: std::collections::VecDeque<(Machine, usize)> =
            std::collections::VecDeque::new();
        visited.insert(initial.fingerprint());
        queue.push_back((initial, ROOT));
        while let Some((m, node)) = queue.pop_front() {
            if visited.len() >= self.max_states {
                return None;
            }
            for t in m.enabled_transitions() {
                let mut next = m.clone();
                let before = next.mutex_violations;
                next.apply(t);
                let child = arena.len();
                arena.push(PathNode { parent: node, via: t });
                if next.mutex_violations > before {
                    return Some(reconstruct_path(&arena, child));
                }
                if visited.insert(next.fingerprint()) {
                    queue.push_back((next, child));
                }
            }
        }
        None
    }
}

fn reconstruct_path(arena: &[PathNode], mut node: usize) -> Vec<Transition> {
    let mut path = Vec::new();
    while node != ROOT {
        let n = arena[node];
        path.push(n.via);
        node = n.parent;
    }
    path.reverse();
    path
}

/// Re-execute a transition schedule (e.g. a counterexample from
/// [`ExploreResult::first_violation`]) on a fresh machine with tracing
/// enabled, returning the machine for inspection.
pub fn replay(cfg: MachineConfig, progs: Vec<Program>, path: &[Transition]) -> Machine {
    let cfg = MachineConfig {
        record_trace: true,
        ..cfg
    };
    let mut m = Machine::new(cfg, CostModel::zero(), progs);
    for &t in path {
        m.apply(t);
    }
    m
}

/// [`replay`] a schedule and render the resulting trace as Chrome
/// trace-event JSON — a model-checker counterexample as a Perfetto
/// timeline, coherence arrows included.
pub fn replay_chrome(cfg: MachineConfig, progs: Vec<Program>, path: &[Transition]) -> String {
    crate::chrome::export(&replay(cfg, progs, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::isa::ProgramBuilder;
    use crate::programs::{dekker_pair, DekkerOptions, FenceKind};
    use crate::trace::EventKind;

    /// The classic store-buffering (SB) shape: without fences, TSO allows
    /// both CPUs to read 0.
    fn sb_programs(with_fence: bool) -> Vec<crate::isa::Program> {
        let build = |own: u64, other: u64| {
            let mut b = ProgramBuilder::new("sb");
            b.st(Addr(own), 1u64);
            if with_fence {
                b.mfence();
            }
            b.ld(0, Addr(other)).halt();
            b.build()
        };
        vec![build(0, 1), build(1, 0)]
    }

    fn sb_outcome(m: &Machine) -> (u64, u64) {
        (m.cpus[0].regs[0], m.cpus[1].regs[0])
    }

    #[test]
    fn sb_without_fences_allows_0_0() {
        let m = Machine::for_checking(sb_programs(false));
        let r = Explorer::default().explore(m, sb_outcome);
        assert!(!r.truncated);
        assert!(r.has_outcome(&(0, 0)), "TSO must allow the relaxed outcome");
        assert!(r.has_outcome(&(1, 1)) || r.has_outcome(&(0, 1)) || r.has_outcome(&(1, 0)));
    }

    #[test]
    fn sb_with_mfences_forbids_0_0() {
        let m = Machine::for_checking(sb_programs(true));
        let r = Explorer::default().explore(m, sb_outcome);
        assert!(!r.truncated);
        assert!(
            !r.has_outcome(&(0, 0)),
            "mfence pair must forbid 0/0, outcomes: {:?}",
            r.outcomes
        );
        // At least one of the other outcomes remains reachable.
        assert!(!r.outcomes.is_empty());
    }

    #[test]
    fn exploration_is_deterministic() {
        let r1 = Explorer::default().explore(Machine::for_checking(sb_programs(false)), sb_outcome);
        let r2 = Explorer::default().explore(Machine::for_checking(sb_programs(false)), sb_outcome);
        assert_eq!(r1.outcomes, r2.outcomes);
        assert_eq!(r1.states_visited, r2.states_visited);
    }

    #[test]
    fn truncation_reported_when_bounds_hit() {
        let m = Machine::for_checking(sb_programs(false));
        let r = Explorer::new(3, 100).explore(m, sb_outcome);
        assert!(r.truncated);
    }

    #[test]
    fn counterexample_extracted_and_replays_to_violation() {
        // The unfenced Dekker protocol violates mutual exclusion; the
        // explorer must hand back a schedule that, replayed, shows both
        // CPUs inside the critical section.
        let opt = DekkerOptions {
            iters: 1,
            cs_mem_ops: false,
            cs_work: 0,
        };
        let progs = dekker_pair([FenceKind::None, FenceKind::None], opt);
        let m = Machine::for_checking(progs.clone());
        let cfg = m.cfg;
        let r = Explorer::default().explore(m, |m| (m.cpus[0].regs[1], m.cpus[1].regs[1]));
        assert!(r.mutex_violations > 0);
        let path = r.first_violation.expect("counterexample path");
        let replayed = replay(cfg, progs, &path);
        assert!(replayed.mutex_violations > 0, "replay must reproduce the violation");
        // The trace must actually show the violation event.
        assert!(replayed
            .trace
            .iter()
            .any(|e| matches!(e.kind, EventKind::MutexViolation { .. })));
    }

    #[test]
    fn shortest_counterexample_is_minimal() {
        let opt = DekkerOptions {
            iters: 1,
            cs_mem_ops: false,
            cs_work: 0,
        };
        let progs = dekker_pair([FenceKind::None, FenceKind::None], opt);
        let m = Machine::for_checking(progs.clone());
        let cfg = m.cfg;
        let path = Explorer::default()
            .find_shortest_violation(m)
            .expect("violation exists");
        // The canonical SB violation: each side commits its store (still
        // buffered), reads 0, and enters — 7 transitions.
        assert!(path.len() <= 8, "expected a minimal schedule, got {}", path.len());
        let replayed = replay(cfg, progs.clone(), &path);
        assert!(replayed.mutex_violations > 0);
        // And the correct protocol has no violation at all.
        let fenced = dekker_pair([FenceKind::Lmfence, FenceKind::Mfence], opt);
        assert!(Explorer::default()
            .find_shortest_violation(Machine::for_checking(fenced))
            .is_none());
    }

    #[test]
    fn no_counterexample_for_correct_protocol() {
        let opt = DekkerOptions {
            iters: 1,
            cs_mem_ops: false,
            cs_work: 0,
        };
        let progs = dekker_pair([FenceKind::Lmfence, FenceKind::Mfence], opt);
        let r = Explorer::default()
            .explore(Machine::for_checking(progs), |m| (m.cpus[0].regs[1], m.cpus[1].regs[1]));
        assert_eq!(r.mutex_violations, 0);
        assert!(r.first_violation.is_none());
    }

    #[test]
    fn counterexample_replays_to_valid_chrome_trace() {
        let opt = DekkerOptions {
            iters: 1,
            cs_mem_ops: false,
            cs_work: 0,
        };
        let progs = dekker_pair([FenceKind::None, FenceKind::None], opt);
        let m = Machine::for_checking(progs.clone());
        let cfg = m.cfg;
        let path = Explorer::default()
            .find_shortest_violation(m)
            .expect("violation exists");
        let json = replay_chrome(cfg, progs, &path);
        lbmf_trace::chrome::validate(&json).expect("counterexample trace must validate");
        assert!(json.contains("\"name\":\"store-commit\""));
        assert!(json.contains("\"name\":\"mutex-violation\""));
    }
}
