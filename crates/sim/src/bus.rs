//! Snooping-bus bookkeeping: transaction kinds and traffic statistics.
//!
//! The coherence *logic* lives in [`crate::machine`] (it needs simultaneous
//! access to every cache and store buffer); this module names the bus
//! transactions and counts them, so experiments can report coherence traffic
//! alongside cycle counts.

use std::fmt;
use std::ops::AddAssign;

/// A bus transaction kind, in MESI terms.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BusOp {
    /// Read request (another cache or memory supplies the line; owners
    /// downgrade to S).
    BusRd,
    /// Read-for-ownership (everyone else invalidates).
    BusRdX,
    /// Upgrade from S to E/M without a data transfer.
    BusUpgr,
    /// Writeback of a Modified line to memory.
    Writeback,
}

impl fmt::Display for BusOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BusOp::BusRd => "BusRd",
            BusOp::BusRdX => "BusRdX",
            BusOp::BusUpgr => "BusUpgr",
            BusOp::Writeback => "Writeback",
        };
        f.write_str(s)
    }
}

/// Cumulative bus/coherence statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Read requests (BusRd) issued.
    pub bus_rd: u64,
    /// Read-for-ownership requests (BusRdX) issued.
    pub bus_rdx: u64,
    /// Shared-to-exclusive upgrades (BusUpgr) issued.
    pub bus_upgr: u64,
    /// Modified/Owned lines written back to memory.
    pub writebacks: u64,
    /// Misses served cache-to-cache (vs from memory).
    pub cache_to_cache: u64,
    /// Times a coherence request hit a set LE/ST link and forced a remote
    /// store-buffer flush (the location-based serializations).
    pub link_breaks_remote: u64,
    /// Links cleared because the guarded store completed naturally.
    pub link_natural_completions: u64,
    /// Links cleared by eviction of the guarded line.
    pub link_breaks_eviction: u64,
    /// Links cleared by an interrupt / context switch.
    pub link_breaks_interrupt: u64,
    /// Links cleared by a back-to-back `l-mfence` on a new location.
    pub link_breaks_new_lmfence: u64,
    /// mfence instructions retired.
    pub mfences: u64,
    /// Individual store completions (store-buffer drains).
    pub store_completions: u64,
}

impl BusStats {
    /// Count one bus transaction of kind `op`.
    pub fn record(&mut self, op: BusOp) {
        match op {
            BusOp::BusRd => self.bus_rd += 1,
            BusOp::BusRdX => self.bus_rdx += 1,
            BusOp::BusUpgr => self.bus_upgr += 1,
            BusOp::Writeback => self.writebacks += 1,
        }
    }

    /// Total coherence transactions (excluding writebacks).
    pub fn total_requests(&self) -> u64 {
        self.bus_rd + self.bus_rdx + self.bus_upgr
    }

    /// Total bus transactions of every kind (including writebacks). When a
    /// machine records its trace from reset, this equals the number of
    /// `BusTransaction` events — the conservation law the tests pin down.
    pub fn total_transactions(&self) -> u64 {
        self.total_requests() + self.writebacks
    }

    /// Link-clear counts keyed by the [`LinkClearReason`] display string,
    /// one entry per reason, in declaration order.
    ///
    /// [`LinkClearReason`]: crate::trace::LinkClearReason
    pub fn link_clear_tallies(&self) -> [(&'static str, u64); 5] {
        [
            ("store-completed", self.link_natural_completions),
            ("remote-downgrade", self.link_breaks_remote),
            ("eviction", self.link_breaks_eviction),
            ("interrupt", self.link_breaks_interrupt),
            ("new-lmfence", self.link_breaks_new_lmfence),
        ]
    }

    /// Total links cleared, for any reason.
    pub fn link_clears_total(&self) -> u64 {
        self.link_clear_tallies().iter().map(|(_, n)| n).sum()
    }
}

/// Render a [`BusStats`] in Prometheus exposition format via the shared
/// `lbmf_trace::prometheus` formatter, so the sim's coherence counters join
/// the software-side metrics on one scrape surface.
pub fn prometheus(stats: &BusStats) -> String {
    use lbmf_trace::prometheus::render_counter_family;
    let mut out = String::new();
    render_counter_family(
        &mut out,
        "lbmf_sim_bus_ops_total",
        "Bus transactions issued by the simulated machine, by kind.",
        &[
            (&[("op", "BusRd")], stats.bus_rd),
            (&[("op", "BusRdX")], stats.bus_rdx),
            (&[("op", "BusUpgr")], stats.bus_upgr),
            (&[("op", "Writeback")], stats.writebacks),
        ],
    );
    let tallies = stats.link_clear_tallies();
    let samples: Vec<([(&str, &str); 1], u64)> =
        tallies.iter().map(|&(reason, n)| ([("reason", reason)], n)).collect();
    let rows: Vec<(&[(&str, &str)], u64)> =
        samples.iter().map(|(l, n)| (&l[..], *n)).collect();
    render_counter_family(
        &mut out,
        "lbmf_sim_link_clears_total",
        "LE/ST links cleared, by reason.",
        &rows,
    );
    render_counter_family(
        &mut out,
        "lbmf_sim_cache_to_cache_total",
        "Misses served cache-to-cache rather than from memory.",
        &[(&[], stats.cache_to_cache)],
    );
    render_counter_family(
        &mut out,
        "lbmf_sim_mfences_total",
        "mfence instructions retired.",
        &[(&[], stats.mfences)],
    );
    render_counter_family(
        &mut out,
        "lbmf_sim_store_completions_total",
        "Store-buffer drains made globally visible.",
        &[(&[], stats.store_completions)],
    );
    out
}

impl AddAssign for BusStats {
    fn add_assign(&mut self, o: Self) {
        self.bus_rd += o.bus_rd;
        self.bus_rdx += o.bus_rdx;
        self.bus_upgr += o.bus_upgr;
        self.writebacks += o.writebacks;
        self.cache_to_cache += o.cache_to_cache;
        self.link_breaks_remote += o.link_breaks_remote;
        self.link_natural_completions += o.link_natural_completions;
        self.link_breaks_eviction += o.link_breaks_eviction;
        self.link_breaks_interrupt += o.link_breaks_interrupt;
        self.link_breaks_new_lmfence += o.link_breaks_new_lmfence;
        self.mfences += o.mfences;
        self.store_completions += o.store_completions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_counts_each_kind() {
        let mut s = BusStats::default();
        s.record(BusOp::BusRd);
        s.record(BusOp::BusRd);
        s.record(BusOp::BusRdX);
        s.record(BusOp::BusUpgr);
        s.record(BusOp::Writeback);
        assert_eq!(s.bus_rd, 2);
        assert_eq!(s.bus_rdx, 1);
        assert_eq!(s.bus_upgr, 1);
        assert_eq!(s.writebacks, 1);
        assert_eq!(s.total_requests(), 4);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = BusStats {
            bus_rd: 1,
            mfences: 2,
            ..Default::default()
        };
        let b = BusStats {
            bus_rd: 3,
            link_breaks_remote: 5,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.bus_rd, 4);
        assert_eq!(a.mfences, 2);
        assert_eq!(a.link_breaks_remote, 5);
    }

    #[test]
    fn tally_labels_match_link_clear_reason_display() {
        use crate::trace::LinkClearReason::*;
        let s = BusStats {
            link_natural_completions: 1,
            link_breaks_remote: 2,
            link_breaks_eviction: 3,
            link_breaks_interrupt: 4,
            link_breaks_new_lmfence: 5,
            ..Default::default()
        };
        let tallies = s.link_clear_tallies();
        let reasons = [StoreCompleted, RemoteDowngrade, Eviction, Interrupt, NewLmfence];
        for (i, r) in reasons.iter().enumerate() {
            assert_eq!(tallies[i].0, format!("{r}"), "label/reason order mismatch at {i}");
        }
        assert_eq!(tallies.map(|(_, n)| n), [1, 2, 3, 4, 5]);
        assert_eq!(s.link_clears_total(), 15);
    }

    #[test]
    fn prometheus_renders_all_families() {
        let s = BusStats {
            bus_rd: 7,
            bus_rdx: 2,
            link_breaks_remote: 1,
            cache_to_cache: 4,
            mfences: 3,
            store_completions: 9,
            ..Default::default()
        };
        let text = prometheus(&s);
        assert!(text.contains("# TYPE lbmf_sim_bus_ops_total counter\n"));
        assert!(text.contains("lbmf_sim_bus_ops_total{op=\"BusRd\"} 7\n"));
        assert!(text.contains("lbmf_sim_bus_ops_total{op=\"BusRdX\"} 2\n"));
        assert!(text.contains("lbmf_sim_link_clears_total{reason=\"remote-downgrade\"} 1\n"));
        assert!(text.contains("lbmf_sim_link_clears_total{reason=\"interrupt\"} 0\n"));
        assert!(text.contains("lbmf_sim_cache_to_cache_total 4\n"));
        assert!(text.contains("lbmf_sim_mfences_total 3\n"));
        assert!(text.contains("lbmf_sim_store_completions_total 9\n"));
    }
}
