//! Snooping-bus bookkeeping: transaction kinds and traffic statistics.
//!
//! The coherence *logic* lives in [`crate::machine`] (it needs simultaneous
//! access to every cache and store buffer); this module names the bus
//! transactions and counts them, so experiments can report coherence traffic
//! alongside cycle counts.

use std::fmt;
use std::ops::AddAssign;

/// A bus transaction kind, in MESI terms.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BusOp {
    /// Read request (another cache or memory supplies the line; owners
    /// downgrade to S).
    BusRd,
    /// Read-for-ownership (everyone else invalidates).
    BusRdX,
    /// Upgrade from S to E/M without a data transfer.
    BusUpgr,
    /// Writeback of a Modified line to memory.
    Writeback,
}

impl fmt::Display for BusOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BusOp::BusRd => "BusRd",
            BusOp::BusRdX => "BusRdX",
            BusOp::BusUpgr => "BusUpgr",
            BusOp::Writeback => "Writeback",
        };
        f.write_str(s)
    }
}

/// Cumulative bus/coherence statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Read requests (BusRd) issued.
    pub bus_rd: u64,
    /// Read-for-ownership requests (BusRdX) issued.
    pub bus_rdx: u64,
    /// Shared-to-exclusive upgrades (BusUpgr) issued.
    pub bus_upgr: u64,
    /// Modified/Owned lines written back to memory.
    pub writebacks: u64,
    /// Misses served cache-to-cache (vs from memory).
    pub cache_to_cache: u64,
    /// Times a coherence request hit a set LE/ST link and forced a remote
    /// store-buffer flush (the location-based serializations).
    pub link_breaks_remote: u64,
    /// Links cleared because the guarded store completed naturally.
    pub link_natural_completions: u64,
    /// Links cleared by eviction of the guarded line.
    pub link_breaks_eviction: u64,
    /// mfence instructions retired.
    pub mfences: u64,
    /// Individual store completions (store-buffer drains).
    pub store_completions: u64,
}

impl BusStats {
    /// Count one bus transaction of kind `op`.
    pub fn record(&mut self, op: BusOp) {
        match op {
            BusOp::BusRd => self.bus_rd += 1,
            BusOp::BusRdX => self.bus_rdx += 1,
            BusOp::BusUpgr => self.bus_upgr += 1,
            BusOp::Writeback => self.writebacks += 1,
        }
    }

    /// Total coherence transactions (excluding writebacks).
    pub fn total_requests(&self) -> u64 {
        self.bus_rd + self.bus_rdx + self.bus_upgr
    }
}

impl AddAssign for BusStats {
    fn add_assign(&mut self, o: Self) {
        self.bus_rd += o.bus_rd;
        self.bus_rdx += o.bus_rdx;
        self.bus_upgr += o.bus_upgr;
        self.writebacks += o.writebacks;
        self.cache_to_cache += o.cache_to_cache;
        self.link_breaks_remote += o.link_breaks_remote;
        self.link_natural_completions += o.link_natural_completions;
        self.link_breaks_eviction += o.link_breaks_eviction;
        self.mfences += o.mfences;
        self.store_completions += o.store_completions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_counts_each_kind() {
        let mut s = BusStats::default();
        s.record(BusOp::BusRd);
        s.record(BusOp::BusRd);
        s.record(BusOp::BusRdX);
        s.record(BusOp::BusUpgr);
        s.record(BusOp::Writeback);
        assert_eq!(s.bus_rd, 2);
        assert_eq!(s.bus_rdx, 1);
        assert_eq!(s.bus_upgr, 1);
        assert_eq!(s.writebacks, 1);
        assert_eq!(s.total_requests(), 4);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = BusStats {
            bus_rd: 1,
            mfences: 2,
            ..Default::default()
        };
        let b = BusStats {
            bus_rd: 3,
            link_breaks_remote: 5,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.bus_rd, 4);
        assert_eq!(a.mfences, 2);
        assert_eq!(a.link_breaks_remote, 5);
    }
}
