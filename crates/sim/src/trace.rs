//! Execution traces: the machine's observable event log.
//!
//! Every semantically interesting action emits an [`Event`] with a global
//! sequence number. Trace checkers ([`crate::check`]) consume these logs to
//! validate the TSO ordering principles of Section 2, the serialization
//! order of Definition 1, and the guarded-store visibility property of
//! Lemma 3.

use crate::addr::{Addr, LineId};
use crate::bus::BusOp;
use crate::mesi::Mesi;
use std::fmt;

/// What class of action put a transaction on the bus — the attribution
/// half of the coherence observability layer: every
/// [`EventKind::BusTransaction`] names the instruction class (on the
/// event's CPU) that caused it, so traffic rolls up per fence strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BusCause {
    /// A committed load missed in the local cache.
    Load,
    /// An `LE` (load-exclusive) acquired ownership to set up a link.
    LoadExclusive,
    /// A store-buffer drain needed ownership to complete a store.
    StoreDrain,
    /// A capacity eviction forced the transaction (victim writeback).
    Eviction,
}

impl fmt::Display for BusCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BusCause::Load => "load",
            BusCause::LoadExclusive => "load-exclusive",
            BusCause::StoreDrain => "store-drain",
            BusCause::Eviction => "eviction",
        };
        f.write_str(s)
    }
}

/// Why an LE/ST link was cleared.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkClearReason {
    /// The guarded store drained from the store buffer on its own.
    StoreCompleted,
    /// Another processor's coherence request downgraded the guarded line;
    /// the processor flushed its store buffer before the controller replied.
    RemoteDowngrade,
    /// The guarded line was evicted from the processor's own cache.
    Eviction,
    /// A context switch / interrupt drained the store buffer.
    Interrupt,
    /// A second `l-mfence` with a different guarded location arrived while
    /// the link was still in effect (Section 3's back-to-back rule).
    NewLmfence,
}

impl fmt::Display for LinkClearReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkClearReason::StoreCompleted => "store-completed",
            LinkClearReason::RemoteDowngrade => "remote-downgrade",
            LinkClearReason::Eviction => "eviction",
            LinkClearReason::Interrupt => "interrupt",
            LinkClearReason::NewLmfence => "new-lmfence",
        };
        f.write_str(s)
    }
}

/// What happened.
///
/// Variant fields follow a fixed convention — `addr` the word touched,
/// `val` the value observed or written, `commit_seq` the matching
/// store-commit sequence number — documented once here.
#[allow(missing_docs)]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A load committed (its value is architecturally bound).
    LoadCommitted {
        addr: Addr,
        val: u64,
        /// Served by store-buffer forwarding rather than the cache.
        forwarded: bool,
    },
    /// A store committed into the store buffer (invisible to others).
    /// `guarded` is set when the LE/ST registers guarded `addr` at commit
    /// time, i.e. this is the store of an active `l-mfence`.
    StoreCommitted { addr: Addr, val: u64, guarded: bool },
    /// A store completed: flushed from the store buffer into the cache and
    /// thereby made globally visible.
    StoreCompleted { addr: Addr, val: u64, commit_seq: u64 },
    /// An `LE` committed: the line is now held exclusively.
    LeCommitted { addr: Addr },
    /// An `mfence` finished draining the store buffer.
    FenceCompleted,
    /// The LE/ST link became set (LEBit, LEAddr, and E/M all hold).
    LinkSet { addr: Addr },
    /// The LE/ST link was cleared.
    LinkCleared { reason: LinkClearReason },
    /// The CPU entered its critical section.
    EnterCs,
    /// The CPU left its critical section.
    LeaveCs,
    /// Two CPUs were observed inside the critical section at once.
    MutexViolation { other_cpu: usize },
    /// A bus transaction was issued; `cpu` is the cache acting on the bus
    /// and `cause` the instruction class that forced it. Recording-only:
    /// emitted (and a sequence number consumed) only under
    /// `MachineConfig::record_trace`.
    BusTransaction { op: BusOp, line: LineId, cause: BusCause },
    /// A cache line changed MESI state in `cpu`'s private cache (`to == I`
    /// means the line was dropped). Recording-only, like `BusTransaction`.
    MesiTransition { line: LineId, from: Mesi, to: Mesi },
}

/// A timestamped, attributed event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// Global sequence number (total order over all events).
    pub seq: u64,
    /// The CPU whose action produced the event.
    pub cpu: usize,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>4}] cpu{} ", self.seq, self.cpu)?;
        match self.kind {
            EventKind::LoadCommitted { addr, val, forwarded } => {
                write!(f, "LD {addr} -> {val}{}", if forwarded { " (fwd)" } else { "" })
            }
            EventKind::StoreCommitted { addr, val, guarded } => {
                write!(f, "ST {addr} <- {val} (commit{})", if guarded { ", guarded" } else { "" })
            }
            EventKind::StoreCompleted { addr, val, .. } => {
                write!(f, "ST {addr} <- {val} (complete)")
            }
            EventKind::LeCommitted { addr } => write!(f, "LE {addr}"),
            EventKind::FenceCompleted => write!(f, "MFENCE"),
            EventKind::LinkSet { addr } => write!(f, "link set on {addr}"),
            EventKind::LinkCleared { reason } => write!(f, "link cleared ({reason})"),
            EventKind::EnterCs => write!(f, "enter CS"),
            EventKind::LeaveCs => write!(f, "leave CS"),
            EventKind::MutexViolation { other_cpu } => {
                write!(f, "MUTEX VIOLATION (with cpu{other_cpu})")
            }
            EventKind::BusTransaction { op, line, cause } => {
                write!(f, "{op} {line} ({cause})")
            }
            EventKind::MesiTransition { line, from, to } => {
                write!(f, "{line}: {from} -> {to}")
            }
        }
    }
}

/// A recorded execution trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events in global sequence order.
    pub events: Vec<Event>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    /// Append an event.
    pub fn push(&mut self, ev: Event) {
        self.events.push(ev);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterate events in global order.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Events produced by one CPU, in order.
    pub fn by_cpu(&self, cpu: usize) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.cpu == cpu)
    }

    /// Pretty-print the whole trace (for test failure diagnostics).
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&format!("{e}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = Event {
            seq: 3,
            cpu: 1,
            kind: EventKind::LoadCommitted {
                addr: Addr(5),
                val: 9,
                forwarded: true,
            },
        };
        assert_eq!(format!("{e}"), "[   3] cpu1 LD @5 -> 9 (fwd)");
        let e2 = Event {
            seq: 10,
            cpu: 0,
            kind: EventKind::LinkCleared {
                reason: LinkClearReason::RemoteDowngrade,
            },
        };
        assert_eq!(format!("{e2}"), "[  10] cpu0 link cleared (remote-downgrade)");
    }

    #[test]
    fn by_cpu_filters() {
        let mut t = Trace::new();
        for (i, cpu) in [(0u64, 0usize), (1, 1), (2, 0)] {
            t.push(Event {
                seq: i,
                cpu,
                kind: EventKind::FenceCompleted,
            });
        }
        assert_eq!(t.by_cpu(0).count(), 2);
        assert_eq!(t.by_cpu(1).count(), 1);
        assert_eq!(t.len(), 3);
    }
}
