//! # lbmf-sim — a cycle-level TSO machine with the LE/ST mechanism
//!
//! This crate is the hardware substrate for the reproduction of
//! *Location-Based Memory Fences* (Ladan-Mozes, Lee, Vyukov; SPAA 2011).
//! The paper proposes a hardware mechanism — a new `LE` (load-exclusive)
//! instruction plus two per-processor registers `LEBit`/`LEAddr`, hooked
//! into the MESI cache controller — and evaluates it analytically. Since the
//! hardware was never built, this crate *builds it in simulation*:
//!
//! * [`machine::Machine`] models processors with FIFO **store buffers**
//!   (with store-to-load forwarding), private **MESI caches** with LRU
//!   eviction, a snooping bus, strictly in-order commit, and the complete
//!   LE/ST mechanism of Section 3 — including the link-break paths for
//!   remote downgrades, evictions, interrupts, natural store completion,
//!   and back-to-back `l-mfence`s.
//! * [`isa`] is a small assembly language; `ProgramBuilder::lmfence` emits
//!   exactly the Figure 3(b) instruction translation.
//! * [`explore::Explorer`] enumerates every interleaving of a protocol
//!   program, turning the paper's Theorems 4 and 7 into checkable facts.
//! * [`check`] validates executions against Definition 1 (serialization
//!   order), the Section 2 TSO ordering principles, and Lemma 3.
//! * [`chrome`] renders a recorded machine trace in the `lbmf-trace`
//!   Chrome schema: per-CPU instruction tracks, per-line MESI state
//!   timelines, LE/ST link-lifetime spans, and flow arrows from a remote
//!   coherence request to the guarded-store flush it forces.
//! * [`cost::CostModel`] carries the cycle calibration used by the
//!   experiment harnesses (mfence stalls, ~150-cycle LE/ST round trips,
//!   ~10,000-cycle signal round trips).
//!
//! ## Quick example: model-check the Dekker duality
//!
//! ```
//! use lbmf_sim::prelude::*;
//!
//! // Store-buffering litmus with no fences: TSO allows both loads to miss
//! // the other side's store.
//! let m = Machine::for_checking(litmus_sb([FenceKind::None, FenceKind::None]));
//! let r = Explorer::default().explore(m, |m| (m.cpus[0].regs[0], m.cpus[1].regs[0]));
//! assert!(r.has_outcome(&(0, 0)));
//!
//! // With the paper's l-mfence on both sides the relaxed outcome vanishes.
//! let m = Machine::for_checking(litmus_sb([FenceKind::Lmfence, FenceKind::Lmfence]));
//! let r = Explorer::default().explore(m, |m| (m.cpus[0].regs[0], m.cpus[1].regs[0]));
//! assert!(!r.has_outcome(&(0, 0)));
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod bus;
pub mod cache;
pub mod check;
pub mod chrome;
pub mod cost;
pub mod cpu;
pub mod explore;
pub mod isa;
pub mod machine;
pub mod mesi;
pub mod programs;
pub mod store_buffer;
pub mod trace;

/// Everything a protocol experiment typically needs.
pub mod prelude {
    pub use crate::addr::{Addr, Geometry, LineId};
    pub use crate::check::{
        check_all, check_fifo_completion, check_guarded_visibility, check_load_values,
        check_no_mutex_violation,
    };
    pub use crate::cost::CostModel;
    pub use crate::explore::{replay, ExploreResult, Explorer};
    pub use crate::isa::{Inst, Operand, Program, ProgramBuilder};
    pub use crate::machine::{Machine, MachineConfig, Transition};
    pub use crate::mesi::{Coherence, Mesi};
    pub use crate::programs::{
        dekker_asymmetric, dekker_pair, dekker_pair_with_turn, dekker_serial, litmus_2_2w, litmus_guarded_read,
        litmus_iriw, litmus_lb, litmus_mp, litmus_r, litmus_s, litmus_sb, DekkerOptions, FenceKind, CS, DATA, L1, L2, TURN,
    };
    pub use crate::trace::{Event, EventKind, LinkClearReason, Trace};
}
