//! Word addresses and cache-line geometry.
//!
//! The simulated machine is word-addressed (one `u64` per address). Cache
//! lines group `2^line_shift` consecutive words; with the default
//! `line_shift == 0` every word is its own line, which is the natural
//! geometry for model checking protocol programs (no false sharing). Tests
//! that want to exercise false sharing — e.g. an unrelated access on the
//! same line breaking an `l-mfence` link — use a larger shift.

use std::fmt;

/// A word address in the simulated machine's memory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Addr(pub u64);

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Identifier of a cache line: the address with the word-offset bits dropped.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LineId(pub u64);

impl fmt::Display for LineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Cache-line geometry: how word addresses map onto lines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Geometry {
    /// log2 of the number of words per cache line.
    pub line_shift: u32,
}

impl Geometry {
    /// Geometry with `2^line_shift` words per line.
    pub fn new(line_shift: u32) -> Self {
        assert!(line_shift < 16, "unreasonably large cache line");
        Geometry { line_shift }
    }

    /// Number of words held by one cache line.
    #[inline]
    pub fn words_per_line(&self) -> usize {
        1usize << self.line_shift
    }

    /// The line containing `addr`.
    #[inline]
    pub fn line_of(&self, addr: Addr) -> LineId {
        LineId(addr.0 >> self.line_shift)
    }

    /// First word address of `line`.
    #[inline]
    pub fn base(&self, line: LineId) -> Addr {
        Addr(line.0 << self.line_shift)
    }

    /// Offset of `addr` within its line, in words.
    #[inline]
    pub fn offset(&self, addr: Addr) -> usize {
        (addr.0 & ((1 << self.line_shift) - 1)) as usize
    }

    /// Iterate over every word address of `line`.
    pub fn words_of(&self, line: LineId) -> impl Iterator<Item = Addr> + '_ {
        let base = self.base(line).0;
        (0..self.words_per_line() as u64).map(move |i| Addr(base + i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_one_word_per_line() {
        let g = Geometry::default();
        assert_eq!(g.words_per_line(), 1);
        assert_eq!(g.line_of(Addr(7)), LineId(7));
        assert_eq!(g.base(LineId(7)), Addr(7));
        assert_eq!(g.offset(Addr(7)), 0);
    }

    #[test]
    fn wide_lines_group_words() {
        let g = Geometry::new(2); // 4 words per line
        assert_eq!(g.words_per_line(), 4);
        assert_eq!(g.line_of(Addr(0)), g.line_of(Addr(3)));
        assert_ne!(g.line_of(Addr(3)), g.line_of(Addr(4)));
        assert_eq!(g.base(LineId(1)), Addr(4));
        assert_eq!(g.offset(Addr(6)), 2);
        let words: Vec<_> = g.words_of(LineId(1)).collect();
        assert_eq!(words, vec![Addr(4), Addr(5), Addr(6), Addr(7)]);
    }

    #[test]
    fn offsets_round_trip() {
        let g = Geometry::new(3);
        for a in 0..64 {
            let addr = Addr(a);
            let line = g.line_of(addr);
            assert_eq!(g.base(line).0 + g.offset(addr) as u64, a);
        }
    }
}
