//! A per-processor private cache with MESI states and LRU eviction.
//!
//! Capacity is configurable; the default used by the model checker is
//! effectively unbounded (protocol programs touch a handful of lines), while
//! tests that exercise the LE/ST *eviction* path — "it is necessary for the
//! cache controller to notify the processor when it needs to evict the cache
//! line" (Section 3) — use a small capacity.

use crate::addr::{Addr, Geometry, LineId};
use crate::mesi::Mesi;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// One resident cache line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheLine {
    /// Coherence state of this copy.
    pub state: Mesi,
    /// Word data, indexed by offset within the line.
    pub data: Vec<u64>,
    /// LRU timestamp (excluded from semantic fingerprints).
    pub lru: u64,
}

/// A private cache: LineId -> line, with LRU eviction at `capacity`.
#[derive(Clone, Debug)]
pub struct Cache {
    lines: BTreeMap<LineId, CacheLine>,
    capacity: usize,
    lru_clock: u64,
}

impl Cache {
    /// A cache holding at most `capacity` lines. Use `usize::MAX` for the
    /// model checker's unbounded cache.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache needs at least one line");
        Cache {
            lines: BTreeMap::new(),
            capacity,
            lru_clock: 0,
        }
    }

    /// Maximum number of resident lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// MESI state of `line` (I if absent).
    pub fn state(&self, line: LineId) -> Mesi {
        self.lines.get(&line).map(|l| l.state).unwrap_or(Mesi::I)
    }

    /// The resident line, if any.
    pub fn get(&self, line: LineId) -> Option<&CacheLine> {
        self.lines.get(&line)
    }

    /// Read the word at `addr`; the line must be resident and readable.
    pub fn read_word(&mut self, geom: &Geometry, addr: Addr) -> u64 {
        let line_id = geom.line_of(addr);
        self.lru_clock += 1;
        let lru = self.lru_clock;
        let line = self
            .lines
            .get_mut(&line_id)
            .expect("read_word on non-resident line");
        debug_assert!(line.state.readable());
        line.lru = lru;
        line.data[geom.offset(addr)]
    }

    /// Write the word at `addr` and mark the line Modified; the line must be
    /// resident in M or E.
    pub fn write_word(&mut self, geom: &Geometry, addr: Addr, val: u64) {
        let line_id = geom.line_of(addr);
        self.lru_clock += 1;
        let lru = self.lru_clock;
        let line = self
            .lines
            .get_mut(&line_id)
            .expect("write_word on non-resident line");
        debug_assert!(
            line.state.writable_silently(),
            "write requires M/E, found {}",
            line.state
        );
        line.state = Mesi::M;
        line.lru = lru;
        line.data[geom.offset(addr)] = val;
    }

    /// Change the MESI state of a resident line.
    pub fn set_state(&mut self, line: LineId, state: Mesi) {
        if state == Mesi::I {
            self.lines.remove(&line);
        } else {
            self.lines
                .get_mut(&line)
                .expect("set_state on non-resident line")
                .state = state;
        }
    }

    /// Drop a line (invalidate).
    pub fn invalidate(&mut self, line: LineId) {
        self.lines.remove(&line);
    }

    /// Insert a line with the given state/data. If the cache is at capacity
    /// the least-recently-used *other* line is evicted and returned so the
    /// machine can write back M data and run the LE/ST eviction hook.
    pub fn insert(
        &mut self,
        line_id: LineId,
        state: Mesi,
        data: Vec<u64>,
    ) -> Option<(LineId, CacheLine)> {
        debug_assert!(state != Mesi::I);
        self.lru_clock += 1;
        let evicted = if !self.lines.contains_key(&line_id) && self.lines.len() >= self.capacity {
            let victim = self
                .lines
                .iter()
                .filter(|(id, _)| **id != line_id)
                .min_by_key(|(_, l)| l.lru)
                .map(|(id, _)| *id)
                .expect("capacity >= 1 guarantees a victim");
            let old = self.lines.remove(&victim).unwrap();
            Some((victim, old))
        } else {
            None
        };
        self.lines.insert(
            line_id,
            CacheLine {
                state,
                data,
                lru: self.lru_clock,
            },
        );
        evicted
    }

    /// Iterate resident lines in LineId order.
    pub fn iter(&self) -> impl Iterator<Item = (&LineId, &CacheLine)> {
        self.lines.iter()
    }

    /// Resident lines with their MESI states, in LineId order — the final
    /// snapshot that a replayed per-line timeline must fold into.
    pub fn states(&self) -> impl Iterator<Item = (LineId, Mesi)> + '_ {
        self.lines.iter().map(|(id, l)| (*id, l.state))
    }

    /// Feed semantic content (states + data, not LRU) into a hasher.
    pub fn hash_into<H: Hasher>(&self, h: &mut H) {
        self.lines.len().hash(h);
        for (id, line) in &self.lines {
            id.hash(h);
            line.state.hash(h);
            line.data.hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::default()
    }

    #[test]
    fn absent_lines_are_invalid() {
        let c = Cache::new(4);
        assert_eq!(c.state(LineId(3)), Mesi::I);
    }

    #[test]
    fn insert_read_write_roundtrip() {
        let g = geom();
        let mut c = Cache::new(4);
        c.insert(LineId(1), Mesi::E, vec![42]);
        assert_eq!(c.state(LineId(1)), Mesi::E);
        assert_eq!(c.read_word(&g, Addr(1)), 42);
        c.write_word(&g, Addr(1), 7);
        assert_eq!(c.state(LineId(1)), Mesi::M);
        assert_eq!(c.read_word(&g, Addr(1)), 7);
    }

    #[test]
    fn lru_eviction_picks_coldest() {
        let g = geom();
        let mut c = Cache::new(2);
        c.insert(LineId(1), Mesi::E, vec![1]);
        c.insert(LineId(2), Mesi::E, vec![2]);
        // Touch line 1 so line 2 is the LRU victim.
        let _ = c.read_word(&g, Addr(1));
        let evicted = c.insert(LineId(3), Mesi::E, vec![3]);
        assert_eq!(evicted.map(|(id, _)| id), Some(LineId(2)));
        assert_eq!(c.state(LineId(1)), Mesi::E);
        assert_eq!(c.state(LineId(3)), Mesi::E);
        assert_eq!(c.state(LineId(2)), Mesi::I);
    }

    #[test]
    fn reinserting_resident_line_does_not_evict() {
        let mut c = Cache::new(2);
        c.insert(LineId(1), Mesi::S, vec![1]);
        c.insert(LineId(2), Mesi::S, vec![2]);
        let evicted = c.insert(LineId(1), Mesi::E, vec![9]);
        assert!(evicted.is_none());
        assert_eq!(c.state(LineId(1)), Mesi::E);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn set_state_to_invalid_removes() {
        let mut c = Cache::new(2);
        c.insert(LineId(1), Mesi::M, vec![1]);
        c.set_state(LineId(1), Mesi::S);
        assert_eq!(c.state(LineId(1)), Mesi::S);
        c.set_state(LineId(1), Mesi::I);
        assert_eq!(c.state(LineId(1)), Mesi::I);
        assert!(c.is_empty());
    }

    #[test]
    fn fingerprint_ignores_lru() {
        use std::collections::hash_map::DefaultHasher;
        let g = geom();
        let fp = |c: &Cache| {
            let mut h = DefaultHasher::new();
            c.hash_into(&mut h);
            h.finish()
        };
        let mut a = Cache::new(4);
        let mut b = Cache::new(4);
        a.insert(LineId(1), Mesi::E, vec![1]);
        b.insert(LineId(1), Mesi::E, vec![1]);
        let _ = a.read_word(&g, Addr(1)); // bumps LRU only
        assert_eq!(fp(&a), fp(&b));
        b.insert(LineId(2), Mesi::S, vec![2]);
        assert_ne!(fp(&a), fp(&b));
    }
}
