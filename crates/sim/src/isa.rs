//! The simulated machine's instruction set and program builder.
//!
//! The ISA is the minimum needed to express the paper's protocols: loads,
//! stores, `mfence`, the LE/ST building blocks of Figure 3(b) (`SetLeBit`,
//! `SetLeAddr`, `Le`, `BranchLeBitSet`), a little ALU, branches, and two
//! pseudo-instructions (`EnterCs`/`LeaveCs`) that let checkers observe
//! critical sections without perturbing the memory semantics.
//!
//! [`ProgramBuilder::lmfence`] emits exactly the instruction translation the
//! paper gives for `l-mfence(l, v)`:
//!
//! ```text
//! K1.1  MOV LEBit  <- 1
//! K1.2  MOV LEAddr <- &l
//! K1.3  LE  &l
//! K1.4  ST  [&l] <- v
//! K1.5  BNQ LEBit, 0, DONE
//! K1.6  MFENCE
//! K1.7  DONE:
//! ```

use crate::addr::Addr;
use std::fmt;
use std::sync::Arc;

/// Index of a general-purpose register.
pub type Reg = u8;

/// Number of general-purpose registers per simulated CPU.
pub const NUM_REGS: usize = 8;

/// An instruction operand: a register or an immediate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// The value held in a register.
    Reg(Reg),
    /// An immediate constant.
    Imm(u64),
}

impl Operand {
    /// Immediate operand holding a word address.
    pub fn addr(a: Addr) -> Operand {
        Operand::Imm(a.0)
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Self {
        Operand::Imm(v)
    }
}

impl From<Addr> for Operand {
    fn from(a: Addr) -> Self {
        Operand::Imm(a.0)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "r{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// One machine instruction. Branch targets are instruction indices
/// (resolved from labels by [`ProgramBuilder::build`]).
///
/// Variant fields follow a fixed convention — `dst` destination register,
/// `addr` memory operand, `val`/`src`/`a`/`b` value operands, `target`
/// branch index — documented once here rather than per field.
#[allow(missing_docs)]
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// `dst <- mem[addr]` — committed in order; may be served by
    /// store-buffer forwarding.
    Ld { dst: Reg, addr: Operand },
    /// `mem[addr] <- val` — *commits* into the store buffer; *completes*
    /// later when the entry drains to the cache.
    St { addr: Operand, val: Operand },
    /// Load-exclusive: acquire the line in Exclusive state (no destination;
    /// the paper's `LE` is only about cache state).
    Le { addr: Operand },
    /// Program-based memory fence: stall until the store buffer drains.
    Mfence,
    /// `LEBit <- imm` (K1.1).
    SetLeBit(u64),
    /// `LEAddr <- addr` (K1.2). If a previous link (to a *different*
    /// location) is still in effect, the processor first flushes its store
    /// buffer, as Section 3 requires for back-to-back `l-mfence`s.
    SetLeAddr(Operand),
    /// `BNQ LEBit, 0, target` (K1.5): skip the mfence when the link held.
    BranchLeBitSet { target: usize },
    /// `dst <- src`.
    Mov { dst: Reg, src: Operand },
    /// `dst <- a + b` (wrapping).
    Add { dst: Reg, a: Operand, b: Operand },
    /// `dst <- a - b` (wrapping).
    Sub { dst: Reg, a: Operand, b: Operand },
    /// Branch if `a == b`.
    BranchEq { a: Operand, b: Operand, target: usize },
    /// Branch if `a != b`.
    BranchNe { a: Operand, b: Operand, target: usize },
    /// Branch if `a < b`.
    BranchLt { a: Operand, b: Operand, target: usize },
    /// Unconditional jump.
    Jmp { target: usize },
    /// Pseudo-instruction: the CPU enters its critical section. The machine
    /// records a mutual-exclusion violation if another CPU is already in.
    EnterCs,
    /// Pseudo-instruction: the CPU leaves its critical section.
    LeaveCs,
    /// Consume `cycles` of local compute without touching memory. Models
    /// critical-section work for the cost experiments.
    Work(u64),
    /// Stop this CPU. (Its store buffer still drains afterwards.)
    Halt,
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Ld { dst, addr } => write!(f, "ld   r{dst} <- [{addr}]"),
            Inst::St { addr, val } => write!(f, "st   [{addr}] <- {val}"),
            Inst::Le { addr } => write!(f, "le   [{addr}]"),
            Inst::Mfence => write!(f, "mfence"),
            Inst::SetLeBit(v) => write!(f, "mov  LEBit <- {v}"),
            Inst::SetLeAddr(a) => write!(f, "mov  LEAddr <- {a}"),
            Inst::BranchLeBitSet { target } => write!(f, "bnq  LEBit, 0, @{target}"),
            Inst::Mov { dst, src } => write!(f, "mov  r{dst} <- {src}"),
            Inst::Add { dst, a, b } => write!(f, "add  r{dst} <- {a} + {b}"),
            Inst::Sub { dst, a, b } => write!(f, "sub  r{dst} <- {a} - {b}"),
            Inst::BranchEq { a, b, target } => write!(f, "beq  {a}, {b}, @{target}"),
            Inst::BranchNe { a, b, target } => write!(f, "bne  {a}, {b}, @{target}"),
            Inst::BranchLt { a, b, target } => write!(f, "blt  {a}, {b}, @{target}"),
            Inst::Jmp { target } => write!(f, "jmp  @{target}"),
            Inst::EnterCs => write!(f, "enter-cs"),
            Inst::LeaveCs => write!(f, "leave-cs"),
            Inst::Work(c) => write!(f, "work {c}"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

/// A finished program: a named, immutable instruction sequence.
#[derive(Clone, Debug)]
pub struct Program {
    /// Display name used in traces and disassembly.
    pub name: String,
    /// The instruction sequence (shared so clones are cheap).
    pub insts: Arc<Vec<Inst>>,
}

impl Program {
    /// An empty program (the CPU halts immediately).
    pub fn empty(name: &str) -> Program {
        Program {
            name: name.to_string(),
            insts: Arc::new(Vec::new()),
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Assembly-style listing with instruction indices (branch targets are
    /// `@index`).
    pub fn disassemble(&self) -> String {
        let mut out = format!("; {}\n", self.name);
        for (i, inst) in self.insts.iter().enumerate() {
            out.push_str(&format!("{i:>4}: {inst}\n"));
        }
        out
    }
}

/// A forward-referencable label used while building a program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Label(usize);

/// Builder that assembles a [`Program`], resolving labels to instruction
/// indices. All emit methods return `&mut Self` for chaining.
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    /// Label id -> bound position.
    labels: Vec<Option<usize>>,
    /// (instruction index, label id) pairs to patch at build time.
    fixups: Vec<(usize, usize)>,
}

impl ProgramBuilder {
    /// Start building a program called `name`.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_string(),
            insts: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Declare a label to be bound later with [`bind`](Self::bind).
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice in program `{}`",
            self.name
        );
        self.labels[label.0] = Some(self.insts.len());
        self
    }

    /// Declare a label bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    fn emit(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    fn emit_branch(&mut self, inst: Inst, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label.0));
        self.insts.push(inst);
        self
    }

    /// Emit a load: `dst <- mem[addr]`.
    pub fn ld(&mut self, dst: Reg, addr: impl Into<Operand>) -> &mut Self {
        self.emit(Inst::Ld {
            dst,
            addr: addr.into(),
        })
    }

    /// Emit a store: `mem[addr] <- val`.
    pub fn st(&mut self, addr: impl Into<Operand>, val: impl Into<Operand>) -> &mut Self {
        self.emit(Inst::St {
            addr: addr.into(),
            val: val.into(),
        })
    }

    /// Emit a load-exclusive of `addr` (K1.3).
    pub fn le(&mut self, addr: impl Into<Operand>) -> &mut Self {
        self.emit(Inst::Le { addr: addr.into() })
    }

    /// Emit a program-based memory fence.
    pub fn mfence(&mut self) -> &mut Self {
        self.emit(Inst::Mfence)
    }

    /// Emit `LEBit <- v` (K1.1).
    pub fn set_le_bit(&mut self, v: u64) -> &mut Self {
        self.emit(Inst::SetLeBit(v))
    }

    /// Emit `LEAddr <- addr` (K1.2).
    pub fn set_le_addr(&mut self, addr: impl Into<Operand>) -> &mut Self {
        self.emit(Inst::SetLeAddr(addr.into()))
    }

    /// Emit the link-alive branch (K1.5): jump to `label` if LEBit != 0.
    pub fn branch_le_bit_set(&mut self, label: Label) -> &mut Self {
        self.emit_branch(Inst::BranchLeBitSet { target: usize::MAX }, label)
    }

    /// Emit `dst <- src`.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) -> &mut Self {
        self.emit(Inst::Mov {
            dst,
            src: src.into(),
        })
    }

    /// Emit `dst <- a + b` (wrapping).
    pub fn add(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit(Inst::Add {
            dst,
            a: a.into(),
            b: b.into(),
        })
    }

    /// Emit `dst <- a - b` (wrapping).
    pub fn sub(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit(Inst::Sub {
            dst,
            a: a.into(),
            b: b.into(),
        })
    }

    /// Emit a branch to `label` when `a == b`.
    pub fn branch_eq(
        &mut self,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        label: Label,
    ) -> &mut Self {
        self.emit_branch(
            Inst::BranchEq {
                a: a.into(),
                b: b.into(),
                target: usize::MAX,
            },
            label,
        )
    }

    /// Emit a branch to `label` when `a != b`.
    pub fn branch_ne(
        &mut self,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        label: Label,
    ) -> &mut Self {
        self.emit_branch(
            Inst::BranchNe {
                a: a.into(),
                b: b.into(),
                target: usize::MAX,
            },
            label,
        )
    }

    /// Emit a branch to `label` when `a < b`.
    pub fn branch_lt(
        &mut self,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        label: Label,
    ) -> &mut Self {
        self.emit_branch(
            Inst::BranchLt {
                a: a.into(),
                b: b.into(),
                target: usize::MAX,
            },
            label,
        )
    }

    /// Emit an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.emit_branch(Inst::Jmp { target: usize::MAX }, label)
    }

    /// Emit the enter-critical-section pseudo-instruction.
    pub fn enter_cs(&mut self) -> &mut Self {
        self.emit(Inst::EnterCs)
    }

    /// Emit the leave-critical-section pseudo-instruction.
    pub fn leave_cs(&mut self) -> &mut Self {
        self.emit(Inst::LeaveCs)
    }

    /// Emit `cycles` of local (memory-free) work.
    pub fn work(&mut self, cycles: u64) -> &mut Self {
        self.emit(Inst::Work(cycles))
    }

    /// Emit a halt.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Inst::Halt)
    }

    /// Emit the Figure 3(b) translation of `l-mfence(addr, val)`.
    pub fn lmfence(&mut self, addr: impl Into<Operand>, val: impl Into<Operand>) -> &mut Self {
        let addr = addr.into();
        let done = self.label();
        self.set_le_bit(1); // K1.1
        self.set_le_addr(addr); // K1.2
        self.le(addr); // K1.3
        self.st(addr, val); // K1.4
        self.branch_le_bit_set(done); // K1.5
        self.mfence(); // K1.6
        self.bind(done); // K1.7
        self
    }

    /// Resolve labels and produce the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn build(mut self) -> Program {
        for (idx, label_id) in std::mem::take(&mut self.fixups) {
            let pos = self.labels[label_id]
                .unwrap_or_else(|| panic!("unbound label {label_id} in program `{}`", self.name));
            match &mut self.insts[idx] {
                Inst::BranchLeBitSet { target }
                | Inst::BranchEq { target, .. }
                | Inst::BranchNe { target, .. }
                | Inst::BranchLt { target, .. }
                | Inst::Jmp { target } => *target = pos,
                other => unreachable!("fixup on non-branch instruction {other:?}"),
            }
        }
        Program {
            name: self.name,
            insts: Arc::new(self.insts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_forward_labels() {
        let mut b = ProgramBuilder::new("t");
        let end = b.label();
        b.ld(0, Addr(0));
        b.branch_eq(Operand::Reg(0), 0u64, end);
        b.st(Addr(1), 7u64);
        b.bind(end);
        b.halt();
        let p = b.build();
        assert_eq!(p.len(), 4);
        match p.insts[1] {
            Inst::BranchEq { target, .. } => assert_eq!(target, 3),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn builder_resolves_backward_labels() {
        let mut b = ProgramBuilder::new("t");
        let top = b.here();
        b.add(0, Operand::Reg(0), 1u64);
        b.branch_lt(Operand::Reg(0), 3u64, top);
        b.halt();
        let p = b.build();
        match p.insts[1] {
            Inst::BranchLt { target, .. } => assert_eq!(target, 0),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lmfence_expands_to_figure_3b() {
        let mut b = ProgramBuilder::new("t");
        b.lmfence(Addr(5), 1u64);
        let p = b.build();
        assert_eq!(p.len(), 6);
        assert_eq!(p.insts[0], Inst::SetLeBit(1));
        assert_eq!(p.insts[1], Inst::SetLeAddr(Operand::Imm(5)));
        assert_eq!(p.insts[2], Inst::Le { addr: Operand::Imm(5) });
        assert_eq!(
            p.insts[3],
            Inst::St {
                addr: Operand::Imm(5),
                val: Operand::Imm(1)
            }
        );
        // The branch skips the mfence, landing one past the end.
        assert_eq!(p.insts[4], Inst::BranchLeBitSet { target: 6 });
        assert_eq!(p.insts[5], Inst::Mfence);
    }

    #[test]
    fn disassembly_lists_every_instruction() {
        let mut b = ProgramBuilder::new("demo");
        b.lmfence(Addr(5), 1u64).ld(0, Addr(6)).halt();
        let p = b.build();
        let text = p.disassemble();
        assert!(text.starts_with("; demo"));
        assert!(text.contains("mov  LEBit <- 1"));
        assert!(text.contains("le   [#5]"));
        assert!(text.contains("bnq  LEBit, 0, @6"));
        assert!(text.contains("mfence"));
        assert!(text.contains("halt"));
        assert_eq!(text.lines().count(), p.len() + 1);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.jmp(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new("t");
        let l = b.here();
        b.bind(l);
    }
}
