//! The simulated multiprocessor: TSO semantics via store buffers, MESI
//! coherence, and the LE/ST location-based memory fence mechanism.
//!
//! # Semantics
//!
//! Instructions *commit* strictly in program order (the paper's target
//! architecture executes out of order but commits in order; speculative
//! loads that get invalidated are reissued, so committed behaviour is
//! exactly in-order — we model that directly). A store commits into the
//! FIFO store buffer and *completes* later when it drains to the cache; the
//! window between the two is the only source of reordering, which yields
//! precisely the TSO/PO ordering principles 1–4 of Section 2.
//!
//! Coherence transactions are atomic within a transition: when a CPU's
//! access needs a line that another cache owns, the downgrade — including
//! any LE/ST link break and the consequent remote store-buffer flush — runs
//! to completion before the access returns. This matches the mechanism's
//! requirement that "the cache controller waits for the processor's response
//! before it takes any actions regarding the guarded location".
//!
//! # Nondeterminism
//!
//! From any state the enabled transitions are: `Step(i)` (CPU `i` commits
//! its next instruction, or drains one entry if stalled at an `mfence` or a
//! full store buffer), `Drain(i)` (the bus picks up the oldest entry of
//! `i`'s store buffer — the "whenever the system bus is available" rule),
//! and optionally `Interrupt(i)` (context switch: full drain). The model
//! checker in [`crate::explore`] enumerates these; the random and
//! pseudo-parallel runners sample them.

use crate::addr::{Addr, Geometry, LineId};
use crate::bus::{BusOp, BusStats};
use crate::cache::Cache;
use crate::cost::CostModel;
use crate::cpu::CpuState;
use crate::isa::{Inst, Program};
use crate::mesi::{Coherence, Mesi};
use crate::store_buffer::{SbEntry, StoreBuffer};
use crate::trace::{BusCause, Event, EventKind, LinkClearReason, Trace};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// Machine-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Cache-line geometry (words per line).
    pub geom: Geometry,
    /// Store-buffer capacity; a store stalls when the buffer is full.
    pub sb_capacity: usize,
    /// Private-cache capacity in lines (`usize::MAX` = unbounded).
    pub cache_capacity: usize,
    /// Record an event trace (off during state-space exploration).
    pub record_trace: bool,
    /// Enable nondeterministic `Interrupt` transitions.
    pub interrupts_enabled: bool,
    /// Which coherence protocol the caches run (the paper assumes MESI;
    /// Section 2 notes the mechanism adapts to MSI and MOESI).
    pub coherence: Coherence,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            geom: Geometry::default(),
            sb_capacity: 8,
            cache_capacity: usize::MAX,
            record_trace: true,
            interrupts_enabled: false,
            coherence: Coherence::default(),
        }
    }
}

/// One scheduling choice.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transition {
    /// CPU `i` commits its next instruction (or drains one store if it is
    /// stalled at an `mfence` / full store buffer).
    Step(usize),
    /// The bus drains the oldest store-buffer entry of CPU `i`.
    Drain(usize),
    /// CPU `i` takes an interrupt: its store buffer drains and any link
    /// breaks (Section 3: "a context switch ... drains the entire store
    /// buffer").
    Interrupt(usize),
}

/// The whole simulated machine.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Machine-wide configuration (fixed after construction).
    pub cfg: MachineConfig,
    /// Cycle cost model used by cost-accounted runs.
    pub cost: CostModel,
    progs: Vec<Program>,
    /// Per-CPU architectural state.
    pub cpus: Vec<CpuState>,
    /// Per-CPU private caches.
    pub caches: Vec<Cache>,
    /// Per-CPU store buffers.
    pub sbs: Vec<StoreBuffer>,
    /// Main memory (absent words read as 0).
    pub mem: BTreeMap<Addr, u64>,
    /// Event log (populated when `cfg.record_trace`).
    pub trace: Trace,
    /// Bus/coherence/link statistics.
    pub stats: BusStats,
    /// Total mutual-exclusion violations observed (both CPUs in CS).
    pub mutex_violations: u64,
    seq: u64,
    /// Set when an eviction broke this CPU's own link mid-operation; the
    /// store buffer is flushed before the enclosing transition returns.
    pending_flush: Vec<bool>,
}

impl Machine {
    /// Build a machine running `progs[i]` on CPU `i`.
    pub fn new(cfg: MachineConfig, cost: CostModel, progs: Vec<Program>) -> Self {
        let n = progs.len();
        assert!(n >= 1, "need at least one CPU");
        Machine {
            cfg,
            cost,
            cpus: vec![CpuState::new(); n],
            caches: vec![Cache::new(cfg.cache_capacity); n],
            sbs: vec![StoreBuffer::new(); n],
            mem: BTreeMap::new(),
            trace: Trace::new(),
            stats: BusStats::default(),
            mutex_violations: 0,
            seq: 0,
            pending_flush: vec![false; n],
            progs,
        }
    }

    /// Convenience constructor with default config and zero-cost model
    /// (model-checking flavour).
    pub fn for_checking(progs: Vec<Program>) -> Self {
        let cfg = MachineConfig {
            record_trace: false,
            ..MachineConfig::default()
        };
        Machine::new(cfg, CostModel::zero(), progs)
    }

    /// Pre-set a memory word before execution starts.
    pub fn poke(&mut self, addr: Addr, val: u64) {
        self.mem.insert(addr, val);
    }

    /// Number of simulated CPUs.
    pub fn num_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// The program loaded on `cpu`.
    pub fn program(&self, cpu: usize) -> &Program {
        &self.progs[cpu]
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn emit(&mut self, cpu: usize, kind: EventKind) {
        let seq = self.next_seq();
        if self.cfg.record_trace {
            self.trace.push(Event { seq, cpu, kind });
        }
    }

    /// Emit a recording-only observability event (bus transactions, MESI
    /// transitions). Unlike [`emit`](Self::emit) this consumes a sequence
    /// number only when the trace is recorded, so untraced runs — the model
    /// checker in particular — execute exactly as if these events did not
    /// exist.
    fn emit_traced(&mut self, cpu: usize, kind: EventKind) {
        if self.cfg.record_trace {
            let seq = self.next_seq();
            self.trace.push(Event { seq, cpu, kind });
        }
    }

    /// Count a bus transaction and attribute it. `cpu` is the cache acting
    /// on the bus (the requester, or the cache supplying/writing back data
    /// for `Writeback`); `cause` is the instruction class that forced the
    /// transaction. Every `stats.record` call routes through here, which is
    /// what makes `BusStats` totals equal the number of `BusTransaction`
    /// events (the conservation law in `tests/conservation.rs`).
    fn record_bus(&mut self, cpu: usize, op: BusOp, line: LineId, cause: BusCause) {
        self.stats.record(op);
        self.emit_traced(cpu, EventKind::BusTransaction { op, line, cause });
    }

    /// Set `line`'s state in CPU `j`'s cache (removing it when `to` is I),
    /// emitting a `MesiTransition` when the state actually changes.
    fn transition_line(&mut self, j: usize, line: LineId, to: Mesi) {
        let from = self.caches[j].state(line);
        if from == to {
            return;
        }
        self.caches[j].set_state(line, to);
        self.emit_traced(j, EventKind::MesiTransition { line, from, to });
    }

    /// Word value in main memory (0 if never written back).
    pub fn mem_word(&self, addr: Addr) -> u64 {
        self.mem.get(&addr).copied().unwrap_or(0)
    }

    /// The globally coherent value of `addr`: the dirty owner's copy (M,
    /// or O under MOESI) if one exists, otherwise memory. Store buffers
    /// are *not* consulted — call [`flush_all`](Self::flush_all) first
    /// when reading final results.
    pub fn coherent_word(&self, addr: Addr) -> u64 {
        let line = self.cfg.geom.line_of(addr);
        for cache in &self.caches {
            if let Some(l) = cache.get(line) {
                if l.state.dirty() {
                    return l.data[self.cfg.geom.offset(addr)];
                }
            }
        }
        self.mem_word(addr)
    }

    /// All CPUs halted and all store buffers empty.
    pub fn is_terminal(&self) -> bool {
        self.cpus.iter().all(|c| c.halted) && self.sbs.iter().all(|s| s.is_empty())
    }

    /// Drain every store buffer (used to settle final state).
    pub fn flush_all(&mut self) {
        for i in 0..self.num_cpus() {
            self.flush_sb(i);
        }
    }

    /// The transitions enabled in the current state, in a deterministic
    /// order (Step 0.., Drain 0.., Interrupt 0..).
    pub fn enabled_transitions(&self) -> Vec<Transition> {
        let mut ts = Vec::with_capacity(self.num_cpus() * 2);
        for i in 0..self.num_cpus() {
            if !self.cpus[i].halted {
                ts.push(Transition::Step(i));
            }
        }
        for i in 0..self.num_cpus() {
            if !self.sbs[i].is_empty() {
                ts.push(Transition::Drain(i));
            }
        }
        if self.cfg.interrupts_enabled {
            for i in 0..self.num_cpus() {
                if !self.cpus[i].halted && (!self.sbs[i].is_empty() || self.cpus[i].le_bit) {
                    ts.push(Transition::Interrupt(i));
                }
            }
        }
        ts
    }

    /// Apply one transition; returns the cycles charged to the acting CPU
    /// (also already added to its clock).
    pub fn apply(&mut self, t: Transition) -> u64 {
        let cost = match t {
            Transition::Step(i) => {
                let c = self.step_cpu(i);
                self.cpus[i].clock += c;
                c
            }
            Transition::Drain(i) => {
                // Background drain by the bus: overlapped with execution, so
                // the CPU is not charged.
                let _ = self.drain_one(i);
                0
            }
            Transition::Interrupt(i) => {
                let c = self.interrupt(i);
                self.cpus[i].clock += c;
                c
            }
        };
        debug_assert!(self.pending_flush.iter().all(|f| !f));
        cost
    }

    /// Deliver an interrupt / context switch to CPU `i`.
    fn interrupt(&mut self, i: usize) -> u64 {
        if self.cpus[i].le_bit || self.cpus[i].le_addr.is_some() {
            self.cpus[i].clear_link_regs();
            self.stats.link_breaks_interrupt += 1;
            self.emit(i, EventKind::LinkCleared { reason: LinkClearReason::Interrupt });
        }
        let entries = self.sbs[i].len() as u64;
        self.flush_sb(i);
        entries * self.cost.sb_drain_owned
    }

    // ------------------------------------------------------------------
    // Instruction commit
    // ------------------------------------------------------------------

    /// Commit the next instruction of CPU `i` (or make drain progress if it
    /// is stalled). Returns the cycle cost.
    fn step_cpu(&mut self, i: usize) -> u64 {
        debug_assert!(!self.cpus[i].halted, "step on halted CPU");
        let pc = self.cpus[i].pc;
        if pc >= self.progs[i].len() {
            self.cpus[i].halted = true;
            return 0;
        }
        let inst = self.progs[i].insts[pc];
        match inst {
            Inst::Ld { dst, addr } => {
                let a = self.cpus[i].eval_addr(addr);
                let (val, cost, forwarded) = self.do_load(i, a);
                self.cpus[i].set_reg(dst, val);
                self.emit(i, EventKind::LoadCommitted { addr: a, val, forwarded });
                self.cpus[i].pc += 1;
                cost
            }
            Inst::St { addr, val } => {
                if self.sbs[i].len() >= self.cfg.sb_capacity {
                    // Stalled on a full store buffer: drain one entry and
                    // retry this instruction on the next step.
                    return self.drain_one(i);
                }
                let a = self.cpus[i].eval_addr(addr);
                let v = self.cpus[i].eval(val);
                let commit_seq = self.next_seq();
                let guarded = self.cpus[i].le_regs_guard(a);
                self.sbs[i].push(SbEntry { addr: a, val: v, commit_seq, guarded });
                if self.cfg.record_trace {
                    self.trace.push(Event {
                        seq: commit_seq,
                        cpu: i,
                        kind: EventKind::StoreCommitted { addr: a, val: v, guarded },
                    });
                }
                self.cpus[i].pc += 1;
                self.cost.sb_commit
            }
            Inst::Le { addr } => {
                let a = self.cpus[i].eval_addr(addr);
                let line = self.cfg.geom.line_of(a);
                let cost = self.ensure_exclusive(i, line, BusCause::LoadExclusive) + self.cost.le_extra;
                self.emit(i, EventKind::LeCommitted { addr: a });
                if self.cpus[i].le_regs_guard(a) {
                    self.emit(i, EventKind::LinkSet { addr: a });
                }
                self.cpus[i].pc += 1;
                self.run_pending_flush(i);
                cost
            }
            Inst::Mfence => {
                if self.sbs[i].is_empty() {
                    self.stats.mfences += 1;
                    self.emit(i, EventKind::FenceCompleted);
                    self.cpus[i].pc += 1;
                    self.cost.mfence_base
                } else {
                    // Stall: drain one entry, stay at the fence. The CPU is
                    // charged — this is the program-based fence's latency.
                    self.drain_one(i)
                }
            }
            Inst::SetLeBit(v) => {
                self.cpus[i].le_bit = v != 0;
                self.cpus[i].pc += 1;
                self.cost.alu
            }
            Inst::SetLeAddr(op) => {
                let a = self.cpus[i].eval_addr(op);
                let mut cost = self.cost.alu;
                if let Some(old) = self.cpus[i].le_addr {
                    if old != a {
                        // Back-to-back l-mfence with a different guarded
                        // location: clear the old link and flush first
                        // (Section 3). LEBit stays set — K1.1 of the *new*
                        // l-mfence already wrote it.
                        self.stats.link_breaks_new_lmfence += 1;
                        self.emit(i, EventKind::LinkCleared { reason: LinkClearReason::NewLmfence });
                        cost += self.sbs[i].len() as u64 * self.cost.sb_drain_owned;
                        self.flush_sb(i);
                    }
                }
                self.cpus[i].le_addr = Some(a);
                self.cpus[i].pc += 1;
                cost
            }
            Inst::BranchLeBitSet { target } => {
                if self.cpus[i].le_bit {
                    self.cpus[i].pc = target;
                } else {
                    self.cpus[i].pc += 1;
                }
                self.cost.alu
            }
            Inst::Mov { dst, src } => {
                let v = self.cpus[i].eval(src);
                self.cpus[i].set_reg(dst, v);
                self.cpus[i].pc += 1;
                self.cost.alu
            }
            Inst::Add { dst, a, b } => {
                let v = self.cpus[i].eval(a).wrapping_add(self.cpus[i].eval(b));
                self.cpus[i].set_reg(dst, v);
                self.cpus[i].pc += 1;
                self.cost.alu
            }
            Inst::Sub { dst, a, b } => {
                let v = self.cpus[i].eval(a).wrapping_sub(self.cpus[i].eval(b));
                self.cpus[i].set_reg(dst, v);
                self.cpus[i].pc += 1;
                self.cost.alu
            }
            Inst::BranchEq { a, b, target } => {
                self.branch(i, self.cpus[i].eval(a) == self.cpus[i].eval(b), target)
            }
            Inst::BranchNe { a, b, target } => {
                self.branch(i, self.cpus[i].eval(a) != self.cpus[i].eval(b), target)
            }
            Inst::BranchLt { a, b, target } => {
                self.branch(i, self.cpus[i].eval(a) < self.cpus[i].eval(b), target)
            }
            Inst::Jmp { target } => {
                self.cpus[i].pc = target;
                self.cost.alu
            }
            Inst::EnterCs => {
                for j in 0..self.num_cpus() {
                    if j != i && self.cpus[j].in_cs {
                        self.mutex_violations += 1;
                        self.emit(i, EventKind::MutexViolation { other_cpu: j });
                    }
                }
                self.cpus[i].in_cs = true;
                self.emit(i, EventKind::EnterCs);
                self.cpus[i].pc += 1;
                0
            }
            Inst::LeaveCs => {
                debug_assert!(self.cpus[i].in_cs, "LeaveCs outside critical section");
                self.cpus[i].in_cs = false;
                self.emit(i, EventKind::LeaveCs);
                self.cpus[i].pc += 1;
                0
            }
            Inst::Work(c) => {
                self.cpus[i].pc += 1;
                c
            }
            Inst::Halt => {
                self.cpus[i].halted = true;
                0
            }
        }
    }

    fn branch(&mut self, i: usize, taken: bool, target: usize) -> u64 {
        if taken {
            self.cpus[i].pc = target;
        } else {
            self.cpus[i].pc += 1;
        }
        self.cost.alu
    }

    // ------------------------------------------------------------------
    // Memory operations
    // ------------------------------------------------------------------

    /// Perform a load: store-buffer forwarding first, then the cache.
    fn do_load(&mut self, i: usize, a: Addr) -> (u64, u64, bool) {
        if let Some(v) = self.sbs[i].forward(a) {
            return (v, self.cost.l1_hit, true);
        }
        let line = self.cfg.geom.line_of(a);
        let cost = self.ensure_readable(i, line);
        // Read before honouring any pending self-eviction flush: the flush
        // could evict the line we just fetched (tiny caches), and the
        // load's value is architecturally bound at commit anyway.
        let v = self.caches[i].read_word(&self.cfg.geom, a);
        self.run_pending_flush(i);
        (v, cost, false)
    }

    /// Ensure CPU `i` holds `line` in at least Shared state. Returns cost.
    fn ensure_readable(&mut self, i: usize, line: LineId) -> u64 {
        if self.caches[i].state(line).readable() {
            return self.cost.l1_hit;
        }
        self.record_bus(i, BusOp::BusRd, line, BusCause::Load);
        let mut served_remotely = false;
        let mut roundtrip = 0;
        for j in 0..self.num_cpus() {
            if j == i {
                continue;
            }
            let st = self.caches[j].state(line);
            if st == Mesi::I {
                continue;
            }
            served_remotely = true;
            if st.exclusive() {
                roundtrip += self.break_link_if_guarded(j, line);
                // The flush may have completed a pending store to this very
                // line, so re-read the state before downgrading.
            }
            match self.caches[j].state(line) {
                Mesi::M => {
                    // Protocol-dependent: MESI/MSI write back and share;
                    // MOESI keeps the dirty data as Owned.
                    let (new_state, wb) = self.cfg.coherence.modified_on_remote_read();
                    if wb {
                        self.writeback(j, line, BusCause::Load);
                    }
                    self.transition_line(j, line, new_state);
                }
                Mesi::E => self.transition_line(j, line, Mesi::S),
                Mesi::O | Mesi::S | Mesi::I => {}
            }
        }
        let data = self.authoritative_line_data(line);
        let others_hold = (0..self.num_cpus())
            .any(|j| j != i && self.caches[j].state(line).readable());
        let state = if others_hold {
            Mesi::S
        } else {
            self.cfg.coherence.read_miss_alone()
        };
        self.insert_line(i, line, state, data);
        let base = if served_remotely {
            self.stats.cache_to_cache += 1;
            self.cost.cache_to_cache
        } else {
            self.cost.mem_fetch
        };
        base + roundtrip
    }

    /// Ensure CPU `i` holds `line` exclusively (M/E, or M under MSI).
    /// Used by the `LE` instruction (`cause = LoadExclusive`) and by store
    /// completion (`cause = StoreDrain`); the cause attributes any bus
    /// transaction this issues.
    fn ensure_exclusive(&mut self, i: usize, line: LineId, cause: BusCause) -> u64 {
        match self.caches[i].state(line) {
            Mesi::M | Mesi::E => self.cost.l1_hit,
            Mesi::O | Mesi::S => {
                // Upgrade in place: invalidate the other sharers. An Owned
                // copy is already the authoritative data, so it upgrades
                // straight to Modified; a Shared copy becomes the
                // protocol's exclusive state. A remote Owned sharer (we
                // are S, it is O) must write back before invalidation so
                // the clean-upgrade does not lose the dirty data.
                self.record_bus(i, BusOp::BusUpgr, line, cause);
                let was_owned = self.caches[i].state(line) == Mesi::O;
                let mut roundtrip = 0;
                for j in 0..self.num_cpus() {
                    if j == i {
                        continue;
                    }
                    let st = self.caches[j].state(line);
                    if st == Mesi::I {
                        continue;
                    }
                    // Sharers can only be S or O here (no link possible by
                    // Definition 3), but be defensive.
                    roundtrip += self.break_link_if_guarded(j, line);
                    if self.caches[j].state(line) == Mesi::O {
                        self.writeback(j, line, cause);
                    }
                    self.transition_line(j, line, Mesi::I);
                }
                let new_state = if was_owned {
                    Mesi::M
                } else {
                    self.cfg.coherence.exclusive_state()
                };
                self.transition_line(i, line, new_state);
                self.cost.cache_to_cache / 2 + roundtrip
            }
            Mesi::I => {
                self.record_bus(i, BusOp::BusRdX, line, cause);
                let mut served_remotely = false;
                let mut roundtrip = 0;
                for j in 0..self.num_cpus() {
                    if j == i {
                        continue;
                    }
                    let st = self.caches[j].state(line);
                    if st == Mesi::I {
                        continue;
                    }
                    served_remotely = true;
                    if st.exclusive() {
                        roundtrip += self.break_link_if_guarded(j, line);
                    }
                    if self.caches[j].state(line).dirty() {
                        self.writeback(j, line, cause);
                    }
                    self.transition_line(j, line, Mesi::I);
                }
                let data = self.authoritative_line_data(line);
                self.insert_line(i, line, self.cfg.coherence.exclusive_state(), data);
                let base = if served_remotely {
                    self.stats.cache_to_cache += 1;
                    self.cost.cache_to_cache
                } else {
                    self.cost.mem_fetch
                };
                base + roundtrip
            }
        }
    }

    /// If CPU `j`'s LE/ST link guards `line` (LEBit set, LEAddr on the line,
    /// line held exclusively — Definition 3), break it: clear the registers
    /// and flush `j`'s store buffer *before* the requester's transaction
    /// proceeds. Returns the round-trip cost the requester pays.
    fn break_link_if_guarded(&mut self, j: usize, line: LineId) -> u64 {
        let guards = self.cpus[j].le_bit
            && self.cpus[j]
                .le_addr
                .map(|a| self.cfg.geom.line_of(a) == line)
                .unwrap_or(false)
            && self.caches[j].state(line).exclusive();
        if !guards {
            return 0;
        }
        self.cpus[j].clear_link_regs();
        self.stats.link_breaks_remote += 1;
        self.emit(j, EventKind::LinkCleared { reason: LinkClearReason::RemoteDowngrade });
        // The primary processor flushes its store buffer before the cache
        // controller replies; the paper argues its own slowdown is
        // negligible (it regains the line later), so the drain cycles are
        // not charged to it. The requester pays the round trip.
        self.flush_sb(j);
        self.cost.lest_roundtrip
    }

    /// Write `line`'s Modified data back to memory; the line becomes clean
    /// (state unchanged by this helper). `cause` attributes the forced
    /// writeback to the instruction class that triggered it.
    fn writeback(&mut self, j: usize, line: LineId, cause: BusCause) {
        self.record_bus(j, BusOp::Writeback, line, cause);
        let geom = self.cfg.geom;
        let data = self.caches[j]
            .get(line)
            .expect("writeback of non-resident line")
            .data
            .clone();
        for (k, addr) in geom.words_of(line).enumerate() {
            if data[k] == 0 {
                self.mem.remove(&addr);
            } else {
                self.mem.insert(addr, data[k]);
            }
        }
    }

    /// Authoritative line data: the dirty owner's copy (M, or O under
    /// MOESI — where memory is stale by design) if one exists, else memory.
    fn authoritative_line_data(&self, line: LineId) -> Vec<u64> {
        for cache in &self.caches {
            if let Some(l) = cache.get(line) {
                if l.state.dirty() {
                    return l.data.clone();
                }
            }
        }
        self.cfg
            .geom
            .words_of(line)
            .map(|a| self.mem_word(a))
            .collect()
    }

    /// Insert a line into CPU `i`'s cache, handling eviction: write back
    /// Modified victims and run the LE/ST eviction hook ("the cache
    /// controller must notify the processor when it needs to evict the
    /// cache line").
    fn insert_line(&mut self, i: usize, line: LineId, state: Mesi, data: Vec<u64>) {
        let from = self.caches[i].state(line);
        let evicted = self.caches[i].insert(line, state, data);
        if let Some((victim_id, victim)) = evicted {
            // The victim is already out of the map, so transition_line
            // cannot see its old state; emit the drop directly.
            self.emit_traced(
                i,
                EventKind::MesiTransition { line: victim_id, from: victim.state, to: Mesi::I },
            );
            if victim.state.dirty() {
                // Reinsert transiently so writeback can read it — simpler:
                // write the victim's words straight to memory.
                let geom = self.cfg.geom;
                self.record_bus(i, BusOp::Writeback, victim_id, BusCause::Eviction);
                for (k, addr) in geom.words_of(victim_id).enumerate() {
                    if victim.data[k] == 0 {
                        self.mem.remove(&addr);
                    } else {
                        self.mem.insert(addr, victim.data[k]);
                    }
                }
            }
            let guarded = self.cpus[i].le_bit
                && self.cpus[i]
                    .le_addr
                    .map(|a| self.cfg.geom.line_of(a) == victim_id)
                    .unwrap_or(false)
                && victim.state.exclusive();
            if guarded {
                self.cpus[i].clear_link_regs();
                self.stats.link_breaks_eviction += 1;
                self.emit(i, EventKind::LinkCleared { reason: LinkClearReason::Eviction });
                // Flush after the current operation finishes (the current
                // store-buffer entry, if we are mid-drain, is the oldest and
                // must complete first to preserve FIFO order).
                self.pending_flush[i] = true;
            }
        }
        if from != state {
            self.emit_traced(i, EventKind::MesiTransition { line, from, to: state });
        }
    }

    /// Honour a pending self-eviction flush (no-op otherwise).
    fn run_pending_flush(&mut self, i: usize) {
        if self.pending_flush[i] {
            self.pending_flush[i] = false;
            self.flush_sb(i);
        }
    }

    /// Complete the oldest store-buffer entry of CPU `i`. Returns the drain
    /// cost (charged or not by the caller depending on context).
    fn drain_one(&mut self, i: usize) -> u64 {
        let entry = match self.sbs[i].pop_oldest() {
            Some(e) => e,
            None => return 0,
        };
        let line = self.cfg.geom.line_of(entry.addr);
        let owned = self.caches[i].state(line).writable_silently();
        let served_remotely = !owned
            && (0..self.num_cpus()).any(|j| j != i && self.caches[j].state(line) != Mesi::I);
        let mut cost = if owned {
            self.cost.sb_drain_owned
        } else {
            self.ensure_exclusive(i, line, BusCause::StoreDrain)
        };
        let _ = served_remotely;
        let pre = self.caches[i].state(line);
        self.caches[i].write_word(&self.cfg.geom, entry.addr, entry.val);
        if pre != Mesi::M {
            // write_word silently upgrades E (or the fresh exclusive state)
            // to M; surface that on the timeline.
            self.emit_traced(i, EventKind::MesiTransition { line, from: pre, to: Mesi::M });
        }
        self.stats.store_completions += 1;
        self.emit(
            i,
            EventKind::StoreCompleted {
                addr: entry.addr,
                val: entry.val,
                commit_seq: entry.commit_seq,
            },
        );
        // Natural link clear: "upon completing the store, the processor
        // also clears LEBit and LEAddr" — no flush in this case. Only the
        // *corresponding* (guarded) store clears the link; an older plain
        // store to the same address — e.g. the previous Dekker round's exit
        // store — must not. With back-to-back same-location l-mfences the
        // link stays until the youngest guarded store completes.
        if entry.guarded
            && self.cpus[i].le_bit
            && self.cpus[i].le_addr == Some(entry.addr)
            && !self.sbs[i].contains_guarded(entry.addr)
        {
            self.cpus[i].clear_link_regs();
            self.stats.link_natural_completions += 1;
            self.emit(i, EventKind::LinkCleared { reason: LinkClearReason::StoreCompleted });
        }
        if self.pending_flush[i] {
            self.pending_flush[i] = false;
            cost += self.sbs[i].len() as u64 * self.cost.sb_drain_owned;
            self.flush_sb(i);
        }
        cost
    }

    /// Drain the whole store buffer of CPU `i` in FIFO order.
    fn flush_sb(&mut self, i: usize) {
        while !self.sbs[i].is_empty() {
            let _ = self.drain_one(i);
        }
    }

    // ------------------------------------------------------------------
    // Invariants / fingerprinting
    // ------------------------------------------------------------------

    /// Check coherence invariants: single-writer-multiple-readers, and
    /// clean lines agreeing with memory.
    pub fn check_coherence(&self) -> Result<(), String> {
        let mut lines: Vec<LineId> = Vec::new();
        for c in &self.caches {
            for (id, _) in c.iter() {
                if !lines.contains(id) {
                    lines.push(*id);
                }
            }
        }
        for line in lines {
            let mut exclusive_holders = 0usize;
            let mut dirty_holders = 0usize;
            let mut total_holders = 0usize;
            let authoritative = self.authoritative_line_data(line);
            for (j, c) in self.caches.iter().enumerate() {
                let st = c.state(line);
                if st == Mesi::I {
                    continue;
                }
                total_holders += 1;
                if st.exclusive() {
                    exclusive_holders += 1;
                }
                if st.dirty() {
                    dirty_holders += 1;
                }
                if st == Mesi::E || st == Mesi::S {
                    // Clean copies must agree with the authoritative data
                    // (the O owner's under MOESI, else memory).
                    let data = &c.get(line).unwrap().data;
                    for k in 0..data.len() {
                        if data[k] != authoritative[k] {
                            return Err(format!(
                                "clean line {line} in cpu{j} disagrees with authoritative data: \
                                 cache {} vs {}",
                                data[k], authoritative[k]
                            ));
                        }
                    }
                }
                if st == Mesi::O && self.cfg.coherence != Coherence::Moesi {
                    return Err(format!("Owned state on {line} under {}", self.cfg.coherence.label()));
                }
            }
            if exclusive_holders > 1 || (exclusive_holders == 1 && total_holders > 1) {
                return Err(format!(
                    "SWMR violated on {line}: {exclusive_holders} exclusive of {total_holders} holders"
                ));
            }
            if dirty_holders > 1 {
                return Err(format!("{dirty_holders} dirty owners on {line}"));
            }
        }
        Ok(())
    }

    /// Semantic state fingerprint for the model checker's visited set.
    /// Clocks, LRU bookkeeping, traces, and statistics are excluded.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for c in &self.cpus {
            c.hash_into(&mut h);
        }
        for s in &self.sbs {
            s.hash_into(&mut h);
        }
        for c in &self.caches {
            c.hash_into(&mut h);
        }
        let nonzero: Vec<(&Addr, &u64)> = self.mem.iter().filter(|(_, v)| **v != 0).collect();
        nonzero.len().hash(&mut h);
        for (a, v) in nonzero {
            a.hash(&mut h);
            v.hash(&mut h);
        }
        h.finish()
    }

    // ------------------------------------------------------------------
    // Runners
    // ------------------------------------------------------------------

    /// Run by sampling transitions uniformly at random. Returns whether the
    /// machine reached a terminal state within `max_steps`.
    pub fn run_random(&mut self, rng: &mut impl lbmf_prng::Rng, max_steps: usize) -> bool {
        for _ in 0..max_steps {
            if self.is_terminal() {
                return true;
            }
            let ts = self.enabled_transitions();
            debug_assert!(!ts.is_empty(), "non-terminal state with no transitions");
            let t = ts[rng.random_range(0..ts.len())];
            self.apply(t);
        }
        self.is_terminal()
    }

    /// Cycle-driven pseudo-parallel run: the CPU with the smallest clock
    /// acts next; store buffers drain in the background once entries are
    /// `drain_delay` cycles old (free for the CPU — this is why omitting a
    /// fence is cheap). Returns whether execution finished in `max_steps`.
    pub fn run_pseudo_parallel(&mut self, drain_delay: u64, max_steps: usize) -> bool {
        for _ in 0..max_steps {
            // Background drains: complete entries that have aged out.
            for i in 0..self.num_cpus() {
                while let Some(oldest) = self.sbs[i].oldest() {
                    let age_seq = self.seq.saturating_sub(oldest.commit_seq);
                    if age_seq >= drain_delay.max(1) {
                        let _ = self.drain_one(i);
                    } else {
                        break;
                    }
                }
            }
            let next = (0..self.num_cpus())
                .filter(|&i| !self.cpus[i].halted)
                .min_by_key(|&i| self.cpus[i].clock);
            match next {
                Some(i) => {
                    self.apply(Transition::Step(i));
                }
                None => {
                    self.flush_all();
                    return true;
                }
            }
        }
        false
    }

    /// Total cycles on the busiest CPU (the makespan for parallel runs).
    pub fn makespan(&self) -> u64 {
        self.cpus.iter().map(|c| c.clock).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::ProgramBuilder;

    fn machine(progs: Vec<Program>) -> Machine {
        Machine::new(MachineConfig::default(), CostModel::default(), progs)
    }

    fn run_all(m: &mut Machine) {
        let mut steps = 0;
        while !m.is_terminal() {
            let ts = m.enabled_transitions();
            m.apply(ts[0]);
            steps += 1;
            assert!(steps < 100_000, "runaway execution");
        }
    }

    #[test]
    fn single_cpu_store_then_load() {
        let mut b = ProgramBuilder::new("p");
        b.st(Addr(1), 42u64).ld(0, Addr(1)).halt();
        let mut m = machine(vec![b.build()]);
        run_all(&mut m);
        assert_eq!(m.cpus[0].regs[0], 42, "store-buffer forwarding");
        assert_eq!(m.coherent_word(Addr(1)), 42);
        m.check_coherence().unwrap();
    }

    #[test]
    fn forwarding_hides_pending_store_from_others() {
        // CPU0 stores, never drains explicitly; CPU1 loads. Before CPU0's
        // store completes, CPU1 must read 0; after, 42.
        let mut b0 = ProgramBuilder::new("w");
        b0.st(Addr(1), 42u64).halt();
        let mut b1 = ProgramBuilder::new("r");
        b1.ld(0, Addr(1)).halt();
        let mut m = machine(vec![b0.build(), b1.build()]);
        // Commit CPU0's store (into SB) but do not drain.
        m.apply(Transition::Step(0));
        assert_eq!(m.sbs[0].len(), 1);
        // CPU1's load must see 0: the store is invisible.
        m.apply(Transition::Step(1));
        assert_eq!(m.cpus[1].regs[0], 0);
        // Drain, then check coherent value.
        m.apply(Transition::Drain(0));
        assert_eq!(m.coherent_word(Addr(1)), 42);
        m.check_coherence().unwrap();
    }

    #[test]
    fn mfence_drains_store_buffer() {
        let mut b = ProgramBuilder::new("p");
        b.st(Addr(1), 1u64).st(Addr(2), 2u64).mfence().halt();
        let mut m = machine(vec![b.build()]);
        run_all(&mut m);
        assert_eq!(m.stats.mfences, 1);
        assert_eq!(m.stats.store_completions, 2);
        assert_eq!(m.coherent_word(Addr(1)), 1);
        assert_eq!(m.coherent_word(Addr(2)), 2);
    }

    #[test]
    fn store_buffer_capacity_stalls() {
        let cfg = MachineConfig {
            sb_capacity: 2,
            ..MachineConfig::default()
        };
        let mut b = ProgramBuilder::new("p");
        for k in 0..4u64 {
            b.st(Addr(k), k + 1);
        }
        b.halt();
        let mut m = Machine::new(cfg, CostModel::default(), vec![b.build()]);
        run_all(&mut m);
        for k in 0..4u64 {
            assert_eq!(m.coherent_word(Addr(k)), k + 1);
        }
        assert_eq!(m.stats.store_completions, 4);
    }

    #[test]
    fn lmfence_link_survives_when_unobserved() {
        // A lone CPU executing l-mfence must NOT execute the mfence: the
        // branch sees LEBit still set (this is the whole point — no stall
        // when nobody looks).
        let mut b = ProgramBuilder::new("p");
        b.lmfence(Addr(1), 1u64).ld(0, Addr(2)).halt();
        let mut m = machine(vec![b.build()]);
        // Step through: SetLeBit, SetLeAddr, LE, St, Branch, (skips Mfence), Ld, Halt.
        while !m.cpus[0].halted {
            m.apply(Transition::Step(0));
        }
        assert_eq!(m.stats.mfences, 0, "l-mfence must not stall when alone");
        // The guarded store may still be in the SB.
        m.flush_all();
        assert_eq!(m.coherent_word(Addr(1)), 1);
        m.check_coherence().unwrap();
    }

    #[test]
    fn remote_read_breaks_link_and_flushes() {
        // CPU0: l-mfence(X, 1) then spin-free halt. CPU1: read X.
        // If CPU1 reads after CPU0's ST commits but before it completes,
        // the link break must flush CPU0's SB so CPU1 sees 1.
        let mut b0 = ProgramBuilder::new("primary");
        b0.lmfence(Addr(1), 1u64).halt();
        let mut b1 = ProgramBuilder::new("secondary");
        b1.ld(0, Addr(1)).halt();
        let mut m = machine(vec![b0.build(), b1.build()]);
        // CPU0 runs the whole l-mfence (5 committed instructions: SetLeBit,
        // SetLeAddr, LE, St, Branch-taken).
        for _ in 0..5 {
            m.apply(Transition::Step(0));
        }
        assert!(m.sbs[0].contains(Addr(1)), "store still buffered");
        assert!(m.cpus[0].le_bit, "link set");
        // CPU1 loads X: must trigger the link break and observe 1.
        m.apply(Transition::Step(1));
        assert_eq!(m.cpus[1].regs[0], 1, "secondary must see the guarded store");
        assert!(!m.cpus[0].le_bit, "link broken");
        assert!(m.sbs[0].is_empty(), "primary flushed");
        assert_eq!(m.stats.link_breaks_remote, 1);
        m.check_coherence().unwrap();
    }

    #[test]
    fn natural_completion_clears_link_without_flush() {
        let mut b0 = ProgramBuilder::new("p");
        b0.lmfence(Addr(1), 1u64).st(Addr(2), 2u64).halt();
        let mut m = machine(vec![b0.build()]);
        for _ in 0..5 {
            m.apply(Transition::Step(0)); // through the branch
        }
        m.apply(Transition::Step(0)); // St @2 commits
        assert_eq!(m.sbs[0].len(), 2);
        // Drain the guarded store: link clears naturally, @2 stays buffered.
        m.apply(Transition::Drain(0));
        assert!(!m.cpus[0].le_bit);
        assert_eq!(m.stats.link_natural_completions, 1);
        assert_eq!(m.sbs[0].len(), 1, "no full flush on natural completion");
    }

    #[test]
    fn back_to_back_lmfence_different_location_flushes() {
        let mut b0 = ProgramBuilder::new("p");
        b0.lmfence(Addr(1), 1u64).lmfence(Addr(2), 1u64).halt();
        let mut m = machine(vec![b0.build()]);
        for _ in 0..5 {
            m.apply(Transition::Step(0)); // first l-mfence done (branch taken)
        }
        assert_eq!(m.sbs[0].len(), 1);
        m.apply(Transition::Step(0)); // SetLeBit of second
        m.apply(Transition::Step(0)); // SetLeAddr: must flush the old link
        assert!(m.sbs[0].is_empty(), "old guarded store flushed");
        assert_eq!(m.cpus[0].le_addr, Some(Addr(2)));
    }

    #[test]
    fn back_to_back_lmfence_same_location_no_flush() {
        let mut b0 = ProgramBuilder::new("p");
        b0.lmfence(Addr(1), 1u64).lmfence(Addr(1), 2u64).halt();
        let mut m = machine(vec![b0.build()]);
        for _ in 0..5 {
            m.apply(Transition::Step(0));
        }
        assert_eq!(m.sbs[0].len(), 1);
        m.apply(Transition::Step(0)); // SetLeBit
        m.apply(Transition::Step(0)); // SetLeAddr — same location: keep buffering
        assert_eq!(m.sbs[0].len(), 1, "same guarded location needs no flush");
    }

    #[test]
    fn eviction_breaks_own_link() {
        // Cache with 2 lines; the l-mfence guards one, then two more loads
        // evict it. The link must break and the SB must flush.
        let cfg = MachineConfig {
            cache_capacity: 2,
            ..MachineConfig::default()
        };
        let mut b = ProgramBuilder::new("p");
        b.lmfence(Addr(1), 1u64)
            .ld(0, Addr(10))
            .ld(1, Addr(11))
            .halt();
        let mut m = Machine::new(cfg, CostModel::default(), vec![b.build()]);
        while !m.cpus[0].halted {
            m.apply(Transition::Step(0));
        }
        assert!(m.sbs[0].is_empty(), "eviction must flush the store buffer");
        assert_eq!(m.stats.link_breaks_eviction, 1);
        assert_eq!(m.coherent_word(Addr(1)), 1);
        m.check_coherence().unwrap();
    }

    #[test]
    fn interrupt_flushes_and_breaks_link() {
        let cfg = MachineConfig {
            interrupts_enabled: true,
            ..MachineConfig::default()
        };
        let mut b = ProgramBuilder::new("p");
        b.lmfence(Addr(1), 1u64).ld(0, Addr(3)).halt();
        let mut m = Machine::new(cfg, CostModel::default(), vec![b.build()]);
        for _ in 0..5 {
            m.apply(Transition::Step(0));
        }
        assert!(m.cpus[0].le_bit);
        m.apply(Transition::Interrupt(0));
        assert!(!m.cpus[0].le_bit);
        assert!(m.sbs[0].is_empty());
    }

    #[test]
    fn poke_preloads_memory() {
        let mut b = ProgramBuilder::new("p");
        b.ld(0, Addr(9)).st(Addr(9), 5u64).mfence().halt();
        let mut m = machine(vec![b.build()]);
        m.poke(Addr(9), 77);
        run_all(&mut m);
        assert_eq!(m.cpus[0].regs[0], 77, "load must see the poked value");
        assert_eq!(m.coherent_word(Addr(9)), 5);
        // The trace checker accepts the initial value when told about it.
        crate::check::check_load_values(&m.trace, &[(Addr(9), 77)]).unwrap();
        assert!(crate::check::check_load_values(&m.trace, &[]).is_err());
    }

    #[test]
    fn coherent_word_sees_modified_owner() {
        let mut b0 = ProgramBuilder::new("p");
        b0.st(Addr(5), 9u64).halt();
        let mut m = machine(vec![b0.build()]);
        run_all(&mut m);
        // Value lives in CPU0's cache in M; memory may be stale.
        assert_eq!(m.coherent_word(Addr(5)), 9);
    }

    #[test]
    fn fingerprint_stable_across_clock_only_changes() {
        let mut b = ProgramBuilder::new("p");
        b.work(100).halt();
        let m1 = machine(vec![b.build()]);
        let mut b2 = ProgramBuilder::new("p");
        b2.work(100).halt();
        let m2 = machine(vec![b2.build()]);
        assert_eq!(m1.fingerprint(), m2.fingerprint());
    }

    #[test]
    fn random_runner_reaches_terminal() {
        let mut b0 = ProgramBuilder::new("a");
        b0.st(Addr(1), 1u64).ld(0, Addr(2)).halt();
        let mut b1 = ProgramBuilder::new("b");
        b1.st(Addr(2), 1u64).ld(0, Addr(1)).halt();
        let mut rng = lbmf_prng::SplitMix64::seed_from_u64(7);
        let mut m = machine(vec![b0.build(), b1.build()]);
        assert!(m.run_random(&mut rng, 10_000));
        m.check_coherence().unwrap();
    }

    #[test]
    fn pseudo_parallel_run_finishes_and_accounts_cycles() {
        let mut b0 = ProgramBuilder::new("a");
        b0.st(Addr(1), 1u64).mfence().work(10).halt();
        let mut m = machine(vec![b0.build()]);
        assert!(m.run_pseudo_parallel(4, 10_000));
        assert!(m.cpus[0].clock >= 10, "work cycles counted");
        assert!(m.is_terminal());
    }
}

