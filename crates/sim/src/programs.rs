//! Canned protocol programs: litmus tests and the Dekker variants the paper
//! analyses.
//!
//! Address map (one word per line under the default geometry):
//!
//! | addr | meaning |
//! |------|---------|
//! | 0    | `L1` — the primary thread's flag (paper Figure 1/3) |
//! | 1    | `L2` — the secondary thread's flag |
//! | 2    | `CS` — a word touched inside the critical section |
//! | 3    | `DATA` — payload for the message-passing litmus |

use crate::addr::Addr;
use crate::isa::{Operand, Program, ProgramBuilder};

/// `L1`: the primary/first thread's intent flag.
pub const L1: Addr = Addr(0);
/// `L2`: the secondary/second thread's intent flag.
pub const L2: Addr = Addr(1);
/// A word accessed inside the critical section.
pub const CS: Addr = Addr(2);
/// Payload word for the message-passing litmus.
pub const DATA: Addr = Addr(3);

/// How a thread orders its flag-store against its subsequent flag-load.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FenceKind {
    /// No fence at all: the Figure-1 protocol, incorrect under TSO.
    None,
    /// Program-based fence: `ST; MFENCE` (the classic correct Dekker).
    Mfence,
    /// Location-based fence: `l-mfence(flag, v)` per Figure 3.
    Lmfence,
}

impl FenceKind {
    /// Human-readable label used by harness output.
    pub fn label(self) -> &'static str {
        match self {
            FenceKind::None => "none",
            FenceKind::Mfence => "mfence",
            FenceKind::Lmfence => "l-mfence",
        }
    }
}

/// Emit "store `val` to `addr`, fenced per `kind`".
fn fenced_store(b: &mut ProgramBuilder, kind: FenceKind, addr: Addr, val: u64) {
    match kind {
        FenceKind::None => {
            b.st(addr, val);
        }
        FenceKind::Mfence => {
            b.st(addr, val);
            b.mfence();
        }
        FenceKind::Lmfence => {
            b.lmfence(addr, val);
        }
    }
}

// ---------------------------------------------------------------------
// Litmus tests
// ---------------------------------------------------------------------

/// Store-buffering (SB) litmus — the Dekker core. CPU `i` stores 1 to its
/// own flag (fenced per `kinds[i]`) then loads the other flag into `r0`.
/// Under TSO the outcome `(0, 0)` is reachable iff neither side fences.
pub fn litmus_sb(kinds: [FenceKind; 2]) -> Vec<Program> {
    let side = |name: &str, kind: FenceKind, own: Addr, other: Addr| {
        let mut b = ProgramBuilder::new(name);
        fenced_store(&mut b, kind, own, 1);
        b.ld(0, other).halt();
        b.build()
    };
    vec![
        side("sb.p0", kinds[0], L1, L2),
        side("sb.p1", kinds[1], L2, L1),
    ]
}

/// Message-passing (MP) litmus. CPU 0 writes DATA then a flag; CPU 1 reads
/// the flag then DATA. TSO forbids `(flag=1, data=0)` with no fences at
/// all — this validates ordering principles 1 and 3 of Section 2.
pub fn litmus_mp() -> Vec<Program> {
    let mut w = ProgramBuilder::new("mp.writer");
    w.st(DATA, 1u64).st(L1, 1u64).halt();
    let mut r = ProgramBuilder::new("mp.reader");
    r.ld(0, L1).ld(1, DATA).halt();
    vec![w.build(), r.build()]
}

/// Load-buffering (LB) litmus. TSO forbids `(1, 1)` because loads commit in
/// order ahead of program-later stores (principle 2).
pub fn litmus_lb() -> Vec<Program> {
    let side = |name: &str, first: Addr, second: Addr| {
        let mut b = ProgramBuilder::new(name);
        b.ld(0, first).st(second, 1u64).halt();
        b.build()
    };
    vec![side("lb.p0", L1, L2), side("lb.p1", L2, L1)]
}

/// 2+2W litmus: both CPUs write both locations in opposite orders. Under
/// TSO the final memory cannot show `L1 == 1 && L2 == 1` (each CPU's second
/// write would have to be overwritten by the other's *first* write,
/// contradicting FIFO completion on both).
pub fn litmus_2_2w() -> Vec<Program> {
    let mut p0 = ProgramBuilder::new("2+2w.p0");
    p0.st(L1, 1u64).st(L2, 2u64).halt();
    let mut p1 = ProgramBuilder::new("2+2w.p1");
    p1.st(L2, 1u64).st(L1, 2u64).halt();
    vec![p0.build(), p1.build()]
}

/// The "R" litmus: P0 stores `L1 = 1; L2 = 2`; P1 stores `L2 = 1`,
/// optionally fences, then reads `L1`.
///
/// The interesting outcome is `(r0 = 0, final L2 = 1)`: P1's `L2` store
/// wins the coherence race (so P0's `L2 = 2` completed *before* it, and by
/// FIFO buffers P0's `L1 = 1` completed even earlier), yet P1 reads
/// `L1 = 0`. Without a fence TSO **allows** this — P1's read may commit
/// while its own `L2` store is still buffered, i.e. before everything
/// above happened. With an `mfence` on P1 the outcome is **forbidden**.
pub fn litmus_r(p1_fenced: bool) -> Vec<Program> {
    let mut p0 = ProgramBuilder::new("r.p0");
    p0.st(L1, 1u64).st(L2, 2u64).halt();
    let mut p1 = ProgramBuilder::new("r.p1");
    p1.st(L2, 1u64);
    if p1_fenced {
        p1.mfence();
    }
    p1.ld(0, L1).halt();
    vec![p0.build(), p1.build()]
}

/// The "S" litmus: P0 stores `L1 = 2; L2 = 1`; P1 reads `L2`, then stores
/// `L1 = 1`.
///
/// Forbidden under TSO with no fences at all: `(r0 = 1, final L1 = 2)`.
/// If P1 read `L2 = 1`, P0's `L1 = 2` had already completed (FIFO); P1's
/// own `L1 = 1` store commits *after* that read and therefore completes
/// after `L1 = 2`, so the final value of `L1` must be 1 — in-order commit
/// plus FIFO completion leave no way for P0's store to land last.
pub fn litmus_s() -> Vec<Program> {
    let mut p0 = ProgramBuilder::new("s.p0");
    p0.st(L1, 2u64).st(L2, 1u64).halt();
    let mut p1 = ProgramBuilder::new("s.p1");
    p1.ld(0, L2).st(L1, 1u64).halt();
    vec![p0.build(), p1.build()]
}

/// IRIW (independent reads of independent writes): two writers store to
/// different locations; two readers read both in opposite orders. TSO
/// forbids the readers from disagreeing on the order of the writes —
/// footnote 4 of the paper: "the other processors in the system will
/// observe a consistent ordering of the two writes". The forbidden
/// outcome is `r0=1,r1=0` on CPU 2 together with `r0=1,r1=0` on CPU 3.
pub fn litmus_iriw(readers_fenced: bool) -> Vec<Program> {
    let mut w0 = ProgramBuilder::new("iriw.w0");
    w0.st(L1, 1u64).halt();
    let mut w1 = ProgramBuilder::new("iriw.w1");
    w1.st(L2, 1u64).halt();
    let reader = |name: &str, first: Addr, second: Addr| {
        let mut b = ProgramBuilder::new(name);
        b.ld(0, first);
        if readers_fenced {
            b.mfence();
        }
        b.ld(1, second).halt();
        b.build()
    };
    vec![
        w0.build(),
        w1.build(),
        reader("iriw.r0", L1, L2),
        reader("iriw.r1", L2, L1),
    ]
}

/// The guarded-load litmus from Lemma 3: CPU 0 runs `l-mfence(L1, 1)`; CPU 1
/// just reads `L1`. If CPU 1's read is triggered after the guarded store
/// commits, the link break must make it observe 1.
pub fn litmus_guarded_read() -> Vec<Program> {
    let mut p0 = ProgramBuilder::new("guard.primary");
    p0.lmfence(L1, 1u64).halt();
    let mut p1 = ProgramBuilder::new("guard.secondary");
    p1.ld(0, L1).halt();
    vec![p0.build(), p1.build()]
}

// ---------------------------------------------------------------------
// Dekker protocols
// ---------------------------------------------------------------------

/// Options for the two-thread Dekker programs.
#[derive(Clone, Copy, Debug)]
pub struct DekkerOptions {
    /// Iterations each thread must complete.
    pub iters: u64,
    /// Emit a store+load to [`CS`] inside the critical section (stresses
    /// coherence during the race window).
    pub cs_mem_ops: bool,
    /// Extra local work cycles inside the critical section (cost runs).
    pub cs_work: u64,
}

impl Default for DekkerOptions {
    fn default() -> Self {
        DekkerOptions {
            iters: 1,
            cs_mem_ops: true,
            cs_work: 0,
        }
    }
}

/// One side of the simplified Dekker protocol of Figure 1 (with the
/// Figure 3 fence variants): set own flag, fence per `kind`, test the other
/// flag; on conflict retreat (clear own flag) and retry.
fn dekker_side(
    name: &str,
    kind: FenceKind,
    own: Addr,
    other: Addr,
    cpu_id: u64,
    opt: DekkerOptions,
) -> Program {
    let mut b = ProgramBuilder::new(name);
    // r1 = completed iterations.
    let top = b.here();
    fenced_store(&mut b, kind, own, 1);
    let retreat = b.label();
    b.ld(0, other);
    b.branch_ne(Operand::Reg(0), 0u64, retreat);
    b.enter_cs();
    if opt.cs_mem_ops {
        b.st(CS, cpu_id + 1);
        b.ld(2, CS);
    }
    if opt.cs_work > 0 {
        b.work(opt.cs_work);
    }
    b.leave_cs();
    b.st(own, 0u64);
    b.add(1, Operand::Reg(1), 1u64);
    b.branch_lt(Operand::Reg(1), opt.iters, top);
    b.halt();
    // Retreat path: clear own flag and retry.
    b.bind(retreat);
    b.st(own, 0u64);
    b.jmp(top);
    b.build()
}

/// The turn variable used by the full (livelock-free) Dekker protocol.
pub const TURN: Addr = Addr(4);

/// One side of the *full* Dekker protocol — the simplified Figure-1 shape
/// augmented with the turn tie-break, which the paper notes is required to
/// avoid livelock. Unlike [`dekker_side`], this variant is guaranteed to
/// make progress under any fair scheduler (including the deterministic
/// cycle-driven runner).
fn dekker_turn_side(
    name: &str,
    kind: FenceKind,
    own: Addr,
    other: Addr,
    my_id: u64,
    opt: DekkerOptions,
) -> Program {
    let mut b = ProgramBuilder::new(name);
    // r1 = completed iterations; r0/r2 scratch.
    let top = b.here();
    fenced_store(&mut b, kind, own, 1);
    let check = b.here();
    let enter = b.label();
    b.ld(0, other);
    b.branch_eq(Operand::Reg(0), 0u64, enter);
    // Contended: defer to the turn.
    b.ld(2, TURN);
    b.branch_eq(Operand::Reg(2), my_id, check); // my turn: hold and re-check
    // Not my turn: retreat and wait for it.
    b.st(own, 0u64);
    let wait = b.here();
    b.ld(2, TURN);
    b.branch_ne(Operand::Reg(2), my_id, wait);
    b.jmp(top);
    // Critical section.
    b.bind(enter);
    b.enter_cs();
    if opt.cs_mem_ops {
        b.st(CS, my_id + 1);
        b.ld(3, CS);
    }
    if opt.cs_work > 0 {
        b.work(opt.cs_work);
    }
    b.leave_cs();
    b.st(TURN, 1 - my_id); // hand the turn over
    b.st(own, 0u64);
    b.add(1, Operand::Reg(1), 1u64);
    b.branch_lt(Operand::Reg(1), opt.iters, top);
    b.halt();
    b.build()
}

/// The full two-thread Dekker protocol (with the turn tie-break), fenced
/// per `kinds`. Livelock-free; use this for throughput runs on the
/// deterministic schedulers. The simplified [`dekker_pair`] is what the
/// paper's Figure 1 shows and what the model checker explores.
pub fn dekker_pair_with_turn(kinds: [FenceKind; 2], opt: DekkerOptions) -> Vec<Program> {
    vec![
        dekker_turn_side("dekker-turn.primary", kinds[0], L1, L2, 0, opt),
        dekker_turn_side("dekker-turn.secondary", kinds[1], L2, L1, 1, opt),
    ]
}

/// The two-thread Dekker protocol with each side fenced per `kinds`.
/// `kinds == [Lmfence, Mfence]` is exactly the paper's Figure 3(a).
pub fn dekker_pair(kinds: [FenceKind; 2], opt: DekkerOptions) -> Vec<Program> {
    vec![
        dekker_side("dekker.primary", kinds[0], L1, L2, 0, opt),
        dekker_side("dekker.secondary", kinds[1], L2, L1, 1, opt),
    ]
}

/// The asymmetric Dekker protocol of Figure 3(a): primary uses `l-mfence`,
/// secondary uses `mfence`.
pub fn dekker_asymmetric(opt: DekkerOptions) -> Vec<Program> {
    dekker_pair([FenceKind::Lmfence, FenceKind::Mfence], opt)
}

/// A single thread running the Dekker *entry/exit* path with no contender —
/// the Section 1 microbenchmark ("a thread running alone ... runs 4-7 times
/// slower" with the fence). The other flag is never set, so the thread
/// always enters.
pub fn dekker_serial(kind: FenceKind, opt: DekkerOptions) -> Vec<Program> {
    vec![dekker_side("dekker.serial", kind, L1, L2, 0, opt)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Inst;
    use crate::machine::Machine;

    #[test]
    fn litmus_shapes() {
        assert_eq!(litmus_sb([FenceKind::None, FenceKind::None]).len(), 2);
        assert_eq!(litmus_mp().len(), 2);
        assert_eq!(litmus_lb().len(), 2);
        assert_eq!(litmus_2_2w().len(), 2);
    }

    #[test]
    fn sb_with_mfence_contains_fence() {
        let ps = litmus_sb([FenceKind::Mfence, FenceKind::None]);
        assert!(ps[0].insts.iter().any(|i| matches!(i, Inst::Mfence)));
        assert!(!ps[1].insts.iter().any(|i| matches!(i, Inst::Mfence)));
    }

    #[test]
    fn sb_with_lmfence_expands_le_st() {
        let ps = litmus_sb([FenceKind::Lmfence, FenceKind::Lmfence]);
        for p in &ps {
            assert!(p.insts.iter().any(|i| matches!(i, Inst::Le { .. })));
            assert!(p.insts.iter().any(|i| matches!(i, Inst::SetLeBit(1))));
        }
    }

    #[test]
    fn dekker_serial_completes_and_counts_iterations() {
        for kind in [FenceKind::None, FenceKind::Mfence, FenceKind::Lmfence] {
            let opt = DekkerOptions {
                iters: 3,
                ..DekkerOptions::default()
            };
            let mut m = Machine::for_checking(dekker_serial(kind, opt));
            let mut guard = 0;
            while !m.is_terminal() {
                let ts = m.enabled_transitions();
                m.apply(ts[0]);
                guard += 1;
                assert!(guard < 10_000, "stuck with {kind:?}");
            }
            assert_eq!(m.cpus[0].regs[1], 3, "iterations with {kind:?}");
            assert_eq!(m.mutex_violations, 0);
        }
    }

    #[test]
    fn dekker_pair_with_mfence_completes_somehow() {
        // Round-robin scheduling happens to avoid livelock here; this only
        // smoke-tests that the programs are runnable.
        let opt = DekkerOptions {
            iters: 1,
            ..DekkerOptions::default()
        };
        let mut m = Machine::for_checking(dekker_pair([FenceKind::Mfence, FenceKind::Mfence], opt));
        let mut rng = lbmf_prng::SplitMix64::seed_from_u64(42);
        let done = m.run_random(&mut rng, 200_000);
        assert!(done, "random run should finish");
        assert_eq!(m.mutex_violations, 0);
    }

    #[test]
    fn fence_kind_labels() {
        assert_eq!(FenceKind::None.label(), "none");
        assert_eq!(FenceKind::Mfence.label(), "mfence");
        assert_eq!(FenceKind::Lmfence.label(), "l-mfence");
    }
}
