//! Per-processor FIFO store buffer with store-to-load forwarding.
//!
//! Section 2 of the paper: a committed write sits in the store buffer,
//! invisible to other processors, until it is flushed to the cache in FIFO
//! order ("completed"). A load by the owning processor whose address matches
//! a buffered store is served by the *youngest* matching entry (store-buffer
//! forwarding), which is what keeps a processor from observing its own
//! reordering.

use crate::addr::Addr;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

/// One buffered (committed, not yet completed) store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SbEntry {
    /// Target word address.
    pub addr: Addr,
    /// Value being stored.
    pub val: u64,
    /// Global sequence number assigned when the store committed; used by
    /// trace checkers to pair commit and completion events.
    pub commit_seq: u64,
    /// This entry is the store of an active `l-mfence` (the LE/ST registers
    /// guarded `addr` when it committed). The hardware tags the entry so
    /// that "the corresponding store" — not just any store to the same
    /// address, such as a previous round's exit store — clears the link on
    /// completion.
    pub guarded: bool,
}

/// A FIFO store buffer.
#[derive(Clone, Debug, Default)]
pub struct StoreBuffer {
    entries: VecDeque<SbEntry>,
}

impl StoreBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        StoreBuffer {
            entries: VecDeque::new(),
        }
    }

    /// Number of committed-but-incomplete stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether every committed store has completed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Commit a store into the buffer.
    pub fn push(&mut self, entry: SbEntry) {
        self.entries.push_back(entry);
    }

    /// The oldest entry, next to complete.
    pub fn oldest(&self) -> Option<&SbEntry> {
        self.entries.front()
    }

    /// Remove and return the oldest entry (the FIFO completion order of
    /// Section 2, ordering principle 3).
    pub fn pop_oldest(&mut self) -> Option<SbEntry> {
        self.entries.pop_front()
    }

    /// Store-buffer forwarding: the value of the *youngest* buffered store
    /// to `addr`, if any.
    pub fn forward(&self, addr: Addr) -> Option<u64> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.addr == addr)
            .map(|e| e.val)
    }

    /// Whether any buffered store targets `addr`.
    pub fn contains(&self, addr: Addr) -> bool {
        self.entries.iter().any(|e| e.addr == addr)
    }

    /// Whether any buffered *guarded* store targets `addr` (an `l-mfence`
    /// store that has committed but not completed).
    pub fn contains_guarded(&self, addr: Addr) -> bool {
        self.entries.iter().any(|e| e.guarded && e.addr == addr)
    }

    /// Iterate oldest-to-youngest.
    pub fn iter(&self) -> impl Iterator<Item = &SbEntry> {
        self.entries.iter()
    }

    /// Feed the buffer's semantic content into a hasher (for state
    /// fingerprinting during model checking).
    pub fn hash_into<H: Hasher>(&self, h: &mut H) {
        self.entries.len().hash(h);
        for e in &self.entries {
            e.addr.hash(h);
            e.val.hash(h);
            e.guarded.hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(addr: u64, val: u64, seq: u64) -> SbEntry {
        SbEntry {
            addr: Addr(addr),
            val,
            commit_seq: seq,
            guarded: false,
        }
    }

    #[test]
    fn contains_guarded_distinguishes_tagged_entries() {
        let mut sb = StoreBuffer::new();
        sb.push(e(1, 0, 0)); // plain store to addr 1
        assert!(!sb.contains_guarded(Addr(1)));
        sb.push(SbEntry {
            addr: Addr(1),
            val: 1,
            commit_seq: 1,
            guarded: true,
        });
        assert!(sb.contains_guarded(Addr(1)));
        sb.pop_oldest(); // plain one leaves
        assert!(sb.contains_guarded(Addr(1)));
        sb.pop_oldest();
        assert!(!sb.contains_guarded(Addr(1)));
    }

    #[test]
    fn fifo_order() {
        let mut sb = StoreBuffer::new();
        sb.push(e(1, 10, 0));
        sb.push(e(2, 20, 1));
        sb.push(e(1, 30, 2));
        assert_eq!(sb.len(), 3);
        assert_eq!(sb.pop_oldest(), Some(e(1, 10, 0)));
        assert_eq!(sb.pop_oldest(), Some(e(2, 20, 1)));
        assert_eq!(sb.pop_oldest(), Some(e(1, 30, 2)));
        assert_eq!(sb.pop_oldest(), None);
    }

    #[test]
    fn forwarding_returns_youngest_match() {
        let mut sb = StoreBuffer::new();
        sb.push(e(1, 10, 0));
        sb.push(e(2, 20, 1));
        sb.push(e(1, 30, 2));
        assert_eq!(sb.forward(Addr(1)), Some(30));
        assert_eq!(sb.forward(Addr(2)), Some(20));
        assert_eq!(sb.forward(Addr(3)), None);
    }

    #[test]
    fn contains_reports_pending_addresses() {
        let mut sb = StoreBuffer::new();
        assert!(!sb.contains(Addr(1)));
        sb.push(e(1, 10, 0));
        assert!(sb.contains(Addr(1)));
        sb.pop_oldest();
        assert!(!sb.contains(Addr(1)));
    }

    #[test]
    fn hashes_differ_for_different_contents() {
        use std::collections::hash_map::DefaultHasher;
        let fp = |sb: &StoreBuffer| {
            let mut h = DefaultHasher::new();
            sb.hash_into(&mut h);
            h.finish()
        };
        let mut a = StoreBuffer::new();
        let mut b = StoreBuffer::new();
        assert_eq!(fp(&a), fp(&b));
        a.push(e(1, 10, 0));
        assert_ne!(fp(&a), fp(&b));
        // commit_seq is *included* deliberately? No — it is excluded from
        // semantic hashing; two buffers with the same (addr, val) queue are
        // the same state even if commit timestamps differ.
        b.push(e(1, 10, 99));
        assert_eq!(fp(&a), fp(&b));
    }
}
