//! Per-processor architectural state, including the two LE/ST registers.
//!
//! The LE/ST mechanism of Section 3 adds exactly two registers to each
//! processor: `LEBit` and `LEAddr`. Both are readable and writable by the
//! processor and readable by the cache controller. Everything else here is
//! conventional: general-purpose registers, a program counter, a halted
//! flag, a critical-section marker for the mutual-exclusion checker, and a
//! cycle clock for the cost model.

use crate::addr::Addr;
use crate::isa::{Operand, Reg, NUM_REGS};
use std::hash::{Hash, Hasher};

/// Architectural state of one simulated CPU.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpuState {
    /// General-purpose registers.
    pub regs: [u64; NUM_REGS],
    /// Index of the next instruction to commit.
    pub pc: usize,
    /// Set once the CPU executed `Halt` (or ran past its program).
    pub halted: bool,
    /// `LEBit`: set by K1.1, cleared when the link breaks or the guarded
    /// store completes.
    pub le_bit: bool,
    /// `LEAddr`: the guarded location, if any.
    pub le_addr: Option<Addr>,
    /// Whether the CPU is inside a critical section (pseudo-state for the
    /// mutual-exclusion checker; no memory semantics).
    pub in_cs: bool,
    /// Accumulated cycles (excluded from semantic fingerprints).
    pub clock: u64,
}

impl Default for CpuState {
    fn default() -> Self {
        CpuState {
            regs: [0; NUM_REGS],
            pc: 0,
            halted: false,
            le_bit: false,
            le_addr: None,
            in_cs: false,
            clock: 0,
        }
    }
}

impl CpuState {
    /// A reset CPU: zero registers, pc 0, link clear.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluate an operand against this CPU's registers.
    #[inline]
    pub fn eval(&self, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.regs[r as usize],
            Operand::Imm(v) => v,
        }
    }

    /// Evaluate an operand as a memory address.
    #[inline]
    pub fn eval_addr(&self, op: Operand) -> Addr {
        Addr(self.eval(op))
    }

    /// Write register `r`.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r as usize] = v;
    }

    /// Clear the LE/ST link registers.
    pub fn clear_link_regs(&mut self) {
        self.le_bit = false;
        self.le_addr = None;
    }

    /// Whether the LE/ST registers claim a guard on `addr`. (Definition 3
    /// additionally requires the cache line in M/E; the machine checks
    /// that part.)
    pub fn le_regs_guard(&self, addr: Addr) -> bool {
        self.le_bit && self.le_addr == Some(addr)
    }

    /// Feed semantic state (not the clock) into a hasher.
    pub fn hash_into<H: Hasher>(&self, h: &mut H) {
        self.regs.hash(h);
        self.pc.hash(h);
        self.halted.hash(h);
        self.le_bit.hash(h);
        self.le_addr.hash(h);
        self.in_cs.hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_registers_and_immediates() {
        let mut c = CpuState::new();
        c.set_reg(3, 42);
        assert_eq!(c.eval(Operand::Reg(3)), 42);
        assert_eq!(c.eval(Operand::Imm(7)), 7);
        assert_eq!(c.eval_addr(Operand::Reg(3)), Addr(42));
    }

    #[test]
    fn link_registers() {
        let mut c = CpuState::new();
        assert!(!c.le_regs_guard(Addr(1)));
        c.le_bit = true;
        c.le_addr = Some(Addr(1));
        assert!(c.le_regs_guard(Addr(1)));
        assert!(!c.le_regs_guard(Addr(2)));
        c.clear_link_regs();
        assert!(!c.le_bit);
        assert_eq!(c.le_addr, None);
    }

    #[test]
    fn fingerprint_ignores_clock() {
        use std::collections::hash_map::DefaultHasher;
        let fp = |c: &CpuState| {
            let mut h = DefaultHasher::new();
            c.hash_into(&mut h);
            h.finish()
        };
        let mut a = CpuState::new();
        let b = CpuState::new();
        a.clock = 1_000_000;
        assert_eq!(fp(&a), fp(&b));
        a.pc = 1;
        assert_ne!(fp(&a), fp(&b));
    }
}
