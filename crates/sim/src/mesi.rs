//! Cache-coherence states and protocol variants.
//!
//! The paper assumes the target architecture employs MESI (Section 2) but
//! notes "the mechanism can be adapted to other variants such as MSI and
//! MOESI". All three are implemented; [`Coherence`] selects the variant
//! per machine. The LE/ST link condition (Definition 3: the guarded line
//! held *exclusively*) maps to {M, E} under MESI/MOESI and {M} under MSI —
//! the Owned state is shared-dirty, never exclusive.
//!
//! A line absent from a cache is implicitly Invalid; the explicit `I`
//! variant never appears in a cache map (lines are removed instead), but is
//! useful as a transition result and in assertions.

use std::fmt;

/// Which coherence protocol the simulated machine runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Coherence {
    /// No Exclusive state: a read miss always installs Shared; gaining
    /// write permission always costs a bus transaction.
    Msi,
    /// The paper's assumed protocol.
    #[default]
    Mesi,
    /// Adds Owned: a Modified line downgraded by a remote *read* becomes
    /// O (shared-dirty, owner supplies data) instead of writing back.
    Moesi,
}

impl Coherence {
    /// Human-readable protocol name.
    pub fn label(self) -> &'static str {
        match self {
            Coherence::Msi => "MSI",
            Coherence::Mesi => "MESI",
            Coherence::Moesi => "MOESI",
        }
    }

    /// State installed by a read miss when no other cache holds the line.
    #[inline]
    pub fn read_miss_alone(self) -> Mesi {
        match self {
            Coherence::Msi => Mesi::S,
            Coherence::Mesi | Coherence::Moesi => Mesi::E,
        }
    }

    /// State acquired by `LE` / a store gaining ownership.
    ///
    /// MSI has no E, so exclusivity means M (the line is considered dirty
    /// from then on — a conservative but standard simplification).
    #[inline]
    pub fn exclusive_state(self) -> Mesi {
        match self {
            Coherence::Msi => Mesi::M,
            Coherence::Mesi | Coherence::Moesi => Mesi::E,
        }
    }

    /// Result of a remote *read* hitting a locally Modified line:
    /// `(new local state, must write back to memory now)`.
    #[inline]
    pub fn modified_on_remote_read(self) -> (Mesi, bool) {
        match self {
            Coherence::Moesi => (Mesi::O, false),
            Coherence::Msi | Coherence::Mesi => (Mesi::S, true),
        }
    }
}

/// Coherence state of a cache line in one processor's private cache
/// (the MOESI superset; `O` is unreachable under MSI/MESI).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Mesi {
    /// Modified: the only valid copy, dirty.
    M,
    /// Owned (MOESI): dirty but shared; this cache supplies the data and
    /// is responsible for the eventual writeback. Memory may be stale.
    O,
    /// Exclusive: the only valid copy, clean.
    E,
    /// Shared: other caches may also hold the line.
    S,
    /// Invalid: the copy is stale (represented by absence in practice).
    I,
}

impl Mesi {
    /// Whether the processor may read the line in this state.
    #[inline]
    pub fn readable(self) -> bool {
        matches!(self, Mesi::M | Mesi::O | Mesi::E | Mesi::S)
    }

    /// Whether the processor may write the line without a bus transaction.
    ///
    /// Writing in `E` silently upgrades to `M`; writing in `O` or `S`
    /// requires invalidating the other sharers first.
    #[inline]
    pub fn writable_silently(self) -> bool {
        matches!(self, Mesi::M | Mesi::E)
    }

    /// Whether this state grants exclusive ownership — the condition under
    /// which an `l-mfence` link may be *set* (Definition 3 in the paper).
    /// Owned is shared-dirty, not exclusive.
    #[inline]
    pub fn exclusive(self) -> bool {
        matches!(self, Mesi::M | Mesi::E)
    }

    /// Whether the copy holds data that memory does not (writeback needed
    /// on invalidation or eviction).
    #[inline]
    pub fn dirty(self) -> bool {
        matches!(self, Mesi::M | Mesi::O)
    }

    /// Single-letter state name, as a static string (the Display form);
    /// timeline exporters use it as the span name without allocating.
    pub fn label(self) -> &'static str {
        match self {
            Mesi::M => "M",
            Mesi::O => "O",
            Mesi::E => "E",
            Mesi::S => "S",
            Mesi::I => "I",
        }
    }
}

impl fmt::Display for Mesi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readability() {
        assert!(Mesi::M.readable());
        assert!(Mesi::E.readable());
        assert!(Mesi::S.readable());
        assert!(!Mesi::I.readable());
    }

    #[test]
    fn silent_writes_only_in_m_and_e() {
        assert!(Mesi::M.writable_silently());
        assert!(Mesi::E.writable_silently());
        assert!(!Mesi::S.writable_silently());
        assert!(!Mesi::I.writable_silently());
    }

    #[test]
    fn protocol_read_miss_states() {
        assert_eq!(Coherence::Msi.read_miss_alone(), Mesi::S);
        assert_eq!(Coherence::Mesi.read_miss_alone(), Mesi::E);
        assert_eq!(Coherence::Moesi.read_miss_alone(), Mesi::E);
    }

    #[test]
    fn protocol_exclusive_states() {
        assert_eq!(Coherence::Msi.exclusive_state(), Mesi::M);
        assert_eq!(Coherence::Mesi.exclusive_state(), Mesi::E);
        assert_eq!(Coherence::Moesi.exclusive_state(), Mesi::E);
    }

    #[test]
    fn moesi_keeps_dirty_data_as_owned() {
        assert_eq!(Coherence::Moesi.modified_on_remote_read(), (Mesi::O, false));
        assert_eq!(Coherence::Mesi.modified_on_remote_read(), (Mesi::S, true));
        assert_eq!(Coherence::Msi.modified_on_remote_read(), (Mesi::S, true));
    }

    #[test]
    fn owned_is_shared_dirty() {
        assert!(Mesi::O.readable());
        assert!(!Mesi::O.writable_silently());
        assert!(!Mesi::O.exclusive());
        assert!(Mesi::O.dirty());
        assert!(Mesi::M.dirty());
        assert!(!Mesi::E.dirty());
        assert!(!Mesi::S.dirty());
    }

    #[test]
    fn link_condition_matches_definition_3() {
        // Definition 3: a link requires the guarded line held exclusively.
        assert!(Mesi::M.exclusive());
        assert!(Mesi::E.exclusive());
        assert!(!Mesi::O.exclusive());
        assert!(!Mesi::S.exclusive());
        assert!(!Mesi::I.exclusive());
    }

    #[test]
    fn labels() {
        assert_eq!(Coherence::Msi.label(), "MSI");
        assert_eq!(Coherence::Mesi.label(), "MESI");
        assert_eq!(Coherence::Moesi.label(), "MOESI");
        assert_eq!(format!("{}", Mesi::O), "O");
    }
}
